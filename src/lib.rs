//! # FairLens
//!
//! A from-scratch Rust reproduction of *"Through the Data Management Lens:
//! Experimental Analysis and Evaluation of Fair Classification"* (Islam,
//! Fariha & Meliou, SIGMOD 2022): 13 fair classification approaches
//! (18 evaluated variants) across the pre-, in- and post-processing stages,
//! the nine evaluation metrics, calibrated synthetic versions of the four
//! benchmark datasets, and the full experiment harness that regenerates
//! every figure of the paper's evaluation.
//!
//! ## Quick start
//!
//! ```
//! use fairlens::prelude::*;
//! use rand::SeedableRng;
//!
//! // A benchmark dataset (synthetic, calibrated to the paper's statistics).
//! let data = DatasetKind::German.generate(600, 7);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let (train, test) = fairlens::frame::split::train_test_split(&data, 0.3, &mut rng);
//!
//! // Fairness-unaware baseline vs a fair approach.
//! let lr = baseline_approach().fit(&train, 1).unwrap();
//! let fair = all_approaches(&[])
//!     .into_iter()
//!     .find(|a| a.name == "KamCal^DP")
//!     .unwrap()
//!     .fit(&train, 1)
//!     .unwrap();
//!
//! let di_lr = fairlens::metrics::di_star(&lr.predict(&test), test.sensitive());
//! let di_fair = fairlens::metrics::di_star(&fair.predict(&test), test.sensitive());
//! assert!(di_fair >= di_lr - 0.15); // the repair should not hurt parity
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`frame`] | tabular datasets `(X, S; Y)`, splits, encoding, discretisation |
//! | [`synth`] | calibrated Adult / COMPAS / German / Credit generators |
//! | [`metrics`] | accuracy/precision/recall/F1 + DI, TPRB, TNRB, CD, CRD |
//! | [`core`] | the 18 fair-classification variants and the pipeline |
//! | [`model`] | logistic regression |
//! | [`optim`] | GD, Adam, augmented Lagrangian, scalar solvers |
//! | [`solver`] | weighted MaxSAT, NMF, simplex LP |
//! | [`causal`] | χ² CI tests, PC-lite discovery, do-calculus effects |
//! | [`linalg`] | dense vectors/matrices |

pub use fairlens_causal as causal;
pub use fairlens_core as core;
pub use fairlens_frame as frame;
pub use fairlens_linalg as linalg;
pub use fairlens_metrics as metrics;
pub use fairlens_model as model;
pub use fairlens_optim as optim;
pub use fairlens_solver as solver;
pub use fairlens_synth as synth;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use fairlens_core::{
        all_approaches, baseline_approach, Approach, ApproachKind, FittedPipeline, Stage,
    };
    pub use fairlens_frame::{Dataset, DatasetBuilder, Encoder};
    pub use fairlens_metrics::MetricReport;
    pub use fairlens_synth::{DatasetKind, ALL_DATASETS};
}
