#!/usr/bin/env bash
# Tier-1 gate: everything that must stay green on every commit.
#
#   ./scripts/check.sh           # build + tests + clippy + fig10 smoke
#   SKIP_SMOKE=1 ./scripts/check.sh   # skip the runner smoke (fast iteration)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

if [[ "${SKIP_SMOKE:-0}" != "1" ]]; then
    echo "==> fig10 quick smoke (German panel, parallel runner)"
    smoke_out="$(mktemp -d)"
    trap 'rm -rf "$smoke_out"' EXIT
    cargo run --release -p fairlens-bench --bin fig10_correctness_fairness -- \
        german --scale quick --threads 2 --out "$smoke_out" >/dev/null
    records="$(wc -l < "$smoke_out/fig10_correctness_fairness.jsonl")"
    if [[ "$records" -lt 19 ]]; then
        echo "smoke FAILED: expected >=19 records, got $records" >&2
        exit 1
    fi
    echo "    ok: $records records"
fi

echo "All checks passed."
