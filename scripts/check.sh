#!/usr/bin/env bash
# Tier-1 gate: everything that must stay green on every commit.
#
#   ./scripts/check.sh           # build + tests + clippy + fig10 smoke
#   SKIP_SMOKE=1 ./scripts/check.sh   # skip the runner smoke (fast iteration)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

if [[ "${SKIP_SMOKE:-0}" != "1" ]]; then
    smoke_out="$(mktemp -d)"
    trap 'rm -rf "$smoke_out"' EXIT

    echo "==> bench smoke (quick-scale linalg kernels vs committed BENCH_linalg.json)"
    # Re-measures the quick-scale kernel sweep and fails if any kernel's
    # fast-path median regressed >20 % vs the committed baseline. Shared
    # or loaded boxes make timing noisy, so by default a regression only
    # warns; export FAIRLENS_BENCH_STRICT=1 to turn it into a hard gate.
    if cargo run --release -p fairlens-bench --bin bench_report -- \
        --check BENCH_linalg.json > "$smoke_out/bench_check.txt" 2>&1; then
        echo "    ok: no kernel regressed >20% vs BENCH_linalg.json"
    elif [[ "${FAIRLENS_BENCH_STRICT:-0}" == "1" ]]; then
        echo "bench smoke FAILED (FAIRLENS_BENCH_STRICT=1):" >&2
        cat "$smoke_out/bench_check.txt" >&2
        exit 1
    else
        echo "    WARNING: kernel regression vs BENCH_linalg.json (ignored without FAIRLENS_BENCH_STRICT=1):"
        grep -E 'REGRESSED|FAILED' "$smoke_out/bench_check.txt" | sed 's/^/    /'
        echo "    re-baseline with: cargo run --release -p fairlens-bench --bin bench_report -- --out ."
    fi

    echo "==> fig10 quick smoke (German panel, parallel runner)"
    cargo run --release -p fairlens-bench --bin fig10_correctness_fairness -- \
        german --scale quick --threads 2 --out "$smoke_out" >/dev/null
    records="$(wc -l < "$smoke_out/fig10_correctness_fairness.jsonl")"
    if [[ "$records" -lt 19 ]]; then
        echo "smoke FAILED: expected >=19 records, got $records" >&2
        exit 1
    fi
    echo "    ok: $records records"

    echo "==> fault-injection smoke (fig12 quick with panic + hang + flaky)"
    # One panicking cell, one hanging cell (caught by the 8 s deadline) and
    # one cell that needs a retry; the run must still exit 0 with every
    # other cell recorded and the failures in the sidecar.
    FAIRLENS_FAULT='panic:KamCal^DP:1;hang:Hardt^EO:0;flaky:1:KamKar^DP:2' \
    cargo run --release -p fairlens-bench --features fault-inject \
        --bin fig12_stability -- \
        german --scale quick --threads 2 --retries 2 --cell-timeout 8 \
        --out "$smoke_out" >/dev/null
    results="$smoke_out/fig12_stability.jsonl"
    sidecar="$smoke_out/fig12_stability.failures.jsonl"
    records="$(wc -l < "$results")"
    # German quick: 19 approaches (LR + 18 fair variants) over 10 folds =
    # 190 cells, minus the panicked and the timed-out one.
    if [[ "$records" -ne 188 ]]; then
        echo "fault smoke FAILED: expected 188 records, got $records" >&2
        exit 1
    fi
    grep -q '"kind":"panicked"'  "$sidecar" || { echo "fault smoke FAILED: no panicked entry" >&2; exit 1; }
    grep -q '"kind":"timed_out"' "$sidecar" || { echo "fault smoke FAILED: no timed_out entry" >&2; exit 1; }
    grep -q '"attempts":2' "$results" || { echo "fault smoke FAILED: flaky cell did not record a retry" >&2; exit 1; }
    echo "    ok: $records records, $(wc -l < "$sidecar") failures in sidecar"

    echo "==> resume smoke (kill fig12 at 50 %, resume, compare)"
    # Reference run (traced — the trace smoke below reuses it), then the
    # same run truncated to its first half and resumed; modulo wall-clock
    # the finalized files must agree.
    ref="$smoke_out/ref.jsonl"
    trace="$smoke_out/fig12.trace.jsonl"
    cargo run --release -p fairlens-bench --bin fig12_stability -- \
        german --scale quick --threads 2 --out "$smoke_out" --trace "$trace" >/dev/null
    mv "$smoke_out/fig12_stability.jsonl" "$ref"
    half="$smoke_out/half.jsonl"
    head -n 100 "$ref" > "$half"
    cargo run --release -p fairlens-bench --bin fig12_stability -- \
        german --scale quick --threads 2 --resume "$half" --out "$smoke_out" >/dev/null
    strip_times() { sed 's/"fit_ms":[^,]*,//; s/"predict_ms":[^,]*,//' "$1"; }
    if ! diff <(strip_times "$ref") <(strip_times "$smoke_out/fig12_stability.jsonl") >/dev/null; then
        echo "resume smoke FAILED: resumed run diverged from the reference" >&2
        exit 1
    fi
    echo "    ok: resumed run matches the reference"

    echo "==> trace smoke (trace_report on the traced fig12 run)"
    # trace_report must exit 0, name all five pipeline phases, and agree
    # with the RunRecord wall-clocks within max(5 %, 1 ms) per cell.
    report="$smoke_out/trace_report.txt"
    cargo run --release -p fairlens-bench --bin trace_report -- \
        "$trace" --results "$ref" > "$report"
    for phase in synth encode fit predict metrics; do
        grep -qw "$phase" "$report" \
            || { echo "trace smoke FAILED: phase '$phase' missing from report" >&2; exit 1; }
    done
    grep -q 'cross-check vs' "$report" \
        || { echo "trace smoke FAILED: no cross-check line" >&2; exit 1; }
    [[ -s "$smoke_out/fig12.trace.collapsed" ]] \
        || { echo "trace smoke FAILED: no collapsed flamegraph stacks" >&2; exit 1; }
    echo "    ok: all five phases reported, cross-check passed"

    echo "==> serving smoke (export German models, loadgen 1000 reqs, drain)"
    # Export a handful of German artifacts, boot the prediction server on
    # an ephemeral port, fire a 4-connection keep-alive mix of single and
    # batch predicts (loadgen exits non-zero on any non-200), check the
    # metrics moved, and drain via POST /v1/shutdown; the server must
    # exit 0 with no connection resets.
    #
    # Warm the exact artifacts `cargo run` will want first — a rebuild
    # inside the timed announce loops below reads as a boot failure.
    cargo build --release -p fairlens-serve --bin fairlens-serve --example loadgen >/dev/null
    cargo build --release -p fairlens-bench --bin export_models --bin flm_flip >/dev/null
    models_dir="$smoke_out/models"
    cargo run --release -p fairlens-bench --bin export_models -- \
        --scale quick --out "$models_dir" --datasets German \
        --approaches 'LR,Feld^DP(1.0),Hardt^EO' >/dev/null 2>&1
    serve_log="$smoke_out/serve.log"
    serve_trace="$smoke_out/serve.trace.jsonl"
    cargo run --release -p fairlens-serve -- \
        --addr 127.0.0.1:0 --models "$models_dir" --trace "$serve_trace" 2> "$serve_log" &
    serve_pid=$!
    addr=""
    for _ in $(seq 1 300); do
        addr="$(sed -n 's/^\[serve\] listening on \([0-9.:]*\).*$/\1/p' "$serve_log")"
        [[ -n "$addr" ]] && break
        sleep 0.1
    done
    if [[ -z "$addr" ]]; then
        echo "serve smoke FAILED: server never announced its address" >&2
        kill "$serve_pid" 2>/dev/null || true
        exit 1
    fi
    cargo run --release -p fairlens-serve --example loadgen -- \
        --addr "$addr" --requests 1000 --conns 4 2> "$smoke_out/loadgen.log" \
        || { echo "serve smoke FAILED:" >&2; cat "$smoke_out/loadgen.log" >&2; exit 1; }
    curl -s "http://$addr/metrics" > "$smoke_out/metrics.txt"
    grep -q 'fairlens_requests_total{route="/v1/predict",status="200"} 1000' \
        "$smoke_out/metrics.txt" \
        || { echo "serve smoke FAILED: predict counter did not reach 1000" >&2; exit 1; }
    curl -s -X POST "http://$addr/v1/shutdown" >/dev/null
    if ! wait "$serve_pid"; then
        echo "serve smoke FAILED: server exited non-zero" >&2
        exit 1
    fi
    grep -q '\[serve\] drained, bye' "$serve_log" \
        || { echo "serve smoke FAILED: no drain marker in the log" >&2; exit 1; }
    # loadgen must report a latency distribution with a positive p99.
    p99="$(sed -n 's/.*p99 \([0-9.][0-9.]*\)$/\1/p' "$smoke_out/loadgen.log")"
    if [[ -z "$p99" ]] || ! awk -v v="$p99" 'BEGIN { exit !(v > 0) }'; then
        echo "serve smoke FAILED: loadgen p99 missing or zero (got '${p99:-}')" >&2
        exit 1
    fi
    # The drained server leaves per-request trace tracks behind.
    grep -q '"track":"req/' "$serve_trace" \
        || { echo "serve smoke FAILED: no req/ tracks in the serve trace" >&2; exit 1; }
    echo "    ok: 1000 requests served, p99 ${p99} ms, metrics moved, clean drain"

    echo "==> chaos smoke (open-loop overload vs fault-injected server)"
    # Tight admission limits plus an injected executor panic and two
    # injected hangs: the server must never exit, shed the overflow with
    # well-formed 429/503/504s, trip the german-lr breaker, and re-close
    # it once the fault budgets are spent. Reuses the models exported by
    # the serving smoke above.
    chaos_log="$smoke_out/chaos-serve.log"
    FAIRLENS_FAULT='panic:german-lr:1;hang:german-lr:2' \
    cargo run --release -p fairlens-serve -- \
        --addr 127.0.0.1:0 --models "$models_dir" \
        --workers 8 --max-queue 2 --max-inflight 4 --deadline-ms 800 \
        --breaker-threshold 2 --breaker-cooldown-ms 300 2> "$chaos_log" &
    chaos_pid=$!
    addr=""
    for _ in $(seq 1 300); do
        addr="$(sed -n 's/^\[serve\] listening on \([0-9.:]*\).*$/\1/p' "$chaos_log")"
        [[ -n "$addr" ]] && break
        sleep 0.1
    done
    if [[ -z "$addr" ]]; then
        echo "chaos smoke FAILED: server never announced its address" >&2
        kill "$chaos_pid" 2>/dev/null || true
        exit 1
    fi
    # Phase 1 — overload: pipelined bursts far past the admission limits
    # while the faults fire. Every request must get a well-formed answer
    # (200 or a shed); loadgen exits non-zero on anything else.
    cargo run --release -p fairlens-serve --example loadgen -- \
        --addr "$addr" --model german-lr --requests 400 --conns 8 \
        --open-loop --burst 32 --allow-shed 2> "$smoke_out/chaos-overload.log" \
        || { echo "chaos smoke FAILED (overload phase):" >&2
             cat "$smoke_out/chaos-overload.log" >&2; exit 1; }
    # Phase 2 — recovery: a polite closed loop that honours Retry-After.
    # Fault budgets are spent, so the breaker must re-close.
    cargo run --release -p fairlens-serve --example loadgen -- \
        --addr "$addr" --model german-lr --requests 100 --conns 2 \
        --allow-shed 2> "$smoke_out/chaos-recovery.log" \
        || { echo "chaos smoke FAILED (recovery phase):" >&2
             cat "$smoke_out/chaos-recovery.log" >&2; exit 1; }
    # The server survived and still answers.
    [[ "$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/healthz")" == "200" ]] \
        || { echo "chaos smoke FAILED: /healthz is not 200 after the storm" >&2; exit 1; }
    curl -s "http://$addr/metrics" > "$smoke_out/chaos-metrics.txt"
    grep -q 'fairlens_shed_total' "$smoke_out/chaos-metrics.txt" \
        || { echo "chaos smoke FAILED: nothing was shed" >&2; exit 1; }
    grep -Eq 'fairlens_breaker_opens_total\{model="german-lr"\} [1-9]' \
        "$smoke_out/chaos-metrics.txt" \
        || { echo "chaos smoke FAILED: the breaker never opened" >&2; exit 1; }
    grep -q 'fairlens_breaker_state{model="german-lr"} 0' "$smoke_out/chaos-metrics.txt" \
        || { echo "chaos smoke FAILED: the breaker did not re-close" >&2; exit 1; }
    grep -q 'fairlens_queue_depth{model="german-lr"} 0' "$smoke_out/chaos-metrics.txt" \
        || { echo "chaos smoke FAILED: the queue did not drain" >&2; exit 1; }
    curl -s -X POST "http://$addr/v1/shutdown" >/dev/null
    if ! wait "$chaos_pid"; then
        echo "chaos smoke FAILED: server exited non-zero" >&2
        exit 1
    fi
    grep -q '\[serve\] drained, bye' "$chaos_log" \
        || { echo "chaos smoke FAILED: no drain marker in the log" >&2; exit 1; }
    sheds="$(sed -n 's/^fairlens_shed_total{reason="queue_full"} //p' "$smoke_out/chaos-metrics.txt")"
    echo "    ok: survived the storm (${sheds:-0} queue sheds), breaker tripped and re-closed, clean drain"

    echo "==> xverify smoke (paired solvers in lockstep, clean + perturbed)"
    # The clean suite must agree on every pair; the perturbed run must
    # exit non-zero and pinpoint the injected iteration — proof the
    # checker fires rather than stays silent.
    cargo run --release -p fairlens-bench --bin xverify -- \
        german --scale quick --cells 1 2> "$smoke_out/xverify.log" \
        || { echo "xverify smoke FAILED (clean run):" >&2
             cat "$smoke_out/xverify.log" >&2; exit 1; }
    grep -q 'all solver pairs agree' "$smoke_out/xverify.log" \
        || { echo "xverify smoke FAILED: no agreement marker" >&2; exit 1; }
    if cargo run --release -p fairlens-bench --bin xverify -- \
        german --scale quick --perturb 2> "$smoke_out/xverify-perturb.log"; then
        echo "xverify smoke FAILED: --perturb exited 0" >&2
        cat "$smoke_out/xverify-perturb.log" >&2
        exit 1
    fi
    grep -q 'first divergence at iteration' "$smoke_out/xverify-perturb.log" \
        || { echo "xverify smoke FAILED: perturbation not pinpointed" >&2
             cat "$smoke_out/xverify-perturb.log" >&2; exit 1; }
    echo "    ok: clean suite agrees, injected perturbation pinpointed"

    echo "==> shadow & replay smoke (record, clean window, promote, replay, dirty 409)"
    # A byte-identical shadow candidate must produce a clean comparison
    # window (promote succeeds); a recorded run must replay bit-exactly
    # against the promoted server; a bit-flipped candidate must drive the
    # divergence counter and turn promote into a structured 409.
    cp "$models_dir/german-lr.flm" "$smoke_out/candidate.flm"
    recording="$smoke_out/predict.rec.jsonl"
    shadow_log="$smoke_out/shadow-serve.log"
    cargo run --release -p fairlens-serve -- \
        --addr 127.0.0.1:0 --models "$models_dir" \
        --shadow german-lr="$smoke_out/candidate.flm" \
        --record "$recording" 2> "$shadow_log" &
    shadow_pid=$!
    addr=""
    for _ in $(seq 1 300); do
        addr="$(sed -n 's/^\[serve\] listening on \([0-9.:]*\).*$/\1/p' "$shadow_log")"
        [[ -n "$addr" ]] && break
        sleep 0.1
    done
    if [[ -z "$addr" ]]; then
        echo "shadow smoke FAILED: server never announced its address" >&2
        kill "$shadow_pid" 2>/dev/null || true
        exit 1
    fi
    cargo run --release -p fairlens-serve --example loadgen -- \
        --addr "$addr" --model german-lr --requests 200 --conns 2 \
        2> "$smoke_out/shadow-loadgen.log" \
        || { echo "shadow smoke FAILED (loadgen):" >&2
             cat "$smoke_out/shadow-loadgen.log" >&2; exit 1; }
    curl -s "http://$addr/metrics" > "$smoke_out/shadow-metrics.txt"
    grep -q 'fairlens_shadow_compared_total{model="german-lr"} 200' \
        "$smoke_out/shadow-metrics.txt" \
        || { echo "shadow smoke FAILED: compared counter did not reach 200" >&2; exit 1; }
    grep -q 'fairlens_shadow_divergence_total{model="german-lr"} 0' \
        "$smoke_out/shadow-metrics.txt" \
        || { echo "shadow smoke FAILED: identical candidate diverged" >&2; exit 1; }
    promote_code="$(curl -s -o "$smoke_out/promote.json" -w '%{http_code}' \
        -X POST "http://$addr/v1/promote" -d '{"model": "german-lr"}')"
    if [[ "$promote_code" != "200" ]] \
        || ! grep -q '"status": *"promoted"' "$smoke_out/promote.json"; then
        echo "shadow smoke FAILED: clean promote got HTTP $promote_code:" >&2
        cat "$smoke_out/promote.json" >&2
        exit 1
    fi
    curl -s -X POST "http://$addr/v1/shutdown" >/dev/null
    wait "$shadow_pid" \
        || { echo "shadow smoke FAILED: shadow server exited non-zero" >&2; exit 1; }
    # Replay the recording against a fresh boot of the promoted models.
    replay_log="$smoke_out/replay-serve.log"
    cargo run --release -p fairlens-serve -- \
        --addr 127.0.0.1:0 --models "$models_dir" 2> "$replay_log" &
    replay_pid=$!
    addr=""
    for _ in $(seq 1 300); do
        addr="$(sed -n 's/^\[serve\] listening on \([0-9.:]*\).*$/\1/p' "$replay_log")"
        [[ -n "$addr" ]] && break
        sleep 0.1
    done
    if [[ -z "$addr" ]]; then
        echo "shadow smoke FAILED: replay server never announced its address" >&2
        kill "$replay_pid" 2>/dev/null || true
        exit 1
    fi
    cargo run --release -p fairlens-serve --example loadgen -- \
        --addr "$addr" --replay "$recording" --shutdown \
        2> "$smoke_out/replay.log" \
        || { echo "shadow smoke FAILED (replay):" >&2
             cat "$smoke_out/replay.log" >&2; exit 1; }
    grep -q 'REPLAY PASS' "$smoke_out/replay.log" \
        || { echo "shadow smoke FAILED: no REPLAY PASS marker" >&2; exit 1; }
    wait "$replay_pid" \
        || { echo "shadow smoke FAILED: replay server exited non-zero" >&2; exit 1; }
    # A bit-flipped candidate must dirty the window and block promotion.
    cargo run --release -p fairlens-bench --bin flm_flip -- \
        "$models_dir/german-lr.flm" "$smoke_out/flipped.flm" 2>/dev/null
    dirty_log="$smoke_out/dirty-serve.log"
    cargo run --release -p fairlens-serve -- \
        --addr 127.0.0.1:0 --models "$models_dir" \
        --shadow german-lr="$smoke_out/flipped.flm" 2> "$dirty_log" &
    dirty_pid=$!
    addr=""
    for _ in $(seq 1 300); do
        addr="$(sed -n 's/^\[serve\] listening on \([0-9.:]*\).*$/\1/p' "$dirty_log")"
        [[ -n "$addr" ]] && break
        sleep 0.1
    done
    if [[ -z "$addr" ]]; then
        echo "shadow smoke FAILED: dirty server never announced its address" >&2
        kill "$dirty_pid" 2>/dev/null || true
        exit 1
    fi
    cargo run --release -p fairlens-serve --example loadgen -- \
        --addr "$addr" --model german-lr --requests 50 --conns 2 \
        2> "$smoke_out/dirty-loadgen.log" \
        || { echo "shadow smoke FAILED (dirty loadgen):" >&2
             cat "$smoke_out/dirty-loadgen.log" >&2; exit 1; }
    curl -s "http://$addr/metrics" > "$smoke_out/dirty-metrics.txt"
    grep -Eq 'fairlens_shadow_divergence_total\{model="german-lr"\} [1-9]' \
        "$smoke_out/dirty-metrics.txt" \
        || { echo "shadow smoke FAILED: flipped candidate never diverged" >&2; exit 1; }
    promote_code="$(curl -s -o "$smoke_out/promote-409.json" -w '%{http_code}' \
        -X POST "http://$addr/v1/promote" -d '{"model": "german-lr"}')"
    if [[ "$promote_code" != "409" ]] \
        || ! grep -q '"kind": *"conflict"' "$smoke_out/promote-409.json" \
        || ! grep -q 'first divergence at request' "$smoke_out/promote-409.json"; then
        echo "shadow smoke FAILED: dirty promote got HTTP $promote_code:" >&2
        cat "$smoke_out/promote-409.json" >&2
        exit 1
    fi
    curl -s -X POST "http://$addr/v1/shutdown" >/dev/null
    wait "$dirty_pid" \
        || { echo "shadow smoke FAILED: dirty server exited non-zero" >&2; exit 1; }
    echo "    ok: clean window promoted, recording replayed bit-exactly, flipped candidate refused with 409"

    echo "==> monitor smoke (live metrics vs offline recomputation, label-skew drift, replay reproduction)"
    # Phase 1 — honest outcomes: a single-connection run reporting true
    # labels for ~70 % of answered predicts. The live windowed metrics in
    # GET /v1/models must agree *bit-exactly* with monitor_check's naive
    # offline recomputation over the recording, and drift must stay ok.
    cargo build --release -p fairlens-serve --bin monitor_check >/dev/null
    mon_rec="$smoke_out/monitor.rec.jsonl"
    mon_log="$smoke_out/monitor-serve.log"
    mon_trace="$smoke_out/monitor.trace.jsonl"
    cargo run --release -p fairlens-serve -- \
        --addr 127.0.0.1:0 --models "$models_dir" \
        --monitor-window 64 --drift-threshold accuracy=0.25 \
        --record "$mon_rec" --trace "$mon_trace" 2> "$mon_log" &
    mon_pid=$!
    addr=""
    for _ in $(seq 1 300); do
        addr="$(sed -n 's/^\[serve\] listening on \([0-9.:]*\).*$/\1/p' "$mon_log")"
        [[ -n "$addr" ]] && break
        sleep 0.1
    done
    if [[ -z "$addr" ]]; then
        echo "monitor smoke FAILED: server never announced its address" >&2
        kill "$mon_pid" 2>/dev/null || true
        exit 1
    fi
    cargo run --release -p fairlens-serve --example loadgen -- \
        --addr "$addr" --model german-lr --requests 200 --conns 1 --feedback 0.7 \
        2> "$smoke_out/monitor-loadgen.log" \
        || { echo "monitor smoke FAILED (feedback loadgen):" >&2
             cat "$smoke_out/monitor-loadgen.log" >&2; exit 1; }
    curl -s "http://$addr/metrics" > "$smoke_out/monitor-metrics.txt"
    grep -Eq 'fairlens_feedback_total\{model="german-lr",status="ok"\} [1-9]' \
        "$smoke_out/monitor-metrics.txt" \
        || { echo "monitor smoke FAILED: no accepted feedback counted" >&2; exit 1; }
    grep -q 'fairlens_drift_state{model="german-lr"} 0' "$smoke_out/monitor-metrics.txt" \
        || { echo "monitor smoke FAILED: honest labels must not drift" >&2; exit 1; }
    curl -s "http://$addr/v1/models" > "$smoke_out/monitor-models.json"
    cargo run --release -p fairlens-serve --bin monitor_check -- \
        "$mon_rec" --models "$models_dir" --model german-lr --window 64 \
        --expect "$smoke_out/monitor-models.json" 2> "$smoke_out/monitor-check.log" \
        || { echo "monitor smoke FAILED (offline recomputation):" >&2
             cat "$smoke_out/monitor-check.log" >&2; exit 1; }
    # Phase 2 — label skew: every report is the opposite of the
    # prediction, so live accuracy collapses and the drift state must
    # walk ok -> warning -> alerting, naming accuracy as the offender.
    cargo run --release -p fairlens-serve --example loadgen -- \
        --addr "$addr" --model german-lr --requests 150 --conns 1 \
        --feedback-skew --seed 43 2> "$smoke_out/monitor-skew.log" \
        || { echo "monitor smoke FAILED (skew loadgen):" >&2
             cat "$smoke_out/monitor-skew.log" >&2; exit 1; }
    curl -s "http://$addr/metrics" > "$smoke_out/monitor-skew-metrics.txt"
    grep -q 'fairlens_drift_state{model="german-lr"} 2' \
        "$smoke_out/monitor-skew-metrics.txt" \
        || { echo "monitor smoke FAILED: label skew never reached alerting" >&2; exit 1; }
    curl -s "http://$addr/v1/models" > "$smoke_out/monitor-models-skew.json"
    grep -q '"state": *"alerting"' "$smoke_out/monitor-models-skew.json" \
        || { echo "monitor smoke FAILED: /v1/models does not show alerting" >&2; exit 1; }
    grep -q '"metric": *"accuracy"' "$smoke_out/monitor-models-skew.json" \
        || { echo "monitor smoke FAILED: offending metric not named" >&2; exit 1; }
    curl -s -X POST "http://$addr/v1/shutdown" >/dev/null
    wait "$mon_pid" \
        || { echo "monitor smoke FAILED: server exited non-zero" >&2; exit 1; }
    grep -q '\[serve\] drift for model "german-lr": warning -> alerting' "$mon_log" \
        || { echo "monitor smoke FAILED: no drift transition in the log" >&2; exit 1; }
    grep -q 'drift:alerting' "$mon_trace" \
        || { echo "monitor smoke FAILED: no drift event in the trace" >&2; exit 1; }
    # Phase 3 — replay reproduction: a fresh server fed the recorded
    # exchange stream (predicts *and* feedback) must answer identically
    # and end with the same window — monitor_check holds its listing to
    # the same offline recomputation, so the final live metrics are
    # bit-identical to the original server's.
    mon2_log="$smoke_out/monitor-replay-serve.log"
    cargo run --release -p fairlens-serve -- \
        --addr 127.0.0.1:0 --models "$models_dir" \
        --monitor-window 64 --drift-threshold accuracy=0.25 2> "$mon2_log" &
    mon2_pid=$!
    addr=""
    for _ in $(seq 1 300); do
        addr="$(sed -n 's/^\[serve\] listening on \([0-9.:]*\).*$/\1/p' "$mon2_log")"
        [[ -n "$addr" ]] && break
        sleep 0.1
    done
    if [[ -z "$addr" ]]; then
        echo "monitor smoke FAILED: replay server never announced its address" >&2
        kill "$mon2_pid" 2>/dev/null || true
        exit 1
    fi
    cargo run --release -p fairlens-serve --example loadgen -- \
        --addr "$addr" --replay "$mon_rec" 2> "$smoke_out/monitor-replay.log" \
        || { echo "monitor smoke FAILED (replay):" >&2
             cat "$smoke_out/monitor-replay.log" >&2; exit 1; }
    grep -q 'REPLAY PASS' "$smoke_out/monitor-replay.log" \
        || { echo "monitor smoke FAILED: no REPLAY PASS marker" >&2; exit 1; }
    curl -s "http://$addr/v1/models" > "$smoke_out/monitor-models-replay.json"
    cargo run --release -p fairlens-serve --bin monitor_check -- \
        "$mon_rec" --models "$models_dir" --model german-lr --window 64 \
        --expect "$smoke_out/monitor-models-replay.json" \
        2> "$smoke_out/monitor-check-replay.log" \
        || { echo "monitor smoke FAILED (replayed window diverged):" >&2
             cat "$smoke_out/monitor-check-replay.log" >&2; exit 1; }
    curl -s -X POST "http://$addr/v1/shutdown" >/dev/null
    wait "$mon2_pid" \
        || { echo "monitor smoke FAILED: replay server exited non-zero" >&2; exit 1; }
    fb_ok="$(sed -n 's/^fairlens_feedback_total{model="german-lr",status="ok"} //p' "$smoke_out/monitor-skew-metrics.txt")"
    echo "    ok: live metrics bit-match offline recomputation, skewed labels drove drift to alerting (${fb_ok:-0} reports), replay reproduced the window"

    echo "==> fleet smoke (3 workers, abort chaos + storm, respawn, bit-exact replay, blue/green reload)"
    # A supervised 3-worker fleet with --replicas 2 takes an open-loop
    # storm while every worker carries an abort:german-lr:20 fault — so
    # whichever worker is the model's primary SIGABRTs mid-storm. The
    # storm must end with zero malformed answers, the supervisor must
    # respawn the crashed worker (fault-free) and return the fleet to
    # full strength, a recording taken against a single-process server
    # must replay bit-exactly through the fleet, and a blue/green reload
    # under live no-shed traffic must complete with zero non-200s.
    cargo build --release -p fairlens-fleet --bin fairlens-fleet >/dev/null
    # Reference recording: a plain single server over the same models.
    fleet_rec="$smoke_out/fleet.rec.jsonl"
    fleet_ref_log="$smoke_out/fleet-ref-serve.log"
    cargo run --release -p fairlens-serve -- \
        --addr 127.0.0.1:0 --models "$models_dir" --record "$fleet_rec" \
        2> "$fleet_ref_log" &
    fleet_ref_pid=$!
    addr=""
    for _ in $(seq 1 300); do
        addr="$(sed -n 's/^\[serve\] listening on \([0-9.:]*\).*$/\1/p' "$fleet_ref_log")"
        [[ -n "$addr" ]] && break
        sleep 0.1
    done
    if [[ -z "$addr" ]]; then
        echo "fleet smoke FAILED: reference server never announced" >&2
        kill "$fleet_ref_pid" 2>/dev/null || true
        exit 1
    fi
    cargo run --release -p fairlens-serve --example loadgen -- \
        --addr "$addr" --model german-lr --requests 250 --conns 2 \
        2> "$smoke_out/fleet-ref-loadgen.log" \
        || { echo "fleet smoke FAILED (reference loadgen):" >&2
             cat "$smoke_out/fleet-ref-loadgen.log" >&2; exit 1; }
    curl -s -X POST "http://$addr/v1/shutdown" >/dev/null
    wait "$fleet_ref_pid" \
        || { echo "fleet smoke FAILED: reference server exited non-zero" >&2; exit 1; }
    # Boot the fleet: fast supervision knobs, an abort fault on every
    # worker's first incarnation (respawns come back clean by design).
    fleet_log="$smoke_out/fleet.log"
    ./target/release/fairlens-fleet \
        --addr 127.0.0.1:0 --models "$models_dir" --workers 3 --replicas 2 \
        --probe-interval-ms 100 --backoff-base-ms 200 --backoff-cap-ms 1000 \
        --fail-threshold 2 --ok-threshold 2 \
        --worker-fault 0:abort:german-lr:20 \
        --worker-fault 1:abort:german-lr:20 \
        --worker-fault 2:abort:german-lr:20 2> "$fleet_log" &
    fleet_pid=$!
    faddr=""
    for _ in $(seq 1 300); do
        faddr="$(sed -n 's/^\[fleet\] listening on \([0-9.:]*\).*$/\1/p' "$fleet_log")"
        [[ -n "$faddr" ]] && break
        sleep 0.1
    done
    if [[ -z "$faddr" ]]; then
        echo "fleet smoke FAILED: fleet never announced its address" >&2
        kill "$fleet_pid" 2>/dev/null || true
        exit 1
    fi
    # Wait until every worker is routable before aiming the storm.
    ready=""
    for _ in $(seq 1 300); do
        if curl -s "http://$faddr/healthz" | grep -q '"ready": *true'; then
            ready=1; break
        fi
        sleep 0.1
    done
    [[ -n "$ready" ]] \
        || { echo "fleet smoke FAILED: fleet never became ready" >&2; exit 1; }
    # Phase 1 — storm: the primary's abort fires at its 20th german-lr
    # request. Every answer must be well-formed (200 or an honest shed);
    # loadgen exits non-zero on anything else.
    cargo run --release -p fairlens-serve --example loadgen -- \
        --addr "$faddr" --model german-lr --requests 400 --conns 8 \
        --open-loop --burst 32 --allow-shed 2> "$smoke_out/fleet-storm.log" \
        || { echo "fleet smoke FAILED (storm phase):" >&2
             cat "$smoke_out/fleet-storm.log" >&2; exit 1; }
    # Phase 2 — recovery: the supervisor recorded a respawn and the fleet
    # is back to full strength within the backoff bound.
    respawned=""
    for _ in $(seq 1 200); do
        if curl -s "http://$faddr/metrics" \
            | grep -E 'fairlens_worker_restarts_total\{worker="[0-9]+"\} [1-9]' >/dev/null; then
            respawned=1; break
        fi
        sleep 0.1
    done
    [[ -n "$respawned" ]] \
        || { echo "fleet smoke FAILED: no worker respawn recorded after the abort" >&2
             curl -s "http://$faddr/metrics" >&2; exit 1; }
    ready=""
    for _ in $(seq 1 300); do
        if curl -s "http://$faddr/healthz" | grep -q '"ready": *true'; then
            ready=1; break
        fi
        sleep 0.1
    done
    [[ -n "$ready" ]] \
        || { echo "fleet smoke FAILED: fleet not back to full strength after respawn" >&2; exit 1; }
    # Phase 3 — bit-exactness: the single-process recording must replay
    # identically through the post-failover fleet (replay compares score
    # bits, so this is exact, not approximate).
    cargo run --release -p fairlens-serve --example loadgen -- \
        --addr "$faddr" --replay "$fleet_rec" 2> "$smoke_out/fleet-replay.log" \
        || { echo "fleet smoke FAILED (replay):" >&2
             cat "$smoke_out/fleet-replay.log" >&2; exit 1; }
    grep -q 'REPLAY PASS' "$smoke_out/fleet-replay.log" \
        || { echo "fleet smoke FAILED: no REPLAY PASS marker" >&2; exit 1; }
    # Phase 4 — blue/green reload under live traffic that is NOT allowed
    # to shed: a byte-identical candidate is staged as a shadow, soaks a
    # 16-comparison window, and cuts over while a closed loop hammers the
    # model; the loadgen exits non-zero on any non-200.
    cp "$models_dir/german-lr.flm" "$smoke_out/fleet-candidate.flm"
    cargo run --release -p fairlens-serve --example loadgen -- \
        --addr "$faddr" --model german-lr --requests 1500 --conns 2 \
        2> "$smoke_out/fleet-reload-loadgen.log" &
    fleet_lg_pid=$!
    sleep 0.5
    reload_code="$(curl -s -o "$smoke_out/fleet-reload.json" -w '%{http_code}' \
        -X POST "http://$faddr/v1/reload" \
        -d "{\"model\": \"german-lr\", \"artifact\": \"$smoke_out/fleet-candidate.flm\", \"window\": 16}")"
    if [[ "$reload_code" != "200" ]] \
        || ! grep -q '"status": *"reloaded"' "$smoke_out/fleet-reload.json"; then
        echo "fleet smoke FAILED: reload got HTTP $reload_code:" >&2
        cat "$smoke_out/fleet-reload.json" >&2
        kill "$fleet_lg_pid" 2>/dev/null || true
        exit 1
    fi
    wait "$fleet_lg_pid" \
        || { echo "fleet smoke FAILED: a request failed during the blue/green reload:" >&2
             cat "$smoke_out/fleet-reload-loadgen.log" >&2; exit 1; }
    curl -s "http://$faddr/metrics" > "$smoke_out/fleet-metrics.txt"
    grep -q 'fairlens_fleet_reloads_total{outcome="ok"} 1' "$smoke_out/fleet-metrics.txt" \
        || { echo "fleet smoke FAILED: reload outcome not counted" >&2; exit 1; }
    # Drain: the fleet asks every worker to drain, then exits clean.
    curl -s -X POST "http://$faddr/v1/shutdown" >/dev/null
    if ! wait "$fleet_pid"; then
        echo "fleet smoke FAILED: fleet exited non-zero" >&2
        exit 1
    fi
    grep -q '\[fleet\] drained, bye' "$fleet_log" \
        || { echo "fleet smoke FAILED: no drain marker in the fleet log" >&2; exit 1; }
    restarts="$(sed -n 's/^fairlens_worker_restarts_total{worker="[0-9]*"} //p' "$smoke_out/fleet-metrics.txt" | awk '{s+=$1} END {print s+0}')"
    echo "    ok: storm survived an aborted primary (${restarts:-?} respawn(s)), replay bit-exact through the fleet, blue/green reload with zero non-200s, clean drain"
fi

echo "All checks passed."
