//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace uses. Instead of criterion's full statistical machinery it
//! runs each benchmark closure `sample_size` times after a short warm-up
//! and prints min / median / mean wall-clock per iteration — enough to
//! compare approaches locally without any network dependency.
//!
//! On top of the printed report, every finished benchmark also pushes a
//! [`Summary`] into a process-global sink; harnesses that drive benchmarks
//! programmatically (the `bench_report` baseline emitter) drain it with
//! [`take_results`] instead of scraping stdout.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Machine-readable result of one finished benchmark.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Full benchmark label (`group/id`).
    pub label: String,
    /// Fastest sample, nanoseconds.
    pub min_ns: u64,
    /// Median sample, nanoseconds.
    pub median_ns: u64,
    /// Mean over all samples, nanoseconds.
    pub mean_ns: u64,
    /// Number of timed samples.
    pub samples: usize,
}

static RESULTS: Mutex<Vec<Summary>> = Mutex::new(Vec::new());

/// Drain every [`Summary`] recorded since the last call (process-global,
/// in completion order).
pub fn take_results() -> Vec<Summary> {
    std::mem::take(&mut *RESULTS.lock().unwrap())
}

/// Prevent the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self { label: format!("{function}/{parameter}") }
    }

    /// Id from just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the payload.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Run `f` repeatedly, recording one wall-clock sample per run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed run.
        black_box(f());
        self.results.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.results.push(t0.elapsed());
        }
    }
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    println!(
        "{label:<40} min {min:>12.3?}  median {median:>12.3?}  mean {mean:>12.3?}  ({} samples)",
        sorted.len()
    );
    RESULTS.lock().unwrap().push(Summary {
        label: label.to_string(),
        min_ns: min.as_nanos() as u64,
        median_ns: median.as_nanos() as u64,
        mean_ns: mean.as_nanos() as u64,
        samples: sorted.len(),
    });
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { samples: self.sample_size, results: Vec::new() };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b.results);
        self
    }

    /// End the group (prints nothing extra; provided for API parity).
    pub fn finish(&mut self) {}
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let samples = if self.sample_size == 0 { 20 } else { self.sample_size };
        let mut b = Bencher { samples, results: Vec::new() };
        f(&mut b);
        report(&id.to_string(), &b.results);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.sample_size == 0 { 20 } else { self.sample_size };
        BenchmarkGroup { name: name.into(), sample_size, _parent: self }
    }
}

/// Bundle benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut ran = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        group.finish();
        // 5 timed + 1 warm-up
        assert_eq!(ran, 6);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("fit", "LR").to_string(), "fit/LR");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }

    #[test]
    fn results_sink_collects_summaries() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("sink");
        group.sample_size(3);
        group.bench_function("probe", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        // The sink is process-global and tests run concurrently, so filter
        // rather than assert exclusivity.
        let got = take_results();
        let probe = got.iter().find(|s| s.label == "sink/probe").expect("summary recorded");
        assert_eq!(probe.samples, 3);
        assert!(probe.min_ns <= probe.median_ns && probe.min_ns <= probe.mean_ns);
    }
}
