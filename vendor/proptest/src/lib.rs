//! Offline stand-in for the subset of the `proptest` 1.x API this
//! workspace uses: the [`proptest!`] macro, `prop_assert*` / `prop_assume`,
//! [`strategy::Strategy`] with `prop_map` / `prop_flat_map`, range and
//! tuple strategies, `prop::collection::vec`, `prop::option::of` and
//! `any::<T>()`.
//!
//! Unlike upstream proptest there is no shrinking and no failure
//! persistence: each test runs a fixed number of deterministic cases (the
//! per-test RNG stream is derived from the test name, so runs are
//! reproducible) and the first failing case panics with its message. That
//! is sufficient for the property suites in this repository, which assert
//! invariants rather than hunt for minimal counterexamples.

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from a strategy derived from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A constant strategy.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, f64);

    impl Strategy for Range<i32> {
        type Value = i32;
        fn generate(&self, rng: &mut StdRng) -> i32 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for Range<i64> {
        type Value = i64;
        fn generate(&self, rng: &mut StdRng) -> i64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the type's canonical strategy.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut StdRng) -> u8 {
            rng.gen()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut StdRng) -> u32 {
            rng.gen()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut StdRng) -> u64 {
            rng.gen()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            rng.gen()
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod prop {
    //! The `prop::` namespace (`prop::collection`, `prop::option`).

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;
        use std::ops::Range;

        /// Element-count specification for [`vec`]: an exact count or a
        /// half-open range.
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { lo: n, hi: n + 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                Self { lo: r.start, hi: r.end }
            }
        }

        /// Strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = if self.size.lo + 1 >= self.size.hi {
                    self.size.lo
                } else {
                    rng.gen_range(self.size.lo..self.size.hi)
                };
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }

        /// `Vec` of `size` elements drawn from `elem`.
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { elem, size: size.into() }
        }
    }

    pub mod option {
        //! `Option` strategies.

        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy returned by [`of`].
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
                // Match upstream's default: `None` about a quarter of the time.
                if rng.gen_range(0u32..4) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }

        /// `Some` of the inner strategy most of the time, `None` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }
    }
}

pub mod test_runner {
    //! The fixed-case deterministic runner behind [`crate::proptest!`].

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration (only the case count is honoured).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` generated inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Assertion failure — the property is violated.
        Fail(String),
        /// `prop_assume!` rejection — the input is out of scope.
        Reject(String),
    }

    impl TestCaseError {
        /// Construct a failure.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }

        /// Construct a rejection.
        pub fn reject(msg: String) -> Self {
            TestCaseError::Reject(msg)
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Drive one property: `cases` deterministic inputs, panicking on the
    /// first failure. Rejected cases are skipped without being counted as
    /// passes, with a generous cap so a property whose assumptions reject
    /// everything still fails loudly.
    pub fn run_cases<F>(config: ProptestConfig, name: &str, mut property: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name.as_bytes());
        let mut passed: u32 = 0;
        let mut rejected: u64 = 0;
        let max_rejects = 16 * config.cases as u64 + 256;
        let mut stream: u64 = 0;
        while passed < config.cases {
            let mut rng = StdRng::seed_from_u64(base.wrapping_add(stream));
            stream += 1;
            match property(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "proptest {name}: too many prop_assume! rejections \
                             ({rejected}) for {} requested cases",
                            config.cases
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest {name}: case {stream} failed: {msg}");
                }
            }
        }
    }
}

/// Define property tests: an optional `#![proptest_config(..)]` header
/// followed by `#[test] fn name(pat in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($pat:pat in $strat:expr),+ $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run_cases(__config, stringify!($name), |__rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                $body
                ::core::result::Result::Ok(())
            });
        }
    )*};
}

/// Assert inside a property; failure reports the generated case instead of
/// unwinding through the generator.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)+);
    }};
}

/// Skip cases whose inputs are out of the property's scope.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..9, x in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((-1.0..1.0).contains(&x));
        }

        #[test]
        fn vec_and_flat_map_compose(
            v in (2usize..6).prop_flat_map(|n| prop::collection::vec(0u8..2, n))
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 2));
        }

        #[test]
        fn assume_skips_without_failing(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }
}
