//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`rngs::StdRng`], [`SeedableRng`], the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`) and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a small,
//! well-studied PRNG with excellent statistical quality. Streams are *not*
//! bit-compatible with upstream `rand` (which uses ChaCha12 for `StdRng`);
//! everything in this repository treats pseudo-random draws as
//! distributional, never as golden byte sequences, so only determinism per
//! seed matters and that is preserved.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniformly distributed machine word.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly distributed `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Build from a raw byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanded through SplitMix64 (same convention as
    /// upstream rand: every distinct `u64` yields an unrelated stream).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types drawable uniformly (or per their "standard" distribution, for
/// `f64` ∈ [0, 1) and `bool` fair-coin) via [`Rng::gen`].
pub trait Standard: Sized {
    /// Map one uniform word to a value.
    fn from_word(word: u64) -> Self;
}

impl Standard for f64 {
    fn from_word(word: u64) -> Self {
        // 53 high-quality mantissa bits → [0, 1).
        (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn from_word(word: u64) -> Self {
        word & 1 == 1
    }
}

impl Standard for u64 {
    fn from_word(word: u64) -> Self {
        word
    }
}

impl Standard for u32 {
    fn from_word(word: u64) -> Self {
        (word >> 32) as u32
    }
}

impl Standard for u8 {
    fn from_word(word: u64) -> Self {
        (word >> 56) as u8
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from `self`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Unbiased via 128-bit widening multiply (Lemire's method,
                // single-pass variant: bias < 2^-64, negligible).
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + hi
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as u128) - (start as u128) + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                start + hi
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
    )*};
}

impl_signed_range!(i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::from_word(rng.next_u64());
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + u * (end - start)
    }
}

/// User-facing extension methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draw a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_word(self.next_u64())
    }

    /// Draw uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::from_word(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Named generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0x6A09_E667_F3BC_C909, 0xBB67_AE85_84CA_A73B, 1];
            }
            Self { s }
        }
    }
}

pub mod seq {
    //! Slice helpers.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `rand::prelude`.
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_in_unit_interval_and_uniform_ish() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let w = rng.gen_range(0u32..2);
            assert!(w < 2);
        }
        // both endpoints of a small inclusive range get hit
        let mut saw = [false; 4];
        for _ in 0..1_000 {
            saw[rng.gen_range(0usize..=3)] = true;
        }
        assert!(saw.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice ordered (astronomically unlikely)");
    }
}
