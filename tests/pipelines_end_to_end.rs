//! End-to-end integration: every registered approach trains and predicts on
//! (small versions of) all four benchmark datasets.

use fairlens::prelude::*;
use fairlens_frame::split;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Small-but-representative benchmark instances.
fn small(kind: DatasetKind) -> (fairlens::frame::Dataset, fairlens::frame::Dataset) {
    let n = match kind {
        DatasetKind::German => 1_000,
        _ => 1_600,
    };
    let data = kind.generate(n, 42);
    let mut rng = StdRng::seed_from_u64(7);
    split::train_test_split(&data, 0.3, &mut rng)
}

#[test]
fn every_approach_runs_on_every_dataset() {
    for kind in ALL_DATASETS {
        let (train, test) = small(kind);
        let mut approaches = vec![baseline_approach()];
        approaches.extend(all_approaches(kind.inadmissible_attrs()));
        for approach in &approaches {
            // The one sanctioned failure: Calmon on Credit's 26 attributes
            // (the paper had to drop to 22 there as well) — covered by
            // `calmon_rejects_credit_at_full_width_but_accepts_22`.
            if approach.name == "Calmon^DP" && kind == DatasetKind::Credit {
                continue;
            }
            let fitted = approach
                .fit(&train, 1)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", approach.name, kind.name()));
            let preds = fitted.predict(&test);
            assert_eq!(preds.len(), test.n_rows(), "{}", approach.name);
            assert!(
                preds.iter().all(|&p| p <= 1),
                "{} produced non-binary predictions",
                approach.name
            );
            // Degenerate constant predictors are allowed for some
            // post-processing solutions, but accuracy must beat the
            // worst-constant bound minus slack.
            let acc = preds
                .iter()
                .zip(test.labels())
                .filter(|&(p, t)| p == t)
                .count() as f64
                / test.n_rows() as f64;
            let majority = test.pos_rate().max(1.0 - test.pos_rate());
            assert!(
                acc >= (1.0 - majority) - 0.15,
                "{} on {}: accuracy {acc} below sanity floor",
                approach.name,
                kind.name()
            );
        }
    }
}

#[test]
fn pipelines_are_deterministic_per_seed() {
    let kind = DatasetKind::German;
    let (train, test) = small(kind);
    for approach in all_approaches(kind.inadmissible_attrs()) {
        let a = approach.fit(&train, 11).unwrap().predict(&test);
        let b = approach.fit(&train, 11).unwrap().predict(&test);
        assert_eq!(a, b, "{} is not deterministic", approach.name);
    }
}

#[test]
fn predictions_respond_to_training_seed_or_match() {
    // Different seeds may legitimately coincide for deterministic
    // approaches; the pipeline must at minimum stay valid.
    let kind = DatasetKind::Compas;
    let (train, test) = small(kind);
    for approach in all_approaches(kind.inadmissible_attrs()) {
        let a = approach.fit(&train, 1).unwrap().predict(&test);
        let b = approach.fit(&train, 2).unwrap().predict(&test);
        assert_eq!(a.len(), b.len());
    }
}

#[test]
fn pre_processing_keeps_test_schema_usable() {
    // Repairs change the training data but the fitted pipeline must still
    // accept the *raw* test schema (same columns/levels).
    let kind = DatasetKind::Adult;
    let (train, test) = small(kind);
    for approach in all_approaches(kind.inadmissible_attrs()) {
        if approach.stage != fairlens::core::Stage::Pre {
            continue;
        }
        let fitted = approach.fit(&train, 3).unwrap();
        let preds = fitted.predict(&test);
        assert_eq!(preds.len(), test.n_rows(), "{}", approach.name);
        // and on the interventional twin (the CD metric's access pattern)
        let flipped = fitted.predict(&test.flip_sensitive());
        assert_eq!(flipped.len(), test.n_rows());
    }
}

#[test]
fn calmon_rejects_credit_at_full_width_but_accepts_22() {
    // The paper: Calmon fails on Credit's 26 attributes; 22 is the most it
    // could handle.
    let kind = DatasetKind::Credit;
    let data = kind.generate(1_200, 5);
    let calmon = all_approaches(kind.inadmissible_attrs())
        .into_iter()
        .find(|a| a.name == "Calmon^DP")
        .unwrap();
    assert!(calmon.fit(&data, 1).is_err(), "26 attributes must be rejected");
    let idx: Vec<usize> = (0..22).collect();
    let narrowed = data.select_attrs(&idx);
    assert!(calmon.fit(&narrowed, 1).is_ok(), "22 attributes must work");
}
