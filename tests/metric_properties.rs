//! Property-based tests on the evaluation metrics: range, normalisation and
//! symmetry invariants that must hold for *any* prediction vector.

use fairlens::metrics::{
    di_star, disparate_impact, tnr_balance, tpr_balance, ConfusionMatrix, MetricReport,
};
use proptest::prelude::*;

/// Random binary triples (y, ŷ, s) with both groups present.
fn labelled_predictions() -> impl Strategy<Value = (Vec<u8>, Vec<u8>, Vec<u8>)> {
    (4usize..200).prop_flat_map(|n| {
        (
            prop::collection::vec(0u8..2, n),
            prop::collection::vec(0u8..2, n),
            prop::collection::vec(0u8..2, n),
        )
    })
}

proptest! {
    #[test]
    fn confusion_matrix_counts_partition((y, p, _s) in labelled_predictions()) {
        let m = ConfusionMatrix::from_predictions(&y, &p);
        prop_assert_eq!(m.total(), y.len());
        prop_assert_eq!(m.tp + m.fn_, y.iter().filter(|&&v| v == 1).count());
        prop_assert_eq!(m.fp + m.tn, y.iter().filter(|&&v| v == 0).count());
    }

    #[test]
    fn correctness_metrics_in_unit_interval((y, p, _s) in labelled_predictions()) {
        let m = ConfusionMatrix::from_predictions(&y, &p);
        for v in [m.accuracy(), m.precision(), m.recall(), m.f1(), m.tpr(), m.tnr(), m.fpr(), m.fnr()] {
            prop_assert!((0.0..=1.0).contains(&v), "{v}");
        }
        // complements
        prop_assert!((m.tpr() + m.fnr() - 1.0).abs() < 1e-9 || m.tp + m.fn_ == 0);
        prop_assert!((m.tnr() + m.fpr() - 1.0).abs() < 1e-9 || m.tn + m.fp == 0);
    }

    #[test]
    fn di_star_is_normalised((_y, p, s) in labelled_predictions()) {
        let v = di_star(&p, &s);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&v), "DI* = {v}");
        let di = disparate_impact(&p, &s);
        if di.is_finite() && di > 0.0 {
            prop_assert!((v - di.min(1.0 / di)).abs() < 1e-12);
        }
    }

    #[test]
    fn balances_are_bounded_and_antisymmetric((y, p, s) in labelled_predictions()) {
        let tprb = tpr_balance(&y, &p, &s);
        let tnrb = tnr_balance(&y, &p, &s);
        prop_assert!((-1.0..=1.0).contains(&tprb));
        prop_assert!((-1.0..=1.0).contains(&tnrb));
        // swapping group labels flips the sign
        let s_flip: Vec<u8> = s.iter().map(|&v| 1 - v).collect();
        prop_assert!((tpr_balance(&y, &p, &s_flip) + tprb).abs() < 1e-12);
        prop_assert!((tnr_balance(&y, &p, &s_flip) + tnrb).abs() < 1e-12);
    }

    #[test]
    fn report_values_always_normalised(
        (y, p, s) in labelled_predictions(),
        cd in 0.0f64..=1.0,
        crd in -1.0f64..=1.0,
    ) {
        let r = MetricReport::from_predictions(&y, &p, &s, cd, crd);
        for v in r.values() {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&v), "{v}");
        }
        prop_assert!((r.cd_fair - (1.0 - cd)).abs() < 1e-12);
        prop_assert!((r.crd_fair - (1.0 - crd.abs())).abs() < 1e-12);
    }

    #[test]
    fn perfect_predictions_have_perfect_correctness((y, _p, s) in labelled_predictions()) {
        let r = MetricReport::from_predictions(&y, &y, &s, 0.0, 0.0);
        if y.contains(&1) && y.contains(&0) {
            prop_assert_eq!(r.accuracy, 1.0);
            prop_assert_eq!(r.f1, 1.0);
        }
        // Perfect equalized odds additionally needs every (S, Y) cell
        // populated — an empty cell makes one group's rate degenerate.
        let cell = |sv: u8, yv: u8| {
            s.iter().zip(y.iter()).any(|(&si, &yi)| si == sv && yi == yv)
        };
        if cell(0, 0) && cell(0, 1) && cell(1, 0) && cell(1, 1) {
            prop_assert_eq!(r.tprb_fair, 1.0);
            prop_assert_eq!(r.tnrb_fair, 1.0);
        }
    }
}
