//! Property-based tests on the data-management substrate: dataset
//! invariants that every repair / split / encoding operation must preserve.

use fairlens::frame::{split, Dataset, Discretizer, Encoder};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A random small mixed-schema dataset.
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (6usize..80).prop_flat_map(|n| {
        (
            prop::collection::vec(-100.0f64..100.0, n),
            prop::collection::vec(0u32..3, n),
            prop::collection::vec(0u8..2, n),
            prop::collection::vec(0u8..2, n),
        )
            .prop_map(|(x, c, s, y)| {
                Dataset::builder("prop")
                    .numeric("x", x)
                    .categorical("c", c, vec!["a".into(), "b".into(), "c".into()])
                    .sensitive("s", s)
                    .labels("y", y)
                    .build()
                    .expect("valid by construction")
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn split_partitions_rows(d in dataset_strategy(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (train, test) = split::train_test_split(&d, 0.3, &mut rng);
        prop_assert_eq!(train.n_rows() + test.n_rows(), d.n_rows());
        prop_assert!(train.n_rows() >= 1 && test.n_rows() >= 1);
        prop_assert_eq!(train.n_attrs(), d.n_attrs());
    }

    #[test]
    fn weighted_sampling_preserves_schema(d in dataset_strategy(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = vec![1.0; d.n_rows()];
        let s = d.sample_weighted(d.n_rows(), &w, &mut rng);
        prop_assert_eq!(s.n_rows(), d.n_rows());
        prop_assert_eq!(s.n_attrs(), d.n_attrs());
        prop_assert_eq!(s.attr_names(), d.attr_names());
        // sampled sensitive values are still binary
        prop_assert!(s.sensitive().iter().all(|&v| v <= 1));
    }

    #[test]
    fn flip_sensitive_is_involutive(d in dataset_strategy()) {
        let f = d.flip_sensitive();
        prop_assert_eq!(f.flip_sensitive(), d.clone());
        for (a, b) in d.sensitive().iter().zip(f.sensitive().iter()) {
            prop_assert_eq!(a + b, 1);
        }
        // everything else untouched
        prop_assert_eq!(f.labels(), d.labels());
        prop_assert_eq!(f.columns(), d.columns());
    }

    #[test]
    fn encoder_shape_and_finiteness(d in dataset_strategy()) {
        for include_s in [false, true] {
            let enc = Encoder::fit(&d, include_s);
            let f = enc.transform(&d);
            prop_assert_eq!(f.matrix.rows(), d.n_rows());
            prop_assert_eq!(f.matrix.cols(), enc.width());
            prop_assert_eq!(f.names.len(), enc.width());
            prop_assert!(f.matrix.data().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn discretizer_codes_in_range(d in dataset_strategy(), bins in 2usize..6) {
        let view = Discretizer::fit(&d, bins).transform(&d);
        prop_assert_eq!(view.n_rows(), d.n_rows());
        for (col, &card) in view.columns.iter().zip(view.cards.iter()) {
            prop_assert!(card >= 1);
            prop_assert!(col.iter().all(|&c| c < card));
        }
    }

    #[test]
    fn select_rows_then_attrs_commute(d in dataset_strategy()) {
        let rows: Vec<usize> = (0..d.n_rows()).step_by(2).collect();
        let a = d.select_rows(&rows).select_attrs(&[1]);
        let b = d.select_attrs(&[1]).select_rows(&rows);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn group_rates_are_consistent(d in dataset_strategy()) {
        let n0 = d.group_size(0) as f64;
        let n1 = d.group_size(1) as f64;
        let total = d.n_rows() as f64;
        prop_assert!((n0 + n1 - total).abs() < 1e-12);
        if n0 > 0.0 && n1 > 0.0 {
            let overall = (d.group_pos_rate(0) * n0 + d.group_pos_rate(1) * n1) / total;
            prop_assert!((overall - d.pos_rate()).abs() < 1e-12);
        }
    }
}
