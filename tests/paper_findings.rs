//! Qualitative reproduction tests: the paper's key findings, asserted as
//! integration-level invariants (the *shape* of the results, not absolute
//! numbers).

use std::time::Instant;

use fairlens::metrics::MetricReport;
use fairlens::prelude::*;
use fairlens_frame::split;
use fairlens_metrics::{causal_discrimination, causal_risk_difference};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fit_eval(
    approach: &Approach,
    kind: DatasetKind,
    train: &fairlens::frame::Dataset,
    test: &fairlens::frame::Dataset,
) -> MetricReport {
    let fitted = approach.fit(train, 1).expect("fit");
    let preds = fitted.predict(test);
    let mut rng = StdRng::seed_from_u64(3);
    // relaxed CD bounds keep the test fast; the metric is the same
    let cd = causal_discrimination(test, |d| fitted.predict(d), 0.95, 0.05, &mut rng);
    let crd = causal_risk_difference(test, &preds, kind.resolving_attrs());
    MetricReport::from_predictions(test.labels(), &preds, test.sensitive(), cd, crd)
}

/// Paper §4.2, Fig. 10(a): on Adult the fairness-unaware LR shows *low*
/// fairness on DI but *high* fairness on TPRB/TNRB — the asymmetry that
/// explains why DP-targeting approaches pay more accuracy there.
#[test]
fn adult_lr_low_di_high_odds_fairness() {
    let kind = DatasetKind::Adult;
    let data = kind.generate(8_000, 42);
    let mut rng = StdRng::seed_from_u64(7);
    let (train, test) = split::train_test_split(&data, 0.3, &mut rng);
    let r = fit_eval(&baseline_approach(), kind, &train, &test);
    assert!(r.di_star < 0.4, "Adult LR DI* should be low, got {}", r.di_star);
    assert!(r.tprb_fair > 0.75, "Adult LR TPRB fairness should be high, got {}", r.tprb_fair);
    assert!(r.tnrb_fair > 0.85, "Adult LR TNRB fairness should be high, got {}", r.tnrb_fair);
}

/// Paper §4.2: the confounding contrast — LR's CRD fairness far exceeds its
/// DI fairness on Adult because occupation/hours resolve the disparity.
#[test]
fn adult_crd_exceeds_di_for_lr() {
    let kind = DatasetKind::Adult;
    let data = kind.generate(8_000, 42);
    let mut rng = StdRng::seed_from_u64(7);
    let (train, test) = split::train_test_split(&data, 0.3, &mut rng);
    let r = fit_eval(&baseline_approach(), kind, &train, &test);
    assert!(
        r.crd_fair > r.di_star + 0.3,
        "CRD fairness {} should far exceed DI* {}",
        r.crd_fair,
        r.di_star
    );
}

/// Paper §4.2 (key takeaway): every approach improves fairness on the
/// metric it targets, relative to LR, on a dataset where LR is unfair.
#[test]
fn approaches_improve_their_target_metric_on_compas() {
    let kind = DatasetKind::Compas;
    let data = kind.generate(5_000, 42);
    let mut rng = StdRng::seed_from_u64(7);
    let (train, test) = split::train_test_split(&data, 0.3, &mut rng);
    let lr = fit_eval(&baseline_approach(), kind, &train, &test);

    let pick = |r: &MetricReport, t: &str| match t {
        "DI" => r.di_star,
        "TPRB" => r.tprb_fair,
        "TNRB" => r.tnrb_fair,
        "CRD" => r.crd_fair,
        _ => unreachable!(),
    };

    for approach in all_approaches(kind.inadmissible_attrs()) {
        if approach.targets.is_empty() {
            continue;
        }
        let r = fit_eval(&approach, kind, &train, &test);
        // at least one targeted metric must not regress materially
        let improved = approach
            .targets
            .iter()
            .any(|t| pick(&r, t) >= pick(&lr, t) - 0.03);
        assert!(
            improved,
            "{}: no targeted metric improved (targets {:?})",
            approach.name, approach.targets
        );
    }
}

/// Paper §4.2: pre- and in-processing achieve better individual fairness
/// (CD) than post-processing on average.
#[test]
fn post_processing_trails_on_individual_fairness() {
    let kind = DatasetKind::Compas;
    let data = kind.generate(5_000, 42);
    let mut rng = StdRng::seed_from_u64(7);
    let (train, test) = split::train_test_split(&data, 0.3, &mut rng);

    let mut stage_cd: std::collections::HashMap<&str, Vec<f64>> = Default::default();
    for approach in all_approaches(kind.inadmissible_attrs()) {
        let r = fit_eval(&approach, kind, &train, &test);
        stage_cd
            .entry(approach.stage.label())
            .or_default()
            .push(r.cd_fair);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let pre_in = mean(
        &stage_cd["pre"]
            .iter()
            .chain(stage_cd["in"].iter())
            .copied()
            .collect::<Vec<_>>(),
    );
    let post = mean(&stage_cd["post"]);
    assert!(
        pre_in >= post - 0.02,
        "pre/in mean CD fairness {pre_in} should beat post {post}"
    );
}

/// Paper §4.3: post-processing is the most efficient stage; the constrained
/// optimisation of Zafar^EO is among the slowest.
#[test]
fn post_processing_is_fastest_stage() {
    let kind = DatasetKind::Compas;
    let data = kind.generate(4_000, 42);

    let time_of = |name: &str| -> u128 {
        let approach = all_approaches(kind.inadmissible_attrs())
            .into_iter()
            .find(|a| a.name == name)
            .unwrap();
        let t0 = Instant::now();
        approach.fit(&data, 1).unwrap();
        t0.elapsed().as_millis()
    };

    let hardt = time_of("Hardt^EO");
    let kamkar = time_of("KamKar^DP");
    let zafar_eo = time_of("Zafar^EO_Fair");
    assert!(
        zafar_eo > 5 * hardt.max(1),
        "Zafar^EO ({zafar_eo} ms) should dwarf Hardt ({hardt} ms)"
    );
    assert!(
        zafar_eo > 5 * kamkar.max(1),
        "Zafar^EO ({zafar_eo} ms) should dwarf KamKar ({kamkar} ms)"
    );
}

/// Paper §4.4: approaches are stable — fold-to-fold accuracy variance is
/// small. (Checked on a representative subset to keep the test fast.)
#[test]
fn stability_over_folds() {
    let kind = DatasetKind::German;
    let data = kind.generate(1_000, 21);
    for name in ["KamCal^DP", "Hardt^EO", "Zafar^DP_Fair"] {
        let approach = all_approaches(kind.inadmissible_attrs())
            .into_iter()
            .find(|a| a.name == name)
            .unwrap();
        let mut accs = Vec::new();
        for fold in 0..6u64 {
            let mut rng = StdRng::seed_from_u64(100 + fold);
            let (train, test) = split::train_test_split(&data, 1.0 / 3.0, &mut rng);
            let preds = approach.fit(&train, fold).unwrap().predict(&test);
            let acc = preds
                .iter()
                .zip(test.labels())
                .filter(|&(p, t)| p == t)
                .count() as f64
                / test.n_rows() as f64;
            accs.push(acc);
        }
        let std = fairlens::linalg::vector::stddev(&accs);
        assert!(std < 0.08, "{name}: accuracy std over folds {std}");
    }
}
