//! Property tests for `fairlens-monitor` (vendored proptest stub:
//! randomized case generation, no shrinking).
//!
//! The invariants from the issue:
//! 1. the ring-buffer window always equals the naive trailing slice of
//!    the observation stream, for any interleaving of pushes and joins;
//! 2. once the window is full, every live metric is bit-identical to the
//!    offline `fairlens-metrics` functions applied to the same rows;
//! 3. eviction at the capacity boundary drops exactly the oldest ordinal
//!    and late feedback for it is refused;
//! 4. the feedback protocol rejects duplicate, unknown and wrong-arity
//!    reports exactly as an independent reference model predicts.

use std::time::Instant;

use fairlens_metrics::{
    calibration_gap, di_star, statistical_parity_difference, tnr_balance, tpr_balance,
    ConfusionMatrix,
};
use fairlens_monitor::{
    DriftConfig, FeedbackError, ModelMonitor, MonitorConfig, Observation, SlidingWindow,
};
use proptest::prelude::*;

fn config(window: usize, pending_cap: usize) -> MonitorConfig {
    MonitorConfig { window, pending_cap, drift: DriftConfig::default() }
}

fn find(snapshot: &[fairlens_monitor::LiveMetric], metric: &str, group: &str) -> Option<f64> {
    snapshot
        .iter()
        .find(|m| m.metric == metric && m.group == group)
        .map(|m| m.value)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn window_equals_the_naive_trailing_slice(
        capacity in 1usize..12,
        rows in prop::collection::vec(
            (0u8..2, 0u8..2, 0.0f64..1.0, prop::option::of(0u8..2)),
            0..80,
        ),
    ) {
        let mut w = SlidingWindow::new(capacity);
        let mut naive: Vec<Observation> = Vec::new();
        for &(group, pred, score, label) in &rows {
            let ord = w.push(Observation { group, pred, score, label: None });
            naive.push(Observation { group, pred, score, label: None });
            if let Some(l) = label {
                // Joining immediately after the push must always land.
                prop_assert!(w.set_label(ord, l));
                naive.last_mut().unwrap().label = Some(l);
            }
        }
        let start = naive.len().saturating_sub(capacity);
        prop_assert_eq!(w.observations(), naive[start..].to_vec());
        prop_assert_eq!(w.len(), naive.len() - start);
        prop_assert_eq!(w.pushed(), naive.len() as u64);
        prop_assert_eq!(
            w.labeled(),
            naive[start..].iter().filter(|o| o.label.is_some()).count()
        );
    }

    #[test]
    fn full_window_metrics_are_bit_identical_to_offline(
        capacity in 2usize..10,
        rows in prop::collection::vec(
            (0u8..2, 0u8..2, 0.0f64..1.0, prop::option::of(0u8..2)),
            16..60,
        ),
    ) {
        let now = Instant::now();
        let mut m = ModelMonitor::new(&config(capacity, 4096), vec![]);
        let mut naive: Vec<Observation> = Vec::new();
        for &(group, pred, score, label) in &rows {
            let (seq, _) = m.observe(&[group], &[pred], &[score], now);
            if let Some(l) = label {
                m.feedback(seq, &[l], now).unwrap();
            }
            naive.push(Observation { group, pred, score, label });
        }
        let tail = &naive[naive.len() - capacity..];
        let snap = m.snapshot(now);
        prop_assert_eq!(snap.window_len, capacity);

        // Offline recomputation over exactly the trailing rows.
        let groups: Vec<u8> = tail.iter().map(|o| o.group).collect();
        let preds: Vec<u8> = tail.iter().map(|o| o.pred).collect();
        prop_assert_eq!(
            find(&snap.live, "di_star", "all").unwrap().to_bits(),
            di_star(&preds, &groups).to_bits()
        );
        prop_assert_eq!(
            find(&snap.live, "spd", "all").unwrap().to_bits(),
            statistical_parity_difference(&preds, &groups).to_bits()
        );

        let labeled: Vec<&Observation> = tail.iter().filter(|o| o.label.is_some()).collect();
        prop_assert_eq!(snap.labeled, labeled.len());
        if !labeled.is_empty() {
            let yt: Vec<u8> = labeled.iter().map(|o| o.label.unwrap()).collect();
            let yp: Vec<u8> = labeled.iter().map(|o| o.pred).collect();
            let gs: Vec<u8> = labeled.iter().map(|o| o.group).collect();
            let sc: Vec<f64> = labeled.iter().map(|o| o.score).collect();
            let cm = ConfusionMatrix::from_predictions(&yt, &yp);
            prop_assert_eq!(
                find(&snap.live, "accuracy", "all").unwrap().to_bits(),
                cm.accuracy().to_bits()
            );
            let tprb = tpr_balance(&yt, &yp, &gs);
            if !tprb.is_nan() {
                prop_assert_eq!(
                    find(&snap.live, "tprb_fair", "all").unwrap().to_bits(),
                    (1.0 - tprb.abs()).to_bits()
                );
            }
            let tnrb = tnr_balance(&yt, &yp, &gs);
            if !tnrb.is_nan() {
                prop_assert_eq!(
                    find(&snap.live, "tnrb_fair", "all").unwrap().to_bits(),
                    (1.0 - tnrb.abs()).to_bits()
                );
            }
            let gap = calibration_gap(&sc, &yt, &gs);
            prop_assert_eq!(find(&snap.live, "cal_gap", "all").map(f64::to_bits),
                (!gap.is_nan()).then(|| gap.to_bits()));
        } else {
            prop_assert!(find(&snap.live, "accuracy", "all").is_none());
        }
    }

    #[test]
    fn eviction_at_the_boundary_is_exact(
        capacity in 1usize..8,
        extra in 1usize..20,
    ) {
        let mut w = SlidingWindow::new(capacity);
        let total = capacity + extra;
        for i in 0..total {
            w.push(Observation { group: (i % 2) as u8, pred: 0, score: i as f64, label: None });
        }
        // Exactly the last `capacity` ordinals are resident.
        for ord in 0..total as u64 {
            prop_assert_eq!(w.contains(ord), ord >= (total - capacity) as u64);
        }
        // Ordinals beyond the stream are never resident.
        prop_assert!(!w.contains(total as u64));
        // Late feedback for the newest evicted ordinal is refused; the
        // oldest resident one accepts.
        let evicted = (total - capacity - 1) as u64;
        prop_assert!(!w.set_label(evicted, 1));
        prop_assert!(w.set_label(evicted + 1, 1));
        let obs = w.observations();
        prop_assert_eq!(obs.len(), capacity);
        prop_assert_eq!(obs[0].score, (total - capacity) as f64);
        prop_assert_eq!(obs[0].label, Some(1));
    }

    #[test]
    fn feedback_protocol_matches_a_reference_model(
        batches in prop::collection::vec((0u8..2, 1usize..4), 1..30),
        attempts in prop::collection::vec((0u64..40, 0usize..5, 0u8..2), 0..60),
        pending_cap in 1usize..8,
    ) {
        let now = Instant::now();
        let mut m = ModelMonitor::new(&config(16, pending_cap), vec![]);
        // Reference: seq -> (rows, done), with the same oldest-first
        // eviction the bounded pending table performs.
        let mut reference: std::collections::BTreeMap<u64, (usize, bool)> = Default::default();
        for (i, &(group, rows)) in batches.iter().enumerate() {
            let gs = vec![group; rows];
            let ps = vec![i as u8 % 2; rows];
            let sc = vec![0.5; rows];
            let (seq, _) = m.observe(&gs, &ps, &sc, now);
            prop_assert_eq!(seq, i as u64, "seqs are consecutive from 0");
            reference.insert(seq, (rows, false));
            while reference.len() > pending_cap {
                let oldest = *reference.keys().next().unwrap();
                reference.remove(&oldest);
            }
        }
        for &(seq, n_labels, label) in &attempts {
            let labels = vec![label; n_labels];
            let got = m.feedback(seq, &labels, now);
            match reference.get_mut(&seq) {
                None => prop_assert_eq!(got.unwrap_err(), FeedbackError::UnknownSeq(seq)),
                Some((_, true)) => {
                    prop_assert_eq!(got.unwrap_err(), FeedbackError::Duplicate(seq))
                }
                Some((rows, done)) if n_labels != *rows => prop_assert_eq!(
                    got.unwrap_err(),
                    FeedbackError::WrongCount { seq, expected: *rows, got: n_labels },
                    "done={}", done
                ),
                Some((rows, done)) => {
                    let (receipt, _) = got.unwrap();
                    prop_assert_eq!(receipt.seq, seq);
                    prop_assert_eq!(receipt.expected, *rows);
                    prop_assert!(receipt.matched <= receipt.expected);
                    *done = true;
                }
            }
        }
    }
}
