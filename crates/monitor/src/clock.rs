//! Injectable time source shared by the monitor and the serving stack.
//!
//! The breaker in `fairlens-serve` established the pattern: state
//! machines never read the clock themselves — every method takes `now`
//! explicitly, and the *caller* decides where `now` comes from. This
//! module is the missing half of that pattern: a [`Clock`] trait the
//! callers source their `now` from, so a whole serving stack (breakers,
//! monitors, drift trackers) can be driven off one [`ManualClock`] in
//! tests and off [`SystemClock`] in production.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A source of monotonic time.
pub trait Clock: Send + Sync {
    /// The current instant.
    fn now(&self) -> Instant;
}

/// The real clock: `Instant::now()`.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Instant {
        Instant::now()
    }
}

/// A hand-cranked clock for deterministic tests: time only moves when
/// [`ManualClock::advance`] is called. Cloning shares the underlying
/// instant, so a clone handed to a registry and one kept by the test
/// stay in lockstep.
#[derive(Debug, Clone)]
pub struct ManualClock {
    now: Arc<Mutex<Instant>>,
}

impl Default for ManualClock {
    fn default() -> Self {
        Self::new()
    }
}

impl ManualClock {
    /// A clock frozen at the moment of construction.
    pub fn new() -> Self {
        Self { now: Arc::new(Mutex::new(Instant::now())) }
    }

    /// Move time forward by `dur`.
    pub fn advance(&self, dur: Duration) {
        *self.now.lock().unwrap() += dur;
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Instant {
        *self.now.lock().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_only_moves_when_advanced() {
        let clock = ManualClock::new();
        let t0 = clock.now();
        assert_eq!(clock.now(), t0);
        clock.advance(Duration::from_secs(3));
        assert_eq!(clock.now(), t0 + Duration::from_secs(3));
        // A clone shares the instant.
        let twin = clock.clone();
        twin.advance(Duration::from_secs(1));
        assert_eq!(clock.now(), t0 + Duration::from_secs(4));
    }

    #[test]
    fn system_clock_is_monotonic() {
        let clock = SystemClock;
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }
}
