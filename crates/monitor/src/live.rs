//! Live metric assembly: one window of observations in, the paper's
//! group metrics out.
//!
//! Every value is computed by calling the offline `fairlens-metrics`
//! functions on vectors rebuilt from the window in oldest-first order —
//! there is no separate "online" math to drift out of agreement, so the
//! live numbers are bit-identical to an offline recomputation over the
//! same rows by construction (the property tests and the check.sh
//! monitor smoke both assert exactly that).
//!
//! Label-free metrics (disparate impact, statistical parity) cover every
//! resident observation; label-dependent metrics (accuracy suite,
//! equalized-odds gaps, calibration) cover the subset whose true label
//! has arrived via feedback. Metrics whose value is undefined on the
//! current window (an absent group, no predicted positives, no labels)
//! are *omitted* rather than reported as NaN, so the set of reported
//! metrics is itself a deterministic function of the window.

use fairlens_metrics::{
    calibration_gap, di_star, group_calibration_error, statistical_parity_difference,
    tnr_balance, tpr_balance, ConfusionMatrix,
};

use crate::window::Observation;

/// One live metric value: `fairlens_live_metric{metric,group}`.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveMetric {
    /// Stable metric name (matches the training-time provenance keys
    /// where an offline counterpart exists).
    pub metric: &'static str,
    /// `"all"` for window-wide metrics, `"0"` / `"1"` for per-group.
    pub group: &'static str,
    /// The value, never NaN (undefined metrics are omitted).
    pub value: f64,
}

/// Metric names that require joined true labels. Drift detection skips
/// these until the window holds at least `min_labeled` labeled rows.
pub const LABELED_METRICS: [&str; 9] = [
    "accuracy", "precision", "recall", "f1", "tprb_fair", "tnrb_fair", "eo_gap", "eop_gap",
    "cal_gap",
];

/// Compute the full live metric suite over one window of observations
/// (oldest first). Deterministic: same observations, same labels →
/// bit-identical values in identical order.
pub fn live_metrics(obs: &[Observation]) -> Vec<LiveMetric> {
    let mut out = Vec::new();
    let mut push = |metric: &'static str, group: &'static str, value: f64| {
        if !value.is_nan() {
            out.push(LiveMetric { metric, group, value });
        }
    };
    if obs.is_empty() {
        return out;
    }

    let groups: Vec<u8> = obs.iter().map(|o| o.group).collect();
    let preds: Vec<u8> = obs.iter().map(|o| o.pred).collect();

    // Label-free group metrics over the whole window.
    push("di_star", "all", di_star(&preds, &groups));
    push("spd", "all", statistical_parity_difference(&preds, &groups));
    for (g, name) in [(0u8, "0"), (1u8, "1")] {
        let (pos, tot) = preds
            .iter()
            .zip(&groups)
            .filter(|&(_, &s)| s == g)
            .fold((0usize, 0usize), |(p, t), (&yp, _)| (p + yp as usize, t + 1));
        if tot > 0 {
            push("pos_rate", name, pos as f64 / tot as f64);
        }
    }

    // Label-dependent metrics over the feedback-joined subset.
    let labeled: Vec<&Observation> = obs.iter().filter(|o| o.label.is_some()).collect();
    if labeled.is_empty() {
        return out;
    }
    let yt: Vec<u8> = labeled.iter().map(|o| o.label.unwrap()).collect();
    let yp: Vec<u8> = labeled.iter().map(|o| o.pred).collect();
    let gs: Vec<u8> = labeled.iter().map(|o| o.group).collect();
    let sc: Vec<f64> = labeled.iter().map(|o| o.score).collect();

    let cm = ConfusionMatrix::from_predictions(&yt, &yp);
    push("accuracy", "all", cm.accuracy());
    push("precision", "all", cm.precision());
    push("recall", "all", cm.recall());
    push("f1", "all", cm.f1());

    // The paper's normalisations: 1 − |balance| so 1 is fair, plus the
    // raw equalized-odds / equal-opportunity gaps for dashboards.
    let tprb = tpr_balance(&yt, &yp, &gs);
    let tnrb = tnr_balance(&yt, &yp, &gs);
    if !tprb.is_nan() {
        push("tprb_fair", "all", 1.0 - tprb.abs());
        push("eop_gap", "all", tprb.abs());
    }
    if !tnrb.is_nan() {
        push("tnrb_fair", "all", 1.0 - tnrb.abs());
    }
    if !tprb.is_nan() && !tnrb.is_nan() {
        push("eo_gap", "all", tprb.abs().max(tnrb.abs()));
    }

    push("cal_gap", "all", calibration_gap(&sc, &yt, &gs));
    for (g, name) in [(0u8, "0"), (1u8, "1")] {
        push("cal_err", name, group_calibration_error(&sc, &yt, &gs, g));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(group: u8, pred: u8, score: f64, label: Option<u8>) -> Observation {
        Observation { group, pred, score, label }
    }

    fn value(metrics: &[LiveMetric], metric: &str, group: &str) -> Option<f64> {
        metrics.iter().find(|m| m.metric == metric && m.group == group).map(|m| m.value)
    }

    #[test]
    fn unlabeled_window_reports_only_label_free_metrics() {
        let window = [obs(0, 1, 0.8, None), obs(1, 1, 0.9, None), obs(1, 0, 0.2, None)];
        let m = live_metrics(&window);
        assert_eq!(value(&m, "di_star", "all"), Some(0.5)); // 1.0 / 0.5 → min(2, 1/2)
        assert_eq!(value(&m, "spd", "all"), Some(0.5 - 1.0));
        assert_eq!(value(&m, "pos_rate", "0"), Some(1.0));
        assert_eq!(value(&m, "pos_rate", "1"), Some(0.5));
        assert!(value(&m, "accuracy", "all").is_none(), "no labels, no accuracy");
        assert!(m.iter().all(|lm| !LABELED_METRICS.contains(&lm.metric)));
    }

    #[test]
    fn labeled_subset_drives_the_accuracy_and_fairness_suite() {
        let window = [
            obs(0, 1, 0.8, Some(1)),
            obs(0, 0, 0.3, Some(1)), // missed positive in group 0
            obs(1, 1, 0.9, Some(1)),
            obs(1, 0, 0.1, Some(0)),
            obs(1, 1, 0.7, None), // unlabeled: excluded from labeled metrics
        ];
        let m = live_metrics(&window);
        assert_eq!(value(&m, "accuracy", "all"), Some(0.75));
        // TPR group 1 = 1/1, group 0 = 1/2 → tprb 0.5 → tprb_fair 0.5.
        assert_eq!(value(&m, "tprb_fair", "all"), Some(0.5));
        assert_eq!(value(&m, "eop_gap", "all"), Some(0.5));
        // Group 0 has no labeled negatives → tnr(0) = 0, tnr(1) = 1.
        assert_eq!(value(&m, "tnrb_fair", "all"), Some(0.0));
        assert_eq!(value(&m, "eo_gap", "all"), Some(1.0));
        // Bit-exact agreement with the offline functions on the same rows.
        let yt = [1, 1, 1, 0];
        let yp = [1, 0, 1, 0];
        let gs = [0, 0, 1, 1];
        let sc = [0.8, 0.3, 0.9, 0.1];
        assert_eq!(value(&m, "cal_gap", "all"), Some(calibration_gap(&sc, &yt, &gs)));
        assert_eq!(
            value(&m, "cal_err", "0"),
            Some(group_calibration_error(&sc, &yt, &gs, 0))
        );
        // The full-window di_star includes the unlabeled row.
        let all_preds = [1, 0, 1, 0, 1];
        let all_groups = [0, 0, 1, 1, 1];
        assert_eq!(value(&m, "di_star", "all"), Some(di_star(&all_preds, &all_groups)));
    }

    #[test]
    fn undefined_metrics_are_omitted_not_nan() {
        // Single-group window: pos_rate for the absent group is omitted,
        // and so is every per-group-1 calibration value.
        let window = [obs(0, 1, 0.9, Some(1)), obs(0, 0, 0.2, Some(0))];
        let m = live_metrics(&window);
        assert!(value(&m, "pos_rate", "1").is_none());
        assert!(value(&m, "cal_err", "1").is_none());
        assert!(value(&m, "cal_gap", "all").is_none());
        assert!(m.iter().all(|lm| !lm.value.is_nan()));
        // Empty window: nothing at all.
        assert!(live_metrics(&[]).is_empty());
    }
}
