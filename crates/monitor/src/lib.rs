//! # fairlens-monitor
//!
//! Streaming fairness monitoring for deployed classifiers — the paper's
//! group metrics (Section 2) computed *online* over scored traffic
//! instead of once over a held-out test split.
//!
//! The design is deliberately boring and exact:
//!
//! * [`window`] — a count-based sliding window (ring buffer) of the last
//!   N scored observations per model. No decay, no sketches: the window
//!   is a pure function of the observation stream, so its state — and
//!   every metric over it — is bit-exactly reproducible from a recording.
//! * [`live`] — metric assembly that calls the *offline*
//!   `fairlens-metrics` functions on vectors rebuilt from the window, so
//!   live values agree with an offline recomputation by construction.
//! * [`drift`] — a three-state (`ok → warning → alerting`) machine with
//!   hysteresis on consecutive window evaluations, comparing live
//!   metrics against the training-time baseline carried in the model's
//!   `.flm` provenance.
//! * [`monitor`] — the per-model façade: observation intake with
//!   request-`seq` assignment, a bounded pending-outcomes table joining
//!   `POST /v1/feedback` true labels back onto window rows, and drift
//!   evaluation after every mutation.
//! * [`clock`] — the injectable time source ([`Clock`] /
//!   [`SystemClock`] / [`ManualClock`]) shared with the serving stack's
//!   circuit breakers, so tests drive both deterministically.
//!
//! Nothing here reads the wall clock, spawns threads, or does I/O; the
//! crate depends only on `fairlens-metrics`.

pub mod clock;
pub mod drift;
pub mod live;
pub mod monitor;
pub mod window;

pub use clock::{Clock, ManualClock, SystemClock};
pub use drift::{Breach, DriftConfig, DriftState, DriftTracker, DEFAULT_THRESHOLDS};
pub use live::{live_metrics, LiveMetric, LABELED_METRICS};
pub use monitor::{FeedbackError, FeedbackReceipt, ModelMonitor, MonitorConfig, MonitorSnapshot};
pub use window::{Observation, SlidingWindow};
