//! Per-model monitor: observation intake, feedback joins, drift.
//!
//! [`ModelMonitor`] owns one [`SlidingWindow`], a bounded pending-outcome
//! table mapping request `seq` → window ordinals, and one
//! [`DriftTracker`]. Serve holds one monitor per model behind a mutex;
//! every method takes `&mut self` plus an injected `now`, so the whole
//! subsystem is a pure function of the (observation, feedback) stream —
//! the property replay relies on exactly this.

use std::collections::BTreeMap;
use std::time::Instant;

use crate::drift::{DriftConfig, DriftState, DriftTracker};
use crate::live::{live_metrics, LiveMetric};
use crate::window::{Observation, SlidingWindow};

/// Tuning for one model's monitor.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Sliding-window capacity in observations (rows, not requests).
    pub window: usize,
    /// Maximum request seqs the pending-outcomes table remembers; older
    /// seqs are evicted first and subsequent feedback for them is
    /// rejected as unknown.
    pub pending_cap: usize,
    /// Drift-detection knobs.
    pub drift: DriftConfig,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self { window: 256, pending_cap: 1024, drift: DriftConfig::default() }
    }
}

/// Why a feedback report was rejected. Serve maps these onto the error
/// taxonomy: unknown → 404, duplicate → 409, wrong count → 400.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeedbackError {
    /// The seq was never issued for this model, or has been evicted from
    /// the bounded pending table.
    UnknownSeq(u64),
    /// Feedback for this seq was already accepted.
    Duplicate(u64),
    /// The report's label count does not match the request's row count.
    WrongCount {
        /// The offending seq.
        seq: u64,
        /// Rows the original request carried.
        expected: usize,
        /// Labels the report carried.
        got: usize,
    },
}

impl std::fmt::Display for FeedbackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeedbackError::UnknownSeq(seq) => {
                write!(f, "unknown or expired seq {seq} for this model")
            }
            FeedbackError::Duplicate(seq) => {
                write!(f, "feedback for seq {seq} was already reported")
            }
            FeedbackError::WrongCount { seq, expected, got } => write!(
                f,
                "seq {seq} carried {expected} row(s) but the report has {got} label(s)"
            ),
        }
    }
}

/// Acknowledgement for an accepted feedback report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeedbackReceipt {
    /// The seq the labels were joined to.
    pub seq: u64,
    /// Labels actually applied — rows still resident in the window.
    pub matched: usize,
    /// Labels the request carried (== the predict call's row count).
    pub expected: usize,
}

#[derive(Debug)]
struct Pending {
    first_ordinal: u64,
    rows: usize,
    done: bool,
}

/// Read-only view of a monitor for `GET /v1/models` and the smoke tools.
#[derive(Debug, Clone)]
pub struct MonitorSnapshot {
    /// Resident observations.
    pub window_len: usize,
    /// Window capacity.
    pub window_capacity: usize,
    /// Resident observations with a joined label.
    pub labeled: usize,
    /// Observations ever pushed.
    pub pushed: u64,
    /// Seqs awaiting feedback (accepted feedback keeps its slot until
    /// eviction so duplicates stay detectable).
    pub pending: usize,
    /// The live metric suite over the current window.
    pub live: Vec<LiveMetric>,
    /// Current drift state.
    pub drift_state: DriftState,
    /// Metrics breaching at the latest evaluation, worst first.
    pub breaching: Vec<crate::drift::Breach>,
    /// The effective `(metric, threshold)` pairs being monitored.
    pub thresholds: Vec<(String, f64)>,
    /// Window evaluations performed.
    pub evaluations: u64,
    /// Seconds spent in the current drift state (`None` before the
    /// first transition).
    pub in_state_secs: Option<f64>,
}

/// All monitoring state for one served model.
#[derive(Debug)]
pub struct ModelMonitor {
    window: SlidingWindow,
    pending: BTreeMap<u64, Pending>,
    pending_cap: usize,
    next_seq: u64,
    tracker: DriftTracker,
    baseline: Vec<(String, f64)>,
}

impl ModelMonitor {
    /// A fresh monitor with `baseline` as the training-time metrics from
    /// the model's `.flm` provenance.
    pub fn new(cfg: &MonitorConfig, baseline: Vec<(String, f64)>) -> Self {
        Self {
            window: SlidingWindow::new(cfg.window),
            pending: BTreeMap::new(),
            pending_cap: cfg.pending_cap.max(1),
            next_seq: 0,
            tracker: DriftTracker::new(&cfg.drift),
            baseline,
        }
    }

    /// The training-time baseline metrics drift is judged against.
    pub fn baseline(&self) -> &[(String, f64)] {
        &self.baseline
    }

    /// Current drift state.
    pub fn drift_state(&self) -> DriftState {
        self.tracker.state()
    }

    /// Record one scored predict call (singular or batch — one entry per
    /// row, all under a single seq). Returns the assigned seq and, if
    /// this intake changed the drift state, the transition.
    ///
    /// Panics if the slices disagree in length (serve derives all three
    /// from the same response).
    pub fn observe(
        &mut self,
        groups: &[u8],
        preds: &[u8],
        scores: &[f64],
        now: Instant,
    ) -> (u64, Option<(DriftState, DriftState)>) {
        assert_eq!(groups.len(), preds.len());
        assert_eq!(groups.len(), scores.len());
        let seq = self.next_seq;
        self.next_seq += 1;
        let first_ordinal = self.window.pushed();
        for ((&group, &pred), &score) in groups.iter().zip(preds).zip(scores) {
            self.window.push(Observation { group, pred, score, label: None });
        }
        self.pending.insert(seq, Pending { first_ordinal, rows: groups.len(), done: false });
        while self.pending.len() > self.pending_cap {
            self.pending.pop_first();
        }
        (seq, self.evaluate(now))
    }

    /// Join reported true labels onto the rows of request `seq`. Labels
    /// are applied positionally (label `i` → row `i` of the original
    /// request); rows already evicted from the window are skipped and
    /// reflected in the receipt's `matched` count.
    pub fn feedback(
        &mut self,
        seq: u64,
        labels: &[u8],
        now: Instant,
    ) -> Result<(FeedbackReceipt, Option<(DriftState, DriftState)>), FeedbackError> {
        let entry = self.pending.get_mut(&seq).ok_or(FeedbackError::UnknownSeq(seq))?;
        if entry.done {
            return Err(FeedbackError::Duplicate(seq));
        }
        if labels.len() != entry.rows {
            return Err(FeedbackError::WrongCount {
                seq,
                expected: entry.rows,
                got: labels.len(),
            });
        }
        entry.done = true;
        let (first, rows) = (entry.first_ordinal, entry.rows);
        let mut matched = 0usize;
        for (i, &label) in labels.iter().enumerate() {
            if self.window.set_label(first + i as u64, label) {
                matched += 1;
            }
        }
        let receipt = FeedbackReceipt { seq, matched, expected: rows };
        Ok((receipt, self.evaluate(now)))
    }

    /// Re-evaluate drift after a window mutation. Only full windows are
    /// judged: partial windows would compare metrics over a different
    /// sample size than the baseline was computed on.
    fn evaluate(&mut self, now: Instant) -> Option<(DriftState, DriftState)> {
        if !self.window.is_full() {
            return None;
        }
        let live = live_metrics(&self.window.observations());
        self.tracker.evaluate(&live, self.window.labeled(), &self.baseline, now)
    }

    /// A consistent read-only snapshot at time `now`.
    pub fn snapshot(&self, now: Instant) -> MonitorSnapshot {
        MonitorSnapshot {
            window_len: self.window.len(),
            window_capacity: self.window.capacity(),
            labeled: self.window.labeled(),
            pushed: self.window.pushed(),
            pending: self.pending.len(),
            live: live_metrics(&self.window.observations()),
            drift_state: self.tracker.state(),
            breaching: self.tracker.breaching().to_vec(),
            thresholds: self.tracker.thresholds().to_vec(),
            evaluations: self.tracker.evaluations(),
            in_state_secs: self.tracker.in_state(now).map(|d| d.as_secs_f64()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(window: usize, pending_cap: usize) -> MonitorConfig {
        MonitorConfig {
            window,
            pending_cap,
            drift: DriftConfig {
                thresholds: vec![("accuracy".into(), 0.2)],
                warn_after: 1,
                alert_after: 2,
                recover_after: 2,
                min_labeled: 2,
            },
        }
    }

    #[test]
    fn seqs_are_consecutive_and_batches_share_one_seq() {
        let now = Instant::now();
        let mut m = ModelMonitor::new(&cfg(8, 16), vec![]);
        let (s0, _) = m.observe(&[0], &[1], &[0.9], now);
        let (s1, _) = m.observe(&[0, 1, 1], &[1, 0, 1], &[0.8, 0.2, 0.7], now);
        assert_eq!((s0, s1), (0, 1));
        let snap = m.snapshot(now);
        assert_eq!((snap.window_len, snap.pushed, snap.pending), (4, 4, 2));
    }

    #[test]
    fn feedback_joins_labels_and_rejects_bad_reports() {
        let now = Instant::now();
        let mut m = ModelMonitor::new(&cfg(8, 16), vec![]);
        let (seq, _) = m.observe(&[0, 1], &[1, 0], &[0.9, 0.1], now);
        assert_eq!(
            m.feedback(99, &[1], now).unwrap_err(),
            FeedbackError::UnknownSeq(99)
        );
        assert_eq!(
            m.feedback(seq, &[1], now).unwrap_err(),
            FeedbackError::WrongCount { seq, expected: 2, got: 1 }
        );
        let (receipt, _) = m.feedback(seq, &[1, 0], now).unwrap();
        assert_eq!(receipt, FeedbackReceipt { seq, matched: 2, expected: 2 });
        assert_eq!(m.snapshot(now).labeled, 2);
        assert_eq!(
            m.feedback(seq, &[1, 0], now).unwrap_err(),
            FeedbackError::Duplicate(seq)
        );
    }

    #[test]
    fn late_feedback_for_evicted_rows_matches_partially() {
        let now = Instant::now();
        let mut m = ModelMonitor::new(&cfg(2, 16), vec![]);
        let (s0, _) = m.observe(&[0, 1], &[1, 0], &[0.9, 0.1], now);
        m.observe(&[1], &[1], &[0.8], now); // evicts s0's first row
        let (receipt, _) = m.feedback(s0, &[1, 0], now).unwrap();
        assert_eq!(receipt.matched, 1, "evicted row must not take a label");
        assert_eq!(m.snapshot(now).labeled, 1);
    }

    #[test]
    fn pending_table_is_bounded_and_evicted_seqs_become_unknown() {
        let now = Instant::now();
        let mut m = ModelMonitor::new(&cfg(64, 2), vec![]);
        let (s0, _) = m.observe(&[0], &[1], &[0.9], now);
        m.observe(&[1], &[0], &[0.2], now);
        m.observe(&[1], &[1], &[0.7], now); // evicts s0 from pending
        assert_eq!(m.snapshot(now).pending, 2);
        assert_eq!(
            m.feedback(s0, &[1], now).unwrap_err(),
            FeedbackError::UnknownSeq(s0)
        );
    }

    #[test]
    fn drift_fires_only_once_the_window_is_full() {
        let now = Instant::now();
        // Baseline accuracy 1.0; every prediction will be wrong.
        let mut m = ModelMonitor::new(&cfg(4, 16), vec![("accuracy".into(), 1.0)]);
        for _ in 0..3 {
            let (seq, t) = m.observe(&[0], &[1], &[0.9], now);
            assert_eq!(t, None, "partial window must not be judged");
            let (_, t) = m.feedback(seq, &[0], now).unwrap();
            assert_eq!(t, None, "still partial after the join");
        }
        // The 4th observe fills the window; the 3 already-labeled wrong
        // rows clear min_labeled and breach immediately (warn_after 1).
        let (seq, t) = m.observe(&[1], &[1], &[0.9], now);
        assert_eq!(t, Some((DriftState::Ok, DriftState::Warning)));
        // Its feedback is a second breaching evaluation → alerting.
        let (_, t) = m.feedback(seq, &[0], now).unwrap();
        assert_eq!(t, Some((DriftState::Warning, DriftState::Alerting)));
        assert_eq!(m.drift_state(), DriftState::Alerting);
        assert_eq!(m.snapshot(now).breaching[0].metric, "accuracy");
    }
}
