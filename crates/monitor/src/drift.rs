//! Drift detection: live windowed metrics vs the training-time baseline.
//!
//! Each monitored metric carries a threshold; an *evaluation* (one pass
//! after a window mutation, once the window is full) breaches when any
//! monitored metric's live value differs from its `.flm`-provenance
//! baseline by more than the threshold. Breaches and clean evaluations
//! feed a three-state machine with hysteresis on consecutive counts:
//!
//! ```text
//! ok ── warn_after consecutive breaches ──▶ warning
//! warning ── alert_after consecutive breaches ──▶ alerting
//! warning ── recover_after consecutive clean ──▶ ok
//! alerting ── recover_after consecutive clean ──▶ warning  (step down)
//! ```
//!
//! The hysteresis counts are *window evaluations*, not wall-clock — the
//! machine is a pure function of the observation stream, so drift states
//! reproduce exactly under replay. The clock (injected, never read
//! internally — see [`crate::clock`]) only timestamps transitions for
//! the `in_state` age surfaced in `GET /v1/models`.

use std::time::{Duration, Instant};

use crate::live::{LiveMetric, LABELED_METRICS};

/// Default per-metric drift thresholds, applied when the operator passes
/// no `--drift-threshold` flags: the headline fairness metric, the
/// headline correctness metric, and the two equalized-odds halves.
pub const DEFAULT_THRESHOLDS: [(&str, f64); 4] =
    [("accuracy", 0.10), ("di_star", 0.15), ("tprb_fair", 0.15), ("tnrb_fair", 0.15)];

/// Drift-detection tuning knobs.
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// `(metric, max |live − baseline|)` pairs; empty selects
    /// [`DEFAULT_THRESHOLDS`]. Metrics without a training-time baseline
    /// in the artifact are ignored.
    pub thresholds: Vec<(String, f64)>,
    /// Consecutive breaching evaluations that raise `ok → warning`.
    pub warn_after: u32,
    /// Consecutive breaching evaluations that raise `warning → alerting`.
    pub alert_after: u32,
    /// Consecutive clean evaluations that step the state back down.
    pub recover_after: u32,
    /// Labeled rows required in-window before label-dependent metrics
    /// (accuracy suite, EO gaps, calibration) participate in drift.
    pub min_labeled: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            thresholds: Vec::new(),
            warn_after: 2,
            alert_after: 4,
            recover_after: 4,
            min_labeled: 16,
        }
    }
}

impl DriftConfig {
    /// The effective thresholds: the configured list, or the defaults.
    pub fn effective_thresholds(&self) -> Vec<(String, f64)> {
        if self.thresholds.is_empty() {
            DEFAULT_THRESHOLDS.iter().map(|(m, d)| (m.to_string(), *d)).collect()
        } else {
            self.thresholds.clone()
        }
    }
}

/// The per-model drift status surfaced in `GET /v1/models` and the
/// `fairlens_drift_state` gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftState {
    /// Live metrics agree with the training-time baseline.
    Ok,
    /// Breaching, but not yet long enough to alert.
    Warning,
    /// Sustained breach: the deployed model's live behaviour has drifted
    /// from its provenance.
    Alerting,
}

impl DriftState {
    /// Stable wire name (`/v1/models`).
    pub fn name(self) -> &'static str {
        match self {
            DriftState::Ok => "ok",
            DriftState::Warning => "warning",
            DriftState::Alerting => "alerting",
        }
    }

    /// Prometheus gauge encoding: ok 0, warning 1, alerting 2.
    pub fn gauge(self) -> u64 {
        match self {
            DriftState::Ok => 0,
            DriftState::Warning => 1,
            DriftState::Alerting => 2,
        }
    }
}

/// One metric outside its threshold at the latest evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Breach {
    /// The offending metric.
    pub metric: String,
    /// Its live windowed value.
    pub live: f64,
    /// Its training-time baseline from the artifact provenance.
    pub baseline: f64,
    /// `|live − baseline|`.
    pub delta: f64,
    /// The configured threshold the delta exceeded.
    pub threshold: f64,
}

/// The drift state machine for one model.
#[derive(Debug)]
pub struct DriftTracker {
    thresholds: Vec<(String, f64)>,
    warn_after: u32,
    alert_after: u32,
    recover_after: u32,
    min_labeled: usize,
    state: DriftState,
    breach_streak: u32,
    clean_streak: u32,
    /// Breaches at the most recent evaluation (empty when clean).
    breaching: Vec<Breach>,
    evaluations: u64,
    entered_at: Option<Instant>,
}

impl DriftTracker {
    /// A tracker in `Ok` with no evaluations yet.
    pub fn new(cfg: &DriftConfig) -> Self {
        Self {
            thresholds: cfg.effective_thresholds(),
            warn_after: cfg.warn_after.max(1),
            alert_after: cfg.alert_after.max(1),
            recover_after: cfg.recover_after.max(1),
            min_labeled: cfg.min_labeled,
            state: DriftState::Ok,
            breach_streak: 0,
            clean_streak: 0,
            breaching: Vec::new(),
            evaluations: 0,
            entered_at: None,
        }
    }

    /// Current state.
    pub fn state(&self) -> DriftState {
        self.state
    }

    /// Breaches at the latest evaluation, worst (largest delta) first.
    pub fn breaching(&self) -> &[Breach] {
        &self.breaching
    }

    /// Window evaluations performed so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// How long the tracker has been in its current state (`None` until
    /// the first transition).
    pub fn in_state(&self, now: Instant) -> Option<Duration> {
        self.entered_at.map(|t| now.saturating_duration_since(t))
    }

    /// The effective `(metric, threshold)` pairs being monitored.
    pub fn thresholds(&self) -> &[(String, f64)] {
        &self.thresholds
    }

    /// Evaluate one full window against the baseline at time `now`.
    /// Returns the transition `(from, to)` if the state changed.
    ///
    /// A monitored metric participates only when (a) the artifact
    /// recorded a baseline for it, (b) the window defines a live value
    /// for it (`group="all"`), and (c) — for label-dependent metrics —
    /// at least `min_labeled` labeled rows are resident. An evaluation
    /// with no participating metrics counts as clean: no evidence is
    /// not evidence of drift.
    pub fn evaluate(
        &mut self,
        live: &[LiveMetric],
        labeled: usize,
        baseline: &[(String, f64)],
        now: Instant,
    ) -> Option<(DriftState, DriftState)> {
        self.evaluations += 1;
        let mut breaches: Vec<Breach> = self
            .thresholds
            .iter()
            .filter_map(|(metric, threshold)| {
                if LABELED_METRICS.contains(&metric.as_str()) && labeled < self.min_labeled {
                    return None;
                }
                let base = baseline
                    .iter()
                    .find(|(k, _)| k == metric)
                    .map(|(_, v)| *v)
                    .filter(|v| v.is_finite())?;
                let value = live
                    .iter()
                    .find(|m| m.metric == metric && m.group == "all")
                    .map(|m| m.value)?;
                let delta = (value - base).abs();
                (delta > *threshold).then(|| Breach {
                    metric: metric.clone(),
                    live: value,
                    baseline: base,
                    delta,
                    threshold: *threshold,
                })
            })
            .collect();
        breaches.sort_by(|a, b| b.delta.total_cmp(&a.delta));
        let breached = !breaches.is_empty();
        self.breaching = breaches;
        if breached {
            self.breach_streak += 1;
            self.clean_streak = 0;
        } else {
            self.clean_streak += 1;
            self.breach_streak = 0;
        }
        let next = match self.state {
            DriftState::Ok if self.breach_streak >= self.warn_after => DriftState::Warning,
            DriftState::Warning if self.breach_streak >= self.alert_after => {
                DriftState::Alerting
            }
            DriftState::Warning if self.clean_streak >= self.recover_after => DriftState::Ok,
            DriftState::Alerting if self.clean_streak >= self.recover_after => {
                // Step down one level; a fresh recover_after of clean
                // evaluations is required to reach ok.
                self.clean_streak = 0;
                DriftState::Warning
            }
            state => state,
        };
        if next != self.state {
            let from = self.state;
            self.state = next;
            self.entered_at = Some(now);
            return Some((from, next));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lm(metric: &'static str, value: f64) -> LiveMetric {
        LiveMetric { metric, group: "all", value }
    }

    fn cfg() -> DriftConfig {
        DriftConfig {
            thresholds: vec![("accuracy".into(), 0.1), ("di_star".into(), 0.2)],
            warn_after: 2,
            alert_after: 4,
            recover_after: 3,
            min_labeled: 4,
        }
    }

    #[test]
    fn hysteresis_walks_ok_warning_alerting_and_back() {
        let t0 = Instant::now();
        let mut d = DriftTracker::new(&cfg());
        let base = vec![("accuracy".to_string(), 0.8), ("di_star".to_string(), 0.9)];
        let bad = [lm("accuracy", 0.5), lm("di_star", 0.85)];
        let good = [lm("accuracy", 0.78), lm("di_star", 0.85)];
        // One breach: still ok (warn_after = 2).
        assert_eq!(d.evaluate(&bad, 10, &base, t0), None);
        assert_eq!(d.state(), DriftState::Ok);
        assert_eq!(
            d.evaluate(&bad, 10, &base, t0),
            Some((DriftState::Ok, DriftState::Warning))
        );
        // The offending metric is named, with live/baseline/threshold.
        let b = &d.breaching()[0];
        assert_eq!(b.metric, "accuracy");
        assert_eq!((b.live, b.baseline, b.threshold), (0.5, 0.8, 0.1));
        // Two more breaches reach alert_after = 4 total.
        assert_eq!(d.evaluate(&bad, 10, &base, t0), None);
        assert_eq!(
            d.evaluate(&bad, 10, &base, t0),
            Some((DriftState::Warning, DriftState::Alerting))
        );
        // Recovery steps down one state per recover_after clean streak.
        assert_eq!(d.evaluate(&good, 10, &base, t0), None);
        assert_eq!(d.evaluate(&good, 10, &base, t0), None);
        assert_eq!(
            d.evaluate(&good, 10, &base, t0),
            Some((DriftState::Alerting, DriftState::Warning))
        );
        assert!(d.breaching().is_empty());
        for _ in 0..2 {
            assert_eq!(d.evaluate(&good, 10, &base, t0), None);
        }
        assert_eq!(
            d.evaluate(&good, 10, &base, t0),
            Some((DriftState::Warning, DriftState::Ok))
        );
        assert_eq!(d.evaluations(), 10);
    }

    #[test]
    fn labeled_metrics_wait_for_min_labeled() {
        let t0 = Instant::now();
        let mut d = DriftTracker::new(&cfg());
        let base = vec![("accuracy".to_string(), 0.9)];
        // accuracy is way off, but only 2 labeled rows (< min_labeled 4):
        // the metric does not participate, the evaluation is clean.
        for _ in 0..6 {
            assert_eq!(d.evaluate(&[lm("accuracy", 0.1)], 2, &base, t0), None);
        }
        assert_eq!(d.state(), DriftState::Ok);
        // Once enough labels arrive the same window breaches.
        d.evaluate(&[lm("accuracy", 0.1)], 4, &base, t0);
        assert_eq!(
            d.evaluate(&[lm("accuracy", 0.1)], 4, &base, t0),
            Some((DriftState::Ok, DriftState::Warning))
        );
    }

    #[test]
    fn metrics_without_baseline_or_live_value_do_not_participate() {
        let t0 = Instant::now();
        let mut d = DriftTracker::new(&cfg());
        // No baseline for di_star, no live value for accuracy: clean.
        let base = vec![("accuracy".to_string(), 0.9)];
        for _ in 0..5 {
            assert_eq!(d.evaluate(&[lm("di_star", 0.05)], 100, &base, t0), None);
        }
        assert_eq!(d.state(), DriftState::Ok);
    }

    #[test]
    fn breaches_are_sorted_worst_first_and_in_state_tracks_the_clock() {
        let t0 = Instant::now();
        let mut d = DriftTracker::new(&cfg());
        let base = vec![("accuracy".to_string(), 0.9), ("di_star".to_string(), 0.9)];
        let live = [lm("accuracy", 0.7), lm("di_star", 0.2)];
        assert!(d.in_state(t0).is_none());
        d.evaluate(&live, 10, &base, t0);
        d.evaluate(&live, 10, &base, t0 + Duration::from_secs(5));
        assert_eq!(d.state(), DriftState::Warning);
        assert_eq!(d.breaching()[0].metric, "di_star"); // delta 0.7 > 0.2
        assert_eq!(d.breaching()[1].metric, "accuracy");
        assert_eq!(
            d.in_state(t0 + Duration::from_secs(9)),
            Some(Duration::from_secs(4))
        );
    }

    #[test]
    fn default_thresholds_apply_when_none_configured() {
        let d = DriftTracker::new(&DriftConfig::default());
        let names: Vec<&str> = d.thresholds().iter().map(|(m, _)| m.as_str()).collect();
        assert_eq!(names, ["accuracy", "di_star", "tprb_fair", "tnrb_fair"]);
    }
}
