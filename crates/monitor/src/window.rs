//! The exact count-based sliding window of scored observations.
//!
//! A ring buffer of the last `capacity` per-row observations for one
//! model, addressed by a monotonically increasing *ordinal* (the number
//! of observations ever pushed). There is no decay and no sketching:
//! the window's contents — and therefore every metric computed over it —
//! are a pure function of the observation stream, so a window state is
//! bit-exactly reproducible by replaying a recording.

/// One scored row as the monitor saw it: the sensitive-group id from the
/// request, the predicted label and score from the response, and the
/// true label once (if ever) reported via `POST /v1/feedback`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Sensitive-group id (0 unprivileged / 1 privileged).
    pub group: u8,
    /// Predicted label.
    pub pred: u8,
    /// Predicted score.
    pub score: f64,
    /// True label, joined from feedback; `None` until reported.
    pub label: Option<u8>,
}

/// A fixed-capacity ring of [`Observation`]s with ordinal addressing.
#[derive(Debug)]
pub struct SlidingWindow {
    ring: Vec<Observation>,
    capacity: usize,
    /// Observations ever pushed; the window holds ordinals
    /// `pushed - len .. pushed`.
    pushed: u64,
}

impl SlidingWindow {
    /// An empty window holding at most `capacity` observations.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self { ring: Vec::with_capacity(capacity), capacity, pushed: 0 }
    }

    /// Maximum number of resident observations.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident observations.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Whether the window has reached capacity.
    pub fn is_full(&self) -> bool {
        self.ring.len() == self.capacity
    }

    /// Observations ever pushed (== the next ordinal to be assigned).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Resident observations with a joined true label.
    pub fn labeled(&self) -> usize {
        self.ring.iter().filter(|o| o.label.is_some()).count()
    }

    /// Push one observation, evicting the oldest past capacity. Returns
    /// the observation's ordinal.
    pub fn push(&mut self, obs: Observation) -> u64 {
        let ordinal = self.pushed;
        if self.ring.len() == self.capacity {
            // Slot reuse keeps the ring allocation-free at steady state;
            // the slot of ordinal `n` is `n % capacity`, so overwriting
            // in place is exactly "evict the oldest".
            self.ring[(ordinal % self.capacity as u64) as usize] = obs;
        } else {
            self.ring.push(obs);
        }
        self.pushed += 1;
        ordinal
    }

    /// Whether ordinal `ordinal` is still resident (not yet evicted).
    pub fn contains(&self, ordinal: u64) -> bool {
        ordinal < self.pushed && self.pushed - ordinal <= self.ring.len() as u64
    }

    /// Join a true label onto a resident observation. Returns `false`
    /// when the ordinal has already been evicted (late feedback) — the
    /// label is dropped, never applied to the wrong row.
    pub fn set_label(&mut self, ordinal: u64, label: u8) -> bool {
        if !self.contains(ordinal) {
            return false;
        }
        self.ring[(ordinal % self.capacity as u64) as usize].label = Some(label);
        true
    }

    /// The resident observations, oldest first — the canonical order
    /// every metric is computed in.
    pub fn observations(&self) -> Vec<Observation> {
        let len = self.ring.len() as u64;
        (self.pushed - len..self.pushed)
            .map(|ord| self.ring[(ord % self.capacity as u64) as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(group: u8, pred: u8, score: f64) -> Observation {
        Observation { group, pred, score, label: None }
    }

    #[test]
    fn ordinals_are_assigned_in_push_order() {
        let mut w = SlidingWindow::new(3);
        assert_eq!(w.push(obs(0, 1, 0.9)), 0);
        assert_eq!(w.push(obs(1, 0, 0.1)), 1);
        assert_eq!((w.len(), w.pushed()), (2, 2));
        assert!(!w.is_full());
    }

    #[test]
    fn eviction_at_the_boundary_drops_exactly_the_oldest() {
        let mut w = SlidingWindow::new(3);
        for i in 0..3 {
            w.push(obs(0, 0, i as f64));
        }
        assert!(w.is_full() && w.contains(0));
        w.push(obs(1, 1, 3.0));
        assert!(!w.contains(0), "ordinal 0 must be evicted");
        assert!(w.contains(1) && w.contains(3));
        let scores: Vec<f64> = w.observations().iter().map(|o| o.score).collect();
        assert_eq!(scores, [1.0, 2.0, 3.0]);
    }

    #[test]
    fn labels_join_resident_rows_and_late_feedback_is_dropped() {
        let mut w = SlidingWindow::new(2);
        w.push(obs(0, 1, 0.7));
        w.push(obs(1, 0, 0.3));
        assert!(w.set_label(0, 1));
        assert_eq!(w.labeled(), 1);
        w.push(obs(1, 1, 0.8)); // evicts ordinal 0
        assert!(!w.set_label(0, 0), "evicted ordinal must reject the label");
        assert_eq!(w.labeled(), 0, "the label left with its observation");
        assert!(w.set_label(2, 1));
        assert_eq!(w.observations()[1].label, Some(1));
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let mut w = SlidingWindow::new(0);
        w.push(obs(0, 0, 0.5));
        w.push(obs(1, 1, 0.6));
        assert_eq!(w.len(), 1);
        assert_eq!(w.observations()[0].group, 1);
    }
}
