//! Criterion micro-benchmarks for the evaluation metrics, including the
//! interventional causal-discrimination measurement whose Hoeffding-sized
//! sample dominates the metric-computation cost in Fig. 10.

// The one-shot evaluation entry point is deprecated in favour of the
// runner, but it is exactly the fit-excluded unit this bench measures.
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, Criterion};
use fairlens_bench::evaluate_fitted;
use fairlens_core::baseline_approach;
use fairlens_metrics::{
    causal_discrimination, causal_risk_difference, MetricReport,
};
use fairlens_synth::DatasetKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_group_metrics(c: &mut Criterion) {
    let kind = DatasetKind::Compas;
    let data = kind.generate(5_000, 3);
    let fitted = baseline_approach().fit(&data, 1).unwrap();
    let preds = fitted.predict(&data);

    c.bench_function("metrics/report_noncausal", |b| {
        b.iter(|| {
            MetricReport::from_predictions(data.labels(), &preds, data.sensitive(), 0.0, 0.0)
        })
    });

    c.bench_function("metrics/crd_propensity", |b| {
        b.iter(|| causal_risk_difference(&data, &preds, kind.resolving_attrs()))
    });
}

fn bench_cd(c: &mut Criterion) {
    let kind = DatasetKind::Compas;
    let data = kind.generate(5_000, 3);
    let fitted = baseline_approach().fit(&data, 1).unwrap();

    let mut group = c.benchmark_group("metrics/cd");
    group.sample_size(10);
    // paper setting: 99 % confidence, 1 % error bound
    group.bench_function("conf99_err1", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            causal_discrimination(&data, |d| fitted.predict(d), 0.99, 0.01, &mut rng)
        })
    });
    group.finish();
}

fn bench_full_suite(c: &mut Criterion) {
    let kind = DatasetKind::German;
    let data = kind.generate(1_000, 3);
    let fitted = baseline_approach().fit(&data, 1).unwrap();
    let mut group = c.benchmark_group("metrics/full_suite");
    group.sample_size(10);
    group.bench_function("german_1000", |b| {
        b.iter(|| evaluate_fitted(&fitted, kind, &data, 1))
    });
    group.finish();
}

criterion_group!(benches, bench_group_metrics, bench_cd, bench_full_suite);
criterion_main!(benches);
