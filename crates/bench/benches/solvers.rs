//! Criterion micro-benchmarks for the NP-hard solver substrates Salimi and
//! Hardt reduce to: weighted MaxSAT, NMF and the simplex LP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fairlens_linalg::Matrix;
use fairlens_solver::{nmf, Clause, LinearProgram, Lit, MaxSatProblem, NmfOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn maxsat_instance(n_vars: usize, seed: u64) -> MaxSatProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = MaxSatProblem::new(n_vars);
    // implication chains (hard) + random soft preferences — repair-shaped
    for v in 0..n_vars - 1 {
        p.add(Clause::hard(vec![Lit::neg(v), Lit::pos(v + 1)])).unwrap();
    }
    for v in 0..n_vars {
        let w = 1.0 + rng.gen::<f64>() * 3.0;
        if rng.gen::<bool>() {
            p.add(Clause::soft(vec![Lit::pos(v)], w).unwrap()).unwrap();
        } else {
            p.add(Clause::soft(vec![Lit::neg(v)], w).unwrap()).unwrap();
        }
    }
    p
}

fn bench_maxsat(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxsat");
    group.sample_size(10);
    for &n in &[12usize, 40, 120] {
        let p = maxsat_instance(n, 3);
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| p.solve(7))
        });
    }
    group.finish();
}

fn bench_nmf(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let mut group = c.benchmark_group("nmf_rank1");
    group.sample_size(10);
    for &m in &[8usize, 32, 64] {
        let mut v = Matrix::zeros(2, m);
        for i in 0..2 {
            for j in 0..m {
                v.set(i, j, rng.gen::<f64>() * 50.0);
            }
        }
        group.bench_function(BenchmarkId::from_parameter(m), |b| {
            b.iter(|| nmf::nmf(&v, &NmfOptions { rank: 1, max_iter: 200, ..Default::default() }))
        });
    }
    group.finish();
}

fn bench_simplex(c: &mut Criterion) {
    // Hardt-shaped LP: 4 variables, 2 equalities, 4 box constraints.
    let lp = LinearProgram::minimize(vec![0.3, -0.2, 0.1, -0.4])
        .eq(vec![0.7, 0.3, -0.5, -0.5], 0.0)
        .eq(vec![0.2, 0.8, -0.4, -0.6], 0.0)
        .le(vec![1.0, 0.0, 0.0, 0.0], 1.0)
        .le(vec![0.0, 1.0, 0.0, 0.0], 1.0)
        .le(vec![0.0, 0.0, 1.0, 0.0], 1.0)
        .le(vec![0.0, 0.0, 0.0, 1.0], 1.0);
    c.bench_function("simplex/hardt_lp", |b| b.iter(|| lp.solve().unwrap()));
}

criterion_group!(benches, bench_maxsat, bench_nmf, bench_simplex);
criterion_main!(benches);
