//! Criterion micro-benchmarks: training latency of every approach on a
//! fixed 2 000-row COMPAS sample — the per-approach cost decomposition
//! underlying Fig. 11.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fairlens_core::{all_approaches, baseline_approach};
use fairlens_synth::DatasetKind;

fn bench_fit(c: &mut Criterion) {
    let kind = DatasetKind::Compas;
    let train = kind.generate(2_000, 5);

    let mut group = c.benchmark_group("fit");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("baseline", "LR"), |b| {
        b.iter(|| baseline_approach().fit(&train, 1).unwrap())
    });
    for approach in all_approaches(kind.inadmissible_attrs()) {
        // Zafar^EO is the one multi-second fit; keep the bench suite fast by
        // capping it out of the default run (it is exercised by fig11).
        if approach.name == "Zafar^EO_Fair" {
            continue;
        }
        group.bench_function(BenchmarkId::new(approach.stage.label(), approach.name), |b| {
            b.iter(|| approach.fit(&train, 1).unwrap())
        });
    }
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let kind = DatasetKind::Compas;
    let train = kind.generate(2_000, 5);
    let test = kind.generate(2_000, 6);
    let fitted = baseline_approach().fit(&train, 1).unwrap();

    c.bench_function("predict/LR/2000rows", |b| b.iter(|| fitted.predict(&test)));
}

criterion_group!(benches, bench_fit, bench_predict);
criterion_main!(benches);
