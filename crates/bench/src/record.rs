//! Machine-readable experiment results.
//!
//! Every evaluated (approach × dataset × fold) cell yields one
//! [`RunRecord`]; batches serialize to JSON-lines files under `results/`
//! through a small hand-rolled serializer (the workspace has no serde).
//! The format is one flat JSON object per line:
//!
//! ```json
//! {"approach":"KamCal^DP","stage":"pre","dataset":"German","fold":0,
//!  "seed":1234,"rows":1000,"attrs":9,"fit_ms":12.5,"predict_ms":0.8,
//!  "metrics":{"accuracy":0.71,...,"crd_fair":0.98}}
//! ```
//!
//! `metrics` is `null` for timing-only cells (the Fig. 11 sweeps); an
//! individual metric that came out non-finite serializes as `null` and
//! parses back as NaN. Metric floats round-trip bit-exactly (shortest
//! round-trip formatting), which is what lets the determinism test compare
//! a parallel run against a sequential one byte for byte.
//!
//! The JSON value model, parser and float formatting live in the shared
//! [`fairlens_json`] crate (they are also what the `.flm` model artifacts
//! and the `fairlens-serve` wire format are built on); this module keeps
//! the record-specific field layout and file handling.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

use fairlens_json::{escape_into, fmt_f64, parse, Value};

/// JSON keys of the nine normalised metrics, in
/// [`fairlens_metrics::MetricReport::values`] order.
pub const METRIC_KEYS: [&str; 9] = [
    "accuracy",
    "precision",
    "recall",
    "f1",
    "di_star",
    "tprb_fair",
    "tnrb_fair",
    "cd_fair",
    "crd_fair",
];

/// One evaluated cell of an experiment grid.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Approach display name (registry name, e.g. `"KamCal^DP"`).
    pub approach: String,
    /// Stage label: `baseline` / `pre` / `in` / `post`.
    pub stage: String,
    /// Dataset display name (`Adult` / `COMPAS` / `German` / `Credit`).
    pub dataset: String,
    /// Fold index within the spec (0-based).
    pub fold: usize,
    /// The cell's derived deterministic seed.
    pub seed: u64,
    /// Rows of the generated dataset the cell ran on (the Fig. 11 size
    /// sweep varies this between otherwise-identical cells).
    pub rows: usize,
    /// Attributes of the data the cell actually used (the Fig. 11
    /// attribute sweep and the Calmon-on-Credit 22-attribute fallback
    /// vary this).
    pub attrs: usize,
    /// The nine normalised metrics ([`METRIC_KEYS`] order); `None` for
    /// timing-only cells.
    pub metrics: Option<[f64; 9]>,
    /// Wall-clock training time (repair + train + adjuster fit), ms.
    pub fit_ms: f64,
    /// Wall-clock prediction time over the evaluation rows, ms.
    pub predict_ms: f64,
    /// How many attempts the cell took (1 = first try; >1 means transient
    /// failures were retried with derived seeds).
    pub attempts: u32,
}

impl RunRecord {
    /// Metric value by key, if this record carries metrics.
    pub fn metric(&self, key: &str) -> Option<f64> {
        let idx = METRIC_KEYS.iter().position(|&k| k == key)?;
        self.metrics.map(|m| m[idx])
    }

    /// Serialize as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push('{');
        push_str_field(&mut s, "approach", &self.approach);
        s.push(',');
        push_str_field(&mut s, "stage", &self.stage);
        s.push(',');
        push_str_field(&mut s, "dataset", &self.dataset);
        let _ = write!(s, ",\"fold\":{},\"seed\":{}", self.fold, self.seed);
        let _ = write!(s, ",\"rows\":{},\"attrs\":{}", self.rows, self.attrs);
        let _ = write!(s, ",\"fit_ms\":{}", fmt_f64(self.fit_ms));
        let _ = write!(s, ",\"predict_ms\":{}", fmt_f64(self.predict_ms));
        let _ = write!(s, ",\"attempts\":{}", self.attempts);
        match &self.metrics {
            None => s.push_str(",\"metrics\":null"),
            Some(values) => {
                s.push_str(",\"metrics\":{");
                for (i, (key, v)) in METRIC_KEYS.iter().zip(values).enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "\"{key}\":{}", fmt_f64(*v));
                }
                s.push('}');
            }
        }
        s.push('}');
        s
    }

    /// Parse one JSON line produced by [`Self::to_json`] (field order is
    /// not significant; unknown fields are rejected).
    pub fn from_json(line: &str) -> Result<Self, String> {
        let obj = match parse(line)? {
            Value::Object(o) => o,
            _ => return Err("record line is not a JSON object".into()),
        };
        let mut approach = None;
        let mut stage = None;
        let mut dataset = None;
        let mut fold = None;
        let mut seed = None;
        let mut rows = None;
        let mut attrs = None;
        let mut fit_ms = None;
        let mut predict_ms = None;
        let mut attempts = None;
        let mut metrics: Option<Option<[f64; 9]>> = None;
        for (key, v) in obj {
            match key.as_str() {
                "approach" => approach = Some(v.into_string()?),
                "stage" => stage = Some(v.into_string()?),
                "dataset" => dataset = Some(v.into_string()?),
                "fold" => fold = Some(v.into_f64()? as usize),
                "seed" => seed = Some(v.into_u64()?),
                "rows" => rows = Some(v.into_u64()? as usize),
                "attrs" => attrs = Some(v.into_u64()? as usize),
                "fit_ms" => fit_ms = Some(v.into_f64()?),
                "predict_ms" => predict_ms = Some(v.into_f64()?),
                "attempts" => {
                    let raw = v.into_u64()?;
                    attempts = Some(
                        u32::try_from(raw).map_err(|_| format!("attempts {raw} overflows u32"))?,
                    );
                }
                "metrics" => match v {
                    Value::Null => metrics = Some(None),
                    Value::Object(m) => {
                        let mut out = [f64::NAN; 9];
                        let mut seen = 0usize;
                        for (mk, mv) in m {
                            let idx = METRIC_KEYS
                                .iter()
                                .position(|&k| k == mk)
                                .ok_or_else(|| format!("unknown metric key {mk:?}"))?;
                            out[idx] = mv.into_f64()?;
                            seen += 1;
                        }
                        if seen != METRIC_KEYS.len() {
                            return Err(format!("expected 9 metrics, got {seen}"));
                        }
                        metrics = Some(Some(out));
                    }
                    _ => return Err("metrics must be an object or null".into()),
                },
                other => return Err(format!("unknown record field {other:?}")),
            }
        }
        Ok(RunRecord {
            approach: approach.ok_or("missing approach")?,
            stage: stage.ok_or("missing stage")?,
            dataset: dataset.ok_or("missing dataset")?,
            fold: fold.ok_or("missing fold")?,
            seed: seed.ok_or("missing seed")?,
            rows: rows.ok_or("missing rows")?,
            attrs: attrs.ok_or("missing attrs")?,
            metrics: metrics.ok_or("missing metrics")?,
            fit_ms: fit_ms.ok_or("missing fit_ms")?,
            predict_ms: predict_ms.ok_or("missing predict_ms")?,
            // absent in pre-fault-tolerance files: those cells ran once
            attempts: attempts.unwrap_or(1),
        })
    }
}

/// Why a cell produced no record: the failure taxonomy persisted to the
/// `*.failures.jsonl` sidecar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The cell's code panicked; the panic was isolated to the cell.
    Panicked,
    /// The cell exceeded `--cell-timeout` and was cancelled cooperatively.
    TimedOut,
    /// Training returned a non-transient error (infeasible, unsupported,
    /// bad input — deterministic in the data, never retried).
    TrainError,
    /// Every attempt failed with a transient numeric error.
    ExhaustedRetries,
}

impl FailureKind {
    /// The JSON wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Panicked => "panicked",
            Self::TimedOut => "timed_out",
            Self::TrainError => "train_error",
            Self::ExhaustedRetries => "exhausted_retries",
        }
    }

}

impl std::str::FromStr for FailureKind {
    type Err = String;

    /// Parse the JSON wire name.
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "panicked" => Ok(Self::Panicked),
            "timed_out" => Ok(Self::TimedOut),
            "train_error" => Ok(Self::TrainError),
            "exhausted_retries" => Ok(Self::ExhaustedRetries),
            other => Err(format!("unknown failure kind {other:?}")),
        }
    }
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A cell that produced no [`RunRecord`], with enough context to re-run it.
#[derive(Debug, Clone, PartialEq)]
pub struct CellFailure {
    /// Approach display name (or the registry-lookup string that failed).
    pub approach: String,
    /// Dataset display name.
    pub dataset: String,
    /// Fold index within the spec.
    pub fold: usize,
    /// Failure classification.
    pub kind: FailureKind,
    /// Human-readable error (panic message, training error, …).
    pub error: String,
    /// Attempts consumed before giving up.
    pub attempts: u32,
    /// Wall-clock spent on the cell across all attempts, ms (partial
    /// timing — recorded even when the cell timed out or panicked).
    pub elapsed_ms: f64,
}

impl std::fmt::Display for CellFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} on {} fold {}: [{}] {} ({} attempt(s), {:.0} ms)",
            self.approach, self.dataset, self.fold, self.kind, self.error, self.attempts,
            self.elapsed_ms
        )
    }
}

impl CellFailure {
    /// Serialize as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(192);
        s.push('{');
        push_str_field(&mut s, "approach", &self.approach);
        s.push(',');
        push_str_field(&mut s, "dataset", &self.dataset);
        let _ = write!(s, ",\"fold\":{},\"kind\":\"{}\"", self.fold, self.kind.as_str());
        s.push(',');
        push_str_field(&mut s, "error", &self.error);
        let _ = write!(s, ",\"attempts\":{}", self.attempts);
        let _ = write!(s, ",\"elapsed_ms\":{}", fmt_f64(self.elapsed_ms));
        s.push('}');
        s
    }

    /// Parse one JSON line produced by [`Self::to_json`].
    pub fn from_json(line: &str) -> Result<Self, String> {
        let obj = match parse(line)? {
            Value::Object(o) => o,
            _ => return Err("failure line is not a JSON object".into()),
        };
        let mut approach = None;
        let mut dataset = None;
        let mut fold = None;
        let mut kind = None;
        let mut error = None;
        let mut attempts = None;
        let mut elapsed_ms = None;
        for (key, v) in obj {
            match key.as_str() {
                "approach" => approach = Some(v.into_string()?),
                "dataset" => dataset = Some(v.into_string()?),
                "fold" => fold = Some(v.into_u64()? as usize),
                "kind" => kind = Some(v.into_string()?.parse::<FailureKind>()?),
                "error" => error = Some(v.into_string()?),
                "attempts" => {
                    let raw = v.into_u64()?;
                    attempts = Some(
                        u32::try_from(raw).map_err(|_| format!("attempts {raw} overflows u32"))?,
                    );
                }
                "elapsed_ms" => elapsed_ms = Some(v.into_f64()?),
                other => return Err(format!("unknown failure field {other:?}")),
            }
        }
        Ok(CellFailure {
            approach: approach.ok_or("missing approach")?,
            dataset: dataset.ok_or("missing dataset")?,
            fold: fold.ok_or("missing fold")?,
            kind: kind.ok_or("missing kind")?,
            error: error.ok_or("missing error")?,
            attempts: attempts.ok_or("missing attempts")?,
            elapsed_ms: elapsed_ms.ok_or("missing elapsed_ms")?,
        })
    }
}

fn push_str_field(s: &mut String, key: &str, value: &str) {
    let _ = write!(s, "\"{key}\":");
    escape_into(s, value);
}

/// Write records as JSON-lines, creating parent directories as needed.
pub fn write_jsonl(path: &Path, records: &[RunRecord]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    for r in records {
        writeln!(w, "{}", r.to_json())?;
    }
    w.flush()
}

/// Read a JSON-lines result file back into records (blank lines skipped).
pub fn read_jsonl(path: &Path) -> Result<Vec<RunRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .enumerate()
        .map(|(i, l)| RunRecord::from_json(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

/// Read a JSON-lines result file tolerantly: malformed lines (e.g. a line
/// truncated when a run was killed mid-write) are skipped, not fatal.
/// Returns the parseable records plus the count of skipped lines.
pub fn read_jsonl_lossy(path: &Path) -> Result<(Vec<RunRecord>, usize), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut records = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        match RunRecord::from_json(line) {
            Ok(r) => records.push(r),
            Err(_) => skipped += 1,
        }
    }
    Ok((records, skipped))
}

/// The failures-sidecar path for a results file:
/// `results/fig12_stability.jsonl` → `results/fig12_stability.failures.jsonl`.
pub fn failures_path(results: &Path) -> std::path::PathBuf {
    results.with_extension("failures.jsonl")
}

/// Write JSON lines atomically: write to a `.tmp` sibling, fsync it,
/// rename over `path`, then fsync the directory so the rename is durable.
/// A reader never observes a partially written file.
fn write_lines_atomic(path: &Path, lines: impl Iterator<Item = String>) -> std::io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => {
            std::fs::create_dir_all(p)?;
            Some(p)
        }
        _ => None,
    };
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let file = std::fs::File::create(&tmp)?;
        let mut w = std::io::BufWriter::new(file);
        for line in lines {
            writeln!(w, "{line}")?;
        }
        w.flush()?;
        w.get_ref().sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = parent {
        // Durable rename: fsync the containing directory (best-effort on
        // platforms where directories cannot be opened for sync).
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Atomically (re)write a results file; see [`write_lines_atomic`].
pub fn write_jsonl_atomic(path: &Path, records: &[RunRecord]) -> std::io::Result<()> {
    write_lines_atomic(path, records.iter().map(RunRecord::to_json))
}

/// Atomically (re)write a failures sidecar. An empty failure list removes
/// a stale sidecar instead, so a clean run leaves no sidecar behind.
pub fn write_failures_atomic(path: &Path, failures: &[CellFailure]) -> std::io::Result<()> {
    if failures.is_empty() {
        match std::fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    } else {
        write_lines_atomic(path, failures.iter().map(CellFailure::to_json))
    }
}

/// Read a failures sidecar back; a missing file is an empty list.
pub fn read_failures(path: &Path) -> Result<Vec<CellFailure>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .enumerate()
        .map(|(i, l)| CellFailure::from_json(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

/// Read a failures sidecar tolerantly, mirroring [`read_jsonl_lossy`]:
/// malformed lines (e.g. a last line truncated when a run was killed
/// mid-append) are skipped, not fatal, so a resume still carries every
/// intact failure instead of dropping the whole sidecar. A missing file
/// is an empty list.
pub fn read_failures_lossy(path: &Path) -> Result<(Vec<CellFailure>, usize), String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    let mut failures = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        match CellFailure::from_json(line) {
            Ok(f) => failures.push(f),
            Err(_) => skipped += 1,
        }
    }
    Ok((failures, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunRecord {
        RunRecord {
            approach: "KamCal^DP".into(),
            stage: "pre".into(),
            dataset: "German".into(),
            fold: 3,
            seed: 0xDEAD_BEEF_1234,
            rows: 1_000,
            attrs: 9,
            metrics: Some([0.71, 0.55, 0.1 + 0.2, 0.62, 0.9, 1.0, 0.0, 0.33, 0.98]),
            fit_ms: 12.625,
            predict_ms: 0.25,
            attempts: 1,
        }
    }

    fn sample_failure() -> CellFailure {
        CellFailure {
            approach: "Calmon^DP".into(),
            dataset: "Credit".into(),
            fold: 7,
            kind: FailureKind::TimedOut,
            error: "exceeded 30s deadline".into(),
            attempts: 2,
            elapsed_ms: 60000.5,
        }
    }

    #[test]
    fn json_round_trip_is_bit_exact() {
        let r = sample();
        let parsed = RunRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed.approach, r.approach);
        assert_eq!(parsed.seed, r.seed);
        let (a, b) = (r.metrics.unwrap(), parsed.metrics.unwrap());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(parsed.fit_ms.to_bits(), r.fit_ms.to_bits());
        // and the serialized text itself is stable
        assert_eq!(parsed.to_json(), r.to_json());
    }

    #[test]
    fn nan_metric_serializes_as_null() {
        let mut r = sample();
        let mut m = r.metrics.unwrap();
        m[4] = f64::NAN;
        r.metrics = Some(m);
        let line = r.to_json();
        assert!(line.contains("\"di_star\":null"), "{line}");
        let parsed = RunRecord::from_json(&line).unwrap();
        assert!(parsed.metrics.unwrap()[4].is_nan());
    }

    #[test]
    fn timing_only_records_have_null_metrics() {
        let mut r = sample();
        r.metrics = None;
        let line = r.to_json();
        assert!(line.contains("\"metrics\":null"), "{line}");
        let parsed = RunRecord::from_json(&line).unwrap();
        assert_eq!(parsed.metrics, None);
    }

    #[test]
    fn escaped_names_survive() {
        let mut r = sample();
        r.approach = "weird\"name\\with\tescapes".into();
        let parsed = RunRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed.approach, r.approach);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(RunRecord::from_json("{").is_err());
        assert!(RunRecord::from_json("[]").is_err());
        assert!(RunRecord::from_json("{\"approach\":\"x\"}").is_err());
        let with_unknown = sample().to_json().replace("\"fold\"", "\"bold\"");
        assert!(RunRecord::from_json(&with_unknown).is_err());
    }

    #[test]
    fn jsonl_file_round_trip() {
        let dir = std::env::temp_dir().join("fairlens_record_test");
        let path = dir.join("batch.jsonl");
        let records = vec![sample(), {
            let mut r = sample();
            r.fold = 4;
            r.metrics = None;
            r
        }];
        write_jsonl(&path, &records).unwrap();
        let back = read_jsonl(&path).unwrap();
        assert_eq!(back, records);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn seeds_beyond_f64_mantissa_round_trip_exactly() {
        let mut r = sample();
        r.seed = u64::MAX - 41; // needs all 64 bits; f64 would round it
        let parsed = RunRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed.seed, r.seed);
    }

    #[test]
    fn metric_lookup_by_key() {
        let r = sample();
        assert_eq!(r.metric("accuracy"), Some(0.71));
        assert_eq!(r.metric("crd_fair"), Some(0.98));
        assert_eq!(r.metric("nope"), None);
    }

    #[test]
    fn attempts_default_to_one_for_old_files() {
        // pre-fault-tolerance lines carry no "attempts" field
        let line = sample().to_json().replace(",\"attempts\":1", "");
        let parsed = RunRecord::from_json(&line).unwrap();
        assert_eq!(parsed.attempts, 1);
    }

    #[test]
    fn retried_record_round_trips_attempts() {
        let mut r = sample();
        r.attempts = 3;
        let line = r.to_json();
        assert!(line.contains("\"attempts\":3"), "{line}");
        assert_eq!(RunRecord::from_json(&line).unwrap(), r);
    }

    #[test]
    fn failure_json_round_trip() {
        for kind in [
            FailureKind::Panicked,
            FailureKind::TimedOut,
            FailureKind::TrainError,
            FailureKind::ExhaustedRetries,
        ] {
            let mut f = sample_failure();
            f.kind = kind;
            f.error = "panic with \"quotes\"\nand newline".into();
            let line = f.to_json();
            assert!(line.contains(&format!("\"kind\":\"{}\"", kind.as_str())), "{line}");
            assert_eq!(CellFailure::from_json(&line).unwrap(), f);
        }
    }

    #[test]
    fn failure_rejects_unknown_kind_and_fields() {
        let bad_kind = sample_failure().to_json().replace("timed_out", "melted");
        assert!(CellFailure::from_json(&bad_kind).is_err());
        let bad_field = sample_failure().to_json().replace("\"fold\"", "\"gold\"");
        assert!(CellFailure::from_json(&bad_field).is_err());
    }

    #[test]
    fn failures_sidecar_file_round_trip() {
        let dir = std::env::temp_dir().join("fairlens_failures_test");
        let results = dir.join("fig12_stability.jsonl");
        let sidecar = failures_path(&results);
        assert_eq!(sidecar, dir.join("fig12_stability.failures.jsonl"));
        let failures = vec![sample_failure(), {
            let mut f = sample_failure();
            f.kind = FailureKind::Panicked;
            f.fold = 8;
            f
        }];
        write_failures_atomic(&sidecar, &failures).unwrap();
        assert_eq!(read_failures(&sidecar).unwrap(), failures);
        // clean run: sidecar removed, missing file reads as empty
        write_failures_atomic(&sidecar, &[]).unwrap();
        assert!(!sidecar.exists());
        assert_eq!(read_failures(&sidecar).unwrap(), Vec::new());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_matches_plain_write() {
        let dir = std::env::temp_dir().join("fairlens_atomic_test");
        let plain = dir.join("plain.jsonl");
        let atomic = dir.join("atomic.jsonl");
        let records = vec![sample()];
        write_jsonl(&plain, &records).unwrap();
        write_jsonl_atomic(&atomic, &records).unwrap();
        assert_eq!(
            std::fs::read_to_string(&plain).unwrap(),
            std::fs::read_to_string(&atomic).unwrap()
        );
        assert!(!dir.join("atomic.jsonl.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lossy_read_skips_truncated_tail() {
        let dir = std::env::temp_dir().join("fairlens_lossy_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("killed.jsonl");
        let good = sample().to_json();
        let truncated = &good[..good.len() / 2]; // simulate a mid-write kill
        std::fs::write(&path, format!("{good}\n{truncated}")).unwrap();
        let (records, skipped) = read_jsonl_lossy(&path).unwrap();
        assert_eq!(records, vec![sample()]);
        assert_eq!(skipped, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failures_lossy_read_skips_truncated_last_line() {
        let dir = std::env::temp_dir().join("fairlens_failures_lossy_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("killed.failures.jsonl");
        let good = sample_failure().to_json();
        let truncated = &good[..good.len() - 7]; // kill mid-append
        std::fs::write(&path, format!("{good}\n{truncated}")).unwrap();
        let (failures, skipped) = read_failures_lossy(&path).unwrap();
        assert_eq!(failures, vec![sample_failure()]);
        assert_eq!(skipped, 1);
        // The strict reader refuses the same file — the resume path must
        // use the lossy one.
        assert!(read_failures(&path).is_err());
        // And a missing sidecar is an empty list, not an error.
        let (none, skipped) = read_failures_lossy(&dir.join("absent.jsonl")).unwrap();
        assert!(none.is_empty());
        assert_eq!(skipped, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lossy_reads_skip_interleaved_foreign_lines() {
        // A resume pointed at concatenated checkpoint output can see
        // record and failure lines interleaved in one file; each lossy
        // reader must keep its own rows and count the other kind as
        // skipped rather than abort the resume.
        let dir = std::env::temp_dir().join("fairlens_interleave_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mixed.jsonl");
        let r1 = sample().to_json();
        let f1 = sample_failure().to_json();
        let mut r2 = sample();
        r2.fold = 9;
        std::fs::write(&path, format!("{r1}\n{f1}\n{}\n", r2.to_json())).unwrap();
        let (records, skipped) = read_jsonl_lossy(&path).unwrap();
        assert_eq!(records, vec![sample(), r2]);
        assert_eq!(skipped, 1);
        let (failures, skipped) = read_failures_lossy(&path).unwrap();
        assert_eq!(failures, vec![sample_failure()]);
        assert_eq!(skipped, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn attempts_overflow_is_rejected() {
        // u64::MAX fits the JSON integer model but not the u32 field; the
        // parser must fail loudly instead of wrapping.
        let record_line =
            sample().to_json().replace("\"attempts\":1", "\"attempts\":4294967296");
        let err = RunRecord::from_json(&record_line).unwrap_err();
        assert!(err.contains("overflows u32"), "{err}");
        let failure_line =
            sample_failure().to_json().replace("\"attempts\":2", "\"attempts\":18446744073709551615");
        let err = CellFailure::from_json(&failure_line).unwrap_err();
        assert!(err.contains("overflows u32"), "{err}");
        // The boundary value itself still parses.
        let max_line =
            sample().to_json().replace("\"attempts\":1", "\"attempts\":4294967295");
        assert_eq!(RunRecord::from_json(&max_line).unwrap().attempts, u32::MAX);
    }
}
