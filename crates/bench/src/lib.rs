//! # fairlens-bench
//!
//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (Section 4) against the FairLens implementations.
//!
//! | binary | paper artefact |
//! |---|---|
//! | `fig10_correctness_fairness` | Fig. 10(a–d): 4 correctness + 5 fairness metrics × 19 approaches × 4 datasets |
//! | `fig11_scalability` | Fig. 11(a–c): runtime vs data size; Fig. 11(d–f): runtime vs #attributes |
//! | `fig12_stability` | Fig. 12 (headline) and Figs. 13–16 (full): metric variance over 10 random folds |
//!
//! Criterion micro-benchmarks (`cargo bench -p fairlens-bench`) cover
//! per-approach training latency and the solver kernels.
//!
//! This library crate holds the shared machinery: the evaluation runner
//! (train → predict → all nine metrics, with wall-clock timing), plain-text
//! table/series printers, and summary statistics for the stability runs.

use std::time::{Duration, Instant};

use fairlens_core::{Approach, CoreError, FittedPipeline};
use fairlens_frame::Dataset;
use fairlens_metrics::{causal_discrimination, causal_risk_difference, MetricReport};
use fairlens_synth::DatasetKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One evaluated cell of Fig. 10: the nine metrics plus the fit time.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Approach display name.
    pub approach: &'static str,
    /// Stage label (`pre` / `in` / `post` / `baseline`).
    pub stage: &'static str,
    /// The nine normalised metrics.
    pub report: MetricReport,
    /// Wall-clock training time (repair + train + adjuster fit).
    pub fit_time: Duration,
}

/// Train `approach` on `train`, evaluate on `test` with the paper's metric
/// suite (CD at 99 %/1 %, CRD with the dataset's resolving attributes).
pub fn evaluate(
    approach: &Approach,
    kind: DatasetKind,
    train: &Dataset,
    test: &Dataset,
    seed: u64,
) -> Result<Evaluation, CoreError> {
    let t0 = Instant::now();
    let fitted = approach.fit(train, seed)?;
    let fit_time = t0.elapsed();
    let report = evaluate_fitted(&fitted, kind, test, seed);
    Ok(Evaluation {
        approach: approach.name,
        stage: approach.stage.label(),
        report,
        fit_time,
    })
}

/// Metric suite for an already-fitted pipeline.
pub fn evaluate_fitted(
    fitted: &FittedPipeline,
    kind: DatasetKind,
    test: &Dataset,
    seed: u64,
) -> MetricReport {
    let preds = fitted.predict(test);
    let mut cd_rng = StdRng::seed_from_u64(seed ^ 0xCD);
    let cd = causal_discrimination(test, |d| fitted.predict(d), 0.99, 0.01, &mut cd_rng);
    let crd = causal_risk_difference(test, &preds, kind.resolving_attrs());
    MetricReport::from_predictions(test.labels(), &preds, test.sensitive(), cd, crd)
}

/// Time just the training of an approach (the Fig. 11 quantity, before
/// baseline subtraction).
pub fn time_fit(approach: &Approach, train: &Dataset, seed: u64) -> Result<Duration, CoreError> {
    let t0 = Instant::now();
    let _ = approach.fit(train, seed)?;
    Ok(t0.elapsed())
}

/// Render one Fig. 10 panel as a plain-text table.
pub fn print_fig10_table(dataset: &str, rows: &[Evaluation], baseline: Option<&Evaluation>) {
    println!();
    println!("=== Fig. 10 — {dataset} ===");
    print!("{:<9} {:<19}", "stage", "approach");
    for h in MetricReport::headers() {
        print!(" {h:>9}");
    }
    println!(" {:>9}", "fit(ms)");
    let print_row = |e: &Evaluation| {
        print!("{:<9} {:<19}", e.stage, e.approach);
        for v in e.report.values() {
            print!(" {v:>9.3}");
        }
        println!(" {:>9}", e.fit_time.as_millis());
    };
    if let Some(b) = baseline {
        print_row(b);
    }
    for e in rows {
        print_row(e);
    }
}

/// Mean / std / min / max over a sample (population std, as the paper's
/// box plots summarise observed folds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Summarise a sample; zeroes for the empty sample.
pub fn summarize(values: &[f64]) -> Summary {
    if values.is_empty() {
        return Summary { mean: 0.0, std: 0.0, min: 0.0, max: 0.0 };
    }
    let mean = fairlens_linalg::vector::mean(values);
    let std = fairlens_linalg::vector::stddev(values);
    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        min = min.min(v);
        max = max.max(v);
    }
    Summary { mean, std, min, max }
}

/// Parse a `--scale` style CLI argument shared by the binaries.
///
/// * `paper` (default) — the paper's documented dataset sizes;
/// * `quick` — sizes capped at 8 000 rows, for smoke runs and CI.
pub fn scale_rows(kind: DatasetKind, scale: &str) -> usize {
    match scale {
        "quick" => kind.default_rows().min(8_000),
        _ => kind.default_rows(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairlens_core::baseline_approach;
    use fairlens_frame::split;

    #[test]
    fn evaluate_baseline_on_german() {
        let kind = DatasetKind::German;
        let data = kind.generate(800, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let (train, test) = split::train_test_split(&data, 0.3, &mut rng);
        let e = evaluate(&baseline_approach(), kind, &train, &test, 1).unwrap();
        assert!(e.report.accuracy > 0.55, "accuracy {}", e.report.accuracy);
        assert_eq!(e.stage, "baseline");
        for v in e.report.values() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn summary_statistics() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std - (1.25_f64).sqrt()).abs() < 1e-12);
        assert_eq!(summarize(&[]).mean, 0.0);
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(scale_rows(DatasetKind::Adult, "paper"), 45_222);
        assert_eq!(scale_rows(DatasetKind::Adult, "quick"), 8_000);
        assert_eq!(scale_rows(DatasetKind::German, "quick"), 1_000);
    }
}
