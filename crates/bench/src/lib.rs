//! # fairlens-bench
//!
//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (Section 4) against the FairLens implementations.
//!
//! | binary | paper artefact |
//! |---|---|
//! | `fig10_correctness_fairness` | Fig. 10(a–d): 4 correctness + 5 fairness metrics × 19 approaches × 4 datasets |
//! | `fig11_scalability` | Fig. 11(a–c): runtime vs data size; Fig. 11(d–f): runtime vs #attributes |
//! | `fig12_stability` | Fig. 12 (headline) and Figs. 13–16 (full): metric variance over 10 random folds |
//! | `ablations` | DESIGN.md's knob sweeps (Zafar `c`, Salimi strata, CD bounds, Thomas tolerance) |
//!
//! All four binaries are built on the same three-layer API:
//!
//! 1. [`spec::ExperimentSpec`] — a builder describing *what* to run
//!    (datasets, approaches, folds, scale, CD bounds);
//! 2. [`runner::Runner`] — a work-stealing thread pool that evaluates every
//!    (approach × dataset × fold) cell with per-cell deterministic seeding,
//!    so `--threads N` and `--threads 1` produce identical numbers; under a
//!    [`runner::RunPolicy`] it additionally isolates panics, enforces
//!    per-cell deadlines, retries transient failures with derived seeds,
//!    and streams checkpoints so a killed run is resumable;
//! 3. [`record::RunRecord`] — one structured result row per cell,
//!    serialised as JSON-lines under `results/`, with failed cells in a
//!    `*.failures.jsonl` sidecar ([`record::CellFailure`]).
//!
//! [`cli::CommonArgs`] gives the binaries a shared `--threads/--seed/
//! --scale/--out/--cell-timeout/--retries/--resume` surface.
//! Criterion micro-benchmarks
//! (`cargo bench -p fairlens-bench`) cover per-approach training latency
//! and the solver kernels.
//!
//! The pre-runner entry points ([`evaluate`], [`evaluate_fitted`],
//! [`time_fit`]) remain as deprecated wrappers over the same internals.

use std::time::{Duration, Instant};

use fairlens_core::{Approach, CoreError, FittedPipeline};
use fairlens_frame::Dataset;
use fairlens_metrics::{causal_discrimination, causal_risk_difference, MetricReport};
use fairlens_synth::DatasetKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod cli;
pub mod record;
pub mod runner;
pub mod spec;
pub mod xverify;

/// The shared JSON machinery the records are serialized with, re-exported
/// so downstream result-file tooling keeps a single import root.
pub use fairlens_json as json;

pub use cli::CommonArgs;
pub use record::{
    failures_path, read_failures, read_failures_lossy, read_jsonl, read_jsonl_lossy, write_jsonl,
    write_jsonl_atomic, RunRecord, METRIC_KEYS,
};
pub use runner::{CellFailure, FailureKind, RunBatch, RunPolicy, Runner};
#[cfg(any(test, feature = "fault-inject"))]
pub use runner::{FaultKind, FaultSpec};
pub use spec::{cell_seed, retry_seed, ApproachSelector, ExperimentSpec, ScaleSpec};

/// The paper's CD estimation bound: 99 % confidence, 1 % error.
pub const PAPER_CD_BOUNDS: (f64, f64) = (0.99, 0.01);

/// The full metric suite for a fitted pipeline and its predictions on
/// `test`: confusion-matrix metrics, DI*, TPR/TNR balance, interventional
/// CD (re-predicting through the pipeline with `S` flipped, RNG seeded
/// from `cd_seed ^ 0xCD`) and CRD with the dataset's resolving attributes.
/// Shared by the runner, the model exporter and the deprecated free
/// functions.
pub fn metric_suite(
    fitted: &FittedPipeline,
    kind: DatasetKind,
    test: &Dataset,
    preds: &[u8],
    cd_seed: u64,
    cd_bounds: (f64, f64),
) -> MetricReport {
    let mut cd_rng = StdRng::seed_from_u64(cd_seed ^ 0xCD);
    let cd = causal_discrimination(
        test,
        |d| fitted.predict(d),
        cd_bounds.0,
        cd_bounds.1,
        &mut cd_rng,
    );
    let crd = causal_risk_difference(test, preds, kind.resolving_attrs());
    MetricReport::from_predictions(test.labels(), preds, test.sensitive(), cd, crd)
}

/// One evaluated cell of Fig. 10: the nine metrics plus the fit time.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Approach display name.
    pub approach: &'static str,
    /// Stage label (`pre` / `in` / `post` / `baseline`).
    pub stage: &'static str,
    /// The nine normalised metrics.
    pub report: MetricReport,
    /// Wall-clock training time (repair + train + adjuster fit).
    pub fit_time: Duration,
}

/// Train `approach` on `train`, evaluate on `test` with the paper's metric
/// suite (CD at 99 %/1 %, CRD with the dataset's resolving attributes).
#[deprecated(
    since = "0.2.0",
    note = "build a spec::ExperimentSpec and evaluate it with runner::Runner::run"
)]
pub fn evaluate(
    approach: &Approach,
    kind: DatasetKind,
    train: &Dataset,
    test: &Dataset,
    seed: u64,
) -> Result<Evaluation, CoreError> {
    let t0 = Instant::now();
    let fitted = approach.fit(train, seed)?;
    let fit_time = t0.elapsed();
    let preds = fitted.predict(test);
    let report = metric_suite(&fitted, kind, test, &preds, seed, PAPER_CD_BOUNDS);
    Ok(Evaluation {
        approach: approach.name,
        stage: approach.stage.label(),
        report,
        fit_time,
    })
}

/// Metric suite for an already-fitted pipeline.
#[deprecated(
    since = "0.2.0",
    note = "build a spec::ExperimentSpec and evaluate it with runner::Runner::run"
)]
pub fn evaluate_fitted(
    fitted: &FittedPipeline,
    kind: DatasetKind,
    test: &Dataset,
    seed: u64,
) -> MetricReport {
    let preds = fitted.predict(test);
    metric_suite(fitted, kind, test, &preds, seed, PAPER_CD_BOUNDS)
}

/// Time just the training of an approach (the Fig. 11 quantity, before
/// baseline subtraction).
#[deprecated(
    since = "0.2.0",
    note = "use a timing_only spec::ExperimentSpec with runner::Runner::run"
)]
pub fn time_fit(approach: &Approach, train: &Dataset, seed: u64) -> Result<Duration, CoreError> {
    let t0 = Instant::now();
    let _ = approach.fit(train, seed)?;
    Ok(t0.elapsed())
}

/// Render one Fig. 10 panel as a plain-text table from runner records.
pub fn print_fig10_records(dataset: &str, rows: &[&RunRecord]) {
    println!();
    println!("=== Fig. 10 — {dataset} ===");
    print!("{:<9} {:<19}", "stage", "approach");
    for h in MetricReport::headers() {
        print!(" {h:>9}");
    }
    println!(" {:>9}", "fit(ms)");
    for r in rows {
        print!("{:<9} {:<19}", r.stage, r.approach);
        match &r.metrics {
            Some(values) => {
                for v in values {
                    print!(" {v:>9.3}");
                }
            }
            None => {
                for _ in MetricReport::headers() {
                    print!(" {:>9}", "-");
                }
            }
        }
        println!(" {:>9.0}", r.fit_ms);
    }
}

/// Render one Fig. 10 panel as a plain-text table.
pub fn print_fig10_table(dataset: &str, rows: &[Evaluation], baseline: Option<&Evaluation>) {
    println!();
    println!("=== Fig. 10 — {dataset} ===");
    print!("{:<9} {:<19}", "stage", "approach");
    for h in MetricReport::headers() {
        print!(" {h:>9}");
    }
    println!(" {:>9}", "fit(ms)");
    let print_row = |e: &Evaluation| {
        print!("{:<9} {:<19}", e.stage, e.approach);
        for v in e.report.values() {
            print!(" {v:>9.3}");
        }
        println!(" {:>9}", e.fit_time.as_millis());
    };
    if let Some(b) = baseline {
        print_row(b);
    }
    for e in rows {
        print_row(e);
    }
}

/// Mean / std / min / max over the finite portion of a sample (population
/// std, as the paper's box plots summarise observed folds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Number of non-finite values (NaN / ±∞) excluded from the sample —
    /// e.g. precision of an all-negative predictor, or a failed fold's
    /// placeholder.
    pub skipped: usize,
}

/// Summarise a sample, skipping NaN / ±∞ (counted in `skipped` rather than
/// poisoning every statistic); zeroes for an empty or all-non-finite
/// sample.
pub fn summarize(values: &[f64]) -> Summary {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let skipped = values.len() - finite.len();
    if finite.is_empty() {
        return Summary { mean: 0.0, std: 0.0, min: 0.0, max: 0.0, skipped };
    }
    let mean = fairlens_linalg::vector::mean(&finite);
    let std = fairlens_linalg::vector::stddev(&finite);
    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in &finite {
        min = min.min(v);
        max = max.max(v);
    }
    Summary { mean, std, min, max, skipped }
}

/// Parse a `--scale` style CLI argument shared by the binaries.
///
/// * `paper` (default) — the paper's documented dataset sizes;
/// * `quick` — sizes capped at 8 000 rows, for smoke runs and CI.
pub fn scale_rows(kind: DatasetKind, scale: &str) -> usize {
    ScaleSpec::parse(scale).unwrap_or(ScaleSpec::Paper).rows(kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairlens_core::baseline_approach;
    use fairlens_frame::split;

    #[test]
    #[allow(deprecated)] // the wrappers must keep working until removal
    fn evaluate_baseline_on_german() {
        let kind = DatasetKind::German;
        let data = kind.generate(800, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let (train, test) = split::train_test_split(&data, 0.3, &mut rng);
        let e = evaluate(&baseline_approach(), kind, &train, &test, 1).unwrap();
        assert!(e.report.accuracy > 0.55, "accuracy {}", e.report.accuracy);
        assert_eq!(e.stage, "baseline");
        for v in e.report.values() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_agree_with_each_other() {
        let kind = DatasetKind::German;
        let data = kind.generate(400, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let (train, test) = split::train_test_split(&data, 0.3, &mut rng);
        let approach = baseline_approach();
        let e = evaluate(&approach, kind, &train, &test, 9).unwrap();
        let fitted = approach.fit(&train, 9).unwrap();
        let r = evaluate_fitted(&fitted, kind, &test, 9);
        assert_eq!(e.report.values(), r.values());
        assert!(time_fit(&approach, &train, 9).is_ok());
    }

    #[test]
    fn summary_statistics() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std - (1.25_f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.skipped, 0);
        assert_eq!(summarize(&[]).mean, 0.0);
    }

    #[test]
    fn summary_skips_non_finite() {
        let s = summarize(&[1.0, f64::NAN, 3.0, f64::INFINITY, f64::NEG_INFINITY]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.skipped, 3);
        let all_bad = summarize(&[f64::NAN, f64::NAN]);
        assert_eq!(all_bad.mean, 0.0);
        assert_eq!(all_bad.skipped, 2);
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(scale_rows(DatasetKind::Adult, "paper"), 45_222);
        assert_eq!(scale_rows(DatasetKind::Adult, "quick"), 8_000);
        assert_eq!(scale_rows(DatasetKind::German, "quick"), 1_000);
    }
}
