//! The parallel, fault-tolerant experiment executor.
//!
//! [`Runner::run`] evaluates every (approach × dataset × fold) cell of an
//! [`ExperimentSpec`](crate::spec::ExperimentSpec) on a work-stealing pool
//! of scoped worker threads (`std::thread::scope` over a shared atomic
//! queue — no external dependencies). Determinism is structural, not
//! accidental:
//!
//! * each cell's PRNG seed is derived from the experiment seed and the
//!   cell's coordinates ([`crate::spec::cell_seed`]), never from which
//!   worker happened to claim it;
//! * datasets and fold splits are materialised once, up front, and shared
//!   across workers by reference (scoped threads borrow them — no clones);
//! * results are reported in canonical cell order regardless of completion
//!   order.
//!
//! So `--threads 8` and `--threads 1` produce byte-identical
//! [`RunRecord`]s. Each cell itself is single-threaded (the paper times
//! everything single-threaded); parallelism only spreads *different* cells
//! across cores, which also keeps the Fig. 11 timing protocol honest:
//! every timing measurement is one approach on one thread.
//!
//! [`Runner::run_with`] layers fault tolerance on top via a [`RunPolicy`]:
//!
//! * **panic isolation** — every cell runs under `catch_unwind` with a
//!   scoped hook capturing the panic message, so a poisoned solver becomes
//!   a [`CellFailure`] with [`FailureKind::Panicked`] instead of tearing
//!   down the pool;
//! * **per-cell deadlines** — a watchdog thread cancels the cell's
//!   [`Budget`] once `cell_timeout` elapses; solver iteration loops call
//!   `fairlens_budget::checkpoint()` and unwind cooperatively, yielding
//!   [`FailureKind::TimedOut`] with partial timing;
//! * **bounded retries** — transient numeric errors
//!   ([`CoreError::is_transient`]) retry up to `retries` times with
//!   [`retry_seed`]-derived seeds (attempt count lands in the record);
//! * **checkpointed output** — records append to the results JSONL as
//!   cells finish (failures to the `*.failures.jsonl` sidecar), the final
//!   file is rewritten canonically via atomic tmp+rename, and `resume`
//!   preloads completed cells from a previous partial run.

use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Once, PoisonError};
use std::time::{Duration, Instant};

use fairlens_budget::{Budget, Interrupted};
use fairlens_core::{Approach, CoreError};
use fairlens_frame::{split, Dataset};
use fairlens_synth::DatasetKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::record::{
    failures_path, read_failures_lossy, read_jsonl_lossy, write_failures_atomic,
    write_jsonl_atomic, RunRecord,
};
pub use crate::record::{CellFailure, FailureKind};
use crate::spec::{dataset_seed, fold_seed, retry_seed, Cell, ExperimentSpec};

/// Poison-tolerant lock: a worker that panicked inside a cell has already
/// been converted to a [`CellFailure`]; its poisoned data is still valid.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Fault-tolerance knobs for [`Runner::run_with`]. The default policy is
/// behaviourally identical to the pre-fault-tolerance runner: no deadline,
/// no retries, no checkpoint file.
#[derive(Debug, Clone, Default)]
pub struct RunPolicy {
    /// Wall-clock budget per cell attempt; `None` = unlimited.
    pub cell_timeout: Option<Duration>,
    /// Extra attempts (with derived seeds) after a transient failure.
    pub retries: u32,
    /// Results file to stream append-only checkpoints into and to rewrite
    /// canonically (atomic tmp+rename) when the run completes. Failures go
    /// to the [`failures_path`] sidecar next to it.
    pub checkpoint: Option<PathBuf>,
    /// A partial results file from an interrupted run; cells whose records
    /// are already present are reused verbatim instead of re-run.
    pub resume: Option<PathBuf>,
    /// Trace sink for phase-level profiling. When set, every dataset
    /// materialisation records a `data/...` track (with a `synth` span)
    /// and every executed cell records a `cell/...` track with
    /// `encode`/`fit`/`predict`/`metrics` spans plus solver iteration
    /// counters. Resumed cells are not re-run and leave no trace. The
    /// caller writes the sink out (see `CommonArgs::finish_trace`).
    pub trace: Option<fairlens_trace::TraceSink>,
    /// Injected faults for tests (see [`FaultSpec`]); when empty, the
    /// `FAIRLENS_FAULT` environment variable is consulted.
    #[cfg(any(test, feature = "fault-inject"))]
    pub faults: Vec<FaultSpec>,
}

/// What a fault injection does to a matching cell.
#[cfg(any(test, feature = "fault-inject"))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the cell (exercises panic isolation).
    Panic,
    /// Spin forever, polling the budget (exercises the deadline path —
    /// only terminates when a `cell_timeout` is set).
    Hang,
    /// Fail with a transient numeric error on the first `k` attempts
    /// (exercises the retry path).
    Flaky(u32),
}

/// One injected fault, matched by approach name and fold. Parsed from the
/// `FAIRLENS_FAULT` environment variable (`;`-separated):
/// `panic:<approach>:<fold>`, `hang:<approach>:<fold>`,
/// `flaky:<k>:<approach>:<fold>`.
#[cfg(any(test, feature = "fault-inject"))]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// What to do.
    pub kind: FaultKind,
    /// Approach display name the fault applies to.
    pub approach: String,
    /// Fold index the fault applies to.
    pub fold: usize,
}

#[cfg(any(test, feature = "fault-inject"))]
impl FaultSpec {
    /// Parse a `;`-separated fault list.
    pub fn parse_list(s: &str) -> Result<Vec<FaultSpec>, String> {
        s.split(';')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .map(Self::parse_one)
            .collect()
    }

    fn parse_one(s: &str) -> Result<FaultSpec, String> {
        let parts: Vec<&str> = s.split(':').collect();
        let fold = |f: &str| f.parse::<usize>().map_err(|_| format!("bad fold in fault {s:?}"));
        match parts.as_slice() {
            ["panic", approach, f] => {
                Ok(FaultSpec { kind: FaultKind::Panic, approach: (*approach).into(), fold: fold(f)? })
            }
            ["hang", approach, f] => {
                Ok(FaultSpec { kind: FaultKind::Hang, approach: (*approach).into(), fold: fold(f)? })
            }
            ["flaky", k, approach, f] => Ok(FaultSpec {
                kind: FaultKind::Flaky(
                    k.parse().map_err(|_| format!("bad flaky count in fault {s:?}"))?,
                ),
                approach: (*approach).into(),
                fold: fold(f)?,
            }),
            _ => Err(format!(
                "bad fault {s:?} (expected panic:<approach>:<fold>, hang:<approach>:<fold> \
                 or flaky:<k>:<approach>:<fold>)"
            )),
        }
    }

    /// Faults from the `FAIRLENS_FAULT` environment variable. Malformed
    /// specs abort the process — this is a test/CI configuration error,
    /// detected before any cell runs.
    pub fn from_env() -> Vec<FaultSpec> {
        match std::env::var("FAIRLENS_FAULT") {
            Ok(v) if !v.trim().is_empty() => {
                Self::parse_list(&v).unwrap_or_else(|e| panic!("FAIRLENS_FAULT: {e}"))
            }
            _ => Vec::new(),
        }
    }
}

#[cfg(any(test, feature = "fault-inject"))]
type Faults = Vec<FaultSpec>;
#[cfg(not(any(test, feature = "fault-inject")))]
type Faults = ();

#[cfg(any(test, feature = "fault-inject"))]
fn apply_faults(
    faults: &[FaultSpec],
    approach: &str,
    fold: usize,
    attempt: u32,
) -> Result<(), CoreError> {
    for f in faults {
        if f.approach != approach || f.fold != fold {
            continue;
        }
        match f.kind {
            FaultKind::Panic => panic!("injected fault: panic in {approach} fold {fold}"),
            FaultKind::Hang => loop {
                fairlens_budget::checkpoint();
                std::thread::sleep(Duration::from_millis(2));
            },
            FaultKind::Flaky(k) => {
                if attempt < k {
                    return Err(CoreError::Numeric(format!(
                        "injected transient fault (attempt {} of {k} doomed)",
                        attempt + 1
                    )));
                }
            }
        }
    }
    Ok(())
}

/// Everything one [`Runner::run`] produced: records in canonical cell
/// order, failures likewise.
#[derive(Debug, Clone, Default)]
pub struct RunBatch {
    /// One record per successful cell, dataset-major / fold / approach.
    pub records: Vec<RunRecord>,
    /// Cells that failed, with the failure taxonomy (the paper's
    /// Calmon-on-Credit fallback is applied before a failure is declared).
    pub failures: Vec<CellFailure>,
    /// Cells reused verbatim from the `resume` file instead of re-run.
    pub resumed: usize,
}

impl RunBatch {
    /// Serialise the records to a JSON-lines file (see
    /// [`crate::record::write_jsonl`]).
    pub fn write_jsonl(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        crate::record::write_jsonl(path.as_ref(), &self.records)
    }

    /// Records for one dataset, in cell order.
    pub fn for_dataset<'a>(&'a self, dataset: &'a str) -> impl Iterator<Item = &'a RunRecord> {
        self.records.iter().filter(move |r| r.dataset == dataset)
    }
}

/// The thread-pool executor. `threads` is the pool width; the pool exists
/// only for the duration of one [`Runner::run`] call.
#[derive(Debug, Clone, Copy)]
pub struct Runner {
    threads: usize,
}

impl Runner {
    /// A runner with `threads` workers; `0` means one worker per available
    /// hardware thread.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            threads
        };
        Self { threads }
    }

    /// The resolved pool width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Evaluate every cell of `spec` with the default (no fault-tolerance)
    /// policy. Byte-identical to the pre-fault-tolerance runner.
    pub fn run(&self, spec: &ExperimentSpec) -> RunBatch {
        self.run_with(spec, &RunPolicy::default())
    }

    /// Evaluate every cell of `spec` under `policy`. Always terminates
    /// with a complete accounting: every cell ends up either in
    /// `records` or in `failures`.
    pub fn run_with(&self, spec: &ExperimentSpec, policy: &RunPolicy) -> RunBatch {
        install_capture_hook();
        let cells = spec.cells();
        let contexts = prepare_contexts(spec, policy.trace.as_ref());

        #[cfg(any(test, feature = "fault-inject"))]
        let faults: Faults =
            if policy.faults.is_empty() { FaultSpec::from_env() } else { policy.faults.clone() };
        #[cfg(not(any(test, feature = "fault-inject")))]
        let faults: Faults = ();

        // Resume: reuse records from a previous partial run. A record is
        // the same cell iff approach, dataset, fold and derived seed all
        // match — plus rows (the Fig. 11 size sweep stores many specs in
        // one file) and, under an attribute sweep, attrs. `attrs` is NOT
        // matched otherwise: the Calmon-on-Credit fallback legitimately
        // records fewer attributes than the dataset has.
        //
        // Records and failures that match no cell of this spec are *carried*:
        // they re-appear ahead of this spec's rows in the finalized file.
        // That is what lets the multi-spec binaries (Fig. 11, ablations) run
        // several specs against one shared checkpoint file — each spec
        // resumes from the file and carries every other spec's rows through.
        let mut prefilled: Vec<Option<RunRecord>> = (0..cells.len()).map(|_| None).collect();
        let mut resumed = 0usize;
        let mut carried_records: Vec<RunRecord> = Vec::new();
        let mut carried_failures: Vec<CellFailure> = Vec::new();
        if let Some(path) = &policy.resume {
            match read_jsonl_lossy(path) {
                Ok((loaded, skipped)) => {
                    if skipped > 0 {
                        eprintln!(
                            "[runner] resume: skipped {skipped} unparseable line(s) in {}",
                            path.display()
                        );
                    }
                    // Option slots so matched records can be taken without
                    // disturbing the file order of the unmatched remainder.
                    let mut loaded: Vec<Option<RunRecord>> =
                        loaded.into_iter().map(Some).collect();
                    for (slot, cell) in prefilled.iter_mut().zip(&cells) {
                        let Ok(approach) = &cell.approach else { continue };
                        let Some(ctx) = contexts.iter().find(|c| c.kind == cell.dataset) else {
                            continue;
                        };
                        let matched = loaded.iter().position(|entry| {
                            entry.as_ref().is_some_and(|r| {
                                r.approach == approach.name
                                    && r.dataset == cell.dataset.name()
                                    && r.fold == cell.fold
                                    && r.seed == cell.seed
                                    && r.rows == ctx.full.n_rows()
                                    && match spec.attr_limit() {
                                        Some(_) => r.attrs == ctx.full.n_attrs(),
                                        None => true,
                                    }
                            })
                        });
                        if let Some(pos) = matched {
                            *slot = loaded[pos].take();
                            resumed += 1;
                        }
                    }
                    carried_records = loaded.into_iter().flatten().collect();
                }
                // A fresh multi-spec run resumes from a not-yet-created
                // shared file on its first spec; that is not worth a warning.
                Err(e) if !path.exists() => {
                    let _ = e;
                }
                Err(e) => eprintln!(
                    "[runner] resume: could not read {}: {e} (running every cell)",
                    path.display()
                ),
            }
            // Failures recorded for cells of *this* spec are dropped (those
            // cells are about to be re-attempted); the rest are carried.
            match read_failures_lossy(&failures_path(path)) {
                Ok((old, skipped)) => {
                    if skipped > 0 {
                        eprintln!(
                            "[runner] resume: skipped {skipped} unparseable failure line(s) in {}",
                            failures_path(path).display()
                        );
                    }
                    carried_failures = old
                        .into_iter()
                        .filter(|f| {
                            !cells.iter().any(|cell| {
                                cell.dataset.name() == f.dataset
                                    && cell.fold == f.fold
                                    && match &cell.approach {
                                        Ok(a) => a.name == f.approach,
                                        Err(_) => f.approach == "<unresolved>",
                                    }
                            })
                        })
                        .collect();
                }
                Err(e) => eprintln!("[runner] resume: ignoring unreadable failures sidecar: {e}"),
            }
        }

        let sink = policy.checkpoint.as_ref().and_then(|p| match CheckpointSink::open(p) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("[runner] cannot open checkpoint {}: {e}", p.display());
                None
            }
        });
        let watchdog = policy.cell_timeout.map(|_| Watchdog::spawn());

        let pending: Vec<usize> = (0..cells.len()).filter(|&i| prefilled[i].is_none()).collect();
        let run_one = |i: usize| -> (usize, Outcome) {
            let outcome =
                execute_cell(spec, &cells[i], &contexts, policy, watchdog.as_ref(), &faults);
            if let Some(sink) = &sink {
                match &outcome {
                    Ok(r) => sink.append_record(r),
                    Err(f) => sink.append_failure(f),
                }
            }
            (i, outcome)
        };

        let mut outcomes: Vec<(usize, Outcome)> = if self.threads <= 1 || pending.len() <= 1 {
            // Sequential reference path: same per-cell code, no pool.
            pending.iter().map(|&i| run_one(i)).collect()
        } else {
            let next = AtomicUsize::new(0);
            let collected: Mutex<Vec<(usize, Outcome)>> =
                Mutex::new(Vec::with_capacity(pending.len()));
            std::thread::scope(|s| {
                for _ in 0..self.threads.min(pending.len()) {
                    s.spawn(|| {
                        // Claim cells off the shared queue until it drains;
                        // buffer outcomes locally so the mutex is touched
                        // once per worker, not once per cell.
                        let mut local = Vec::new();
                        loop {
                            let qi = next.fetch_add(1, Ordering::Relaxed);
                            if qi >= pending.len() {
                                break;
                            }
                            local.push(run_one(pending[qi]));
                        }
                        lock_unpoisoned(&collected).extend(local);
                    });
                }
            });
            collected.into_inner().unwrap_or_else(PoisonError::into_inner)
        };
        outcomes.sort_by_key(|(i, _)| *i);

        let mut batch = RunBatch { records: Vec::new(), failures: Vec::new(), resumed };
        let mut outcome_iter = outcomes.into_iter();
        for (i, slot) in prefilled.into_iter().enumerate() {
            if let Some(record) = slot {
                batch.records.push(record);
                continue;
            }
            match outcome_iter.next() {
                Some((oi, Ok(record))) if oi == i => batch.records.push(record),
                Some((oi, Err(failure))) if oi == i => batch.failures.push(failure),
                _ => unreachable!("every pending cell yields exactly one outcome"),
            }
        }

        if let Some(path) = &policy.checkpoint {
            drop(sink); // flush the append log before rewriting canonically
            if !carried_records.is_empty() || !carried_failures.is_empty() {
                eprintln!(
                    "[runner] carrying {} record(s) / {} failure(s) from outside this spec",
                    carried_records.len(),
                    carried_failures.len()
                );
            }
            let mut all_records = carried_records;
            all_records.extend(batch.records.iter().cloned());
            if let Err(e) = write_jsonl_atomic(path, &all_records) {
                eprintln!("[runner] cannot finalize {}: {e}", path.display());
            }
            let mut all_failures = carried_failures;
            all_failures.extend(batch.failures.iter().cloned());
            let sidecar = failures_path(path);
            if let Err(e) = write_failures_atomic(&sidecar, &all_failures) {
                eprintln!("[runner] cannot finalize {}: {e}", sidecar.display());
            }
        }
        batch
    }
}

type Outcome = Result<RunRecord, CellFailure>;

// ---------------------------------------------------------------------------
// Checkpoint streaming

/// Append-only record/failure log, flushed per line so a killed run keeps
/// every completed cell. The sidecar is opened lazily: a clean run never
/// creates one.
struct CheckpointSink {
    path: PathBuf,
    records: Mutex<std::io::BufWriter<std::fs::File>>,
    failures: Mutex<Option<std::io::BufWriter<std::fs::File>>>,
}

impl CheckpointSink {
    fn open(path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self {
            path: path.to_owned(),
            records: Mutex::new(std::io::BufWriter::new(file)),
            failures: Mutex::new(None),
        })
    }

    fn append_record(&self, record: &RunRecord) {
        use std::io::Write as _;
        let mut w = lock_unpoisoned(&self.records);
        if let Err(e) = writeln!(w, "{}", record.to_json()).and_then(|()| w.flush()) {
            eprintln!("[runner] checkpoint append failed: {e}");
        }
    }

    fn append_failure(&self, failure: &CellFailure) {
        use std::io::Write as _;
        let mut slot = lock_unpoisoned(&self.failures);
        if slot.is_none() {
            let sidecar = failures_path(&self.path);
            match std::fs::OpenOptions::new().create(true).append(true).open(&sidecar) {
                Ok(file) => *slot = Some(std::io::BufWriter::new(file)),
                Err(e) => {
                    eprintln!("[runner] cannot open {}: {e}", sidecar.display());
                    return;
                }
            }
        }
        let w = slot.as_mut().expect("sidecar opened above");
        if let Err(e) = writeln!(w, "{}", failure.to_json()).and_then(|()| w.flush()) {
            eprintln!("[runner] failure append failed: {e}");
        }
    }
}

// ---------------------------------------------------------------------------
// Watchdog

/// Deadline enforcement: a single polling thread cancels the [`Budget`] of
/// any registered cell whose deadline has passed. The cell itself unwinds
/// at its next `fairlens_budget::checkpoint()` call — cancellation is
/// cooperative, never preemptive, so no state is corrupted.
struct Watchdog {
    inner: Arc<WatchdogInner>,
    handle: Option<std::thread::JoinHandle<()>>,
}

struct WatchdogInner {
    done: AtomicBool,
    next_id: AtomicU64,
    entries: Mutex<Vec<(u64, Instant, Budget)>>,
}

impl Watchdog {
    fn spawn() -> Self {
        let inner = Arc::new(WatchdogInner {
            done: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
            entries: Mutex::new(Vec::new()),
        });
        let poll = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name("fairlens-watchdog".into())
            .spawn(move || {
                while !poll.done.load(Ordering::Acquire) {
                    let now = Instant::now();
                    for (_, deadline, budget) in lock_unpoisoned(&poll.entries).iter() {
                        if *deadline <= now {
                            budget.cancel();
                        }
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            })
            .expect("spawn watchdog thread");
        Self { inner, handle: Some(handle) }
    }

    fn watch(&self, deadline: Instant, budget: Budget) -> WatchGuard {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        lock_unpoisoned(&self.inner.entries).push((id, deadline, budget));
        WatchGuard { inner: Arc::clone(&self.inner), id }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.inner.done.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// RAII deregistration from the watchdog when a cell attempt finishes.
struct WatchGuard {
    inner: Arc<WatchdogInner>,
    id: u64,
}

impl Drop for WatchGuard {
    fn drop(&mut self) {
        lock_unpoisoned(&self.inner.entries).retain(|(id, _, _)| *id != self.id);
    }
}

// ---------------------------------------------------------------------------
// Panic capture

thread_local! {
    static CAPTURING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    static PANIC_MSG: std::cell::RefCell<Option<String>> =
        const { std::cell::RefCell::new(None) };
}

static INSTALL_HOOK: Once = Once::new();

/// Install the process-wide panic hook once. Threads running a cell set
/// the thread-local `CAPTURING` flag, which routes their panic message
/// (with source location) into `PANIC_MSG` instead of stderr; all other
/// threads keep the previous hook's behaviour.
fn install_capture_hook() {
    INSTALL_HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let capturing = CAPTURING.try_with(std::cell::Cell::get).unwrap_or(false);
            if !capturing {
                prev(info);
                return;
            }
            if info.payload().downcast_ref::<Interrupted>().is_some() {
                return; // budget expiry unwind, not a real panic
            }
            let msg = if let Some(s) = info.payload().downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = info.payload().downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            let loc = info
                .location()
                .map(|l| format!(" at {}:{}", l.file(), l.line()))
                .unwrap_or_default();
            let _ = PANIC_MSG.try_with(|m| *m.borrow_mut() = Some(format!("{msg}{loc}")));
        }));
    });
}

// ---------------------------------------------------------------------------
// Cell execution

/// Per-dataset shared inputs: the generated dataset and its fold splits,
/// borrowed (not cloned) by every worker.
struct DataContext {
    kind: DatasetKind,
    full: Dataset,
    folds: Vec<(Dataset, Dataset)>,
}

/// Materialise every dataset and fold split once, before the pool starts.
/// Generation/split seeds exclude the approach name, so all approaches in
/// a fold compare on identical data. With tracing enabled, each dataset
/// records a `data/<name>/r<rows>[/a<k>]` track whose `synth` span covers
/// generation, attribute projection, and fold splitting; this happens
/// sequentially before the pool, so trace order is thread-count-invariant.
fn prepare_contexts(
    spec: &ExperimentSpec,
    trace: Option<&fairlens_trace::TraceSink>,
) -> Vec<DataContext> {
    let mut out: Vec<DataContext> = Vec::new();
    for &kind in spec.dataset_list() {
        if out.iter().any(|c| c.kind == kind) {
            continue;
        }
        let n = spec.scale_spec().rows(kind);
        let _collect = trace.map(|sink| {
            let mut track = format!("data/{}/r{n}", kind.name());
            if let Some(k) = spec.attr_limit() {
                track.push_str(&format!("/a{k}"));
            }
            sink.collect(track)
        });
        let _synth = fairlens_trace::span("synth");
        let mut full = kind.generate(n, dataset_seed(spec.seed, kind.name()));
        if let Some(k) = spec.attr_limit() {
            let idx: Vec<usize> = (0..k.min(full.n_attrs())).collect();
            full = full.select_attrs(&idx);
        }
        let folds = if spec.is_timing_only() {
            Vec::new() // timing cells train on the full dataset
        } else {
            (0..spec.fold_count())
                .map(|fold| {
                    let mut rng =
                        StdRng::seed_from_u64(fold_seed(spec.seed, kind.name(), fold));
                    split::train_test_split(&full, spec.test_fraction(), &mut rng)
                })
                .collect()
        };
        out.push(DataContext { kind, full, folds });
    }
    out
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn timed_fit(
    approach: &Approach,
    train: &Dataset,
    seed: u64,
) -> Result<(fairlens_core::FittedPipeline, f64), CoreError> {
    // The span brackets exactly the region `fit_ms` measures, so the trace
    // and the RunRecord agree on what "fit" cost.
    let _span = fairlens_trace::span("fit");
    let t0 = Instant::now();
    let fitted = approach.fit(train, seed)?;
    Ok((fitted, ms(t0.elapsed())))
}

/// A failed attempt: the structured error (for retry classification) plus
/// the display message (which may carry extra context, e.g. the
/// Calmon-on-Credit fallback chain).
type AttemptError = (CoreError, String);

/// Run one cell under the policy: panic isolation, deadline registration,
/// and the bounded retry loop. Runs entirely on the claiming worker.
fn execute_cell(
    spec: &ExperimentSpec,
    cell: &Cell,
    contexts: &[DataContext],
    policy: &RunPolicy,
    watchdog: Option<&Watchdog>,
    faults: &Faults,
) -> Outcome {
    let started = Instant::now();
    let dataset_name = cell.dataset.name();
    let approach = match &cell.approach {
        Ok(a) => a,
        Err(e) => {
            return Err(CellFailure {
                approach: "<unresolved>".into(),
                dataset: dataset_name.into(),
                fold: cell.fold,
                kind: FailureKind::TrainError,
                error: e.clone(),
                attempts: 0,
                elapsed_ms: 0.0,
            })
        }
    };
    let fail = |kind: FailureKind, error: String, attempts: u32| CellFailure {
        approach: approach.name.to_string(),
        dataset: dataset_name.to_string(),
        fold: cell.fold,
        kind,
        error,
        attempts,
        elapsed_ms: ms(started.elapsed()),
    };

    // One trace track per cell, covering every attempt. The track name
    // carries the same identity fields the resume matcher uses, so
    // `trace_report --results` can join tracks back onto RunRecords.
    let _collect = policy.trace.as_ref().and_then(|sink| {
        let ctx = contexts.iter().find(|c| c.kind == cell.dataset)?;
        Some(sink.collect(format!(
            "cell/{dataset_name}/r{}/a{}/f{}/{}",
            ctx.full.n_rows(),
            ctx.full.n_attrs(),
            cell.fold,
            approach.name
        )))
    });

    let max_attempts = policy.retries.saturating_add(1);
    for attempt in 0..max_attempts {
        let seed = retry_seed(cell.seed, attempt);
        let budget = Budget::new();
        let _watch = match (watchdog, policy.cell_timeout) {
            (Some(w), Some(t)) => Some(w.watch(Instant::now() + t, budget.clone())),
            _ => None,
        };
        let caught = {
            let _installed = budget.install();
            CAPTURING.with(|c| c.set(true));
            PANIC_MSG.with(|m| m.borrow_mut().take());
            let result = panic::catch_unwind(AssertUnwindSafe(|| {
                run_cell_attempt(spec, cell, approach, contexts, seed, attempt, faults)
            }));
            CAPTURING.with(|c| c.set(false));
            result
        };
        match caught {
            Ok(Ok(mut record)) => {
                record.attempts = attempt + 1;
                return Ok(record);
            }
            Ok(Err((error, message))) => {
                if error.is_transient() && attempt + 1 < max_attempts {
                    continue; // retry with the next derived seed
                }
                let kind = if error.is_transient() {
                    FailureKind::ExhaustedRetries
                } else {
                    FailureKind::TrainError
                };
                return Err(fail(kind, message, attempt + 1));
            }
            Err(payload) => {
                if payload.downcast_ref::<Interrupted>().is_some() {
                    let limit = policy
                        .cell_timeout
                        .map(|t| format!("{:.1}s", t.as_secs_f64()))
                        .unwrap_or_else(|| "?".into());
                    return Err(fail(
                        FailureKind::TimedOut,
                        format!("exceeded the {limit} cell deadline"),
                        attempt + 1,
                    ));
                }
                let message = PANIC_MSG
                    .with(|m| m.borrow_mut().take())
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                return Err(fail(FailureKind::Panicked, message, attempt + 1));
            }
        }
    }
    unreachable!("the attempt loop always returns")
}

/// Evaluate one cell attempt. Every random draw comes from `seed` (the
/// cell's own derived seed, or a retry-derived one), but the record keeps
/// the canonical cell seed as its identity.
fn run_cell_attempt(
    spec: &ExperimentSpec,
    cell: &Cell,
    approach: &Approach,
    contexts: &[DataContext],
    seed: u64,
    attempt: u32,
    faults: &Faults,
) -> Result<RunRecord, AttemptError> {
    let to_err = |e: CoreError| -> AttemptError {
        let message = e.to_string();
        (e, message)
    };
    #[cfg(any(test, feature = "fault-inject"))]
    apply_faults(faults, approach.name, cell.fold, attempt).map_err(to_err)?;
    #[cfg(not(any(test, feature = "fault-inject")))]
    let _ = (faults, attempt);

    let dataset_name = cell.dataset.name();
    let ctx = contexts.iter().find(|c| c.kind == cell.dataset).ok_or_else(|| {
        to_err(CoreError::BadInput(format!("no data context prepared for {dataset_name}")))
    })?;

    if spec.is_timing_only() {
        // Fig. 11 protocol: time training (and one prediction pass) on the
        // full dataset, no metric suite. The fold index distinguishes
        // repeated measurements (each with its own derived seed).
        let (fitted, fit_ms) = timed_fit(approach, &ctx.full, seed).map_err(to_err)?;
        let t0 = Instant::now();
        {
            let _span = fairlens_trace::span("predict");
            let _ = fitted.predict(&ctx.full);
        }
        return Ok(RunRecord {
            approach: approach.name.into(),
            stage: approach.stage.label().into(),
            dataset: dataset_name.into(),
            fold: cell.fold,
            seed: cell.seed,
            rows: ctx.full.n_rows(),
            attrs: ctx.full.n_attrs(),
            metrics: None,
            fit_ms,
            predict_ms: ms(t0.elapsed()),
            attempts: 1,
        });
    }

    let (train, test) = &ctx.folds[cell.fold];

    // The paper: "Calmon failed to complete on the Credit dataset due to
    // the large number of attributes (26); we display its performance over
    // 22 attributes (the most it could handle)."
    let mut projected_test: Option<Dataset> = None;
    let (fitted, fit_ms) = match timed_fit(approach, train, seed) {
        Ok(ok) => ok,
        Err(first_err)
            if approach.name == "Calmon^DP"
                && cell.dataset == DatasetKind::Credit
                && spec.attr_limit().is_none() =>
        {
            let idx: Vec<usize> = (0..22).collect();
            let train22 = train.select_attrs(&idx);
            projected_test = Some(test.select_attrs(&idx));
            timed_fit(approach, &train22, seed)
                .map_err(|e| (e.clone(), format!("{first_err}; 22-attr retry: {e}")))?
        }
        Err(e) => return Err(to_err(e)),
    };
    let test = projected_test.as_ref().unwrap_or(test);

    let t0 = Instant::now();
    let preds = {
        let _span = fairlens_trace::span("predict");
        fitted.predict(test)
    };
    let predict_ms = ms(t0.elapsed());

    let report = {
        let _span = fairlens_trace::span("metrics");
        crate::metric_suite(&fitted, cell.dataset, test, &preds, seed, spec.cd_bound_values())
    };

    Ok(RunRecord {
        approach: approach.name.into(),
        stage: approach.stage.label().into(),
        dataset: dataset_name.into(),
        fold: cell.fold,
        seed: cell.seed,
        rows: ctx.full.n_rows(),
        attrs: test.n_attrs(), // 22 under the Calmon-on-Credit fallback
        metrics: Some(report.values()),
        fit_ms,
        predict_ms,
        attempts: 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ApproachSelector, ScaleSpec};

    fn tiny_spec() -> ExperimentSpec {
        ExperimentSpec::new(11)
            .datasets([DatasetKind::German])
            .approaches(ApproachSelector::Named(vec![
                "KamCal^DP".into(),
                "Hardt^EO".into(),
            ]))
            .scale(ScaleSpec::Rows(300))
            .folds(2)
            .cd_bounds(0.9, 0.08)
    }

    /// Everything except the wall-clock fields, bit-exact.
    fn key(r: &RunRecord) -> (String, String, String, usize, u64, u32, Option<[u64; 9]>) {
        (
            r.approach.clone(),
            r.stage.clone(),
            r.dataset.clone(),
            r.fold,
            r.seed,
            r.attempts,
            r.metrics.map(|m| m.map(f64::to_bits)),
        )
    }

    #[test]
    fn parallel_matches_sequential_byte_for_byte() {
        let spec = tiny_spec();
        let sequential = Runner::new(1).run(&spec);
        let parallel = Runner::new(4).run(&spec);
        assert_eq!(sequential.records.len(), 3 * 2); // (LR + 2) × 2 folds
        assert!(sequential.failures.is_empty(), "{:?}", sequential.failures);
        let a: Vec<_> = sequential.records.iter().map(key).collect();
        let b: Vec<_> = parallel.records.iter().map(key).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn run_with_default_policy_matches_run() {
        let spec = tiny_spec();
        let plain = Runner::new(2).run(&spec);
        let policied = Runner::new(2).run_with(&spec, &RunPolicy::default());
        let a: Vec<_> = plain.records.iter().map(key).collect();
        let b: Vec<_> = policied.records.iter().map(key).collect();
        assert_eq!(a, b);
        assert_eq!(policied.resumed, 0);
    }

    #[test]
    fn timing_only_cells_skip_metrics() {
        let spec = ExperimentSpec::new(3)
            .datasets([DatasetKind::German])
            .approaches(ApproachSelector::Named(vec!["KamCal^DP".into()]))
            .scale(ScaleSpec::Rows(200))
            .timing_only(true);
        let batch = Runner::new(2).run(&spec);
        assert_eq!(batch.records.len(), 2); // LR + KamCal
        for r in &batch.records {
            assert!(r.metrics.is_none());
            assert!(r.fit_ms >= 0.0 && r.predict_ms >= 0.0);
        }
    }

    #[test]
    fn unknown_approach_becomes_failure_not_panic() {
        let spec = ExperimentSpec::new(3)
            .datasets([DatasetKind::German])
            .approaches(ApproachSelector::Named(vec!["NoSuch".into()]))
            .scale(ScaleSpec::Rows(150))
            .baseline(false);
        let batch = Runner::new(2).run(&spec);
        assert!(batch.records.is_empty());
        assert_eq!(batch.failures.len(), 1);
        assert_eq!(batch.failures[0].kind, FailureKind::TrainError);
        assert!(batch.failures[0].error.contains("NoSuch"));
    }

    #[test]
    fn runner_zero_resolves_to_hardware_threads() {
        assert!(Runner::new(0).threads() >= 1);
        assert_eq!(Runner::new(3).threads(), 3);
    }

    #[test]
    fn injected_panic_is_isolated_and_other_cells_unaffected() {
        let spec = tiny_spec();
        let clean = Runner::new(2).run(&spec);
        let policy = RunPolicy {
            faults: vec![FaultSpec {
                kind: FaultKind::Panic,
                approach: "Hardt^EO".into(),
                fold: 1,
            }],
            ..Default::default()
        };
        let faulty = Runner::new(2).run_with(&spec, &policy);
        assert_eq!(faulty.failures.len(), 1, "{:?}", faulty.failures);
        let f = &faulty.failures[0];
        assert_eq!((f.kind, f.approach.as_str(), f.fold), (FailureKind::Panicked, "Hardt^EO", 1));
        assert!(f.error.contains("injected fault"), "{}", f.error);
        assert!(f.error.contains("runner.rs"), "panic location missing: {}", f.error);
        // every other cell is bit-identical to the fault-free run
        let expect: Vec<_> = clean
            .records
            .iter()
            .filter(|r| !(r.approach == "Hardt^EO" && r.fold == 1))
            .map(key)
            .collect();
        let got: Vec<_> = faulty.records.iter().map(key).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn hang_is_cancelled_at_the_deadline() {
        let spec = tiny_spec();
        let policy = RunPolicy {
            cell_timeout: Some(Duration::from_millis(300)),
            faults: vec![FaultSpec {
                kind: FaultKind::Hang,
                approach: "KamCal^DP".into(),
                fold: 0,
            }],
            ..Default::default()
        };
        // single worker: the watchdog must fire on the sequential path too
        let batch = Runner::new(1).run_with(&spec, &policy);
        assert_eq!(batch.failures.len(), 1, "{:?}", batch.failures);
        let f = &batch.failures[0];
        assert_eq!(f.kind, FailureKind::TimedOut);
        assert!(f.error.contains("deadline"), "{}", f.error);
        assert!(f.elapsed_ms >= 250.0, "partial timing too small: {}", f.elapsed_ms);
        assert_eq!(batch.records.len(), 3 * 2 - 1);
    }

    #[test]
    fn flaky_cell_retries_to_success_with_derived_seeds() {
        let spec = tiny_spec();
        let policy = RunPolicy {
            retries: 2,
            faults: vec![FaultSpec {
                kind: FaultKind::Flaky(2),
                approach: "KamCal^DP".into(),
                fold: 0,
            }],
            ..Default::default()
        };
        let batch = Runner::new(2).run_with(&spec, &policy);
        assert!(batch.failures.is_empty(), "{:?}", batch.failures);
        assert_eq!(batch.records.len(), 3 * 2);
        for r in &batch.records {
            let expect = if r.approach == "KamCal^DP" && r.fold == 0 { 3 } else { 1 };
            assert_eq!(r.attempts, expect, "{} fold {}", r.approach, r.fold);
        }
    }

    #[test]
    fn flaky_cell_exhausts_bounded_retries() {
        let spec = tiny_spec();
        let policy = RunPolicy {
            retries: 1,
            faults: vec![FaultSpec {
                kind: FaultKind::Flaky(5),
                approach: "KamCal^DP".into(),
                fold: 0,
            }],
            ..Default::default()
        };
        let batch = Runner::new(2).run_with(&spec, &policy);
        assert_eq!(batch.failures.len(), 1);
        let f = &batch.failures[0];
        assert_eq!(f.kind, FailureKind::ExhaustedRetries);
        assert_eq!(f.attempts, 2); // first try + one retry
        assert_eq!(batch.records.len(), 3 * 2 - 1);
    }

    #[test]
    fn checkpoint_finalizes_canonically_and_resume_reuses_records() {
        let dir = std::env::temp_dir().join("fairlens_runner_ckpt_test");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("out.jsonl");
        let spec = tiny_spec();
        let first = Runner::new(2)
            .run_with(&spec, &RunPolicy { checkpoint: Some(path.clone()), ..Default::default() });
        // the finalized file holds the canonical records, in order
        let on_disk = crate::record::read_jsonl(&path).unwrap();
        assert_eq!(on_disk, first.records);
        assert!(!failures_path(&path).exists(), "clean run must leave no sidecar");
        // resuming from a complete file re-runs nothing, timings included
        let second = Runner::new(2)
            .run_with(&spec, &RunPolicy { resume: Some(path.clone()), ..Default::default() });
        assert_eq!(second.resumed, first.records.len());
        assert_eq!(second.records, first.records);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fault_spec_parsing() {
        let faults =
            FaultSpec::parse_list("panic:Hardt^EO:3; flaky:2:KamCal^DP:0;hang:Pleiss^EOP:5")
                .unwrap();
        assert_eq!(
            faults,
            vec![
                FaultSpec { kind: FaultKind::Panic, approach: "Hardt^EO".into(), fold: 3 },
                FaultSpec { kind: FaultKind::Flaky(2), approach: "KamCal^DP".into(), fold: 0 },
                FaultSpec { kind: FaultKind::Hang, approach: "Pleiss^EOP".into(), fold: 5 },
            ]
        );
        assert!(FaultSpec::parse_list("melt:X:0").is_err());
        assert!(FaultSpec::parse_list("flaky:lots:X:0").is_err());
        assert!(FaultSpec::parse_list("panic:X:first").is_err());
    }
}
