//! The parallel experiment executor.
//!
//! [`Runner::run`] evaluates every (approach × dataset × fold) cell of an
//! [`ExperimentSpec`](crate::spec::ExperimentSpec) on a work-stealing pool
//! of scoped worker threads (`std::thread::scope` over a shared atomic
//! queue — no external dependencies). Determinism is structural, not
//! accidental:
//!
//! * each cell's PRNG seed is derived from the experiment seed and the
//!   cell's coordinates ([`crate::spec::cell_seed`]), never from which
//!   worker happened to claim it;
//! * datasets and fold splits are materialised once, up front, and shared
//!   across workers by reference (scoped threads borrow them — no clones);
//! * results are reported in canonical cell order regardless of completion
//!   order.
//!
//! So `--threads 8` and `--threads 1` produce byte-identical
//! [`RunRecord`]s. Each cell itself is single-threaded (the paper times
//! everything single-threaded); parallelism only spreads *different* cells
//! across cores, which also keeps the Fig. 11 timing protocol honest:
//! every timing measurement is one approach on one thread.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use fairlens_core::Approach;
use fairlens_frame::{split, Dataset};
use fairlens_synth::DatasetKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::record::RunRecord;
use crate::spec::{dataset_seed, fold_seed, Cell, ExperimentSpec};

/// A cell that could not produce a record (training failure or an unknown
/// approach name in the spec).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// Approach display name (`"<unresolved>"` for unknown names — the
    /// requested name is in `error`).
    pub approach: String,
    /// Dataset display name.
    pub dataset: String,
    /// Fold index.
    pub fold: usize,
    /// What went wrong.
    pub error: String,
}

/// Everything one [`Runner::run`] produced: records in canonical cell
/// order, failures likewise.
#[derive(Debug, Clone, Default)]
pub struct RunBatch {
    /// One record per successful cell, dataset-major / fold / approach.
    pub records: Vec<RunRecord>,
    /// Cells that failed (the paper's Calmon-on-Credit fallback is applied
    /// before a failure is declared).
    pub failures: Vec<CellFailure>,
}

impl RunBatch {
    /// Serialise the records to a JSON-lines file (see
    /// [`crate::record::write_jsonl`]).
    pub fn write_jsonl(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        crate::record::write_jsonl(path.as_ref(), &self.records)
    }

    /// Records for one dataset, in cell order.
    pub fn for_dataset<'a>(&'a self, dataset: &'a str) -> impl Iterator<Item = &'a RunRecord> {
        self.records.iter().filter(move |r| r.dataset == dataset)
    }
}

/// The thread-pool executor. `threads` is the pool width; the pool exists
/// only for the duration of one [`Runner::run`] call.
#[derive(Debug, Clone, Copy)]
pub struct Runner {
    threads: usize,
}

impl Runner {
    /// A runner with `threads` workers; `0` means one worker per available
    /// hardware thread.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            threads
        };
        Self { threads }
    }

    /// The resolved pool width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Evaluate every cell of `spec`.
    pub fn run(&self, spec: &ExperimentSpec) -> RunBatch {
        let cells = spec.cells();
        let contexts = prepare_contexts(spec);

        let outcomes: Vec<Outcome> = if self.threads <= 1 || cells.len() <= 1 {
            // Sequential reference path: same per-cell code, no pool.
            cells.iter().map(|c| run_cell(spec, c, &contexts)).collect()
        } else {
            let next = AtomicUsize::new(0);
            let collected: Mutex<Vec<(usize, Outcome)>> =
                Mutex::new(Vec::with_capacity(cells.len()));
            std::thread::scope(|s| {
                for _ in 0..self.threads.min(cells.len()) {
                    s.spawn(|| {
                        // Claim cells off the shared queue until it drains;
                        // buffer outcomes locally so the mutex is touched
                        // once per worker, not once per cell.
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= cells.len() {
                                break;
                            }
                            local.push((i, run_cell(spec, &cells[i], &contexts)));
                        }
                        collected.lock().unwrap().extend(local);
                    });
                }
            });
            let mut indexed = collected.into_inner().unwrap();
            indexed.sort_by_key(|(i, _)| *i);
            indexed.into_iter().map(|(_, o)| o).collect()
        };

        let mut batch = RunBatch::default();
        for outcome in outcomes {
            match outcome {
                Ok(record) => batch.records.push(record),
                Err(failure) => batch.failures.push(failure),
            }
        }
        batch
    }
}

type Outcome = Result<RunRecord, CellFailure>;

/// Per-dataset shared inputs: the generated dataset and its fold splits,
/// borrowed (not cloned) by every worker.
struct DataContext {
    kind: DatasetKind,
    full: Dataset,
    folds: Vec<(Dataset, Dataset)>,
}

/// Materialise every dataset and fold split once, before the pool starts.
/// Generation/split seeds exclude the approach name, so all approaches in
/// a fold compare on identical data.
fn prepare_contexts(spec: &ExperimentSpec) -> Vec<DataContext> {
    let mut out: Vec<DataContext> = Vec::new();
    for &kind in spec.dataset_list() {
        if out.iter().any(|c| c.kind == kind) {
            continue;
        }
        let n = spec.scale_spec().rows(kind);
        let mut full = kind.generate(n, dataset_seed(spec.seed, kind.name()));
        if let Some(k) = spec.attr_limit() {
            let idx: Vec<usize> = (0..k.min(full.n_attrs())).collect();
            full = full.select_attrs(&idx);
        }
        let folds = if spec.is_timing_only() {
            Vec::new() // timing cells train on the full dataset
        } else {
            (0..spec.fold_count())
                .map(|fold| {
                    let mut rng =
                        StdRng::seed_from_u64(fold_seed(spec.seed, kind.name(), fold));
                    split::train_test_split(&full, spec.test_fraction(), &mut rng)
                })
                .collect()
        };
        out.push(DataContext { kind, full, folds });
    }
    out
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn timed_fit(
    approach: &Approach,
    train: &Dataset,
    seed: u64,
) -> Result<(fairlens_core::FittedPipeline, f64), String> {
    let t0 = Instant::now();
    match approach.fit(train, seed) {
        Ok(fitted) => Ok((fitted, ms(t0.elapsed()))),
        Err(e) => Err(e.to_string()),
    }
}

/// Evaluate one cell. Runs entirely on the claiming worker; every random
/// draw comes from the cell's own derived seed.
fn run_cell(spec: &ExperimentSpec, cell: &Cell, contexts: &[DataContext]) -> Outcome {
    let dataset_name = cell.dataset.name();
    let approach = match &cell.approach {
        Ok(a) => a,
        Err(e) => {
            return Err(CellFailure {
                approach: "<unresolved>".into(),
                dataset: dataset_name.into(),
                fold: cell.fold,
                error: e.clone(),
            })
        }
    };
    let fail = |error: String| CellFailure {
        approach: approach.name.to_string(),
        dataset: dataset_name.to_string(),
        fold: cell.fold,
        error,
    };
    let ctx = contexts
        .iter()
        .find(|c| c.kind == cell.dataset)
        .expect("context prepared for every spec dataset");

    if spec.is_timing_only() {
        // Fig. 11 protocol: time training (and one prediction pass) on the
        // full dataset, no metric suite. The fold index distinguishes
        // repeated measurements (each with its own derived seed).
        let (fitted, fit_ms) = timed_fit(approach, &ctx.full, cell.seed).map_err(fail)?;
        let t0 = Instant::now();
        let _ = fitted.predict(&ctx.full);
        return Ok(RunRecord {
            approach: approach.name.into(),
            stage: approach.stage.label().into(),
            dataset: dataset_name.into(),
            fold: cell.fold,
            seed: cell.seed,
            rows: ctx.full.n_rows(),
            attrs: ctx.full.n_attrs(),
            metrics: None,
            fit_ms,
            predict_ms: ms(t0.elapsed()),
        });
    }

    let (train, test) = &ctx.folds[cell.fold];

    // The paper: "Calmon failed to complete on the Credit dataset due to
    // the large number of attributes (26); we display its performance over
    // 22 attributes (the most it could handle)."
    let mut projected_test: Option<Dataset> = None;
    let (fitted, fit_ms) = match timed_fit(approach, train, cell.seed) {
        Ok(ok) => ok,
        Err(first_err)
            if approach.name == "Calmon^DP"
                && cell.dataset == DatasetKind::Credit
                && spec.attr_limit().is_none() =>
        {
            let idx: Vec<usize> = (0..22).collect();
            let train22 = train.select_attrs(&idx);
            projected_test = Some(test.select_attrs(&idx));
            timed_fit(approach, &train22, cell.seed)
                .map_err(|e| fail(format!("{first_err}; 22-attr retry: {e}")))?
        }
        Err(e) => return Err(fail(e)),
    };
    let test = projected_test.as_ref().unwrap_or(test);

    let t0 = Instant::now();
    let preds = fitted.predict(test);
    let predict_ms = ms(t0.elapsed());

    let report = crate::metric_suite(
        &fitted,
        cell.dataset,
        test,
        &preds,
        cell.seed,
        spec.cd_bound_values(),
    );

    Ok(RunRecord {
        approach: approach.name.into(),
        stage: approach.stage.label().into(),
        dataset: dataset_name.into(),
        fold: cell.fold,
        seed: cell.seed,
        rows: ctx.full.n_rows(),
        attrs: test.n_attrs(), // 22 under the Calmon-on-Credit fallback
        metrics: Some(report.values()),
        fit_ms,
        predict_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ApproachSelector, ScaleSpec};

    fn tiny_spec() -> ExperimentSpec {
        ExperimentSpec::new(11)
            .datasets([DatasetKind::German])
            .approaches(ApproachSelector::Named(vec![
                "KamCal^DP".into(),
                "Hardt^EO".into(),
            ]))
            .scale(ScaleSpec::Rows(300))
            .folds(2)
            .cd_bounds(0.9, 0.08)
    }

    #[test]
    fn parallel_matches_sequential_byte_for_byte() {
        let spec = tiny_spec();
        let sequential = Runner::new(1).run(&spec);
        let parallel = Runner::new(4).run(&spec);
        assert_eq!(sequential.records.len(), 3 * 2); // (LR + 2) × 2 folds
        assert!(sequential.failures.is_empty(), "{:?}", sequential.failures);
        // Everything except the wall-clock fields must match bit-for-bit;
        // timings legitimately vary run to run.
        let key = |r: &RunRecord| {
            (
                r.approach.clone(),
                r.stage.clone(),
                r.dataset.clone(),
                r.fold,
                r.seed,
                r.metrics.map(|m| m.map(f64::to_bits)),
            )
        };
        let a: Vec<_> = sequential.records.iter().map(key).collect();
        let b: Vec<_> = parallel.records.iter().map(key).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn timing_only_cells_skip_metrics() {
        let spec = ExperimentSpec::new(3)
            .datasets([DatasetKind::German])
            .approaches(ApproachSelector::Named(vec!["KamCal^DP".into()]))
            .scale(ScaleSpec::Rows(200))
            .timing_only(true);
        let batch = Runner::new(2).run(&spec);
        assert_eq!(batch.records.len(), 2); // LR + KamCal
        for r in &batch.records {
            assert!(r.metrics.is_none());
            assert!(r.fit_ms >= 0.0 && r.predict_ms >= 0.0);
        }
    }

    #[test]
    fn unknown_approach_becomes_failure_not_panic() {
        let spec = ExperimentSpec::new(3)
            .datasets([DatasetKind::German])
            .approaches(ApproachSelector::Named(vec!["NoSuch".into()]))
            .scale(ScaleSpec::Rows(150))
            .baseline(false);
        let batch = Runner::new(2).run(&spec);
        assert!(batch.records.is_empty());
        assert_eq!(batch.failures.len(), 1);
        assert!(batch.failures[0].error.contains("NoSuch"));
    }

    #[test]
    fn runner_zero_resolves_to_hardware_threads() {
        assert!(Runner::new(0).threads() >= 1);
        assert_eq!(Runner::new(3).threads(), 3);
    }
}
