//! Cell-level cross-verification: the bridge between the experiment grid
//! and `fairlens-xverify`'s paired-solver harness.
//!
//! [`verify_cells`] samples K cells from a spec (deterministically — an
//! even stride over the canonical cell order, so the same spec and K
//! always verify the same cells), rebuilds each cell's training fold
//! exactly as the runner would (same dataset/fold seeds), and runs the
//! paired logistic solvers on the encoded fold:
//!
//! * IRLS twice and GD twice, compared **bit-exactly** per iteration —
//!   the reproducibility invariant;
//! * IRLS vs GD converged coefficients within a ULP bound — the
//!   "two independent algorithms, one optimum" invariant.
//!
//! The figure binaries expose this as `--xverify K` (with `--tolerance
//! ULPS` overriding the agreement bound); the standalone `xverify` binary
//! adds the optimiser and MaxSAT pairs plus perturbation injection.

use fairlens_frame::{split, Encoder};
use fairlens_model::LogisticOptions;
use fairlens_synth::DatasetKind;
use fairlens_xverify::{pairs, Report, Tolerance};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::spec::{dataset_seed, fold_seed, ExperimentSpec};

/// One verified cell: its coordinates plus the pair reports.
pub struct CellVerdict {
    /// Dataset the cell's fold came from.
    pub dataset: DatasetKind,
    /// Fold index.
    pub fold: usize,
    /// The lockstep reports, in run order.
    pub reports: Vec<Report>,
}

impl CellVerdict {
    /// Did every pair agree?
    pub fn ok(&self) -> bool {
        self.reports.iter().all(Report::ok)
    }
}

/// Sample `k` cells from the spec's grid (even stride over the canonical
/// order, deduplicated to distinct (dataset, fold) coordinates — the
/// paired-solver check is approach-independent) and cross-verify each.
///
/// `tolerance` overrides the ULP bound for the cross-algorithm agreement
/// pair; determinism pairs are always bit-exact. Returns one verdict per
/// verified cell; an `Err` means the harness itself could not run (empty
/// grid, fit failure), not a divergence.
/// Rebuild one cell's encoded training fold exactly as the runner does:
/// generation and split seeds exclude the approach name, so every approach
/// in a cell — and every re-verification of it — sees identical bits.
pub fn fold_features(
    spec: &ExperimentSpec,
    kind: DatasetKind,
    fold: usize,
) -> (fairlens_linalg::Matrix, Vec<u8>) {
    let n = spec.scale_spec().rows(kind);
    let full = kind.generate(n, dataset_seed(spec.seed, kind.name()));
    let mut rng = StdRng::seed_from_u64(fold_seed(spec.seed, kind.name(), fold));
    let (train, _test) = split::train_test_split(&full, spec.test_fraction(), &mut rng);
    let encoded = Encoder::fit(&train, true).transform(&train);
    (encoded.matrix, train.labels().to_vec())
}

/// The (dataset, fold) coordinates `verify_cells` would visit: an even
/// stride over the canonical cell order, deduplicated, at most `k`.
pub fn sample_coords(spec: &ExperimentSpec, k: usize) -> Result<Vec<(DatasetKind, usize)>, String> {
    let cells = spec.cells();
    if cells.is_empty() || k == 0 {
        return Err("xverify: no cells to sample".into());
    }
    let stride = (cells.len() / k.min(cells.len())).max(1);
    let mut coords: Vec<(DatasetKind, usize)> = Vec::new();
    for cell in cells.iter().step_by(stride) {
        if coords.len() >= k {
            break;
        }
        if !coords.contains(&(cell.dataset, cell.fold)) {
            coords.push((cell.dataset, cell.fold));
        }
    }
    Ok(coords)
}

pub fn verify_cells(
    spec: &ExperimentSpec,
    k: usize,
    tolerance: Option<u64>,
) -> Result<Vec<CellVerdict>, String> {
    let coords = sample_coords(spec, k)?;
    let agreement = Tolerance::Ulps(tolerance.unwrap_or(pairs::AGREEMENT_ULPS));

    let mut out = Vec::with_capacity(coords.len());
    for (kind, fold) in coords {
        let (x, y) = fold_features(spec, kind, fold);
        let (x, y) = (&x, &y[..]);

        let opts = LogisticOptions::default();
        let gd_opts = LogisticOptions {
            solver: fairlens_model::Solver::GradientDescent,
            ..Default::default()
        };
        let reports = vec![
            pairs::lr_determinism(x, y, None, &opts, Tolerance::Exact)
                .map_err(|e| format!("xverify {}/fold{fold}: irls fit failed: {e}", kind.name()))?,
            pairs::lr_determinism(x, y, None, &gd_opts, Tolerance::Exact)
                .map_err(|e| format!("xverify {}/fold{fold}: gd fit failed: {e}", kind.name()))?,
            pairs::lr_agreement(x, y, None, &opts, agreement)
                .map_err(|e| format!("xverify {}/fold{fold}: agreement fit failed: {e}", kind.name()))?,
        ];
        out.push(CellVerdict { dataset: kind, fold, reports });
    }
    Ok(out)
}

/// Print every verdict (one line per pair) and return `true` when all
/// pairs agreed. The figure binaries call this after their main run and
/// exit non-zero on `false`.
pub fn report_verdicts(binary: &str, verdicts: &[CellVerdict]) -> bool {
    let mut ok = true;
    for v in verdicts {
        for r in &v.reports {
            eprintln!("[{binary}] xverify {}/fold{}: {r}", v.dataset.name(), v.fold);
            ok &= r.ok();
        }
    }
    let cells = verdicts.len();
    let pairs: usize = verdicts.iter().map(|v| v.reports.len()).sum();
    if ok {
        eprintln!("[{binary}] xverify ok: {pairs} solver pairs agree across {cells} cell(s)");
    } else {
        eprintln!("[{binary}] xverify FAILED: divergence detected (see above)");
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> ExperimentSpec {
        ExperimentSpec::new(42)
            .datasets([DatasetKind::German])
            .folds(3)
            .scale(crate::spec::ScaleSpec::Rows(300))
    }

    #[test]
    fn german_cell_cross_verifies_cleanly() {
        let verdicts = verify_cells(&small_spec(), 1, None).unwrap();
        assert_eq!(verdicts.len(), 1);
        for v in &verdicts {
            assert!(v.ok(), "{:?}", v.reports.iter().map(|r| r.to_string()).collect::<Vec<_>>());
            assert_eq!(v.reports.len(), 3);
        }
        assert!(report_verdicts("test", &verdicts));
    }

    #[test]
    fn sampling_is_deterministic_and_distinct() {
        let a = sample_coords(&small_spec(), 3).unwrap();
        let b = sample_coords(&small_spec(), 3).unwrap();
        assert_eq!(a, b);
        let mut unique = a.clone();
        unique.dedup();
        assert_eq!(unique.len(), a.len());
    }

    #[test]
    fn zero_cells_is_an_error() {
        assert!(sample_coords(&small_spec(), 0).is_err());
    }
}
