//! Flip one coefficient bit in a `.flm` model artifact.
//!
//! The shadow-deployment smoke needs a candidate artifact that is almost —
//! but not quite — the incumbent: identical schema and shape, one weight
//! nudged below anything a statistical check could see. This tool
//! produces it:
//!
//! ```text
//! flm_flip <in.flm> <out.flm> [bit]
//! ```
//!
//! Bit `bit` (default 8) of the first linear weight is XOR-flipped (on a
//! mixture, the first member's first weight; on an adjusted pipeline, the
//! base model's). Everything else round-trips bit-exactly. The default is
//! bit 8 rather than the last place because a 1-ulp weight change is
//! absorbed by output rounding on most rows — bit 8 is still a ~1e-14
//! relative nudge, but it survives into the score bits of nearly every
//! prediction, so divergence smokes are deterministic.

use std::path::Path;
use std::process::exit;

use fairlens_core::artifact::ModelArtifact;
use fairlens_core::snapshot::{ModelParams, PipelineSnapshot};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (input, output, bit) = match args.as_slice() {
        [input, output] => (input, output, 8u32),
        [input, output, bit] => match bit.parse() {
            Ok(b @ 0..=63) => (input, output, b),
            _ => {
                eprintln!("flm_flip: bit must be 0..=63, got {bit:?}");
                exit(2);
            }
        },
        _ => {
            eprintln!("usage: flm_flip <in.flm> <out.flm> [bit]");
            exit(2);
        }
    };
    let mut artifact = ModelArtifact::load(Path::new(input)).unwrap_or_else(|e| {
        eprintln!("flm_flip: cannot load {input}: {e}");
        exit(1);
    });

    let snapshot = match &mut artifact.pipeline {
        PipelineSnapshot::Model(m) => m,
        PipelineSnapshot::Adjusted { base, .. } => base,
    };
    let weight = match &mut snapshot.params {
        ModelParams::Linear(p) => p.weights.first_mut(),
        ModelParams::Mixture(ps) => ps.first_mut().and_then(|p| p.weights.first_mut()),
    };
    let Some(w) = weight else {
        eprintln!("flm_flip: {input} has no weights to flip");
        exit(1);
    };
    let before = *w;
    *w = f64::from_bits(w.to_bits() ^ (1 << bit));
    eprintln!(
        "flm_flip: weights[0] {:#018x} -> {:#018x} ({} -> {})",
        before.to_bits(),
        w.to_bits(),
        before,
        w
    );

    if let Err(e) = artifact.save(Path::new(output)) {
        eprintln!("flm_flip: cannot save {output}: {e}");
        exit(1);
    }
    eprintln!("flm_flip: wrote {output}");
}
