//! Fig. 10 (a–d): correctness and fairness of the 18 fair variants + LR
//! over Adult, COMPAS, German and Credit.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p fairlens-bench --bin fig10_correctness_fairness [-- quick|paper [dataset]]
//! ```
//!
//! `quick` caps dataset sizes at 8 000 rows (same qualitative shape, much
//! faster); `paper` uses the paper's documented sizes. An optional dataset
//! name (`adult`/`compas`/`german`/`credit`) restricts the run to one panel.
//!
//! As in the paper: 70 %/30 % random train/test split, logistic regression
//! under every pre-processing repair, metrics normalised so higher = more
//! correct / more fair, and the Credit panel drops to 22 attributes for
//! Calmon (the most it can handle).

use fairlens_bench::{evaluate, print_fig10_table, scale_rows};
use fairlens_core::{all_approaches, baseline_approach};
use fairlens_frame::split;
use fairlens_synth::{DatasetKind, ALL_DATASETS};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = args.first().map(String::as_str).unwrap_or("paper").to_string();
    let only: Option<String> = args.get(1).map(|s| s.to_lowercase());

    for kind in ALL_DATASETS {
        if let Some(o) = &only {
            if !kind.name().to_lowercase().starts_with(o.as_str()) {
                continue;
            }
        }
        run_panel(kind, &scale);
    }
}

fn run_panel(kind: DatasetKind, scale: &str) {
    let n = scale_rows(kind, scale);
    let data = kind.generate(n, 42);
    eprintln!("[fig10] {} ({n} rows)", kind.name());

    let mut rng = StdRng::seed_from_u64(7);
    let (train, test) = split::train_test_split(&data, 0.3, &mut rng);

    let baseline = evaluate(&baseline_approach(), kind, &train, &test, 1)
        .expect("baseline LR always trains");

    let mut rows = Vec::new();
    for approach in all_approaches(kind.inadmissible_attrs()) {
        eprintln!("[fig10]   {}", approach.name);
        match evaluate(&approach, kind, &train, &test, 1) {
            Ok(e) => rows.push(e),
            Err(e) if approach.name == "Calmon^DP" && kind == DatasetKind::Credit => {
                // The paper: "Calmon failed to complete on the Credit dataset
                // due to the large number of attributes (26); we display its
                // performance over 22 attributes (the most it could handle)."
                eprintln!("[fig10]   Calmon^DP on 26 attrs: {e}; retrying with 22 attributes");
                let idx: Vec<usize> = (0..22).collect();
                let train22 = train.select_attrs(&idx);
                let test22 = test.select_attrs(&idx);
                match evaluate(&approach, kind, &train22, &test22, 1) {
                    Ok(e) => rows.push(e),
                    Err(e) => eprintln!("[fig10]   Calmon^DP still failed: {e}"),
                }
            }
            Err(e) => eprintln!("[fig10]   {} failed: {e}", approach.name),
        }
    }
    print_fig10_table(kind.name(), &rows, Some(&baseline));

    // The paper's target-arrow check: does each approach improve the
    // metric(s) it optimises, relative to LR?
    println!("-- targeted-metric check (↑ = improved over LR) --");
    for e in &rows {
        let approach = all_approaches(kind.inadmissible_attrs())
            .into_iter()
            .find(|a| a.name == e.approach)
            .expect("evaluated approach exists in registry");
        if approach.targets.is_empty() {
            continue;
        }
        let pick = |r: &fairlens_metrics::MetricReport, t: &str| match t {
            "DI" => r.di_star,
            "TPRB" => r.tprb_fair,
            "TNRB" => r.tnrb_fair,
            "CD" => r.cd_fair,
            "CRD" => r.crd_fair,
            _ => unreachable!("unknown target"),
        };
        let marks: Vec<String> = approach
            .targets
            .iter()
            .map(|t| {
                let ours = pick(&e.report, t);
                let lr = pick(&baseline.report, t);
                format!("{t}:{}", if ours >= lr - 0.02 { "↑" } else { "✗" })
            })
            .collect();
        println!("{:<19} {}", e.approach, marks.join("  "));
    }
}
