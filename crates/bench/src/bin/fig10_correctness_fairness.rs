//! Fig. 10 (a–d): correctness and fairness of the 18 fair variants + LR
//! over Adult, COMPAS, German and Credit.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p fairlens-bench --bin fig10_correctness_fairness \
//!     [-- [--threads N] [--seed S] [--scale quick|paper] [--out DIR] \
//!         [--cell-timeout SECS] [--retries N] [--resume PATH] [--trace PATH] [dataset]]
//! ```
//!
//! `--scale quick` caps dataset sizes at 8 000 rows (same qualitative
//! shape, much faster); `paper` uses the paper's documented sizes. An
//! optional dataset name (`adult`/`compas`/`german`/`credit`) restricts the
//! run to one panel. Records land in `<out>/fig10_correctness_fairness.jsonl`.
//!
//! As in the paper: 70 %/30 % random train/test split, logistic regression
//! under every pre-processing repair, metrics normalised so higher = more
//! correct / more fair, and the Credit panel drops to 22 attributes for
//! Calmon (the most it can handle — the runner applies the fallback).

use fairlens_bench::{print_fig10_records, CommonArgs, ExperimentSpec, Runner};
use fairlens_core::all_approaches;
use fairlens_synth::{DatasetKind, ALL_DATASETS};

const USAGE: &str = "fig10_correctness_fairness [--threads N] [--seed S] [--scale quick|paper] \
                     [--out DIR] [--cell-timeout SECS] [--retries N] [--resume PATH] \
                     [--trace PATH] [dataset]";

fn main() {
    let args = CommonArgs::from_env(USAGE);
    let only: Option<String> = args.rest.first().map(|s| s.to_lowercase());

    let datasets: Vec<DatasetKind> = ALL_DATASETS
        .into_iter()
        .filter(|k| match &only {
            Some(o) => k.name().to_lowercase().starts_with(o.as_str()),
            None => true,
        })
        .collect();
    if datasets.is_empty() {
        eprintln!(
            "error: unknown dataset {:?} (expected adult|compas|german|credit)\nusage: {USAGE}",
            only.as_deref().unwrap_or("")
        );
        std::process::exit(2);
    }

    let spec = ExperimentSpec::new(args.seed)
        .datasets(datasets.iter().copied())
        .scale(args.scale);
    let runner = Runner::new(args.threads);
    let out = args.out_file("fig10_correctness_fairness");
    let policy = args.run_policy(&out).unwrap_or_else(|e| {
        eprintln!("error: {e}\nusage: {USAGE}");
        std::process::exit(2);
    });
    eprintln!(
        "[fig10] {} dataset panel(s), {} worker thread(s), seed {}",
        datasets.len(),
        runner.threads(),
        args.seed
    );
    let batch = runner.run_with(&spec, &policy);

    for f in &batch.failures {
        eprintln!("[fig10] FAILED {f}");
    }

    for kind in &datasets {
        let rows: Vec<_> = batch.for_dataset(kind.name()).collect();
        print_fig10_records(kind.name(), &rows);

        // The paper's target-arrow check: does each approach improve the
        // metric(s) it optimises, relative to LR?
        let Some(baseline) = rows.iter().find(|r| r.approach == "LR") else {
            continue;
        };
        println!("-- targeted-metric check (↑ = improved over LR) --");
        let registry = all_approaches(kind.salimi_inadmissible());
        for r in rows.iter().filter(|r| r.approach != "LR") {
            let Some(approach) = registry.iter().find(|a| a.name == r.approach) else {
                continue;
            };
            if approach.targets.is_empty() {
                continue;
            }
            let key = |t: &str| match t {
                "DI" => "di_star",
                "TPRB" => "tprb_fair",
                "TNRB" => "tnrb_fair",
                "CD" => "cd_fair",
                "CRD" => "crd_fair",
                _ => unreachable!("unknown target"),
            };
            let marks: Vec<String> = approach
                .targets
                .iter()
                .map(|t| {
                    let ours = r.metric(key(t)).unwrap_or(f64::NAN);
                    let lr = baseline.metric(key(t)).unwrap_or(f64::NAN);
                    format!("{t}:{}", if ours >= lr - 0.02 { "↑" } else { "✗" })
                })
                .collect();
            println!("{:<19} {}", r.approach, marks.join("  "));
        }
    }

    fairlens_bench::cli::announce_run("fig10", &out, &batch);
    if let Err(e) = args.finish_trace(&policy) {
        eprintln!("[fig10] {e}");
        std::process::exit(1);
    }
    args.finish_xverify("fig10", &spec);
}
