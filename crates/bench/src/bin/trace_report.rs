//! Aggregate a `--trace` JSONL file into a per-approach × per-phase
//! breakdown — the Fig. 11 efficiency narrative at phase granularity.
//!
//! ```text
//! trace_report PATH [--results PATH]
//! ```
//!
//! Reads the trace written by a figure binary (or `export_models` /
//! `fairlens-serve`) and prints, per approach: total time in each of the
//! five pipeline phases (`synth`, `encode`, `fit`, `predict`, `metrics`),
//! solver iteration counters, and convergence events. `synth` is recorded
//! on the `data/...` tracks (dataset materialisation is shared by all
//! approaches), the rest on the `cell/...` tracks. A quantile table of
//! per-cell fit durations (bracketed, from the fixed-bound histogram)
//! closes the report.
//!
//! With `--results <file.jsonl>` the report cross-checks the trace against
//! the `RunRecord` wall-clocks: for every cell track with a matching
//! record, the traced `fit`+`predict` time must agree with the record's
//! `fit_ms`+`predict_ms` within max(5 %, 1 ms). Disagreement is reported
//! and makes the binary exit 1 — the check `scripts/check.sh` leans on.
//!
//! Exit codes: 0 = report printed (and any cross-check passed); 1 =
//! cross-check failed; 2 = unreadable/unparseable input.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use fairlens_bench::{read_jsonl_lossy, RunRecord};
use fairlens_trace::{parse_jsonl, Histogram, TraceEvent, TrackData};

const USAGE: &str = "trace_report PATH [--results PATH]";

/// The pipeline phases, in execution order. The report always prints all
/// five, even when a phase recorded nothing (e.g. `metrics` in a
/// timing-only Fig. 11 trace).
const PHASES: [&str; 5] = ["synth", "encode", "fit", "predict", "metrics"];

/// Identity fields parsed back out of a `cell/...` track name
/// (`cell/<dataset>/r<rows>/a<attrs>/f<fold>/<approach>`).
struct CellId<'a> {
    dataset: &'a str,
    rows: usize,
    attrs: usize,
    fold: usize,
    approach: &'a str,
}

fn parse_cell_track(track: &str) -> Option<CellId<'_>> {
    let mut parts = track.strip_prefix("cell/")?.splitn(5, '/');
    let dataset = parts.next()?;
    let rows = parts.next()?.strip_prefix('r')?.parse().ok()?;
    let attrs = parts.next()?.strip_prefix('a')?.parse().ok()?;
    let fold = parts.next()?.strip_prefix('f')?.parse().ok()?;
    let approach = parts.next()?;
    Some(CellId { dataset, rows, attrs, fold, approach })
}

/// Sum the duration of every span named `name` that closes at top level
/// (nesting depth returns to zero), plus depth-0 `Complete` spans. Nested
/// occurrences (e.g. `encode` inside `fit`) are excluded so phase sums
/// don't double-count.
fn top_level_us(events: &[TraceEvent], name: &str) -> u64 {
    let mut depth = 0usize;
    let mut total = 0u64;
    for e in events {
        match e {
            TraceEvent::Enter { .. } => depth += 1,
            TraceEvent::Exit { name: n, dur_us, .. } => {
                depth = depth.saturating_sub(1);
                if depth == 0 && n == name {
                    total += dur_us;
                }
            }
            TraceEvent::Complete { name: n, dur_us, .. } if depth == 0 && n == name => {
                total += dur_us;
            }
            _ => {}
        }
    }
    total
}

/// Sum every span named `name` at any depth (used for `encode`, which
/// nests inside `fit`).
fn any_depth_us(events: &[TraceEvent], name: &str) -> u64 {
    events
        .iter()
        .filter(|e| e.name() == name)
        .filter_map(TraceEvent::dur_us)
        .sum()
}

#[derive(Default)]
struct ApproachAgg {
    cells: usize,
    phase_us: BTreeMap<&'static str, u64>,
    counters: BTreeMap<String, u64>,
    events: BTreeMap<String, u64>,
    fit_samples: Vec<f64>,
}

fn fmt_ms(us: u64) -> String {
    format!("{:.1}", us as f64 / 1e3)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let results: Option<PathBuf> = match args.iter().position(|a| a == "--results") {
        Some(pos) => {
            if pos + 1 >= args.len() {
                eprintln!("error: --results needs a value\nusage: {USAGE}");
                std::process::exit(2);
            }
            let v = args.remove(pos + 1);
            args.remove(pos);
            Some(PathBuf::from(v))
        }
        None => None,
    };
    let [path] = args.as_slice() else {
        eprintln!("usage: {USAGE}");
        std::process::exit(2);
    };
    let path = Path::new(path);
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", path.display());
            std::process::exit(2);
        }
    };
    let tracks = match parse_jsonl(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {}: {e}", path.display());
            std::process::exit(2);
        }
    };

    // -- aggregate ---------------------------------------------------------
    let mut per_approach: BTreeMap<String, ApproachAgg> = BTreeMap::new();
    let mut synth_us = 0u64;
    let mut data_tracks = 0usize;
    let mut other_tracks = 0usize;
    for track in &tracks {
        if track.track.starts_with("data/") {
            data_tracks += 1;
            synth_us += top_level_us(&track.events, "synth");
            continue;
        }
        let Some(id) = parse_cell_track(&track.track) else {
            // serve `req/...` tracks and anything else: counted, and their
            // phases still show in the collapsed view, just not here.
            other_tracks += 1;
            continue;
        };
        let agg = per_approach.entry(id.approach.to_string()).or_default();
        agg.cells += 1;
        for phase in ["fit", "predict", "metrics"] {
            *agg.phase_us.entry(phase).or_insert(0) += top_level_us(&track.events, phase);
        }
        *agg.phase_us.entry("encode").or_insert(0) += any_depth_us(&track.events, "encode");
        let fit = top_level_us(&track.events, "fit");
        if fit > 0 {
            agg.fit_samples.push(fit as f64 / 1e3);
        }
        for e in &track.events {
            match e {
                TraceEvent::Counter { name, value } => {
                    *agg.counters.entry(name.clone()).or_insert(0) += value;
                }
                TraceEvent::Point { name, .. } => {
                    *agg.events.entry(name.clone()).or_insert(0) += 1;
                }
                _ => {}
            }
        }
    }

    // -- report ------------------------------------------------------------
    println!("=== trace report — {} ===", path.display());
    println!(
        "{} track(s): {} data, {} cell, {} other",
        tracks.len(),
        data_tracks,
        per_approach.values().map(|a| a.cells).sum::<usize>(),
        other_tracks
    );
    println!();
    println!("shared phase: synth {} ms over {data_tracks} dataset(s)", fmt_ms(synth_us));
    println!();

    println!("per-approach phase totals (ms; encode nests inside fit):");
    print!("{:<22} {:>6}", "approach", "cells");
    for phase in PHASES {
        print!(" {:>10}", phase);
    }
    println!();
    for (name, agg) in &per_approach {
        print!("{name:<22} {:>6}", agg.cells);
        for phase in PHASES {
            // synth is a shared data-track phase, blank per approach
            let cell = match phase {
                "synth" => "-".to_string(),
                p => fmt_ms(agg.phase_us.get(p).copied().unwrap_or(0)),
            };
            print!(" {cell:>10}");
        }
        println!();
    }

    println!();
    println!("solver work per approach (aggregated counters / events):");
    let mut any_counters = false;
    for (name, agg) in &per_approach {
        if agg.counters.is_empty() && agg.events.is_empty() {
            continue;
        }
        any_counters = true;
        let mut parts: Vec<String> =
            agg.counters.iter().map(|(k, v)| format!("{k}={v}")).collect();
        parts.extend(agg.events.iter().map(|(k, v)| format!("{k}×{v}")));
        println!("  {name:<20} {}", parts.join("  "));
    }
    if !any_counters {
        println!("  (none recorded)");
    }

    // Bracketing quantiles of per-cell fit time, all approaches pooled.
    let mut fit_hist = Histogram::new(&[
        0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
        5000.0, 10000.0,
    ]);
    for agg in per_approach.values() {
        for &ms in &agg.fit_samples {
            fit_hist.record(ms);
        }
    }
    println!();
    println!("fit-time distribution across {} cell(s), ms:", fit_hist.total());
    for (label, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
        match fit_hist.quantile(q) {
            Some((lo, hi)) => println!("  {label} in [{lo:.2}, {hi:.2}]"),
            None => println!("  {label} n/a"),
        }
    }

    // -- optional RunRecord cross-check -------------------------------------
    if let Some(results) = results {
        match cross_check(&tracks, &results) {
            Ok((checked, worst)) => {
                println!();
                println!(
                    "cross-check vs {}: {checked} cell(s) within tolerance \
                     (worst deviation {worst:.2} %)",
                    results.display()
                );
            }
            Err(e) => {
                eprintln!("error: cross-check failed: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// Join each cell track onto its RunRecord and require the traced
/// `fit`+`predict` to agree with `fit_ms`+`predict_ms` within
/// max(5 %, 1 ms). Returns (cells checked, worst relative deviation %).
fn cross_check(tracks: &[TrackData], results: &Path) -> Result<(usize, f64), String> {
    let (records, skipped) = read_jsonl_lossy(results)?;
    if skipped > 0 {
        eprintln!("[trace_report] {skipped} unparseable record line(s) ignored");
    }
    let mut checked = 0usize;
    let mut worst = 0.0f64;
    for track in tracks {
        let Some(id) = parse_cell_track(&track.track) else { continue };
        // attrs intentionally NOT matched first: the Calmon-on-Credit
        // fallback records 22 attrs while the track carries the dataset's
        // natural width. Use attrs only to break sweep ambiguity.
        let matches: Vec<&RunRecord> = records
            .iter()
            .filter(|r| {
                r.approach == id.approach
                    && r.dataset == id.dataset
                    && r.fold == id.fold
                    && r.rows == id.rows
            })
            .collect();
        let record = match matches.as_slice() {
            [] => continue, // e.g. the cell failed — no record to check
            [one] => *one,
            many => match many.iter().find(|r| r.attrs == id.attrs) {
                Some(r) => *r,
                None => continue,
            },
        };
        let traced_ms = (top_level_us(&track.events, "fit")
            + top_level_us(&track.events, "predict")) as f64
            / 1e3;
        let recorded_ms = record.fit_ms + record.predict_ms;
        let diff = (traced_ms - recorded_ms).abs();
        let tolerance = (recorded_ms * 0.05).max(1.0);
        if diff > tolerance {
            return Err(format!(
                "{}: traced fit+predict {traced_ms:.2} ms vs recorded {recorded_ms:.2} ms \
                 (diff {diff:.2} ms > tolerance {tolerance:.2} ms)",
                track.track
            ));
        }
        if recorded_ms > 0.0 {
            worst = worst.max(100.0 * diff / recorded_ms.max(1.0));
        }
        checked += 1;
    }
    if checked == 0 {
        return Err(format!("no cell track matched any record in {}", results.display()));
    }
    Ok((checked, worst))
}
