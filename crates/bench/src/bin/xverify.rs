//! Standalone cross-verification harness: paired solvers in lockstep.
//!
//! Runs the full pair suite against sampled experiment cells of one
//! dataset:
//!
//! * IRLS twice / GD twice — bit-exact per-iteration determinism;
//! * IRLS vs GD — converged coefficients within a ULP bound;
//! * GD vs Adam — shared logistic objective, converged value agreement;
//! * exact vs WalkSAT MaxSAT — reached optimum on a small instance.
//!
//! `--perturb` injects a 1-ulp perturbation into a captured solver stream
//! and exits non-zero after printing the detected divergence — the smoke
//! proof that the harness actually fires, not just stays silent.

use fairlens_bench::xverify::{fold_features, report_verdicts, sample_coords, verify_cells};
use fairlens_bench::{CommonArgs, ExperimentSpec};
use fairlens_model::LogisticOptions;
use fairlens_optim::Objective;
use fairlens_synth::{DatasetKind, ALL_DATASETS};
use fairlens_xverify::pairs::{capture_lr, maxsat_agreement, optim_agreement, AGREEMENT_ULPS};
use fairlens_xverify::{bump, lockstep, Tolerance};
use fairlens_solver::{Clause, Lit, MaxSatProblem};

const USAGE: &str = "xverify [adult|compas|german|credit] [--cells K] [--perturb] \
[--seed S] [--scale quick|paper] [--tolerance ULPS]";

fn main() {
    let args = CommonArgs::from_env(USAGE);
    let mut dataset = DatasetKind::German;
    let mut cells = 2usize;
    let mut perturb = false;
    let mut rest = args.rest.iter();
    while let Some(a) = rest.next() {
        match a.as_str() {
            "--perturb" => perturb = true,
            "--cells" => {
                cells = rest
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&k| k > 0)
                    .unwrap_or_else(|| {
                        eprintln!("error: --cells requires a positive count\nusage: {USAGE}");
                        std::process::exit(2);
                    });
            }
            name => {
                dataset = ALL_DATASETS
                    .into_iter()
                    .find(|k| k.name().eq_ignore_ascii_case(name))
                    .unwrap_or_else(|| {
                        eprintln!("error: unknown argument {name:?}\nusage: {USAGE}");
                        std::process::exit(2);
                    });
            }
        }
    }

    let spec = ExperimentSpec::new(args.seed).datasets([dataset]).scale(args.scale);

    if perturb {
        run_perturbed(&spec, dataset);
    }

    // The cell suite: LR determinism + agreement on K sampled folds.
    let mut ok = match verify_cells(&spec, cells, args.tolerance) {
        Ok(verdicts) => report_verdicts("xverify", &verdicts),
        Err(e) => {
            eprintln!("[xverify] {e}");
            std::process::exit(2);
        }
    };

    // The optimiser pair on the first sampled fold's logistic objective.
    let (kind, fold) = sample_coords(&spec, 1).expect("non-empty grid")[0];
    let (x, y) = fold_features(&spec, kind, fold);
    let loss = fairlens_model::LogisticLoss::new(&x, &y, 0.05);
    let x0 = vec![0.0; loss.dim()];
    let tol = Tolerance::Ulps(args.tolerance.unwrap_or(AGREEMENT_ULPS));
    let r = optim_agreement(&loss, &x0, tol);
    eprintln!("[xverify] {}/fold{fold}: {r}", kind.name());
    ok &= r.ok();

    // The MaxSAT pair on a seeded implication-chain instance (small enough
    // for the exact solver's exhaustive sweep).
    let r = maxsat_agreement(&chain_instance(args.seed), args.seed, 4_000, 8, Tolerance::Exact);
    eprintln!("[xverify] {r}");
    ok &= r.ok();

    if !ok {
        eprintln!("[xverify] FAILED: divergence detected (see above)");
        std::process::exit(1);
    }
    eprintln!("[xverify] all solver pairs agree");
}

/// Capture a real IRLS stream on the first sampled fold, bump one value by
/// one ulp, and demand the lockstep comparison names the exact spot.
fn run_perturbed(spec: &ExperimentSpec, dataset: DatasetKind) -> ! {
    let (kind, fold) = sample_coords(spec, 1).expect("non-empty grid")[0];
    let (x, y) = fold_features(spec, kind, fold);
    let opts = LogisticOptions::default();
    let clean = capture_lr(&x, &y, None, &opts).unwrap_or_else(|e| {
        eprintln!("[xverify] perturb: fit failed on {}: {e}", dataset.name());
        std::process::exit(2);
    });
    let mut tampered = clean.clone();
    let it = tampered.len() / 2;
    tampered[it].fields[0].1 = bump(tampered[it].fields[0].1, 1);
    let report = lockstep("lr/irls-vs-irls+1ulp", &clean, &tampered, Tolerance::Exact);
    eprintln!("[xverify] {}/fold{fold}: {report}", kind.name());
    match &report.divergence {
        Some(d) if d.iteration == it => {
            eprintln!("[xverify] perturbation detected at the injected iteration — harness fires");
            std::process::exit(1);
        }
        _ => {
            eprintln!("[xverify] HARNESS FAILURE: injected perturbation was not pinpointed");
            std::process::exit(3);
        }
    }
}

/// A fixed small MaxSAT instance: a hard implication chain with competing
/// soft preferences at the ends, weights jittered by the seed so repeated
/// runs still exercise distinct optima.
fn chain_instance(seed: u64) -> MaxSatProblem {
    let mut p = MaxSatProblem::new(8);
    for v in 0..7 {
        p.add(Clause::hard(vec![Lit::neg(v), Lit::pos(v + 1)])).unwrap();
    }
    let w = (seed % 7) as f64 * 0.25;
    p.add(Clause::soft(vec![Lit::pos(0)], 2.0 + w).unwrap()).unwrap();
    p.add(Clause::soft(vec![Lit::neg(7)], 3.5).unwrap()).unwrap();
    p.add(Clause::soft(vec![Lit::pos(3)], 1.0).unwrap()).unwrap();
    p
}
