//! Fig. 11: efficiency and scalability.
//!
//! * Fig. 11(a–c) — runtime *overhead over LR* as the number of data points
//!   grows (1 K → 40 K rows of Adult), reported per stage (pre / in / post);
//! * Fig. 11(d–f) — runtime overhead as the number of attributes grows
//!   (2 → 26 attributes of Credit).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p fairlens-bench --bin fig11_scalability [-- size|attrs|both [quick]]
//! ```
//!
//! `quick` halves the sweep (sizes up to 10 K, attributes up to 22) for
//! smoke runs. As in the paper, the reported value is
//! `total pipeline time − LR time`, so pure-overhead comparisons across
//! stages are meaningful; everything is single-threaded.

use std::time::Duration;

use fairlens_bench::time_fit;
use fairlens_core::{all_approaches, baseline_approach, Stage};
use fairlens_synth::DatasetKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("both").to_string();
    let quick = args.iter().any(|a| a == "quick");

    if mode == "size" || mode == "both" {
        let sizes: &[usize] = if quick {
            &[1_000, 2_000, 5_000, 10_000]
        } else {
            &[1_000, 2_000, 5_000, 10_000, 20_000, 40_000]
        };
        size_sweep(sizes);
    }
    if mode == "attrs" || mode == "both" {
        let attrs: &[usize] = if quick {
            &[2, 6, 10, 14, 18, 22]
        } else {
            &[2, 6, 10, 14, 18, 22, 26]
        };
        attr_sweep(attrs);
    }
}

/// Fig. 11(a–c): vary |D| on Adult.
fn size_sweep(sizes: &[usize]) {
    println!("=== Fig. 11(a–c) — runtime overhead vs data size (Adult) ===");
    println!("(milliseconds of overhead over LR; '-' = failed/unsupported)");
    let kind = DatasetKind::Adult;
    let approaches = all_approaches(kind.inadmissible_attrs());

    print!("{:<6} {:<19}", "stage", "approach");
    for n in sizes {
        print!(" {:>9}", format!("{}K", n / 1000));
    }
    println!();

    // Baseline LR times per size (subtracted from everything).
    let mut lr_ms = Vec::new();
    for &n in sizes {
        let data = kind.generate(n, 9);
        let t = time_fit(&baseline_approach(), &data, 1).expect("LR trains");
        lr_ms.push(t);
    }
    print!("{:<6} {:<19}", "base", "LR (absolute)");
    for t in &lr_ms {
        print!(" {:>9}", t.as_millis());
    }
    println!();

    for stage in [Stage::Pre, Stage::In, Stage::Post] {
        for approach in approaches.iter().filter(|a| a.stage == stage) {
            print!("{:<6} {:<19}", stage.label(), approach.name);
            for (i, &n) in sizes.iter().enumerate() {
                let data = kind.generate(n, 9);
                match time_fit(approach, &data, 1) {
                    Ok(t) => {
                        let overhead = t.saturating_sub(lr_ms[i]);
                        print!(" {:>9}", overhead.as_millis());
                    }
                    Err(_) => print!(" {:>9}", "-"),
                }
            }
            println!();
            eprintln!("[fig11/size] {} done", approach.name);
        }
    }
}

/// Fig. 11(d–f): vary |X| on Credit.
fn attr_sweep(attr_counts: &[usize]) {
    println!();
    println!("=== Fig. 11(d–f) — runtime overhead vs #attributes (Credit) ===");
    println!("(milliseconds of overhead over LR; '-' = failed/unsupported)");
    let kind = DatasetKind::Credit;
    // The paper uses the Credit dataset at its natural size for this sweep.
    let n = 20_651.min(kind.default_rows());
    let full = kind.generate(n, 11);
    let approaches = all_approaches(kind.inadmissible_attrs());

    print!("{:<6} {:<19}", "stage", "approach");
    for a in attr_counts {
        print!(" {:>9}", format!("{a}att"));
    }
    println!();

    let mut lr_ms: Vec<Duration> = Vec::new();
    for &a in attr_counts {
        let idx: Vec<usize> = (0..a).collect();
        let data = full.select_attrs(&idx);
        lr_ms.push(time_fit(&baseline_approach(), &data, 1).expect("LR trains"));
    }
    print!("{:<6} {:<19}", "base", "LR (absolute)");
    for t in &lr_ms {
        print!(" {:>9}", t.as_millis());
    }
    println!();

    for stage in [Stage::Pre, Stage::In, Stage::Post] {
        for approach in approaches.iter().filter(|a| a.stage == stage) {
            print!("{:<6} {:<19}", stage.label(), approach.name);
            for (i, &a) in attr_counts.iter().enumerate() {
                let idx: Vec<usize> = (0..a).collect();
                let data = full.select_attrs(&idx);
                match time_fit(approach, &data, 1) {
                    Ok(t) => {
                        let overhead = t.saturating_sub(lr_ms[i]);
                        print!(" {:>9}", overhead.as_millis());
                    }
                    // Calmon beyond 22 attributes reports Unsupported — the
                    // paper's "did not converge for more than 22 attributes".
                    Err(_) => print!(" {:>9}", "-"),
                }
            }
            println!();
            eprintln!("[fig11/attrs] {} done", approach.name);
        }
    }
}
