//! Fig. 11: efficiency and scalability.
//!
//! * Fig. 11(a–c) — runtime *overhead over LR* as the number of data points
//!   grows (1 K → 40 K rows of Adult), reported per stage (pre / in / post);
//! * Fig. 11(d–f) — runtime overhead as the number of attributes grows
//!   (2 → 26 attributes of Credit).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p fairlens-bench --bin fig11_scalability \
//!     [-- [--threads N] [--seed S] [--scale quick|paper] [--out DIR] \
//!         [--cell-timeout SECS] [--retries N] [--resume PATH] [--trace PATH] \
//!         [size|attrs|both]]
//! ```
//!
//! `--scale quick` halves the sweep (sizes up to 10 K, attributes up to 22)
//! for smoke runs. As in the paper, the reported value is
//! `total pipeline time − LR time`, so pure-overhead comparisons across
//! stages are meaningful. Every timing cell runs single-threaded on one
//! worker (the runner never parallelises *within* a cell), so `--threads`
//! only overlaps different cells; use `--threads 1` for the least-noisy
//! timings. Records stream to `<out>/fig11_scalability.jsonl` with their
//! `rows` / `attrs` coordinates; every sweep point checkpoints into the
//! same file, so an interrupted sweep continues with `--resume <that file>`
//! (note that resumed timing cells keep their originally measured times).

use fairlens_bench::{CommonArgs, ExperimentSpec, RunBatch, RunPolicy, RunRecord, Runner, ScaleSpec};
use fairlens_core::{all_approaches, Stage};
use fairlens_synth::DatasetKind;

const USAGE: &str = "fig11_scalability [--threads N] [--seed S] [--scale quick|paper] [--out DIR] \
                     [--cell-timeout SECS] [--retries N] [--resume PATH] [--trace PATH] \
                     [size|attrs|both]";

fn main() {
    let args = CommonArgs::from_env(USAGE);
    let mode = args.rest.first().map(String::as_str).unwrap_or("both").to_string();
    let quick = args.scale == ScaleSpec::Quick;
    let runner = Runner::new(args.threads);
    let out = args.out_file("fig11_scalability");
    let policy = args.run_policy(&out).unwrap_or_else(|e| {
        eprintln!("error: {e}\nusage: {USAGE}");
        std::process::exit(2);
    });
    let mut agg = RunBatch::default();

    if mode == "size" || mode == "both" {
        let sizes: &[usize] = if quick {
            &[1_000, 2_000, 5_000, 10_000]
        } else {
            &[1_000, 2_000, 5_000, 10_000, 20_000, 40_000]
        };
        size_sweep(&runner, args.seed, sizes, &policy, &mut agg);
    }
    if mode == "attrs" || mode == "both" {
        let attrs: &[usize] = if quick {
            &[2, 6, 10, 14, 18, 22]
        } else {
            &[2, 6, 10, 14, 18, 22, 26]
        };
        attr_sweep(&runner, args.seed, attrs, &policy, &mut agg);
    }

    fairlens_bench::cli::announce_run("fig11", &out, &agg);
    if let Err(e) = args.finish_trace(&policy) {
        eprintln!("[fig11] {e}");
        std::process::exit(1);
    }
    // Cross-verify on the sweep's dataset at the run scale — the sweep
    // specs themselves are timing-only and vary only in size.
    let xspec = ExperimentSpec::new(args.seed).datasets([DatasetKind::Adult]).scale(args.scale);
    args.finish_xverify("fig11", &xspec);
}

/// Run one timing-only spec per sweep point; cells within a point are
/// spread over the pool, each cell itself single-threaded. Every point
/// checkpoints into the shared results file — the runner carries earlier
/// points' rows through each finalize.
fn run_points(
    runner: &Runner,
    label: &str,
    specs: Vec<ExperimentSpec>,
    policy: &RunPolicy,
    agg: &mut RunBatch,
) -> Vec<Vec<RunRecord>> {
    specs
        .into_iter()
        .map(|spec| {
            let batch = runner.run_with(&spec, policy);
            for f in &batch.failures {
                // Calmon beyond 22 attributes reports Unsupported — the
                // paper's "did not converge for more than 22 attributes".
                eprintln!("[{label}] FAILED {f}");
            }
            agg.records.extend(batch.records.iter().cloned());
            agg.failures.extend(batch.failures.iter().cloned());
            agg.resumed += batch.resumed;
            batch.records
        })
        .collect()
}

fn overhead_cell(records: &[RunRecord], name: &str, lr_ms: Option<f64>) -> String {
    match (records.iter().find(|r| r.approach == name), lr_ms) {
        (Some(r), Some(lr)) => format!("{:.0}", (r.fit_ms - lr).max(0.0)),
        _ => "-".into(),
    }
}

/// Fig. 11(a–c): vary |D| on Adult.
fn size_sweep(runner: &Runner, seed: u64, sizes: &[usize], policy: &RunPolicy, agg: &mut RunBatch) {
    println!("=== Fig. 11(a–c) — runtime overhead vs data size (Adult) ===");
    println!("(milliseconds of overhead over LR; '-' = failed/unsupported)");
    let kind = DatasetKind::Adult;

    let specs = sizes
        .iter()
        .map(|&n| {
            ExperimentSpec::new(seed)
                .datasets([kind])
                .scale(ScaleSpec::Rows(n))
                .timing_only(true)
        })
        .collect();
    let per_point = run_points(runner, "fig11/size", specs, policy, agg);

    print!("{:<6} {:<19}", "stage", "approach");
    for n in sizes {
        print!(" {:>9}", format!("{}K", n / 1000));
    }
    println!();

    // Baseline LR times per size (subtracted from everything).
    let lr_ms: Vec<Option<f64>> = per_point
        .iter()
        .map(|records| records.iter().find(|r| r.approach == "LR").map(|r| r.fit_ms))
        .collect();
    print!("{:<6} {:<19}", "base", "LR (absolute)");
    for t in &lr_ms {
        match t {
            Some(ms) => print!(" {ms:>9.0}"),
            None => print!(" {:>9}", "-"),
        }
    }
    println!();

    for stage in [Stage::Pre, Stage::In, Stage::Post] {
        for approach in all_approaches(kind.salimi_inadmissible())
            .iter()
            .filter(|a| a.stage == stage)
        {
            print!("{:<6} {:<19}", stage.label(), approach.name);
            for (records, lr) in per_point.iter().zip(&lr_ms) {
                print!(" {:>9}", overhead_cell(records, approach.name, *lr));
            }
            println!();
        }
    }
}

/// Fig. 11(d–f): vary |X| on Credit.
fn attr_sweep(
    runner: &Runner,
    seed: u64,
    attr_counts: &[usize],
    policy: &RunPolicy,
    agg: &mut RunBatch,
) {
    println!();
    println!("=== Fig. 11(d–f) — runtime overhead vs #attributes (Credit) ===");
    println!("(milliseconds of overhead over LR; '-' = failed/unsupported)");
    let kind = DatasetKind::Credit;
    // The paper uses the Credit dataset at its natural size for this sweep.
    let n = kind.default_rows();

    let specs = attr_counts
        .iter()
        .map(|&a| {
            ExperimentSpec::new(seed)
                .datasets([kind])
                .scale(ScaleSpec::Rows(n))
                .attrs(a)
                .timing_only(true)
        })
        .collect();
    let per_point = run_points(runner, "fig11/attrs", specs, policy, agg);

    print!("{:<6} {:<19}", "stage", "approach");
    for a in attr_counts {
        print!(" {:>9}", format!("{a}att"));
    }
    println!();

    let lr_ms: Vec<Option<f64>> = per_point
        .iter()
        .map(|records| records.iter().find(|r| r.approach == "LR").map(|r| r.fit_ms))
        .collect();
    print!("{:<6} {:<19}", "base", "LR (absolute)");
    for t in &lr_ms {
        match t {
            Some(ms) => print!(" {ms:>9.0}"),
            None => print!(" {:>9}", "-"),
        }
    }
    println!();

    for stage in [Stage::Pre, Stage::In, Stage::Post] {
        for approach in all_approaches(kind.salimi_inadmissible())
            .iter()
            .filter(|a| a.stage == stage)
        {
            print!("{:<6} {:<19}", stage.label(), approach.name);
            for (records, lr) in per_point.iter().zip(&lr_ms) {
                print!(" {:>9}", overhead_cell(records, approach.name, *lr));
            }
            println!();
        }
    }
}
