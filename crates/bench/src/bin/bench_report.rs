//! Machine-readable perf baselines: the first points of the repo's
//! `BENCH_*.json` trajectory.
//!
//! Drives the blocked linalg kernels and the serve flush path through the
//! vendored criterion stub (draining [`criterion::take_results`] instead
//! of scraping stdout), measures the fig11 fit phase at 40 K Adult rows
//! before/after the blocked kernels via the `fairlens-trace` `fit` span
//! (the same span `trace_report` attributes), and writes
//! `BENCH_linalg.json` / `BENCH_serve.json`.
//!
//! The before/after comparison runs in one process: the kernels keep
//! their naive references in-tree behind the
//! [`fairlens_linalg::kernels::set_force_naive`] switch, so "before" is
//! the identical workload routed through the pre-blocking code paths.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p fairlens-bench --bin bench_report -- \
//!     [--out DIR] [--skip-fit] [--check BENCH_linalg.json]
//! ```
//!
//! * default: full-scale kernel sweep + quick-scale sweep + fit-phase
//!   before/after; writes both JSON baselines to `--out` (default `.`).
//! * `--check FILE`: quick-scale kernel sweep only, compared against the
//!   committed baseline's `quick_kernels` section; exits non-zero if any
//!   kernel's fast-path median regressed more than 20%. This is the
//!   `scripts/check.sh` bench smoke (gated by `FAIRLENS_BENCH_STRICT`).

use std::path::{Path, PathBuf};
use std::time::Instant;

use criterion::{black_box, take_results, Criterion, Summary};
use fairlens_core::baseline_approach;
use fairlens_json::{object, Value};
use fairlens_linalg::kernels;
use fairlens_synth::DatasetKind;

const USAGE: &str = "bench_report [--out DIR] [--skip-fit] [--check BENCH_linalg.json]";

/// Median wall-clock per variant of one kernel at one shape.
struct KernelRow {
    kernel: String,
    shape: String,
    fast_median_ns: u64,
    naive_median_ns: u64,
}

impl KernelRow {
    fn speedup(&self) -> f64 {
        self.naive_median_ns as f64 / (self.fast_median_ns.max(1)) as f64
    }

    fn to_value(&self) -> Value {
        object([
            ("kernel", Value::String(self.kernel.clone())),
            ("shape", Value::String(self.shape.clone())),
            ("fast_median_ns", Value::Integer(self.fast_median_ns)),
            ("naive_median_ns", Value::Integer(self.naive_median_ns)),
            ("speedup", Value::Number(self.speedup())),
        ])
    }
}

fn main() {
    let mut out_dir = PathBuf::from(".");
    let mut skip_fit = false;
    let mut check: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_dir = PathBuf::from(args.next().unwrap_or_else(|| usage_exit())),
            "--skip-fit" => skip_fit = true,
            "--check" => check = Some(PathBuf::from(args.next().unwrap_or_else(|| usage_exit()))),
            _ => {
                eprintln!("unknown argument: {arg}");
                usage_exit();
            }
        }
    }

    if let Some(baseline) = check {
        run_check(&baseline);
        return;
    }

    println!("== linalg kernels, full scale ==");
    let full = measure_kernels(false);
    println!("== linalg kernels, quick scale (the check.sh gate shapes) ==");
    let quick = measure_kernels(true);

    let fit = if skip_fit {
        None
    } else {
        println!("== fig11 fit phase, Adult 40K rows, naive vs blocked ==");
        Some(measure_fit(40_000, 2))
    };

    let linalg = object([
        ("schema", Value::String("fairlens-bench-linalg/v1".into())),
        ("kernels", Value::Array(full.iter().map(KernelRow::to_value).collect())),
        ("quick_kernels", Value::Array(quick.iter().map(KernelRow::to_value).collect())),
        (
            "fit40k",
            fit.map_or(Value::Null, |(naive_ms, fast_ms)| {
                object([
                    ("rows", Value::Integer(40_000)),
                    ("dataset", Value::String("adult".into())),
                    ("measured_via", Value::String("fairlens-trace span 'fit'".into())),
                    ("naive_ms", Value::Number(naive_ms)),
                    ("fast_ms", Value::Number(fast_ms)),
                    ("speedup", Value::Number(naive_ms / fast_ms.max(1e-9))),
                ])
            }),
        ),
    ]);
    write_json(&out_dir.join("BENCH_linalg.json"), &linalg);

    println!("== serve flush path, batched single-pass vs per-call two-pass ==");
    let serve_full = measure_serve(false);
    let serve_quick = measure_serve(true);
    let serve = object([
        ("schema", Value::String("fairlens-bench-serve/v1".into())),
        ("flush", Value::Array(serve_full.iter().map(KernelRow::to_value).collect())),
        ("quick_flush", Value::Array(serve_quick.iter().map(KernelRow::to_value).collect())),
    ]);
    write_json(&out_dir.join("BENCH_serve.json"), &serve);
}

fn usage_exit() -> ! {
    eprintln!("usage: {USAGE}");
    std::process::exit(2)
}

fn write_json(path: &Path, value: &Value) {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    let mut text = value.to_json();
    text.push('\n');
    if let Err(e) = std::fs::write(path, text) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("wrote {}", path.display());
}

/// Shapes mirrored from `crates/linalg/benches/kernels.rs`.
struct Shapes {
    dot_len: usize,
    gemv: (usize, usize),
    gemm: (usize, usize, usize),
    gram: (usize, usize),
    transpose: (usize, usize),
    samples: usize,
}

fn shapes(quick: bool) -> Shapes {
    if quick {
        Shapes {
            dot_len: 1024,
            gemv: (512, 64),
            gemm: (96, 96, 96),
            gram: (2_000, 32),
            transpose: (256, 256),
            samples: 10,
        }
    } else {
        Shapes {
            dot_len: 8192,
            gemv: (4_096, 64),
            gemm: (256, 256, 256),
            gram: (40_000, 64),
            transpose: (1_024, 512),
            samples: 20,
        }
    }
}

fn filled(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i % 977) as f64).mul_add(1.3e-3, 0.25)).collect()
}

/// Run the fast and naive variant of every kernel, returning joined rows.
fn measure_kernels(quick: bool) -> Vec<KernelRow> {
    kernels::set_force_naive(false);
    let s = shapes(quick);
    let mut c = Criterion::default();
    let mut g = c.benchmark_group("linalg");
    g.sample_size(s.samples);

    let x = filled(s.dot_len);
    let y = filled(s.dot_len);
    g.bench_function(format!("dot/fast/{}", s.dot_len), |b| {
        b.iter(|| kernels::dot(black_box(&x), black_box(&y)))
    });
    g.bench_function(format!("dot/naive/{}", s.dot_len), |b| {
        b.iter(|| kernels::dot_naive(black_box(&x), black_box(&y)))
    });

    let (rows, cols) = s.gemv;
    let a = filled(rows * cols);
    let xv = filled(cols);
    let xt = filled(rows);
    let mut out_r = vec![0.0; rows];
    let mut out_c = vec![0.0; cols];
    g.bench_function(format!("gemv/fast/{rows}x{cols}"), |b| {
        b.iter(|| kernels::gemv(rows, cols, black_box(&a), black_box(&xv), &mut out_r))
    });
    g.bench_function(format!("gemv/naive/{rows}x{cols}"), |b| {
        b.iter(|| kernels::gemv_naive(rows, cols, black_box(&a), black_box(&xv), &mut out_r))
    });
    g.bench_function(format!("gemv_t/fast/{rows}x{cols}"), |b| {
        b.iter(|| kernels::gemv_t(rows, cols, black_box(&a), black_box(&xt), &mut out_c))
    });
    g.bench_function(format!("gemv_t/naive/{rows}x{cols}"), |b| {
        b.iter(|| kernels::gemv_t_naive(rows, cols, black_box(&a), black_box(&xt), &mut out_c))
    });

    let (m, k, n) = s.gemm;
    let ga = filled(m * k);
    let gb = filled(k * n);
    let mut gc = vec![0.0; m * n];
    g.bench_function(format!("gemm/fast/{m}x{k}x{n}"), |b| {
        b.iter(|| kernels::gemm(m, k, n, black_box(&ga), black_box(&gb), &mut gc))
    });
    g.bench_function(format!("gemm/naive/{m}x{k}x{n}"), |b| {
        b.iter(|| kernels::gemm_naive(m, k, n, black_box(&ga), black_box(&gb), &mut gc))
    });

    let (grows, gcols) = s.gram;
    let gm = filled(grows * gcols);
    let gw = filled(grows);
    let mut gout = vec![0.0; gcols * gcols];
    g.bench_function(format!("gram_weighted/fast/{grows}x{gcols}"), |b| {
        b.iter(|| kernels::gram_weighted(grows, gcols, black_box(&gm), black_box(&gw), &mut gout))
    });
    g.bench_function(format!("gram_weighted/naive/{grows}x{gcols}"), |b| {
        b.iter(|| {
            kernels::gram_weighted_naive(grows, gcols, black_box(&gm), black_box(&gw), &mut gout)
        })
    });

    let (trows, tcols) = s.transpose;
    let tm = filled(trows * tcols);
    let mut tout = vec![0.0; trows * tcols];
    g.bench_function(format!("transpose/fast/{trows}x{tcols}"), |b| {
        b.iter(|| kernels::transpose(trows, tcols, black_box(&tm), &mut tout))
    });
    g.bench_function(format!("transpose/naive/{trows}x{tcols}"), |b| {
        b.iter(|| kernels::transpose_naive(trows, tcols, black_box(&tm), &mut tout))
    });

    g.finish();
    join_variants(take_results())
}

/// The serve flush workload: one trained baseline pipeline scoring a
/// 256-row micro-batch. `fast` = the new single-pass
/// `predict_with_proba` on blocked kernels; `naive` = the pre-PR shape,
/// separate `predict` + `predict_proba` passes on the naive references.
fn measure_serve(quick: bool) -> Vec<KernelRow> {
    let train_rows = if quick { 2_000 } else { 10_000 };
    let train = DatasetKind::Adult.generate(train_rows, 11);
    let batch = DatasetKind::Adult.generate(256, 99);
    kernels::set_force_naive(false);
    let pipeline = baseline_approach().fit(&train, 7).expect("baseline fit");

    let mut c = Criterion::default();
    let mut g = c.benchmark_group("serve");
    g.sample_size(if quick { 10 } else { 30 });
    // Same trailing shape label on both variants so `join_variants` pairs
    // them into one row: fast = single-pass batched predict_with_proba,
    // naive = the pre-rewrite two-pass predict + predict_proba.
    g.bench_function("flush_256/fast/adult_256", |b| {
        kernels::set_force_naive(false);
        b.iter(|| pipeline.predict_with_proba(black_box(&batch)))
    });
    g.bench_function("flush_256/naive/adult_256", |b| {
        kernels::set_force_naive(true);
        b.iter(|| {
            let labels = pipeline.predict(black_box(&batch));
            let scores = pipeline.predict_proba(black_box(&batch));
            (labels, scores)
        })
    });
    g.finish();
    kernels::set_force_naive(false);
    join_variants(take_results())
}

/// Join `<group>/<kernel>/fast/<shape>` and `<group>/<kernel>/naive/<shape>`
/// summaries into per-kernel rows (order of first appearance).
fn join_variants(summaries: Vec<Summary>) -> Vec<KernelRow> {
    let mut rows: Vec<KernelRow> = Vec::new();
    for s in &summaries {
        let mut parts = s.label.splitn(2, '/');
        let _group = parts.next().unwrap_or_default();
        let rest = parts.next().unwrap_or_default();
        let segs: Vec<&str> = rest.split('/').collect();
        let (kernel, variant, shape) = match segs.as_slice() {
            [kernel, variant, shape] => (kernel.to_string(), *variant, shape.to_string()),
            [kernel, variant] => (kernel.to_string(), *variant, String::new()),
            _ => continue,
        };
        let row = match rows.iter_mut().find(|r| r.kernel == kernel && r.shape == shape) {
            Some(r) => r,
            None => {
                rows.push(KernelRow {
                    kernel,
                    shape,
                    fast_median_ns: 0,
                    naive_median_ns: 0,
                });
                rows.last_mut().unwrap()
            }
        };
        match variant {
            "fast" => row.fast_median_ns = s.median_ns,
            "naive" => row.naive_median_ns = s.median_ns,
            _ => {}
        }
    }
    for r in &rows {
        println!("  {:<16} {:<14} {:>7.2}x  (fast {} ns, naive {} ns)",
            r.kernel, r.shape, r.speedup(), r.fast_median_ns, r.naive_median_ns);
    }
    rows
}

/// Fit the baseline LR pipeline on Adult at `rows` with each kernel
/// routing, timing the `fit` span through a [`fairlens_trace::TraceSink`]
/// — the same span `trace_report` attributes. Returns `(naive_ms,
/// fast_ms)`, each the minimum over `reps` runs.
fn measure_fit(rows: usize, reps: usize) -> (f64, f64) {
    let data = DatasetKind::Adult.generate(rows, 42);
    let approach = baseline_approach();
    let mut fit_ms = [f64::INFINITY; 2];
    for (slot, naive) in [(0usize, true), (1usize, false)] {
        kernels::set_force_naive(naive);
        for _ in 0..reps {
            let sink = fairlens_trace::TraceSink::new();
            {
                let _guard = sink.collect("bench_report");
                let _span = fairlens_trace::span("fit");
                let t0 = Instant::now();
                approach.fit(&data, 7).expect("baseline fit");
                black_box(t0.elapsed());
            }
            let dur_us = sink
                .tracks()
                .iter()
                .flat_map(|t| t.events.iter())
                .filter(|e| e.name() == "fit")
                .filter_map(|e| e.dur_us())
                .max()
                .expect("fit span recorded");
            fit_ms[slot] = fit_ms[slot].min(dur_us as f64 / 1_000.0);
        }
        println!(
            "  fit[{}] {} rows: {:.1} ms",
            if naive { "naive" } else { "fast" },
            rows,
            fit_ms[slot]
        );
    }
    kernels::set_force_naive(false);
    (fit_ms[0], fit_ms[1])
}

/// `--check`: quick-scale sweep vs the committed baseline's
/// `quick_kernels`; >20% fast-path median regression fails.
fn run_check(baseline_path: &Path) {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", baseline_path.display());
            std::process::exit(1);
        }
    };
    let baseline = fairlens_json::parse(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {}: {e}", baseline_path.display());
        std::process::exit(1);
    });
    let Some(Value::Array(base_rows)) = baseline.get("quick_kernels") else {
        eprintln!("{}: no quick_kernels section", baseline_path.display());
        std::process::exit(1);
    };

    println!("== bench check: quick kernels vs {} ==", baseline_path.display());
    let current = measure_kernels(true);
    let mut regressed = false;
    for row in &current {
        let base = base_rows.iter().find(|b| {
            b.get("kernel").and_then(Value::as_str) == Some(row.kernel.as_str())
                && b.get("shape").and_then(Value::as_str) == Some(row.shape.as_str())
        });
        let Some(base_ns) = base.and_then(|b| b.get("fast_median_ns")).and_then(|v| match v {
            Value::Integer(n) => Some(*n),
            Value::Number(n) => Some(*n as u64),
            _ => None,
        }) else {
            println!("  {:<16} {:<14} (no baseline entry — skipped)", row.kernel, row.shape);
            continue;
        };
        let ratio = row.fast_median_ns as f64 / base_ns.max(1) as f64;
        let verdict = if ratio > 1.2 {
            regressed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "  {:<16} {:<14} {:>8} ns vs baseline {:>8} ns  ({:+.1}%)  {verdict}",
            row.kernel,
            row.shape,
            row.fast_median_ns,
            base_ns,
            (ratio - 1.0) * 100.0
        );
    }
    if regressed {
        eprintln!("bench check FAILED: a kernel regressed more than 20% vs the committed baseline");
        std::process::exit(1);
    }
    println!("bench check passed");
}
