//! Train and persist serving artifacts for every (approach × dataset) cell.
//!
//! For each selected dataset the binary generates the synthetic data at the
//! requested scale, splits off the benchmark's fold-0 train/test split with
//! the standard seed derivation, fits each selected approach, evaluates the
//! full metric suite on the held-out fold, and saves a versioned `.flm`
//! artifact (provenance + schema + fitted pipeline) that `fairlens-serve`
//! can load and predict from byte-identically.
//!
//! ```text
//! export_models [--scale quick|paper] [--seed S] [--out DIR] [--trace PATH]
//!               [--datasets German,Adult] [--approaches LR,Hardt^EO]
//! ```
//!
//! Defaults: all four datasets, the baseline plus all 18 registry variants.
//! Cells whose training fails (infeasible solver, degenerate groups) are
//! reported and skipped; the binary exits non-zero only if *nothing* could
//! be exported or an artifact could not be written.

use std::path::Path;
use std::time::Instant;

use fairlens_bench::cli::{announce_output, CommonArgs};
use fairlens_bench::spec::{cell_seed, dataset_seed, fold_seed};
use fairlens_bench::{metric_suite, PAPER_CD_BOUNDS};
use fairlens_core::{all_approaches, baseline_approach, Approach, DataSchema, ModelArtifact};
use fairlens_frame::split;
use fairlens_synth::{DatasetKind, ALL_DATASETS};
use rand::rngs::StdRng;
use rand::SeedableRng;

const USAGE: &str = "export_models [--scale quick|paper] [--seed S] [--out DIR] [--trace PATH] \
                     [--datasets NAMES] [--approaches NAMES]";

/// `<dataset>-<approach>.flm`, lowercased with `^`/spaces/`/` folded to `-`
/// so the id is shell- and URL-safe. This is also the model id the server
/// exposes.
fn model_id(dataset: &str, approach: &str) -> String {
    let sanitize = |s: &str| {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            if c.is_ascii_alphanumeric() {
                out.push(c.to_ascii_lowercase());
            } else if !out.ends_with('-') {
                out.push('-');
            }
        }
        out.trim_end_matches('-').to_string()
    };
    format!("{}-{}", sanitize(dataset), sanitize(approach))
}

/// Pop `flag VALUE` out of `rest`, splitting the value on commas. Leaves
/// unrelated arguments in place so leftovers can be rejected below.
fn take_list(flag: &str, rest: &mut Vec<String>) -> Option<Vec<String>> {
    let pos = rest.iter().position(|a| a == flag)?;
    if pos + 1 >= rest.len() {
        eprintln!("error: {flag} needs a value\nusage: {USAGE}");
        std::process::exit(2);
    }
    let value = rest.remove(pos + 1);
    rest.remove(pos);
    Some(value.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect())
}

fn main() {
    let mut args = CommonArgs::from_env(USAGE);
    let out_dir = if args.out == Path::new("results") {
        // The artifacts are inputs to the server, not experiment results;
        // keep them apart from the JSONL records by default.
        Path::new("models").to_owned()
    } else {
        args.out.clone()
    };
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("[export_models] cannot create {}: {e}", out_dir.display());
        std::process::exit(1);
    }

    let dataset_names = take_list("--datasets", &mut args.rest);
    let approach_filter = take_list("--approaches", &mut args.rest);
    if let Some(stray) = args.rest.first() {
        eprintln!("error: unexpected argument {stray:?}\nusage: {USAGE}");
        std::process::exit(2);
    }

    let datasets: Vec<DatasetKind> = match dataset_names {
        None => ALL_DATASETS.to_vec(),
        Some(names) => {
            let mut kinds = Vec::new();
            for n in &names {
                match ALL_DATASETS.iter().find(|k| k.name().eq_ignore_ascii_case(n)) {
                    Some(k) => kinds.push(*k),
                    None => {
                        eprintln!("error: unknown dataset {n:?}\nusage: {USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            kinds
        }
    };

    // export_models bypasses the Runner, so it drives its own trace sink:
    // one data track per dataset, one cell track per exported model.
    let trace = args.trace.as_ref().map(|_| fairlens_trace::TraceSink::new());

    let mut exported = 0usize;
    let mut skipped = 0usize;
    for kind in datasets {
        let name = kind.name();
        let rows = args.scale.rows(kind);
        let (train, test, schema) = {
            let _collect = trace.as_ref().map(|s| s.collect(format!("data/{name}/r{rows}")));
            let _synth = fairlens_trace::span("synth");
            let data = kind.generate(rows, dataset_seed(args.seed, name));
            let mut split_rng = StdRng::seed_from_u64(fold_seed(args.seed, name, 0));
            let (train, test) = split::train_test_split(&data, 0.3, &mut split_rng);
            let schema = DataSchema::of(&train);
            (train, test, schema)
        };

        // Per-dataset resolution so the Salimi variants pick up the
        // dataset's inadmissible attributes.
        let approaches: Vec<Approach> = std::iter::once(baseline_approach())
            .chain(all_approaches(kind.salimi_inadmissible()))
            .filter(|a| {
                approach_filter
                    .as_ref()
                    .map(|f| f.iter().any(|n| n == a.name))
                    .unwrap_or(true)
            })
            .collect();

        for approach in approaches {
            let seed = cell_seed(args.seed, approach.name, name, 0);
            let _collect = trace.as_ref().map(|s| {
                s.collect(format!(
                    "cell/{name}/r{rows}/a{}/f0/{}",
                    train.n_attrs(),
                    approach.name
                ))
            });
            let t0 = Instant::now();
            let fit_result = {
                let _span = fairlens_trace::span("fit");
                approach.fit(&train, seed)
            };
            let fitted = match fit_result {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("[export_models] skip {name}/{}: fit failed: {e}", approach.name);
                    skipped += 1;
                    continue;
                }
            };
            let pipeline = match fitted.snapshot() {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("[export_models] skip {name}/{}: {e}", approach.name);
                    skipped += 1;
                    continue;
                }
            };
            let preds = {
                let _span = fairlens_trace::span("predict");
                fitted.predict(&test)
            };
            let report = {
                let _span = fairlens_trace::span("metrics");
                metric_suite(&fitted, kind, &test, &preds, seed, PAPER_CD_BOUNDS)
            };
            let artifact = ModelArtifact {
                approach: approach.name.to_string(),
                stage: approach.stage.label().to_string(),
                dataset: name.to_string(),
                seed,
                train_rows: train.n_rows() as u64,
                train_metrics: fairlens_bench::METRIC_KEYS
                    .iter()
                    .map(|k| k.to_string())
                    .zip(report.values())
                    .collect(),
                schema: schema.clone(),
                pipeline,
            };
            let path = out_dir.join(format!("{}.flm", model_id(name, approach.name)));
            if let Err(e) = artifact.save(&path) {
                eprintln!("[export_models] cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!(
                "[export_models] {} ({} rows, fit {} ms)",
                path.display(),
                train.n_rows(),
                t0.elapsed().as_millis()
            );
            exported += 1;
        }
    }

    announce_output("export_models", &out_dir, exported);
    if let (Some(path), Some(sink)) = (&args.trace, &trace) {
        let collapsed = path.with_extension("collapsed");
        if let Err(e) =
            sink.write_jsonl(path).and_then(|()| sink.write_collapsed(&collapsed))
        {
            eprintln!("[export_models] cannot write trace {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!(
            "[trace] wrote {} (flamegraph stacks: {})",
            path.display(),
            collapsed.display()
        );
    }
    if skipped > 0 {
        eprintln!("[export_models] {skipped} cell(s) skipped");
    }
    if exported == 0 {
        eprintln!("[export_models] nothing exported");
        std::process::exit(1);
    }
}
