//! Ablation studies over the design choices DESIGN.md calls out.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p fairlens-bench --bin ablations [-- zafar|salimi|cd|thomas|all]
//! ```
//!
//! * `zafar`  — the covariance-tolerance knob `c`: the accuracy↔parity
//!   curve the constraint induces (Zafar^DP_Fair on COMPAS);
//! * `salimi` — the stratification width: how the number of admissible
//!   stratification attributes drives instance size, runtime and repair
//!   volume (the mechanism behind Fig. 11(d)'s inverse scaling);
//! * `cd`     — the causal-discrimination error bound: Hoeffding sample
//!   size vs estimate spread across seeds;
//! * `thomas` — the Seldonian tolerance: when does the safety test start
//!   returning NSF.

use std::sync::Arc;
use std::time::Instant;

use fairlens_core::inproc::{Thomas, ThomasNotion, Zafar, ZafarVariant};
use fairlens_core::pipeline::Preprocessor;
use fairlens_core::pre::{Salimi, SalimiEngine};
use fairlens_core::{baseline_approach, Approach, ApproachKind, Stage};
use fairlens_frame::split;
use fairlens_metrics::{causal_discrimination, di_star, hoeffding_sample_size};
use fairlens_synth::DatasetKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    if which == "zafar" || which == "all" {
        ablate_zafar();
    }
    if which == "salimi" || which == "all" {
        ablate_salimi();
    }
    if which == "cd" || which == "all" {
        ablate_cd();
    }
    if which == "thomas" || which == "all" {
        ablate_thomas();
    }
}

fn accuracy(preds: &[u8], labels: &[u8]) -> f64 {
    preds.iter().zip(labels).filter(|&(p, t)| p == t).count() as f64 / labels.len() as f64
}

/// Zafar^DP_Fair: the tolerance `c` of `|cov| ≤ c` traces the whole
/// accuracy–parity frontier.
fn ablate_zafar() {
    println!("=== Ablation: Zafar covariance tolerance c ===");
    let kind = DatasetKind::Compas;
    let data = kind.generate(4_000, 42);
    let mut rng = StdRng::seed_from_u64(7);
    let (train, test) = split::train_test_split(&data, 0.3, &mut rng);

    println!("{:<12} {:>10} {:>8} {:>10}", "c", "accuracy", "DI*", "fit(ms)");
    for c in [1.0, 0.3, 0.1, 0.03, 0.01, 0.003, 0.001] {
        let zafar = Zafar { cov_tol: c, ..Zafar::new(ZafarVariant::DpFair) };
        let approach = Approach {
            name: "Zafar^DP(sweep)",
            stage: Stage::In,
            targets: &["DI"],
            kind: ApproachKind::In(Arc::new(zafar)),
        };
        let t0 = Instant::now();
        match approach.fit(&train, 1) {
            Ok(f) => {
                let preds = f.predict(&test);
                println!(
                    "{:<12} {:>10.3} {:>8.3} {:>10}",
                    format!("{c:.3}"),
                    accuracy(&preds, test.labels()),
                    di_star(&preds, test.sensitive()),
                    t0.elapsed().as_millis()
                );
            }
            Err(e) => println!("{c:<12.3} failed: {e}"),
        }
    }
    println!();
}

/// Salimi: force different stratification widths by varying dataset width
/// (the repair stratifies on the strongest admissible attributes, bounded
/// by the data budget).
fn ablate_salimi() {
    println!("=== Ablation: Salimi stratification / instance size ===");
    let kind = DatasetKind::Compas;
    let full = kind.generate(6_000, 42);
    println!(
        "{:<8} {:>12} {:>12} {:>12}",
        "attrs", "maxsat(ms)", "matfac(ms)", "rows Δ"
    );
    for width in [2usize, 4, 6, 8, 11] {
        let idx: Vec<usize> = (0..width).collect();
        let data = full.select_attrs(&idx);
        let mut row = format!("{width:<8}");
        let mut delta = 0usize;
        for engine in [SalimiEngine::MaxSat, SalimiEngine::MatFac] {
            let s = Salimi::new(engine, vec![]);
            let mut rng = StdRng::seed_from_u64(1);
            let t0 = Instant::now();
            match s.repair(&data, &mut rng) {
                Ok(r) => {
                    delta = r.n_rows().abs_diff(data.n_rows());
                    row.push_str(&format!(" {:>12}", t0.elapsed().as_millis()));
                }
                Err(e) => row.push_str(&format!(" {:>12}", format!("err:{e}"))),
            }
        }
        row.push_str(&format!(" {delta:>12}"));
        println!("{row}");
    }
    println!("(fewer attributes → coarser strata → bigger MaxSAT instances)");
    println!();
}

/// CD: the paper's (99 %, 1 %) setting vs cheaper bounds — sample size and
/// seed-to-seed spread.
fn ablate_cd() {
    println!("=== Ablation: CD confidence/error bound ===");
    let kind = DatasetKind::Compas;
    let data = kind.generate(6_000, 42);
    let fitted = baseline_approach().fit(&data, 1).expect("LR trains");

    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "(confidence, error)", "samples", "mean CD", "spread"
    );
    for (conf, err) in [(0.90, 0.05), (0.95, 0.02), (0.99, 0.01)] {
        let n = hoeffding_sample_size(conf, err);
        let mut estimates = Vec::new();
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            estimates.push(causal_discrimination(
                &data,
                |d| fitted.predict(d),
                conf,
                err,
                &mut rng,
            ));
        }
        let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
        let spread = estimates
            .iter()
            .fold(0.0f64, |m, &v| m.max((v - mean).abs()));
        println!(
            "{:<22} {:>10} {:>10.4} {:>10.4}",
            format!("({conf}, {err})"),
            n,
            mean,
            spread
        );
    }
    println!("(tighter bounds → larger Hoeffding samples → smaller spread)");
    println!();
}

/// Thomas: tolerance vs acceptance — at tight tolerances the safety test
/// cannot pass and the NSF fallback is used.
fn ablate_thomas() {
    println!("=== Ablation: Thomas safety-test tolerance ===");
    let kind = DatasetKind::Compas;
    let data = kind.generate(4_000, 42);
    let mut rng = StdRng::seed_from_u64(7);
    let (train, test) = split::train_test_split(&data, 0.3, &mut rng);

    println!("{:<12} {:>10} {:>8}", "tolerance", "accuracy", "DI*");
    for tol in [0.20, 0.12, 0.08, 0.05, 0.02] {
        let thomas = Thomas { tolerance: tol, ..Thomas::new(ThomasNotion::DemographicParity) };
        let approach = Approach {
            name: "Thomas^DP(sweep)",
            stage: Stage::In,
            targets: &["DI"],
            kind: ApproachKind::In(Arc::new(thomas)),
        };
        match approach.fit(&train, 1) {
            Ok(f) => {
                let preds = f.predict(&test);
                println!(
                    "{:<12.2} {:>10.3} {:>8.3}",
                    tol,
                    accuracy(&preds, test.labels()),
                    di_star(&preds, test.sensitive())
                );
            }
            Err(e) => println!("{tol:<12.2} failed: {e}"),
        }
    }
    println!();
}
