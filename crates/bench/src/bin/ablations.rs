//! Ablation studies over the design choices DESIGN.md calls out.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p fairlens-bench --bin ablations \
//!     [-- [--threads N] [--seed S] [--out DIR] [--cell-timeout SECS] \
//!         [--retries N] [--resume PATH] [--trace PATH] [zafar|salimi|cd|thomas|all]]
//! ```
//!
//! * `zafar`  — the covariance-tolerance knob `c`: the accuracy↔parity
//!   curve the constraint induces (Zafar^DP_Fair on COMPAS);
//! * `salimi` — the stratification width: how the number of admissible
//!   stratification attributes drives instance size, runtime and repair
//!   volume (the mechanism behind Fig. 11(d)'s inverse scaling);
//! * `cd`     — the causal-discrimination error bound: Hoeffding sample
//!   size vs estimate spread across seeds;
//! * `thomas` — the Seldonian tolerance: when does the safety test start
//!   returning NSF.
//!
//! The Zafar and Thomas sweeps are expressed as `Custom` approach grids
//! and executed by the parallel runner (their records land in
//! `<out>/ablations.jsonl`); the Salimi and CD studies probe internals the
//! cell protocol doesn't capture (repair row deltas, estimator spread) and
//! stay direct.

use std::sync::Arc;
use std::time::Instant;

use fairlens_bench::{
    ApproachSelector, CommonArgs, ExperimentSpec, RunBatch, RunPolicy, RunRecord, Runner,
    ScaleSpec,
};
use fairlens_core::inproc::{Thomas, ThomasNotion, Zafar, ZafarVariant};
use fairlens_core::pipeline::Preprocessor;
use fairlens_core::pre::{Salimi, SalimiEngine};
use fairlens_core::{baseline_approach, Approach, ApproachKind, Stage};
use fairlens_metrics::{causal_discrimination, hoeffding_sample_size};
use fairlens_synth::DatasetKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

const USAGE: &str = "ablations [--threads N] [--seed S] [--out DIR] [--cell-timeout SECS] \
                     [--retries N] [--resume PATH] [--trace PATH] [zafar|salimi|cd|thomas|all]";

fn main() {
    let args = CommonArgs::from_env(USAGE);
    let which = args.rest.first().map(String::as_str).unwrap_or("all").to_string();
    let runner = Runner::new(args.threads);
    // The Salimi and CD studies don't go through the runner; only prepare
    // the checkpoint file when a runner-backed sweep will write to it.
    let needs_runner = matches!(which.as_str(), "zafar" | "thomas" | "all");
    let out = args.out_file("ablations");
    let policy = if needs_runner {
        args.run_policy(&out).unwrap_or_else(|e| {
            eprintln!("error: {e}\nusage: {USAGE}");
            std::process::exit(2);
        })
    } else {
        RunPolicy::default()
    };
    let mut agg = RunBatch::default();

    if which == "zafar" || which == "all" {
        ablate_zafar(&runner, args.seed, &policy, &mut agg);
    }
    if which == "salimi" || which == "all" {
        ablate_salimi(args.seed);
    }
    if which == "cd" || which == "all" {
        ablate_cd(args.seed);
    }
    if which == "thomas" || which == "all" {
        ablate_thomas(&runner, args.seed, &policy, &mut agg);
    }

    if needs_runner {
        fairlens_bench::cli::announce_run("ablations", &out, &agg);
        if let Err(e) = args.finish_trace(&policy) {
            eprintln!("[ablations] {e}");
            std::process::exit(1);
        }
    }
    // Cross-verify on the sweeps' shared COMPAS fold configuration.
    let xspec =
        ExperimentSpec::new(args.seed).datasets([DatasetKind::Compas]).scale(ScaleSpec::Rows(4_000));
    args.finish_xverify("ablations", &xspec);
}

/// Run a `Custom` sweep on COMPAS (4 000 rows, 70/30 split) and return the
/// records in sweep order. CD runs at a relaxed (90 %, 5 %) bound — the
/// sweeps read accuracy and DI*, which the bound does not touch. Both
/// sweeps checkpoint into the shared results file — the runner carries the
/// other sweep's rows through each finalize.
fn run_sweep(
    runner: &Runner,
    seed: u64,
    sweep: Vec<Approach>,
    policy: &RunPolicy,
    agg: &mut RunBatch,
) -> Vec<Option<RunRecord>> {
    let names: Vec<String> = sweep.iter().map(|a| a.name.to_string()).collect();
    let spec = ExperimentSpec::new(seed)
        .datasets([DatasetKind::Compas])
        .scale(ScaleSpec::Rows(4_000))
        .approaches(ApproachSelector::Custom(sweep))
        .baseline(false)
        .cd_bounds(0.9, 0.05);
    let batch = runner.run_with(&spec, policy);
    for f in &batch.failures {
        eprintln!("[ablations] FAILED {f}");
    }
    agg.records.extend(batch.records.iter().cloned());
    agg.failures.extend(batch.failures.iter().cloned());
    agg.resumed += batch.resumed;
    names
        .iter()
        .map(|n| batch.records.iter().find(|r| &r.approach == n).cloned())
        .collect()
}

fn leak_name(name: String) -> &'static str {
    Box::leak(name.into_boxed_str())
}

/// Zafar^DP_Fair: the tolerance `c` of `|cov| ≤ c` traces the whole
/// accuracy–parity frontier.
fn ablate_zafar(runner: &Runner, seed: u64, policy: &RunPolicy, agg: &mut RunBatch) {
    println!("=== Ablation: Zafar covariance tolerance c ===");
    const CS: [f64; 7] = [1.0, 0.3, 0.1, 0.03, 0.01, 0.003, 0.001];
    let sweep: Vec<Approach> = CS
        .iter()
        .map(|&c| Approach {
            name: leak_name(format!("Zafar^DP(c={c})")),
            stage: Stage::In,
            targets: &["DI"],
            kind: ApproachKind::In(Arc::new(Zafar {
                cov_tol: c,
                ..Zafar::new(ZafarVariant::DpFair)
            })),
        })
        .collect();
    let results = run_sweep(runner, seed, sweep, policy, agg);

    println!("{:<12} {:>10} {:>8} {:>10}", "c", "accuracy", "DI*", "fit(ms)");
    for (c, r) in CS.iter().zip(results) {
        match r {
            Some(r) => println!(
                "{:<12} {:>10.3} {:>8.3} {:>10.0}",
                format!("{c:.3}"),
                r.metric("accuracy").unwrap_or(f64::NAN),
                r.metric("di_star").unwrap_or(f64::NAN),
                r.fit_ms
            ),
            None => println!("{c:<12.3} failed"),
        }
    }
    println!();
}

/// Salimi: force different stratification widths by varying dataset width
/// (the repair stratifies on the strongest admissible attributes, bounded
/// by the data budget).
fn ablate_salimi(seed: u64) {
    println!("=== Ablation: Salimi stratification / instance size ===");
    let kind = DatasetKind::Compas;
    let full = kind.generate(6_000, seed);
    println!(
        "{:<8} {:>12} {:>12} {:>12}",
        "attrs", "maxsat(ms)", "matfac(ms)", "rows Δ"
    );
    for width in [2usize, 4, 6, 8, 11] {
        let idx: Vec<usize> = (0..width).collect();
        let data = full.select_attrs(&idx);
        let mut row = format!("{width:<8}");
        let mut delta = 0usize;
        for engine in [SalimiEngine::MaxSat, SalimiEngine::MatFac] {
            let s = Salimi::new(engine, vec![]);
            let mut rng = StdRng::seed_from_u64(seed ^ 1);
            let t0 = Instant::now();
            match s.repair(&data, &mut rng) {
                Ok(r) => {
                    delta = r.n_rows().abs_diff(data.n_rows());
                    row.push_str(&format!(" {:>12}", t0.elapsed().as_millis()));
                }
                Err(e) => row.push_str(&format!(" {:>12}", format!("err:{e}"))),
            }
        }
        row.push_str(&format!(" {delta:>12}"));
        println!("{row}");
    }
    println!("(fewer attributes → coarser strata → bigger MaxSAT instances)");
    println!();
}

/// CD: the paper's (99 %, 1 %) setting vs cheaper bounds — sample size and
/// seed-to-seed spread.
fn ablate_cd(seed: u64) {
    println!("=== Ablation: CD confidence/error bound ===");
    let kind = DatasetKind::Compas;
    let data = kind.generate(6_000, seed);
    let fitted = baseline_approach().fit(&data, 1).expect("LR trains");

    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "(confidence, error)", "samples", "mean CD", "spread"
    );
    for (conf, err) in [(0.90, 0.05), (0.95, 0.02), (0.99, 0.01)] {
        let n = hoeffding_sample_size(conf, err);
        let mut estimates = Vec::new();
        for offset in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(offset));
            estimates.push(causal_discrimination(
                &data,
                |d| fitted.predict(d),
                conf,
                err,
                &mut rng,
            ));
        }
        let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
        let spread = estimates
            .iter()
            .fold(0.0f64, |m, &v| m.max((v - mean).abs()));
        println!(
            "{:<22} {:>10} {:>10.4} {:>10.4}",
            format!("({conf}, {err})"),
            n,
            mean,
            spread
        );
    }
    println!("(tighter bounds → larger Hoeffding samples → smaller spread)");
    println!();
}

/// Thomas: tolerance vs acceptance — at tight tolerances the safety test
/// cannot pass and the NSF fallback is used.
fn ablate_thomas(runner: &Runner, seed: u64, policy: &RunPolicy, agg: &mut RunBatch) {
    println!("=== Ablation: Thomas safety-test tolerance ===");
    const TOLS: [f64; 5] = [0.20, 0.12, 0.08, 0.05, 0.02];
    let sweep: Vec<Approach> = TOLS
        .iter()
        .map(|&tol| Approach {
            name: leak_name(format!("Thomas^DP(tol={tol})")),
            stage: Stage::In,
            targets: &["DI"],
            kind: ApproachKind::In(Arc::new(Thomas {
                tolerance: tol,
                ..Thomas::new(ThomasNotion::DemographicParity)
            })),
        })
        .collect();
    let results = run_sweep(runner, seed, sweep, policy, agg);

    println!("{:<12} {:>10} {:>8}", "tolerance", "accuracy", "DI*");
    for (tol, r) in TOLS.iter().zip(results) {
        match r {
            Some(r) => println!(
                "{:<12.2} {:>10.3} {:>8.3}",
                tol,
                r.metric("accuracy").unwrap_or(f64::NAN),
                r.metric("di_star").unwrap_or(f64::NAN)
            ),
            None => println!("{tol:<12.2} failed"),
        }
    }
    println!();
}
