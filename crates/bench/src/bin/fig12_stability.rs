//! Figs. 12–16: stability (variance) of every approach over random folds.
//!
//! The paper executes each approach 10 times on random 2/3–1/3 train/test
//! folds and reports the spread of the correctness and fairness metrics.
//! Fig. 12 is the headline panel (Adult: accuracy, F1, DI, TPRB, CD);
//! Figs. 13–16 are the full grids for all four datasets.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p fairlens-bench --bin fig12_stability \
//!     [-- [--threads N] [--seed S] [--scale quick|paper] [--out DIR] \
//!         [--cell-timeout SECS] [--retries N] [--resume PATH] [--trace PATH] \
//!         [adult|compas|german|credit|all] [--headline]]
//! ```
//!
//! The (approach × fold) grid is evaluated by the parallel runner; every
//! cell's randomness is seeded from its coordinates, so `--threads 8`
//! reproduces `--threads 1` exactly. Records stream to
//! `<out>/fig12_stability.jsonl` as cells complete (failed cells to the
//! `.failures.jsonl` sidecar), so a killed run can be continued with
//! `--resume <that file>`.

use fairlens_bench::{summarize, CommonArgs, ExperimentSpec, RunRecord, Runner, Summary};
use fairlens_synth::{DatasetKind, ALL_DATASETS};

const FOLDS: usize = 10;

const USAGE: &str = "fig12_stability [--threads N] [--seed S] [--scale quick|paper] [--out DIR] \
                     [--cell-timeout SECS] [--retries N] [--resume PATH] [--trace PATH] \
                     [adult|compas|german|credit|all] [--headline]";

fn main() {
    let args = CommonArgs::from_env(USAGE);
    let headline = args.rest.iter().any(|a| a == "--headline");
    let which = args
        .rest
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "adult".into());

    let datasets: Vec<DatasetKind> = ALL_DATASETS
        .into_iter()
        .filter(|k| which == "all" || k.name().to_lowercase().starts_with(&which.to_lowercase()))
        .collect();
    if datasets.is_empty() {
        eprintln!("error: unknown dataset {which:?} (expected adult|compas|german|credit|all)\nusage: {USAGE}");
        std::process::exit(2);
    }

    let spec = ExperimentSpec::new(args.seed)
        .datasets(datasets.iter().copied())
        .folds(FOLDS)
        // paper: 66.67 % training, the rest testing
        .test_frac(1.0 / 3.0)
        .scale(args.scale);
    let runner = Runner::new(args.threads);
    let out = args.out_file("fig12_stability");
    let policy = args.run_policy(&out).unwrap_or_else(|e| {
        eprintln!("error: {e}\nusage: {USAGE}");
        std::process::exit(2);
    });
    eprintln!(
        "[stability] {} dataset(s) × {FOLDS} folds, {} worker thread(s), seed {}",
        datasets.len(),
        runner.threads(),
        args.seed
    );
    let batch = runner.run_with(&spec, &policy);
    for f in &batch.failures {
        eprintln!("[stability] FAILED {f}");
    }

    for kind in &datasets {
        let records: Vec<&RunRecord> = batch.for_dataset(kind.name()).collect();
        print_panel(*kind, &records, headline);
    }

    fairlens_bench::cli::announce_run("stability", &out, &batch);
    if let Err(e) = args.finish_trace(&policy) {
        eprintln!("[stability] {e}");
        std::process::exit(1);
    }
    args.finish_xverify("stability", &spec);
}

fn print_panel(kind: DatasetKind, records: &[&RunRecord], headline: bool) {
    let n = records.first().map(|r| r.rows).unwrap_or(0);
    println!();
    println!(
        "=== Stability — {} ({n} rows, {FOLDS} random 2/3 folds) ===",
        kind.name()
    );

    // metric indices into MetricReport::values(); the headline panel of
    // Fig. 12 shows accuracy, F1, DI, TPRB and CD.
    let headers = fairlens_metrics::MetricReport::headers();
    let metric_idx: Vec<usize> = if headline {
        vec![0, 3, 4, 5, 7]
    } else {
        (0..headers.len()).collect()
    };

    print!("{:<19}", "approach");
    for &m in &metric_idx {
        print!(" {:>24}", headers[m]);
    }
    println!();
    print!("{:<19}", "");
    for _ in &metric_idx {
        print!(" {:>24}", "mean±std [min,max]");
    }
    println!();

    // Preserve cell order (baseline first, then Fig. 8 registry order)
    // while grouping each approach's folds together.
    let mut order: Vec<&str> = Vec::new();
    for r in records {
        if !order.contains(&r.approach.as_str()) {
            order.push(&r.approach);
        }
    }

    for name in order {
        let mut per_metric: Vec<Vec<f64>> = vec![Vec::new(); headers.len()];
        for r in records.iter().filter(|r| r.approach == name) {
            if let Some(values) = r.metrics {
                for (m, v) in values.into_iter().enumerate() {
                    per_metric[m].push(v);
                }
            }
        }
        print!("{name:<19}");
        let mut skipped = 0usize;
        for &m in &metric_idx {
            let s: Summary = summarize(&per_metric[m]);
            skipped += s.skipped;
            print!(
                " {:>24}",
                format!("{:.3}±{:.3} [{:.2},{:.2}]", s.mean, s.std, s.min, s.max)
            );
        }
        println!();
        if skipped > 0 {
            eprintln!("[stability] {name}: {skipped} non-finite metric value(s) skipped");
        }
    }
}
