//! Figs. 12–16: stability (variance) of every approach over random folds.
//!
//! The paper executes each approach 10 times on random 2/3–1/3 train/test
//! folds and reports the spread of the correctness and fairness metrics.
//! Fig. 12 is the headline panel (Adult: accuracy, F1, DI, TPRB, CD);
//! Figs. 13–16 are the full grids for all four datasets.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p fairlens-bench --bin fig12_stability [-- adult|compas|german|credit|all [--headline] [quick]]
//! ```

use fairlens_bench::{evaluate, scale_rows, summarize, Summary};
use fairlens_core::{all_approaches, baseline_approach, Approach};
use fairlens_frame::split;
use fairlens_synth::{DatasetKind, ALL_DATASETS};
use rand::rngs::StdRng;
use rand::SeedableRng;

const FOLDS: usize = 10;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("adult").to_string();
    let headline = args.iter().any(|a| a == "--headline");
    let scale = if args.iter().any(|a| a == "quick") { "quick" } else { "paper" };

    for kind in ALL_DATASETS {
        let name = kind.name().to_lowercase();
        if which != "all" && !name.starts_with(&which.to_lowercase()) {
            continue;
        }
        run_dataset(kind, headline, scale);
    }
}

fn run_dataset(kind: DatasetKind, headline: bool, scale: &str) {
    let n = scale_rows(kind, scale);
    let data = kind.generate(n, 21);
    println!();
    println!(
        "=== Stability — {} ({n} rows, {FOLDS} random 2/3 folds) ===",
        kind.name()
    );

    // metric indices into MetricReport::values(); the headline panel of
    // Fig. 12 shows accuracy, F1, DI, TPRB and CD.
    let headers = fairlens_metrics::MetricReport::headers();
    let metric_idx: Vec<usize> = if headline {
        vec![0, 3, 4, 5, 7]
    } else {
        (0..headers.len()).collect()
    };

    print!("{:<19}", "approach");
    for &m in &metric_idx {
        print!(" {:>24}", headers[m]);
    }
    println!();
    print!("{:<19}", "");
    for _ in &metric_idx {
        print!(" {:>24}", "mean±std [min,max]");
    }
    println!();

    let mut approaches: Vec<Approach> = vec![baseline_approach()];
    approaches.extend(all_approaches(kind.inadmissible_attrs()));

    for approach in &approaches {
        let mut per_metric: Vec<Vec<f64>> = vec![Vec::new(); headers.len()];
        for fold in 0..FOLDS {
            let mut rng = StdRng::seed_from_u64(1000 + fold as u64);
            // paper: 66.67 % training, the rest testing
            let (mut train, mut test) = split::train_test_split(&data, 1.0 / 3.0, &mut rng);
            // Calmon cannot handle Credit's 26 attributes; evaluate it over
            // 22, the most it can handle (as the paper does in Fig. 10/16).
            if approach.name == "Calmon^DP" && kind == DatasetKind::Credit {
                let idx: Vec<usize> = (0..22).collect();
                train = train.select_attrs(&idx);
                test = test.select_attrs(&idx);
            }
            match evaluate(approach, kind, &train, &test, fold as u64) {
                Ok(e) => {
                    for (m, v) in e.report.values().into_iter().enumerate() {
                        per_metric[m].push(v);
                    }
                }
                Err(err) => eprintln!(
                    "[stability] {} fold {fold} failed: {err}",
                    approach.name
                ),
            }
        }
        print!("{:<19}", approach.name);
        for &m in &metric_idx {
            let s: Summary = summarize(&per_metric[m]);
            print!(
                " {:>24}",
                format!("{:.3}±{:.3} [{:.2},{:.2}]", s.mean, s.std, s.min, s.max)
            );
        }
        println!();
        eprintln!("[stability] {} done", approach.name);
    }
}
