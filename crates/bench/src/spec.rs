//! Declarative experiment grids.
//!
//! An [`ExperimentSpec`] names *what* to evaluate — datasets, approaches,
//! folds, scale — and the [`crate::runner::Runner`] decides *how* (how many
//! worker threads). Every (approach × dataset × fold) cell carries a
//! deterministic seed derived from the experiment seed and the cell's
//! coordinates, so a parallel run and a sequential run of the same spec
//! produce identical numbers in identical order.

use fairlens_core::{all_approaches, baseline_approach, Approach, Stage};
use fairlens_synth::DatasetKind;

/// Which approaches a spec evaluates (always resolved per dataset, so the
/// Salimi variants pick up `DatasetKind::salimi_inadmissible()`).
#[derive(Clone)]
pub enum ApproachSelector {
    /// The full registry: all 18 evaluated variants.
    All,
    /// Registry variants enforcing fairness at one stage.
    Stage(Stage),
    /// Registry variants by display name (unknown names are reported as
    /// cell failures, not silently dropped).
    Named(Vec<String>),
    /// Explicit approach instances (ablation sweeps build these).
    Custom(Vec<Approach>),
}

/// Dataset sizing: the paper's documented sizes, the CI-friendly cap, or an
/// explicit row count (the Fig. 11 size sweep).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleSpec {
    /// `DatasetKind::default_rows()`.
    Paper,
    /// Sizes capped at 8 000 rows.
    Quick,
    /// Exactly this many rows.
    Rows(usize),
}

impl ScaleSpec {
    /// Parse a `--scale` CLI value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "paper" => Ok(ScaleSpec::Paper),
            "quick" => Ok(ScaleSpec::Quick),
            other => Err(format!("unknown scale {other:?} (expected quick|paper)")),
        }
    }

    /// Concrete row count for one dataset.
    pub fn rows(self, kind: DatasetKind) -> usize {
        match self {
            ScaleSpec::Paper => kind.default_rows(),
            ScaleSpec::Quick => kind.default_rows().min(8_000),
            ScaleSpec::Rows(n) => n,
        }
    }
}

/// A full experiment grid, built fluently:
///
/// ```
/// use fairlens_bench::spec::{ExperimentSpec, ScaleSpec};
/// use fairlens_synth::DatasetKind;
///
/// let spec = ExperimentSpec::new(42)
///     .datasets([DatasetKind::German])
///     .folds(10)
///     .test_frac(1.0 / 3.0)
///     .scale(ScaleSpec::Quick);
/// assert_eq!(spec.cells().len(), 10 * 19); // LR + 18 variants, 10 folds
/// ```
#[derive(Clone)]
pub struct ExperimentSpec {
    /// Experiment master seed; every cell seed is derived from it.
    pub seed: u64,
    pub(crate) datasets: Vec<DatasetKind>,
    pub(crate) selector: ApproachSelector,
    pub(crate) folds: usize,
    pub(crate) test_frac: f64,
    pub(crate) scale: ScaleSpec,
    pub(crate) attrs: Option<usize>,
    pub(crate) include_baseline: bool,
    pub(crate) timing_only: bool,
    pub(crate) cd_bounds: (f64, f64),
}

impl ExperimentSpec {
    /// A spec with the paper's defaults: every approach (baseline
    /// included), one 70 %/30 % fold, paper-scale datasets, CD at
    /// (99 %, 1 %).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            datasets: Vec::new(),
            selector: ApproachSelector::All,
            folds: 1,
            test_frac: 0.3,
            scale: ScaleSpec::Paper,
            attrs: None,
            include_baseline: true,
            timing_only: false,
            cd_bounds: (0.99, 0.01),
        }
    }

    /// Datasets to evaluate, in order.
    pub fn datasets(mut self, kinds: impl IntoIterator<Item = DatasetKind>) -> Self {
        self.datasets = kinds.into_iter().collect();
        self
    }

    /// Restrict the approach set.
    pub fn approaches(mut self, selector: ApproachSelector) -> Self {
        self.selector = selector;
        self
    }

    /// Number of random folds (re-splits) per dataset.
    pub fn folds(mut self, k: usize) -> Self {
        assert!(k >= 1, "folds must be >= 1");
        self.folds = k;
        self
    }

    /// Test fraction of each random split (paper: 0.3 for Fig. 10, 1/3 for
    /// the stability folds).
    pub fn test_frac(mut self, frac: f64) -> Self {
        assert!(frac > 0.0 && frac < 1.0, "test_frac must be in (0, 1)");
        self.test_frac = frac;
        self
    }

    /// Dataset sizing.
    pub fn scale(mut self, scale: ScaleSpec) -> Self {
        self.scale = scale;
        self
    }

    /// Project every dataset to its first `k` attributes (the Fig. 11
    /// attribute sweep).
    pub fn attrs(mut self, k: usize) -> Self {
        self.attrs = Some(k);
        self
    }

    /// Whether the fairness-unaware LR baseline runs alongside (default
    /// true).
    pub fn baseline(mut self, include: bool) -> Self {
        self.include_baseline = include;
        self
    }

    /// Skip the metric suite and only record fit/predict wall-clock (the
    /// Fig. 11 efficiency cells). Timing cells train on the *full* dataset
    /// rather than a split, matching the paper's efficiency protocol.
    pub fn timing_only(mut self, timing: bool) -> Self {
        self.timing_only = timing;
        self
    }

    /// Confidence / error bound of the causal-discrimination estimate.
    pub fn cd_bounds(mut self, confidence: f64, error: f64) -> Self {
        self.cd_bounds = (confidence, error);
        self
    }

    /// Datasets in evaluation order.
    pub fn dataset_list(&self) -> &[DatasetKind] {
        &self.datasets
    }

    /// The configured number of folds.
    pub fn fold_count(&self) -> usize {
        self.folds
    }

    /// The configured test fraction.
    pub fn test_fraction(&self) -> f64 {
        self.test_frac
    }

    /// The configured scale.
    pub fn scale_spec(&self) -> ScaleSpec {
        self.scale
    }

    /// The attribute cap, if any.
    pub fn attr_limit(&self) -> Option<usize> {
        self.attrs
    }

    /// Whether this spec only measures wall-clock.
    pub fn is_timing_only(&self) -> bool {
        self.timing_only
    }

    /// The configured CD (confidence, error) bound.
    pub fn cd_bound_values(&self) -> (f64, f64) {
        self.cd_bounds
    }

    /// Resolve the approach list for one dataset. Named selectors resolve
    /// against the dataset-configured registry, so e.g.
    /// `"Salimi^JF(MaxSAT)"` picks up the dataset's inadmissible
    /// attributes; unknown names yield an `Err` entry.
    pub(crate) fn approaches_for(
        &self,
        kind: DatasetKind,
    ) -> Vec<Result<Approach, String>> {
        let mut out: Vec<Result<Approach, String>> = Vec::new();
        if self.include_baseline {
            out.push(Ok(baseline_approach()));
        }
        let registry = || all_approaches(kind.salimi_inadmissible());
        match &self.selector {
            ApproachSelector::All => out.extend(registry().into_iter().map(Ok)),
            ApproachSelector::Stage(stage) => {
                out.extend(registry().into_iter().filter(|a| a.stage == *stage).map(Ok));
            }
            ApproachSelector::Named(names) => {
                let pool = registry();
                for name in names {
                    match pool.iter().find(|a| a.name == name) {
                        Some(a) => out.push(Ok(a.clone())),
                        None if name == "LR" => out.push(Ok(baseline_approach())),
                        None => out.push(Err(format!("unknown approach {name:?}"))),
                    }
                }
            }
            ApproachSelector::Custom(list) => out.extend(list.iter().cloned().map(Ok)),
        }
        out
    }

    /// Enumerate the grid in its canonical deterministic order:
    /// dataset-major, then fold, then approach (baseline first).
    pub fn cells(&self) -> Vec<Cell> {
        let mut cells = Vec::new();
        for &kind in &self.datasets {
            let approaches = self.approaches_for(kind);
            for fold in 0..self.folds {
                for approach in &approaches {
                    cells.push(Cell {
                        dataset: kind,
                        fold,
                        approach: approach.clone(),
                        seed: match approach {
                            Ok(a) => cell_seed(self.seed, a.name, kind.name(), fold),
                            Err(_) => 0,
                        },
                    });
                }
            }
        }
        cells
    }
}

/// One unit of runner work: an approach on one fold of one dataset.
#[derive(Clone)]
pub struct Cell {
    /// Dataset the cell runs on.
    pub dataset: DatasetKind,
    /// Fold index.
    pub fold: usize,
    /// The resolved approach, or the resolution error for unknown names.
    pub approach: Result<Approach, String>,
    /// Derived deterministic seed (see [`cell_seed`]).
    pub seed: u64,
}

/// FNV-1a over a length-prefixed encoding of the coordinates — collisions
/// across any realistic grid are ruled out by the unit tests, and the
/// length prefixes keep `("ab", "c")` distinct from `("a", "bc")`.
fn fnv1a(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for part in parts {
        eat(&(part.len() as u64).to_le_bytes());
        eat(part);
    }
    h
}

/// The deterministic seed of one (approach × dataset × fold) cell:
/// `hash(experiment_seed, approach_name, dataset, fold)`. Exposed so tests
/// can assert grid-wide uniqueness.
pub fn cell_seed(experiment_seed: u64, approach: &str, dataset: &str, fold: usize) -> u64 {
    fnv1a(&[
        b"cell",
        &experiment_seed.to_le_bytes(),
        approach.as_bytes(),
        dataset.as_bytes(),
        &(fold as u64).to_le_bytes(),
    ])
}

/// The seed of one fold's train/test split. It deliberately excludes the
/// approach name: every approach within a fold sees the *same* split, as
/// the paper's per-fold comparisons require.
pub fn fold_seed(experiment_seed: u64, dataset: &str, fold: usize) -> u64 {
    fnv1a(&[
        b"fold",
        &experiment_seed.to_le_bytes(),
        dataset.as_bytes(),
        &(fold as u64).to_le_bytes(),
    ])
}

/// The seed of a dataset's synthetic generation.
pub fn dataset_seed(experiment_seed: u64, dataset: &str) -> u64 {
    fnv1a(&[b"data", &experiment_seed.to_le_bytes(), dataset.as_bytes()])
}

/// The seed of a retry attempt. Attempt 0 is the identity — a run with
/// `--retries 0` (or one that never needs a retry) draws exactly the same
/// numbers as before this function existed — while each further attempt
/// derives a fresh deterministic seed from the cell seed, so retried cells
/// stay reproducible across runs and thread counts.
pub fn retry_seed(cell_seed: u64, attempt: u32) -> u64 {
    if attempt == 0 {
        return cell_seed;
    }
    fnv1a(&[b"retry", &cell_seed.to_le_bytes(), &u64::from(attempt).to_le_bytes()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairlens_synth::ALL_DATASETS;

    #[test]
    fn builder_defaults_and_grid_shape() {
        let spec = ExperimentSpec::new(1)
            .datasets([DatasetKind::German, DatasetKind::Compas])
            .folds(3);
        // (LR + 18) × 2 datasets × 3 folds
        assert_eq!(spec.cells().len(), 19 * 2 * 3);
    }

    #[test]
    fn stage_selector_narrows_the_grid() {
        let spec = ExperimentSpec::new(1)
            .datasets([DatasetKind::German])
            .approaches(ApproachSelector::Stage(Stage::Post))
            .baseline(false);
        let cells = spec.cells();
        assert_eq!(cells.len(), 3);
        for c in &cells {
            assert_eq!(c.approach.as_ref().unwrap().stage, Stage::Post);
        }
    }

    #[test]
    fn named_selector_resolves_and_reports_unknowns() {
        let spec = ExperimentSpec::new(1)
            .datasets([DatasetKind::Adult])
            .approaches(ApproachSelector::Named(vec![
                "KamCal^DP".into(),
                "NoSuch".into(),
            ]))
            .baseline(false);
        let cells = spec.cells();
        assert_eq!(cells.len(), 2);
        assert!(cells[0].approach.is_ok());
        assert!(cells[1].approach.is_err());
    }

    #[test]
    fn cell_seeds_are_unique_across_the_full_paper_grid() {
        // 19 approaches × 4 datasets × 10 folds — the Fig. 12 sweep.
        let spec = ExperimentSpec::new(42).datasets(ALL_DATASETS).folds(10);
        let cells = spec.cells();
        assert_eq!(cells.len(), 19 * 4 * 10);
        let mut seeds: Vec<u64> = cells.iter().map(|c| c.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), cells.len(), "cell seed collision in the grid");
    }

    #[test]
    fn seeds_depend_on_every_coordinate() {
        let base = cell_seed(1, "KamCal^DP", "German", 0);
        assert_ne!(base, cell_seed(2, "KamCal^DP", "German", 0));
        assert_ne!(base, cell_seed(1, "Hardt^EO", "German", 0));
        assert_ne!(base, cell_seed(1, "KamCal^DP", "Adult", 0));
        assert_ne!(base, cell_seed(1, "KamCal^DP", "German", 1));
        // length-prefixing: shifting a byte between fields changes the hash
        assert_ne!(cell_seed(1, "ab", "c", 0), cell_seed(1, "a", "bc", 0));
    }

    #[test]
    fn fold_seed_shared_across_approaches_but_not_folds() {
        assert_eq!(fold_seed(1, "German", 2), fold_seed(1, "German", 2));
        assert_ne!(fold_seed(1, "German", 2), fold_seed(1, "German", 3));
        assert_ne!(fold_seed(1, "German", 2), fold_seed(1, "Adult", 2));
    }

    #[test]
    fn retry_seed_is_identity_at_attempt_zero_and_distinct_after() {
        let s = cell_seed(1, "KamCal^DP", "German", 0);
        assert_eq!(retry_seed(s, 0), s);
        let derived: Vec<u64> = (1..6).map(|a| retry_seed(s, a)).collect();
        for (i, &d) in derived.iter().enumerate() {
            assert_ne!(d, s, "attempt {} collided with the cell seed", i + 1);
        }
        let mut uniq = derived.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), derived.len(), "retry seed collision");
        // deterministic: same inputs, same seed
        assert_eq!(retry_seed(s, 3), retry_seed(s, 3));
    }

    #[test]
    fn scale_spec_sizes() {
        assert_eq!(ScaleSpec::Paper.rows(DatasetKind::Adult), 45_222);
        assert_eq!(ScaleSpec::Quick.rows(DatasetKind::Adult), 8_000);
        assert_eq!(ScaleSpec::Quick.rows(DatasetKind::German), 1_000);
        assert_eq!(ScaleSpec::Rows(123).rows(DatasetKind::Credit), 123);
        assert!(ScaleSpec::parse("nope").is_err());
        assert_eq!(ScaleSpec::parse("quick").unwrap(), ScaleSpec::Quick);
    }
}
