//! The CLI layer shared by the four figure binaries.
//!
//! Every binary accepts the same execution flags:
//!
//! ```text
//! --threads N         worker threads (default 0 = one per hardware thread)
//! --seed S            experiment master seed (default 42)
//! --scale quick|paper
//! --out DIR           directory for JSON-lines results (default results/)
//! --cell-timeout SECS wall-clock budget per cell attempt (default: none)
//! --retries N         extra attempts after a transient failure (default 0)
//! --resume PATH       partial results file from an interrupted run
//! --trace PATH        write a phase-level JSONL trace (plus a .collapsed
//!                     flamegraph sibling) to PATH
//! --xverify K         after the run, cross-verify K sampled cells with
//!                     paired solvers (exit non-zero on divergence)
//! --tolerance ULPS    ULP bound for the cross-algorithm agreement pairs
//! ```
//!
//! Bare `quick` / `paper` positionals are still honoured (the pre-runner
//! invocation style), and anything unrecognised is passed through in
//! [`CommonArgs::rest`] for binary-specific selectors (dataset names,
//! sweep modes, `--headline`, …).
//!
//! [`CommonArgs::run_policy`] turns the fault-tolerance flags into a
//! [`RunPolicy`] wired to a binary's output file: results stream to the
//! file as each cell completes, so a killed run can be continued with
//! `--resume <that file>`.

use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::record::failures_path;
use crate::runner::RunPolicy;
use crate::spec::ScaleSpec;

/// Parsed shared flags plus the untouched remainder.
#[derive(Debug, Clone, PartialEq)]
pub struct CommonArgs {
    /// `--threads` (0 = one worker per hardware thread).
    pub threads: usize,
    /// `--seed`.
    pub seed: u64,
    /// `--scale` (or a bare `quick` / `paper` positional).
    pub scale: ScaleSpec,
    /// `--out` results directory.
    pub out: PathBuf,
    /// `--cell-timeout` wall-clock budget per cell attempt.
    pub cell_timeout: Option<Duration>,
    /// `--retries` extra attempts after a transient failure.
    pub retries: u32,
    /// `--resume` partial results file from an interrupted run.
    pub resume: Option<PathBuf>,
    /// `--trace` output path for the phase-level JSONL trace.
    pub trace: Option<PathBuf>,
    /// `--xverify K`: cross-verify K sampled cells with paired solvers
    /// after the run (see [`crate::xverify`]).
    pub xverify: Option<usize>,
    /// `--tolerance ULPS`: override the ULP bound for the cross-algorithm
    /// agreement pairs (determinism pairs are always bit-exact).
    pub tolerance: Option<u64>,
    /// Arguments the shared layer did not consume, in order.
    pub rest: Vec<String>,
}

impl Default for CommonArgs {
    fn default() -> Self {
        Self {
            threads: 0,
            seed: 42,
            scale: ScaleSpec::Paper,
            out: PathBuf::from("results"),
            cell_timeout: None,
            retries: 0,
            resume: None,
            trace: None,
            xverify: None,
            tolerance: None,
            rest: Vec::new(),
        }
    }
}

impl CommonArgs {
    /// Parse from an argument iterator (without the program name).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut value_of = |flag: &str| {
                it.next().ok_or_else(|| format!("{flag} requires a value"))
            };
            match arg.as_str() {
                "--threads" => {
                    let v = value_of("--threads")?;
                    out.threads = v
                        .parse()
                        .map_err(|_| format!("--threads: not a number: {v:?}"))?;
                }
                "--seed" => {
                    let v = value_of("--seed")?;
                    out.seed = v.parse().map_err(|_| format!("--seed: not a number: {v:?}"))?;
                }
                "--scale" => out.scale = ScaleSpec::parse(&value_of("--scale")?)?,
                "--out" => out.out = PathBuf::from(value_of("--out")?),
                "--cell-timeout" => {
                    let v = value_of("--cell-timeout")?;
                    let secs: f64 = v
                        .parse()
                        .map_err(|_| format!("--cell-timeout: not a number: {v:?}"))?;
                    if !secs.is_finite() || secs <= 0.0 {
                        return Err(format!("--cell-timeout: must be positive, got {v:?}"));
                    }
                    out.cell_timeout = Some(Duration::from_secs_f64(secs));
                }
                "--retries" => {
                    let v = value_of("--retries")?;
                    out.retries =
                        v.parse().map_err(|_| format!("--retries: not a number: {v:?}"))?;
                }
                "--resume" => out.resume = Some(PathBuf::from(value_of("--resume")?)),
                "--trace" => out.trace = Some(PathBuf::from(value_of("--trace")?)),
                "--xverify" => {
                    let v = value_of("--xverify")?;
                    let k: usize =
                        v.parse().map_err(|_| format!("--xverify: not a number: {v:?}"))?;
                    if k == 0 {
                        return Err("--xverify: must sample at least one cell".into());
                    }
                    out.xverify = Some(k);
                }
                "--tolerance" => {
                    let v = value_of("--tolerance")?;
                    out.tolerance = Some(
                        v.parse().map_err(|_| format!("--tolerance: not a ULP count: {v:?}"))?,
                    );
                }
                "quick" | "paper" => out.scale = ScaleSpec::parse(&arg)?,
                _ => out.rest.push(arg),
            }
        }
        Ok(out)
    }

    /// Parse from the process arguments, exiting with `usage` on error.
    pub fn from_env(usage: &str) -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("usage: {usage}");
                std::process::exit(2);
            }
        }
    }

    /// `<out>/<name>.jsonl` — where a binary writes its records.
    pub fn out_file(&self, name: &str) -> PathBuf {
        self.out.join(format!("{name}.jsonl"))
    }

    /// Build the [`RunPolicy`] for a binary whose results live at
    /// `out_file`, preparing the checkpoint file on disk:
    ///
    /// * fresh run — any stale `out_file` (and its failures sidecar) from a
    ///   previous run is removed, so streamed appends start clean;
    /// * `--resume PATH` — `PATH` (and its sidecar) is first copied over
    ///   `out_file` when the two differ, so the run always continues in,
    ///   and streams to, its own output file.
    ///
    /// Either way the returned policy checkpoints to *and* resumes from
    /// `out_file`. Resuming from the file being written is what lets the
    /// multi-spec binaries (Fig. 11, ablations) aggregate several
    /// [`crate::runner::Runner::run_with`] calls into one results file:
    /// each call carries the earlier specs' rows through its finalize.
    pub fn run_policy(&self, out_file: &Path) -> Result<RunPolicy, String> {
        if let Some(parent) = out_file.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
            }
        }
        match &self.resume {
            Some(src) => {
                if !src.exists() {
                    return Err(format!("--resume: no such file: {}", src.display()));
                }
                if src != out_file {
                    std::fs::copy(src, out_file).map_err(|e| {
                        format!("--resume: cannot copy {} over {}: {e}", src.display(), out_file.display())
                    })?;
                    let (src_sc, dst_sc) = (failures_path(src), failures_path(out_file));
                    if src_sc.exists() {
                        std::fs::copy(&src_sc, &dst_sc).map_err(|e| {
                            format!("--resume: cannot copy failures sidecar: {e}")
                        })?;
                    } else if let Err(e) = std::fs::remove_file(&dst_sc) {
                        if e.kind() != std::io::ErrorKind::NotFound {
                            return Err(format!("cannot remove stale {}: {e}", dst_sc.display()));
                        }
                    }
                }
            }
            None => {
                for stale in [out_file.to_owned(), failures_path(out_file)] {
                    if let Err(e) = std::fs::remove_file(&stale) {
                        if e.kind() != std::io::ErrorKind::NotFound {
                            return Err(format!("cannot remove stale {}: {e}", stale.display()));
                        }
                    }
                }
            }
        }
        // The struct update is load-bearing under `cfg(test)` / the
        // `fault-inject` feature, where RunPolicy grows a `faults` field.
        #[allow(clippy::needless_update)]
        Ok(RunPolicy {
            cell_timeout: self.cell_timeout,
            retries: self.retries,
            checkpoint: Some(out_file.to_owned()),
            resume: Some(out_file.to_owned()),
            trace: self.trace.as_ref().map(|_| fairlens_trace::TraceSink::new()),
            ..RunPolicy::default()
        })
    }

    /// Write the policy's trace (if `--trace` was given) to the requested
    /// path, plus a flamegraph-compatible `.collapsed` sibling. A no-op
    /// when tracing is off. Call once, after every `run_with` finished —
    /// the sink accumulates across multi-spec runs (Fig. 11, ablations).
    pub fn finish_trace(&self, policy: &RunPolicy) -> Result<(), String> {
        let (Some(path), Some(sink)) = (&self.trace, &policy.trace) else {
            return Ok(());
        };
        sink.write_jsonl(path)
            .map_err(|e| format!("cannot write trace {}: {e}", path.display()))?;
        let collapsed = path.with_extension("collapsed");
        sink.write_collapsed(&collapsed)
            .map_err(|e| format!("cannot write {}: {e}", collapsed.display()))?;
        eprintln!(
            "[trace] wrote {} (flamegraph stacks: {})",
            path.display(),
            collapsed.display()
        );
        Ok(())
    }

    /// Run the `--xverify` cross-check (a no-op without the flag): sample
    /// K cells from `spec`, run the paired solvers on each, and report.
    /// Exits the process non-zero on divergence — the figure run's results
    /// are already on disk at this point, so a failure here flags the
    /// numbers without destroying them.
    pub fn finish_xverify(&self, binary: &str, spec: &crate::spec::ExperimentSpec) {
        let Some(k) = self.xverify else { return };
        match crate::xverify::verify_cells(spec, k, self.tolerance) {
            Ok(verdicts) => {
                if !crate::xverify::report_verdicts(binary, &verdicts) {
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("[{binary}] {e}");
                std::process::exit(2);
            }
        }
    }

    /// Human-readable scale tag for file names / log lines.
    pub fn scale_tag(&self) -> &'static str {
        match self.scale {
            ScaleSpec::Quick => "quick",
            _ => "paper",
        }
    }
}

/// Log a standard "wrote results" line so every binary reports its output
/// location the same way.
pub fn announce_output(binary: &str, path: &Path, records: usize) {
    eprintln!("[{binary}] wrote {records} records to {}", path.display());
}

/// End-of-run report for a fault-tolerant batch: records written, cells
/// resumed from the checkpoint, failures recorded in the sidecar.
pub fn announce_run(binary: &str, path: &Path, batch: &crate::runner::RunBatch) {
    announce_output(binary, path, batch.records.len());
    if batch.resumed > 0 {
        eprintln!("[{binary}] resumed {} cell(s) from {}", batch.resumed, path.display());
    }
    if !batch.failures.is_empty() {
        eprintln!(
            "[{binary}] {} cell(s) failed — see {}",
            batch.failures.len(),
            failures_path(path).display()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> CommonArgs {
        CommonArgs::parse(args.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.threads, 0);
        assert_eq!(a.seed, 42);
        assert_eq!(a.scale, ScaleSpec::Paper);
        assert_eq!(a.out, PathBuf::from("results"));
        assert!(a.rest.is_empty());
    }

    #[test]
    fn flags_and_positionals() {
        let a = parse(&[
            "--threads", "4", "quick", "--seed", "7", "german", "--out", "tmp/r", "--headline",
        ]);
        assert_eq!(a.threads, 4);
        assert_eq!(a.seed, 7);
        assert_eq!(a.scale, ScaleSpec::Quick);
        assert_eq!(a.out, PathBuf::from("tmp/r"));
        assert_eq!(a.rest, vec!["german".to_string(), "--headline".to_string()]);
        assert_eq!(a.out_file("fig12_stability"), PathBuf::from("tmp/r/fig12_stability.jsonl"));
    }

    #[test]
    fn errors_are_reported() {
        assert!(CommonArgs::parse(["--threads".to_string()]).is_err());
        assert!(CommonArgs::parse(["--threads".to_string(), "x".to_string()]).is_err());
        assert!(CommonArgs::parse(["--scale".to_string(), "huge".to_string()]).is_err());
    }

    #[test]
    fn xverify_flags() {
        let a = parse(&["--xverify", "3", "--tolerance", "1024"]);
        assert_eq!(a.xverify, Some(3));
        assert_eq!(a.tolerance, Some(1024));
        let d = parse(&[]);
        assert_eq!(d.xverify, None);
        assert_eq!(d.tolerance, None);
        for bad in [vec!["--xverify", "0"], vec!["--xverify", "x"], vec!["--tolerance", "-3"]] {
            assert!(
                CommonArgs::parse(bad.iter().map(|s| s.to_string())).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn fault_tolerance_flags() {
        let a = parse(&["--cell-timeout", "2.5", "--retries", "3", "--resume", "old/run.jsonl"]);
        assert_eq!(a.cell_timeout, Some(Duration::from_millis(2500)));
        assert_eq!(a.retries, 3);
        assert_eq!(a.resume, Some(PathBuf::from("old/run.jsonl")));
        let d = parse(&[]);
        assert_eq!(d.cell_timeout, None);
        assert_eq!(d.retries, 0);
        assert_eq!(d.resume, None);
        for bad in [
            vec!["--cell-timeout", "0"],
            vec!["--cell-timeout", "-1"],
            vec!["--cell-timeout", "inf"],
            vec!["--cell-timeout", "soon"],
            vec!["--retries", "-1"],
            vec!["--resume"],
        ] {
            assert!(
                CommonArgs::parse(bad.iter().map(|s| s.to_string())).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn run_policy_prepares_the_checkpoint_file() {
        let dir = std::env::temp_dir().join("fairlens_cli_policy_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("fig.jsonl");
        let sidecar = failures_path(&out);

        // Fresh run: stale output and sidecar are cleared.
        std::fs::write(&out, "stale\n").unwrap();
        std::fs::write(&sidecar, "stale\n").unwrap();
        let fresh = parse(&["--retries", "2"]);
        let policy = fresh.run_policy(&out).unwrap();
        assert!(!out.exists() && !sidecar.exists());
        assert_eq!(policy.retries, 2);
        assert_eq!(policy.cell_timeout, None);
        assert_eq!(policy.checkpoint.as_deref(), Some(out.as_path()));
        assert_eq!(policy.resume.as_deref(), Some(out.as_path()));

        // Resume from another file: it is copied over the output first.
        let old = dir.join("interrupted.jsonl");
        std::fs::write(&old, "{\"partial\":1}\n").unwrap();
        let resuming = CommonArgs { resume: Some(old.clone()), ..Default::default() };
        let policy = resuming.run_policy(&out).unwrap();
        assert_eq!(std::fs::read_to_string(&out).unwrap(), "{\"partial\":1}\n");
        assert_eq!(policy.resume.as_deref(), Some(out.as_path()));

        // Resuming from a missing file is an error, not a silent fresh run.
        let missing =
            CommonArgs { resume: Some(dir.join("nope.jsonl")), ..Default::default() };
        assert!(missing.run_policy(&out).unwrap_err().contains("no such file"));

        std::fs::remove_dir_all(&dir).ok();
    }
}
