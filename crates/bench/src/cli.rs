//! The CLI layer shared by the four figure binaries.
//!
//! Every binary accepts the same execution flags:
//!
//! ```text
//! --threads N     worker threads (default 0 = one per hardware thread)
//! --seed S        experiment master seed (default 42)
//! --scale quick|paper
//! --out DIR       directory for JSON-lines results (default results/)
//! ```
//!
//! Bare `quick` / `paper` positionals are still honoured (the pre-runner
//! invocation style), and anything unrecognised is passed through in
//! [`CommonArgs::rest`] for binary-specific selectors (dataset names,
//! sweep modes, `--headline`, …).

use std::path::{Path, PathBuf};

use crate::spec::ScaleSpec;

/// Parsed shared flags plus the untouched remainder.
#[derive(Debug, Clone, PartialEq)]
pub struct CommonArgs {
    /// `--threads` (0 = one worker per hardware thread).
    pub threads: usize,
    /// `--seed`.
    pub seed: u64,
    /// `--scale` (or a bare `quick` / `paper` positional).
    pub scale: ScaleSpec,
    /// `--out` results directory.
    pub out: PathBuf,
    /// Arguments the shared layer did not consume, in order.
    pub rest: Vec<String>,
}

impl Default for CommonArgs {
    fn default() -> Self {
        Self {
            threads: 0,
            seed: 42,
            scale: ScaleSpec::Paper,
            out: PathBuf::from("results"),
            rest: Vec::new(),
        }
    }
}

impl CommonArgs {
    /// Parse from an argument iterator (without the program name).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut value_of = |flag: &str| {
                it.next().ok_or_else(|| format!("{flag} requires a value"))
            };
            match arg.as_str() {
                "--threads" => {
                    let v = value_of("--threads")?;
                    out.threads = v
                        .parse()
                        .map_err(|_| format!("--threads: not a number: {v:?}"))?;
                }
                "--seed" => {
                    let v = value_of("--seed")?;
                    out.seed = v.parse().map_err(|_| format!("--seed: not a number: {v:?}"))?;
                }
                "--scale" => out.scale = ScaleSpec::parse(&value_of("--scale")?)?,
                "--out" => out.out = PathBuf::from(value_of("--out")?),
                "quick" | "paper" => out.scale = ScaleSpec::parse(&arg)?,
                _ => out.rest.push(arg),
            }
        }
        Ok(out)
    }

    /// Parse from the process arguments, exiting with `usage` on error.
    pub fn from_env(usage: &str) -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("usage: {usage}");
                std::process::exit(2);
            }
        }
    }

    /// `<out>/<name>.jsonl` — where a binary writes its records.
    pub fn out_file(&self, name: &str) -> PathBuf {
        self.out.join(format!("{name}.jsonl"))
    }

    /// Human-readable scale tag for file names / log lines.
    pub fn scale_tag(&self) -> &'static str {
        match self.scale {
            ScaleSpec::Quick => "quick",
            _ => "paper",
        }
    }
}

/// Log a standard "wrote results" line so every binary reports its output
/// location the same way.
pub fn announce_output(binary: &str, path: &Path, records: usize) {
    eprintln!("[{binary}] wrote {records} records to {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> CommonArgs {
        CommonArgs::parse(args.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.threads, 0);
        assert_eq!(a.seed, 42);
        assert_eq!(a.scale, ScaleSpec::Paper);
        assert_eq!(a.out, PathBuf::from("results"));
        assert!(a.rest.is_empty());
    }

    #[test]
    fn flags_and_positionals() {
        let a = parse(&[
            "--threads", "4", "quick", "--seed", "7", "german", "--out", "tmp/r", "--headline",
        ]);
        assert_eq!(a.threads, 4);
        assert_eq!(a.seed, 7);
        assert_eq!(a.scale, ScaleSpec::Quick);
        assert_eq!(a.out, PathBuf::from("tmp/r"));
        assert_eq!(a.rest, vec!["german".to_string(), "--headline".to_string()]);
        assert_eq!(a.out_file("fig12_stability"), PathBuf::from("tmp/r/fig12_stability.jsonl"));
    }

    #[test]
    fn errors_are_reported() {
        assert!(CommonArgs::parse(["--threads".to_string()]).is_err());
        assert!(CommonArgs::parse(["--threads".to_string(), "x".to_string()]).is_err());
        assert!(CommonArgs::parse(["--scale".to_string(), "huge".to_string()]).is_err());
    }
}
