//! Artifact round-trip: save → load → predict must be byte-identical.
//!
//! For every dataset, one approach per intervention stage (plus the
//! baseline) is fitted, snapshotted into a `.flm` artifact, pushed
//! through the JSON text encoding and a real file, restored, and asked
//! to predict fresh rows. Labels and probabilities must match the
//! original fitted pipeline bit for bit — the contract `fairlens-serve`
//! relies on to serve offline-identical predictions.

use fairlens_bench::spec::cell_seed;
use fairlens_core::{approach_by_name, DataSchema, ModelArtifact};
use fairlens_synth::ALL_DATASETS;

/// Baseline + one pre- + one in- + one post-processor. `Kearns^PE`
/// covers the mixture-of-linear-models snapshot; `Hardt^EO` covers the
/// stochastic post rule (whose seed is part of the snapshot).
const APPROACHES: [&str; 4] = ["LR", "Feld^DP(1.0)", "Kearns^PE", "Hardt^EO"];

#[test]
fn saved_models_predict_byte_identically_across_all_datasets() {
    let dir = std::env::temp_dir().join(format!("flm-roundtrip-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    for kind in ALL_DATASETS {
        let name = kind.name();
        let train = kind.generate(400, 11);
        let fresh = kind.generate(90, 77);
        let schema = DataSchema::of(&train);
        for approach_name in APPROACHES {
            let approach = approach_by_name(approach_name).unwrap();
            let seed = cell_seed(42, approach_name, name, 0);
            let fitted = match approach.fit(&train, seed) {
                Ok(f) => f,
                Err(e) => panic!("{name}/{approach_name}: fit failed: {e}"),
            };
            let artifact = ModelArtifact {
                approach: approach_name.to_string(),
                stage: approach.stage.label().to_string(),
                dataset: name.to_string(),
                seed,
                train_rows: train.n_rows() as u64,
                train_metrics: vec![("accuracy".into(), 0.5)],
                schema: schema.clone(),
                pipeline: fitted.snapshot().unwrap(),
            };

            // Through the text encoding…
            let reparsed = ModelArtifact::from_json(&artifact.to_json()).unwrap();
            // …and through an actual file.
            let path = dir.join(format!("{name}-{approach_name}.flm").replace('^', "-"));
            artifact.save(&path).unwrap();
            let loaded = ModelArtifact::load(&path).unwrap();

            let want_labels = fitted.predict(&fresh);
            let want_probas = fitted.predict_proba(&fresh);
            for (tag, restored) in
                [("json", reparsed.restore()), ("file", loaded.restore())]
            {
                assert_eq!(
                    restored.predict(&fresh),
                    want_labels,
                    "{name}/{approach_name}: {tag} round-trip changed labels"
                );
                let probas = restored.predict_proba(&fresh);
                assert_eq!(
                    probas.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
                    want_probas.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
                    "{name}/{approach_name}: {tag} round-trip changed probabilities"
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
