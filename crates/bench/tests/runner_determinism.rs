//! The tentpole guarantee: a parallel run of an `ExperimentSpec` is
//! indistinguishable (metric-for-metric, seed-for-seed, order-for-order)
//! from the sequential reference run, and its records survive a round
//! trip through the JSON-lines format on disk.

use fairlens_bench::{
    read_jsonl, ApproachSelector, ExperimentSpec, RunRecord, Runner, ScaleSpec,
};
use fairlens_synth::DatasetKind;

/// German at quick scale (1 000 rows), a cross-stage approach subset,
/// two folds. CD runs at a relaxed bound to keep the Hoeffding sample
/// small; the determinism claim is bound-independent.
fn german_quick_spec() -> ExperimentSpec {
    ExperimentSpec::new(42)
        .datasets([DatasetKind::German])
        .approaches(ApproachSelector::Named(vec![
            "KamCal^DP".into(),
            "Feld^DP(1.0)".into(),
            "KamKar^DP".into(),
            "Hardt^EO".into(),
        ]))
        .scale(ScaleSpec::Quick)
        .folds(2)
        .cd_bounds(0.9, 0.08)
}

/// Everything except wall-clock, with metrics compared bit-for-bit.
fn comparable(r: &RunRecord) -> (String, String, String, usize, u64, usize, usize, Option<[u64; 9]>) {
    (
        r.approach.clone(),
        r.stage.clone(),
        r.dataset.clone(),
        r.fold,
        r.seed,
        r.rows,
        r.attrs,
        r.metrics.map(|m| m.map(f64::to_bits)),
    )
}

#[test]
fn parallel_run_reproduces_sequential_run() {
    let spec = german_quick_spec();
    let sequential = Runner::new(1).run(&spec);
    let parallel = Runner::new(4).run(&spec);

    assert!(sequential.failures.is_empty(), "{:?}", sequential.failures);
    assert!(parallel.failures.is_empty(), "{:?}", parallel.failures);
    // (LR + 4 named) × 2 folds, in canonical cell order
    assert_eq!(sequential.records.len(), 5 * 2);

    let a: Vec<_> = sequential.records.iter().map(comparable).collect();
    let b: Vec<_> = parallel.records.iter().map(comparable).collect();
    assert_eq!(a, b, "parallel run diverged from the sequential reference");

    // The grid's derived seeds never collide, and approaches within a fold
    // share data while folds differ.
    let mut seeds: Vec<u64> = sequential.records.iter().map(|r| r.seed).collect();
    seeds.sort_unstable();
    seeds.dedup();
    assert_eq!(seeds.len(), sequential.records.len());
}

#[test]
fn records_round_trip_through_results_file() {
    let spec = german_quick_spec();
    let batch = Runner::new(2).run(&spec);

    let dir = std::env::temp_dir().join("fairlens_runner_determinism");
    let path = dir.join("german_quick.jsonl");
    batch.write_jsonl(&path).expect("write results");
    let back = read_jsonl(&path).expect("parse results");
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(back.len(), batch.records.len());
    for (orig, parsed) in batch.records.iter().zip(&back) {
        assert_eq!(comparable(orig), comparable(parsed));
        // timings aren't deterministic but must round-trip bit-exactly
        assert_eq!(orig.fit_ms.to_bits(), parsed.fit_ms.to_bits());
        assert_eq!(orig.predict_ms.to_bits(), parsed.predict_ms.to_bits());
    }
}

#[test]
fn rerunning_a_spec_reproduces_metrics_exactly() {
    let spec = german_quick_spec();
    let first = Runner::new(3).run(&spec);
    let second = Runner::new(2).run(&spec);
    let a: Vec<_> = first.records.iter().map(comparable).collect();
    let b: Vec<_> = second.records.iter().map(comparable).collect();
    assert_eq!(a, b);
}
