//! Fault tolerance, exercised through the public API only: checkpointed
//! runs survive a mid-run kill and `resume` reproduces the uninterrupted
//! results; failed cells land in the `*.failures.jsonl` sidecar; several
//! specs can aggregate into one shared checkpoint file (the Fig. 11 /
//! ablations pattern).

use std::path::{Path, PathBuf};

use fairlens_bench::{
    failures_path, read_failures, read_jsonl, ApproachSelector, ExperimentSpec, FailureKind,
    RunPolicy, RunRecord, Runner, ScaleSpec,
};
use fairlens_synth::DatasetKind;

/// German at quick scale, four approaches × two folds: ten cells with the
/// baseline, small enough for CI, big enough to interrupt halfway.
fn german_quick_spec() -> ExperimentSpec {
    ExperimentSpec::new(42)
        .datasets([DatasetKind::German])
        .approaches(ApproachSelector::Named(vec![
            "KamCal^DP".into(),
            "Feld^DP(1.0)".into(),
            "KamKar^DP".into(),
            "Hardt^EO".into(),
        ]))
        .scale(ScaleSpec::Quick)
        .folds(2)
        .cd_bounds(0.9, 0.08)
}

/// Everything except wall-clock, with metrics compared bit-for-bit.
fn comparable(r: &RunRecord) -> (String, String, usize, u64, u32, Option<[u64; 9]>) {
    (
        r.approach.clone(),
        r.dataset.clone(),
        r.fold,
        r.seed,
        r.attempts,
        r.metrics.map(|m| m.map(f64::to_bits)),
    )
}

fn checkpoint_policy(path: &Path) -> RunPolicy {
    RunPolicy {
        checkpoint: Some(path.to_owned()),
        resume: Some(path.to_owned()),
        ..RunPolicy::default()
    }
}

fn temp_file(dir_name: &str, file: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(dir_name);
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(file)
}

#[test]
fn resume_after_interrupt_reproduces_uninterrupted_run() {
    let spec = german_quick_spec();

    // Reference: one uninterrupted checkpointed run.
    let clean_path = temp_file("fairlens_ft_resume", "clean.jsonl");
    let clean = Runner::new(2).run_with(&spec, &checkpoint_policy(&clean_path));
    assert!(clean.failures.is_empty(), "{:?}", clean.failures);
    assert_eq!(clean.resumed, 0);
    assert_eq!(clean.records.len(), 10);

    // Simulate a run killed at 50 %: keep the first half of the streamed
    // lines plus one torn, partially-written line (a kill mid-`write`).
    let interrupted_path = temp_file("fairlens_ft_resume", "interrupted.jsonl");
    let _full = Runner::new(2).run_with(&spec, &checkpoint_policy(&interrupted_path));
    let text = std::fs::read_to_string(&interrupted_path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 10);
    let keep = &lines[..5];
    let torn = &lines[5][..lines[5].len() / 2];
    std::fs::write(&interrupted_path, format!("{}\n{torn}", keep.join("\n"))).unwrap();

    // Resume: the five surviving cells are reused (original timings and
    // all), the torn line is discarded, the rest re-run.
    let resumed = Runner::new(2).run_with(&spec, &checkpoint_policy(&interrupted_path));
    assert_eq!(resumed.resumed, 5, "{:?}", resumed.failures);
    assert!(resumed.failures.is_empty(), "{:?}", resumed.failures);
    let a: Vec<_> = clean.records.iter().map(comparable).collect();
    let b: Vec<_> = resumed.records.iter().map(comparable).collect();
    assert_eq!(a, b, "resumed run diverged from the uninterrupted reference");

    // Reused cells keep their originally measured wall-clock.
    let surviving: Vec<RunRecord> =
        keep.iter().map(|l| RunRecord::from_json(l).unwrap()).collect();
    for orig in &surviving {
        let reused = resumed
            .records
            .iter()
            .find(|r| r.approach == orig.approach && r.fold == orig.fold)
            .unwrap();
        assert_eq!(orig.fit_ms.to_bits(), reused.fit_ms.to_bits());
    }
    // The finalized file matches the uninterrupted file, record for record.
    let on_disk = read_jsonl(&interrupted_path).unwrap();
    let clean_disk = read_jsonl(&clean_path).unwrap();
    assert_eq!(
        on_disk.iter().map(comparable).collect::<Vec<_>>(),
        clean_disk.iter().map(comparable).collect::<Vec<_>>()
    );
    assert!(read_failures(&failures_path(&interrupted_path)).unwrap().is_empty());

    std::fs::remove_dir_all(std::env::temp_dir().join("fairlens_ft_resume")).ok();
}

#[test]
fn unresolvable_approach_lands_in_the_failures_sidecar() {
    let spec = ExperimentSpec::new(7)
        .datasets([DatasetKind::German])
        .approaches(ApproachSelector::Named(vec![
            "KamCal^DP".into(),
            "NoSuchApproach".into(),
        ]))
        .scale(ScaleSpec::Quick)
        .folds(1)
        .cd_bounds(0.9, 0.08);
    let path = temp_file("fairlens_ft_sidecar", "run.jsonl");
    let batch = Runner::new(1).run_with(&spec, &checkpoint_policy(&path));

    assert_eq!(batch.records.len(), 2); // LR + KamCal^DP
    assert_eq!(batch.failures.len(), 1);
    let sidecar = read_failures(&failures_path(&path)).unwrap();
    assert_eq!(sidecar.len(), 1);
    assert_eq!(sidecar[0], batch.failures[0]);
    assert_eq!(sidecar[0].kind, FailureKind::TrainError);
    assert!(sidecar[0].error.contains("NoSuchApproach"), "{}", sidecar[0].error);

    // Resuming the finished run reuses everything and clears the sidecar
    // entry only after the cell is re-attempted (it fails again, so the
    // sidecar is rewritten with the fresh failure).
    let again = Runner::new(1).run_with(&spec, &checkpoint_policy(&path));
    assert_eq!(again.resumed, 2);
    assert_eq!(again.failures.len(), 1);
    assert_eq!(read_failures(&failures_path(&path)).unwrap().len(), 1);

    std::fs::remove_dir_all(std::env::temp_dir().join("fairlens_ft_sidecar")).ok();
}

#[test]
fn two_specs_aggregate_into_one_checkpoint_file() {
    let path = temp_file("fairlens_ft_multispec", "shared.jsonl");
    let policy = checkpoint_policy(&path);

    let spec_a = ExperimentSpec::new(42)
        .datasets([DatasetKind::German])
        .approaches(ApproachSelector::Named(vec!["KamCal^DP".into()]))
        .scale(ScaleSpec::Quick)
        .folds(1)
        .cd_bounds(0.9, 0.08);
    let spec_b = ExperimentSpec::new(42)
        .datasets([DatasetKind::German])
        .approaches(ApproachSelector::Named(vec!["Hardt^EO".into()]))
        .baseline(false)
        .scale(ScaleSpec::Quick)
        .folds(1)
        .cd_bounds(0.9, 0.08);

    let a = Runner::new(1).run_with(&spec_a, &policy);
    let b = Runner::new(1).run_with(&spec_b, &policy);
    assert_eq!((a.records.len(), b.records.len()), (2, 1));
    assert_eq!(b.resumed, 0, "spec B shares no cells with spec A");

    // Spec A's rows were carried through spec B's finalize: the shared
    // file holds both specs, earlier spec first.
    let on_disk = read_jsonl(&path).unwrap();
    let expected: Vec<_> =
        a.records.iter().chain(&b.records).map(comparable).collect();
    assert_eq!(on_disk.iter().map(comparable).collect::<Vec<_>>(), expected);

    std::fs::remove_dir_all(std::env::temp_dir().join("fairlens_ft_multispec")).ok();
}
