//! Golden determinism test for `--trace`: the same spec traced under one
//! worker thread and under four must produce a byte-identical event
//! sequence once timestamp fields are stripped. The sink groups events by
//! track and sorts tracks by name, so scheduling order cannot leak into
//! the serialized trace — the property the verification style of
//! `tests/determinism.rs` relies on.

use fairlens_bench::{ApproachSelector, ExperimentSpec, RunPolicy, Runner, ScaleSpec};
use fairlens_synth::DatasetKind;
use fairlens_trace::{parse_jsonl, strip_timestamps, validate_nesting, TraceSink};

/// German at quick scale, four approaches × two folds (the
/// `fault_tolerance.rs` grid): enough cells to interleave under four
/// workers, small enough for CI.
fn german_quick_spec() -> ExperimentSpec {
    ExperimentSpec::new(42)
        .datasets([DatasetKind::German])
        .approaches(ApproachSelector::Named(vec![
            "KamCal^DP".into(),
            "Feld^DP(1.0)".into(),
            "KamKar^DP".into(),
            "Hardt^EO".into(),
        ]))
        .scale(ScaleSpec::Quick)
        .folds(2)
        .cd_bounds(0.9, 0.08)
}

fn traced_run(threads: usize) -> String {
    let sink = TraceSink::new();
    let policy = RunPolicy { trace: Some(sink.clone()), ..RunPolicy::default() };
    let batch = Runner::new(threads).run_with(&german_quick_spec(), &policy);
    assert!(batch.failures.is_empty(), "{:?}", batch.failures);
    assert_eq!(batch.records.len(), 10);
    sink.to_jsonl()
}

#[test]
fn stripped_trace_is_byte_identical_across_thread_counts() {
    let sequential = traced_run(1);
    let parallel = traced_run(4);
    assert_ne!(sequential, "", "trace must not be empty");
    assert_eq!(
        strip_timestamps(&sequential),
        strip_timestamps(&parallel),
        "trace event sequence depends on the worker count"
    );
}

#[test]
fn traced_run_covers_every_cell_and_nests_cleanly() {
    let jsonl = traced_run(2);
    let tracks = parse_jsonl(&jsonl).unwrap();
    let cells = tracks.iter().filter(|t| t.track.starts_with("cell/")).count();
    let data = tracks.iter().filter(|t| t.track.starts_with("data/")).count();
    assert_eq!(cells, 10, "one cell track per (approach × fold)");
    assert_eq!(data, 1, "one data track for the German panel");
    for track in &tracks {
        validate_nesting(&track.events)
            .unwrap_or_else(|e| panic!("{}: bad nesting: {e}", track.track));
    }
    // Every cell track carries the three per-cell phases; `synth` lives
    // on the data track only.
    for track in tracks.iter().filter(|t| t.track.starts_with("cell/")) {
        for phase in ["fit", "predict", "metrics"] {
            assert!(
                track.events.iter().any(|e| e.name() == phase),
                "{}: missing {phase} span",
                track.track
            );
        }
        assert!(
            !track.events.iter().any(|e| e.name() == "synth"),
            "{}: synth leaked into a cell track",
            track.track
        );
    }
}

#[test]
fn untraced_policy_records_nothing() {
    // RunPolicy::default() leaves `trace` unset; the global sink must not
    // observe anything from an untraced run (the zero-cost-when-disabled
    // contract).
    let probe = TraceSink::new();
    let batch = Runner::new(2).run_with(&german_quick_spec(), &RunPolicy::default());
    assert_eq!(batch.records.len(), 10);
    assert!(probe.is_empty());
}
