//! Train/test splitting and k-fold cross-validation.
//!
//! The paper uses a random 70 %/30 % train/test split, 3-fold cross-
//! validation for model validation, and ten random 2/3–1/3 folds for the
//! stability experiment (Figs. 12–16). All of those are built from the two
//! functions here.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::dataset::Dataset;

/// Randomly split a dataset into `(train, test)` with the given test
/// fraction.
///
/// # Panics
/// Panics if `test_frac` is outside `(0, 1)` or either side would be empty.
pub fn train_test_split<R: Rng + ?Sized>(
    data: &Dataset,
    test_frac: f64,
    rng: &mut R,
) -> (Dataset, Dataset) {
    assert!(test_frac > 0.0 && test_frac < 1.0, "test_frac must be in (0, 1)");
    let n = data.n_rows();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let n_test = ((n as f64) * test_frac).round() as usize;
    let n_test = n_test.clamp(1, n - 1);
    let (test_idx, train_idx) = idx.split_at(n_test);
    (data.select_rows(train_idx), data.select_rows(test_idx))
}

/// Produce `k` cross-validation folds; each element is `(train, validation)`.
///
/// Rows are shuffled once and dealt round-robin into `k` buckets so fold
/// sizes differ by at most one.
///
/// # Panics
/// Panics if `k < 2` or `k > |D|`.
pub fn k_folds<R: Rng + ?Sized>(data: &Dataset, k: usize, rng: &mut R) -> Vec<(Dataset, Dataset)> {
    let n = data.n_rows();
    assert!(k >= 2, "k_folds: k must be at least 2");
    assert!(k <= n, "k_folds: k must not exceed the number of rows");
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let mut buckets: Vec<Vec<usize>> = vec![Vec::with_capacity(n / k + 1); k];
    for (pos, &i) in idx.iter().enumerate() {
        buckets[pos % k].push(i);
    }
    (0..k)
        .map(|f| {
            let val = &buckets[f];
            let train: Vec<usize> = (0..k)
                .filter(|&b| b != f)
                .flat_map(|b| buckets[b].iter().copied())
                .collect();
            (data.select_rows(&train), data.select_rows(val))
        })
        .collect()
}

/// Draw a uniform random subsample of `n` rows *without* replacement
/// (used by the Fig. 11 size sweep). If `n >= |D|`, rows are drawn *with*
/// replacement to reach the requested size (the sweep needs 40 K rows even
/// when a generator is asked for fewer).
pub fn subsample<R: Rng + ?Sized>(data: &Dataset, n: usize, rng: &mut R) -> Dataset {
    let total = data.n_rows();
    if n < total {
        let mut idx: Vec<usize> = (0..total).collect();
        idx.shuffle(rng);
        idx.truncate(n);
        data.select_rows(&idx)
    } else {
        let idx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..total)).collect();
        data.select_rows(&idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy(n: usize) -> Dataset {
        Dataset::builder("toy")
            .numeric("x", (0..n).map(|i| i as f64).collect())
            .sensitive("s", (0..n).map(|i| (i % 2) as u8).collect())
            .labels("y", (0..n).map(|i| ((i / 2) % 2) as u8).collect())
            .build()
            .unwrap()
    }

    #[test]
    fn split_sizes_add_up() {
        let d = toy(100);
        let mut rng = StdRng::seed_from_u64(1);
        let (tr, te) = train_test_split(&d, 0.3, &mut rng);
        assert_eq!(tr.n_rows(), 70);
        assert_eq!(te.n_rows(), 30);
    }

    #[test]
    fn split_is_a_partition() {
        let d = toy(50);
        let mut rng = StdRng::seed_from_u64(2);
        let (tr, te) = train_test_split(&d, 0.3, &mut rng);
        let mut seen: Vec<f64> = tr
            .column(0)
            .as_numeric()
            .unwrap()
            .iter()
            .chain(te.column(0).as_numeric().unwrap())
            .copied()
            .collect();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect: Vec<f64> = (0..50).map(|i| i as f64).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn folds_cover_everything_once() {
        let d = toy(31);
        let mut rng = StdRng::seed_from_u64(3);
        let folds = k_folds(&d, 3, &mut rng);
        assert_eq!(folds.len(), 3);
        let mut val_rows: Vec<f64> = folds
            .iter()
            .flat_map(|(_, v)| v.column(0).as_numeric().unwrap().to_vec())
            .collect();
        val_rows.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect: Vec<f64> = (0..31).map(|i| i as f64).collect();
        assert_eq!(val_rows, expect);
        for (tr, va) in &folds {
            assert_eq!(tr.n_rows() + va.n_rows(), 31);
        }
    }

    #[test]
    fn subsample_without_replacement_is_distinct() {
        let d = toy(20);
        let mut rng = StdRng::seed_from_u64(4);
        let s = subsample(&d, 10, &mut rng);
        let mut vals = s.column(0).as_numeric().unwrap().to_vec();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        vals.dedup();
        assert_eq!(vals.len(), 10);
    }

    #[test]
    fn subsample_with_replacement_when_oversized() {
        let d = toy(5);
        let mut rng = StdRng::seed_from_u64(5);
        let s = subsample(&d, 12, &mut rng);
        assert_eq!(s.n_rows(), 12);
    }

    #[test]
    #[should_panic(expected = "test_frac")]
    fn split_rejects_bad_fraction() {
        let d = toy(10);
        let mut rng = StdRng::seed_from_u64(6);
        let _ = train_test_split(&d, 1.5, &mut rng);
    }
}
