//! Error type for dataset construction and manipulation.

/// Errors raised while building or manipulating a [`crate::Dataset`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Column lengths disagree with the number of rows.
    LengthMismatch {
        /// Name of the offending column.
        column: String,
        /// Expected number of rows.
        expected: usize,
        /// Actual length provided.
        actual: usize,
    },
    /// A binary attribute (S or Y) contained a value outside `{0, 1}`.
    NonBinary {
        /// Name of the offending attribute.
        attribute: String,
    },
    /// A named column was not found.
    UnknownColumn {
        /// The requested name.
        name: String,
    },
    /// The dataset has no rows where at least one was required.
    Empty,
    /// A categorical code exceeded the declared number of levels.
    CodeOutOfRange {
        /// Name of the offending column.
        column: String,
        /// The offending code.
        code: u32,
        /// The number of declared levels.
        levels: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::LengthMismatch { column, expected, actual } => write!(
                f,
                "column `{column}` has {actual} values but the dataset has {expected} rows"
            ),
            FrameError::NonBinary { attribute } => {
                write!(f, "attribute `{attribute}` must be binary (0/1)")
            }
            FrameError::UnknownColumn { name } => write!(f, "unknown column `{name}`"),
            FrameError::Empty => write!(f, "dataset has no rows"),
            FrameError::CodeOutOfRange { column, code, levels } => write!(
                f,
                "categorical column `{column}` has code {code} but only {levels} levels"
            ),
        }
    }
}

impl std::error::Error for FrameError {}
