//! # fairlens-frame
//!
//! Tabular data substrate for the FairLens workspace — the "data management"
//! layer under every fair-classification approach.
//!
//! A [`Dataset`] follows the paper's schema `(X, S; Y)`:
//!
//! * `X` — a set of predictive attributes, each a [`Column`] (numeric or
//!   categorical),
//! * `S` — a binary sensitive attribute (`1` = privileged, `0` =
//!   unprivileged),
//! * `Y` — a binary ground-truth label (`1` = favourable).
//!
//! On top of that the crate provides the data-management operations the
//! benchmark needs:
//!
//! * row selection / weighted resampling ([`Dataset::select_rows`],
//!   [`Dataset::sample_weighted`]) — used by Kam-Cal's reweighing repair and
//!   by the scalability sweeps;
//! * train/test splits and k-folds ([`split`]) — used by the stability
//!   experiment (Figs. 12–16);
//! * a fitted [`encode::Encoder`] mapping mixed columns to a standardised,
//!   one-hot dense matrix — fitted on training data and re-applied to test
//!   data so the two agree;
//! * quantile discretisation ([`discretize`]) — the representation consumed
//!   by the causal-discovery and combinatorial-repair approaches (Zha-Wu,
//!   Salimi, Calmon).

pub mod column;
pub mod csv;
pub mod dataset;
pub mod discretize;
pub mod encode;
pub mod error;
pub mod split;

pub use column::{Column, ColumnKind};
pub use csv::{read_csv_file, read_csv_str, write_csv_str, CsvError, CsvOptions};
pub use dataset::{Dataset, DatasetBuilder};
pub use discretize::{DiscreteView, Discretizer};
pub use encode::{AttrEncoding, EncodedFeatures, Encoder};
pub use error::FrameError;
