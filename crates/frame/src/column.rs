//! Column storage: numeric and categorical attribute vectors.

/// The kind of an attribute column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnKind {
    /// Real-valued attribute (age, hours-per-week, capital gain, …).
    Numeric,
    /// Finite-domain attribute stored as integer codes with string levels
    /// (occupation, marital status, …).
    Categorical,
}

/// A single attribute column of a [`crate::Dataset`].
///
/// Categorical columns store `u32` codes plus the level names; numeric
/// columns store raw `f64` values. The two variants are what the paper's
/// approaches need: Feld repairs numeric marginals, while Salimi/Calmon/
/// Zha-Wu operate on discrete domains.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Real-valued data.
    Numeric(Vec<f64>),
    /// Coded categorical data with human-readable level names.
    Categorical {
        /// Per-row level codes, each `< levels.len()`.
        codes: Vec<u32>,
        /// Names of the levels; `levels[code]` is the display value.
        levels: Vec<String>,
    },
}

impl Column {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::Numeric(v) => v.len(),
            Column::Categorical { codes, .. } => codes.len(),
        }
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's [`ColumnKind`].
    pub fn kind(&self) -> ColumnKind {
        match self {
            Column::Numeric(_) => ColumnKind::Numeric,
            Column::Categorical { .. } => ColumnKind::Categorical,
        }
    }

    /// Number of categorical levels (1 for numeric columns, as a convention
    /// used by cardinality products in the discrete approaches).
    pub fn cardinality(&self) -> usize {
        match self {
            Column::Numeric(_) => 1,
            Column::Categorical { levels, .. } => levels.len(),
        }
    }

    /// View the column as `f64` values: numeric values as-is, categorical
    /// codes cast to `f64` (an *ordinal* view, used by quantile binning).
    pub fn to_f64(&self) -> Vec<f64> {
        match self {
            Column::Numeric(v) => v.clone(),
            Column::Categorical { codes, .. } => codes.iter().map(|&c| c as f64).collect(),
        }
    }

    /// The numeric values, if this is a numeric column.
    pub fn as_numeric(&self) -> Option<&[f64]> {
        match self {
            Column::Numeric(v) => Some(v),
            Column::Categorical { .. } => None,
        }
    }

    /// The categorical codes, if this is a categorical column.
    pub fn as_codes(&self) -> Option<&[u32]> {
        match self {
            Column::Numeric(_) => None,
            Column::Categorical { codes, .. } => Some(codes),
        }
    }

    /// Select rows by index (with repetition allowed — used by resampling).
    pub fn select(&self, idx: &[usize]) -> Column {
        match self {
            Column::Numeric(v) => Column::Numeric(idx.iter().map(|&i| v[i]).collect()),
            Column::Categorical { codes, levels } => Column::Categorical {
                codes: idx.iter().map(|&i| codes[i]).collect(),
                levels: levels.clone(),
            },
        }
    }

    /// Append a single value from another column of the same variant at `row`.
    ///
    /// # Panics
    /// Panics if the variants differ.
    pub fn push_from(&mut self, other: &Column, row: usize) {
        match (self, other) {
            (Column::Numeric(v), Column::Numeric(o)) => v.push(o[row]),
            (Column::Categorical { codes, .. }, Column::Categorical { codes: oc, .. }) => {
                codes.push(oc[row])
            }
            _ => panic!("push_from: column kind mismatch"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cat() -> Column {
        Column::Categorical {
            codes: vec![0, 1, 2, 1],
            levels: vec!["a".into(), "b".into(), "c".into()],
        }
    }

    #[test]
    fn kinds_and_lengths() {
        let n = Column::Numeric(vec![1.0, 2.0]);
        assert_eq!(n.kind(), ColumnKind::Numeric);
        assert_eq!(n.len(), 2);
        assert!(!n.is_empty());
        let c = cat();
        assert_eq!(c.kind(), ColumnKind::Categorical);
        assert_eq!(c.cardinality(), 3);
    }

    #[test]
    fn to_f64_casts_codes() {
        assert_eq!(cat().to_f64(), vec![0.0, 1.0, 2.0, 1.0]);
    }

    #[test]
    fn select_with_repetition() {
        let c = cat().select(&[3, 3, 0]);
        assert_eq!(c.as_codes().unwrap(), &[1, 1, 0]);
        let n = Column::Numeric(vec![5.0, 6.0]).select(&[1, 0, 1]);
        assert_eq!(n.as_numeric().unwrap(), &[6.0, 5.0, 6.0]);
    }

    #[test]
    fn push_from_appends() {
        let mut c = cat();
        let src = cat();
        c.push_from(&src, 2);
        assert_eq!(c.len(), 5);
        assert_eq!(c.as_codes().unwrap()[4], 2);
    }

    #[test]
    #[should_panic(expected = "kind mismatch")]
    fn push_from_checks_kind() {
        let mut c = cat();
        c.push_from(&Column::Numeric(vec![1.0]), 0);
    }
}
