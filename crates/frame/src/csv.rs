//! CSV import/export for datasets.
//!
//! The benchmark runs on calibrated synthetic generators, but a downstream
//! user will want to run the approaches on the *real* UCI/ProPublica files
//! (or their own data). This module provides a dependency-free CSV reader
//! with schema inference (numeric vs categorical per column) and a writer
//! that round-trips [`Dataset`]s.
//!
//! Format contract:
//! * first row is the header;
//! * one column is designated the sensitive attribute, one the label —
//!   both must be binary after value mapping;
//! * every other column becomes a predictive attribute: numeric when every
//!   non-empty value parses as `f64`, categorical otherwise;
//! * fields may be quoted with `"` (doubled quotes escape); separators
//!   inside quotes are preserved.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::column::Column;
use crate::dataset::Dataset;
use crate::error::FrameError;

/// Options for [`read_csv_str`].
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field separator (default `,`).
    pub separator: char,
    /// Header name of the sensitive column.
    pub sensitive: String,
    /// Value of the sensitive column mapped to the *privileged* group (1);
    /// every other value maps to 0.
    pub privileged_value: String,
    /// Header name of the label column.
    pub label: String,
    /// Value of the label column mapped to the favourable outcome (1).
    pub favorable_value: String,
}

impl CsvOptions {
    /// Convenience constructor with `,` separator.
    pub fn new(
        sensitive: impl Into<String>,
        privileged_value: impl Into<String>,
        label: impl Into<String>,
        favorable_value: impl Into<String>,
    ) -> Self {
        Self {
            separator: ',',
            sensitive: sensitive.into(),
            privileged_value: privileged_value.into(),
            label: label.into(),
            favorable_value: favorable_value.into(),
        }
    }
}

/// Errors raised by the CSV reader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The input had no header or no data rows.
    Empty,
    /// A row had the wrong number of fields.
    RaggedRow {
        /// 1-based line number (header = 1).
        line: usize,
        /// Fields found.
        found: usize,
        /// Fields expected from the header.
        expected: usize,
    },
    /// The designated sensitive/label column is missing.
    MissingColumn(String),
    /// Dataset-level validation failed after parsing.
    Frame(FrameError),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Empty => write!(f, "CSV input has no data"),
            CsvError::RaggedRow { line, found, expected } => {
                write!(f, "line {line}: {found} fields, expected {expected}")
            }
            CsvError::MissingColumn(c) => write!(f, "column `{c}` not found in header"),
            CsvError::Frame(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<FrameError> for CsvError {
    fn from(e: FrameError) -> Self {
        CsvError::Frame(e)
    }
}

/// Split one CSV line honouring quotes.
fn split_line(line: &str, sep: char) -> Vec<String> {
    let mut out = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    field.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            } else {
                field.push(c);
            }
        } else if c == '"' {
            in_quotes = true;
        } else if c == sep {
            out.push(std::mem::take(&mut field));
        } else {
            field.push(c);
        }
    }
    out.push(field);
    out
}

/// Parse CSV text into a [`Dataset`] (see module docs for the contract).
pub fn read_csv_str(name: &str, text: &str, opts: &CsvOptions) -> Result<Dataset, CsvError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header_line = lines.next().ok_or(CsvError::Empty)?;
    let header: Vec<String> = split_line(header_line, opts.separator)
        .into_iter()
        .map(|h| h.trim().to_string())
        .collect();
    let n_cols = header.len();

    let s_idx = header
        .iter()
        .position(|h| h == &opts.sensitive)
        .ok_or_else(|| CsvError::MissingColumn(opts.sensitive.clone()))?;
    let y_idx = header
        .iter()
        .position(|h| h == &opts.label)
        .ok_or_else(|| CsvError::MissingColumn(opts.label.clone()))?;

    let mut raw: Vec<Vec<String>> = vec![Vec::new(); n_cols];
    for (lineno, line) in lines.enumerate() {
        let fields = split_line(line, opts.separator);
        if fields.len() != n_cols {
            return Err(CsvError::RaggedRow {
                line: lineno + 2,
                found: fields.len(),
                expected: n_cols,
            });
        }
        for (c, f) in fields.into_iter().enumerate() {
            raw[c].push(f.trim().to_string());
        }
    }
    if raw[0].is_empty() {
        return Err(CsvError::Empty);
    }

    let mut builder = Dataset::builder(name);
    for (c, header_name) in header.iter().enumerate() {
        if c == s_idx || c == y_idx {
            continue;
        }
        let values = &raw[c];
        // schema inference: numeric iff every non-empty value parses
        let numeric: Option<Vec<f64>> = values
            .iter()
            .map(|v| {
                if v.is_empty() {
                    Some(0.0)
                } else {
                    v.parse::<f64>().ok()
                }
            })
            .collect();
        match numeric {
            Some(v) => builder = builder.numeric(header_name.clone(), v),
            None => {
                // categorical: stable level order by first occurrence,
                // deterministic via BTreeMap for the final mapping
                let mut level_of: BTreeMap<&str, u32> = BTreeMap::new();
                for v in values {
                    let next = level_of.len() as u32;
                    level_of.entry(v.as_str()).or_insert(next);
                }
                let levels: Vec<String> = {
                    let mut pairs: Vec<(&&str, &u32)> = level_of.iter().collect();
                    pairs.sort_by_key(|&(_, &code)| code);
                    pairs.iter().map(|(l, _)| l.to_string()).collect()
                };
                let codes: Vec<u32> = values.iter().map(|v| level_of[v.as_str()]).collect();
                builder = builder.categorical(header_name.clone(), codes, levels);
            }
        }
    }
    let sensitive: Vec<u8> = raw[s_idx]
        .iter()
        .map(|v| u8::from(v == &opts.privileged_value))
        .collect();
    let labels: Vec<u8> = raw[y_idx]
        .iter()
        .map(|v| u8::from(v == &opts.favorable_value))
        .collect();
    Ok(builder
        .sensitive(header[s_idx].clone(), sensitive)
        .labels(header[y_idx].clone(), labels)
        .build()?)
}

/// Serialise a dataset back to CSV text (attributes, then S, then Y).
pub fn write_csv_str(data: &Dataset) -> String {
    let mut out = String::new();
    // header
    let mut headers: Vec<&str> = data.attr_names().iter().map(String::as_str).collect();
    headers.push(data.sensitive_name());
    headers.push(data.label_name());
    let _ = writeln!(out, "{}", headers.join(","));
    for r in 0..data.n_rows() {
        let mut fields: Vec<String> = Vec::with_capacity(headers.len());
        for col in data.columns() {
            match col {
                Column::Numeric(v) => fields.push(format!("{}", v[r])),
                Column::Categorical { codes, levels } => {
                    let level = &levels[codes[r] as usize];
                    if level.contains(',') || level.contains('"') {
                        fields.push(format!("\"{}\"", level.replace('"', "\"\"")));
                    } else {
                        fields.push(level.clone());
                    }
                }
            }
        }
        fields.push(data.sensitive()[r].to_string());
        fields.push(data.labels()[r].to_string());
        let _ = writeln!(out, "{}", fields.join(","));
    }
    out
}

/// Read a CSV file from disk.
pub fn read_csv_file(
    path: &std::path::Path,
    opts: &CsvOptions,
) -> Result<Dataset, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("dataset");
    Ok(read_csv_str(name, &text, opts)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
age,job,sex,hired
25,engineer,male,yes
40,\"sales, retail\",female,no
31,engineer,female,yes
55,manager,male,no
";

    fn opts() -> CsvOptions {
        CsvOptions::new("sex", "male", "hired", "yes")
    }

    #[test]
    fn parses_schema_and_values() {
        let d = read_csv_str("toy", SAMPLE, &opts()).unwrap();
        assert_eq!(d.n_rows(), 4);
        assert_eq!(d.n_attrs(), 2);
        assert_eq!(d.attr_names(), &["age".to_string(), "job".to_string()]);
        assert_eq!(d.column(0).as_numeric().unwrap(), &[25.0, 40.0, 31.0, 55.0]);
        let job = d.column(1);
        assert_eq!(job.cardinality(), 3);
        assert_eq!(d.sensitive(), &[1, 0, 0, 1]);
        assert_eq!(d.labels(), &[1, 0, 1, 0]);
    }

    #[test]
    fn quoted_separator_preserved() {
        let d = read_csv_str("toy", SAMPLE, &opts()).unwrap();
        if let Column::Categorical { levels, codes } = d.column(1) {
            assert_eq!(levels[codes[1] as usize], "sales, retail");
        } else {
            panic!("job should be categorical");
        }
    }

    #[test]
    fn roundtrip_through_writer() {
        let d = read_csv_str("toy", SAMPLE, &opts()).unwrap();
        let text = write_csv_str(&d);
        // the writer emits S/Y as 0/1; read back with matching mapping
        let reread = read_csv_str(
            "toy",
            &text,
            &CsvOptions::new("sex", "1", "hired", "1"),
        )
        .unwrap();
        assert_eq!(reread.sensitive(), d.sensitive());
        assert_eq!(reread.labels(), d.labels());
        assert_eq!(reread.column(0), d.column(0));
    }

    #[test]
    fn missing_column_reported() {
        let err = read_csv_str(
            "toy",
            SAMPLE,
            &CsvOptions::new("race", "white", "hired", "yes"),
        )
        .unwrap_err();
        assert_eq!(err, CsvError::MissingColumn("race".into()));
    }

    #[test]
    fn ragged_rows_reported_with_line() {
        let bad = "a,b,s,y\n1,2,male,yes\n1,2,3,male,yes\n";
        let err = read_csv_str("t", bad, &CsvOptions::new("s", "male", "y", "yes")).unwrap_err();
        assert_eq!(err, CsvError::RaggedRow { line: 3, found: 5, expected: 4 });
    }

    #[test]
    fn empty_input_rejected() {
        let err = read_csv_str("t", "", &opts()).unwrap_err();
        assert_eq!(err, CsvError::Empty);
        let err = read_csv_str("t", "a,b,sex,hired\n", &opts()).unwrap_err();
        assert_eq!(err, CsvError::Empty);
    }

    #[test]
    fn escaped_quotes_roundtrip() {
        let csv = "name,sex,y\n\"say \"\"hi\"\"\",male,yes\nplain,female,no\n";
        let d = read_csv_str("q", csv, &CsvOptions::new("sex", "male", "y", "yes")).unwrap();
        if let Column::Categorical { levels, codes } = d.column(0) {
            assert_eq!(levels[codes[0] as usize], "say \"hi\"");
        } else {
            panic!("name should be categorical");
        }
    }

    #[test]
    fn mixed_column_is_categorical() {
        let csv = "v,sex,y\n1,male,yes\nx,female,no\n2,male,yes\n";
        let d = read_csv_str("m", csv, &CsvOptions::new("sex", "male", "y", "yes")).unwrap();
        assert_eq!(d.column(0).cardinality(), 3);
    }
}
