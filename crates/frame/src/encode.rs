//! Feature encoding: mixed columns → standardised dense matrix.
//!
//! Every model in the workspace consumes a dense `f64` matrix. The
//! [`Encoder`] is *fitted on training data* (it memorises per-attribute means
//! / standard deviations and categorical level counts) and then applied to
//! both train and test so the two encodings agree — the standard leakage-safe
//! protocol.
//!
//! Numeric attributes are z-standardised; categorical attributes are one-hot
//! encoded (all levels, no reference-level drop — L2 regularisation in the
//! models handles the induced collinearity). Optionally the sensitive
//! attribute is appended as a final raw 0/1 column; the pipelines record its
//! index so the causal-discrimination metric can flip it in place.

use fairlens_linalg::Matrix;

use crate::column::Column;
use crate::dataset::Dataset;

/// Per-attribute fitted encoding state. Public so the model-persistence
/// layer can snapshot a fitted encoder to disk and rebuild it with
/// [`Encoder::from_parts`].
#[derive(Debug, Clone, PartialEq)]
pub enum AttrEncoding {
    /// z-standardisation with the training mean and std (std clamped ≥ 1e-9).
    Numeric {
        /// Training-set mean.
        mean: f64,
        /// Training-set standard deviation (clamped ≥ 1e-9 at fit time).
        std: f64,
    },
    /// One-hot over `levels` indicator columns.
    OneHot {
        /// Number of categorical levels (= indicator columns).
        levels: usize,
    },
}

impl AttrEncoding {
    /// Encoded columns this attribute occupies.
    fn width(&self) -> usize {
        match self {
            AttrEncoding::Numeric { .. } => 1,
            AttrEncoding::OneHot { levels } => *levels,
        }
    }
}

/// A fitted feature encoder (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct Encoder {
    attrs: Vec<AttrEncoding>,
    include_sensitive: bool,
    width: usize,
    names: Vec<String>,
    sensitive_index: Option<usize>,
}

/// The encoded design matrix plus bookkeeping.
#[derive(Debug, Clone)]
pub struct EncodedFeatures {
    /// `n × d` design matrix.
    pub matrix: Matrix,
    /// Name of each encoded feature column.
    pub names: Vec<String>,
    /// Index of the raw sensitive column, when the encoder included it.
    pub sensitive_index: Option<usize>,
}

impl Encoder {
    /// Fit an encoder on (training) data.
    ///
    /// `include_sensitive` appends `S` as a raw 0/1 feature column. The
    /// fairness-unaware baseline and the pre-/post-processing pipelines use
    /// `true` (mirroring AIF360, where the protected attribute is part of the
    /// feature set); approaches that must not see `S` at prediction time
    /// (e.g. Zafar) use `false`.
    pub fn fit(data: &Dataset, include_sensitive: bool) -> Encoder {
        let mut attrs = Vec::with_capacity(data.n_attrs());
        let mut names = Vec::new();
        let mut width = 0usize;
        for (col, name) in data.columns().iter().zip(data.attr_names()) {
            match col {
                Column::Numeric(v) => {
                    let mean = fairlens_linalg::vector::mean(v);
                    let std = fairlens_linalg::vector::stddev(v).max(1e-9);
                    attrs.push(AttrEncoding::Numeric { mean, std });
                    names.push(name.clone());
                    width += 1;
                }
                Column::Categorical { levels, .. } => {
                    attrs.push(AttrEncoding::OneHot { levels: levels.len() });
                    for l in levels {
                        names.push(format!("{name}={l}"));
                    }
                    width += levels.len();
                }
            }
        }
        let sensitive_index = if include_sensitive {
            names.push(data.sensitive_name().to_string());
            width += 1;
            Some(width - 1)
        } else {
            None
        };
        Encoder { attrs, include_sensitive, width, names, sensitive_index }
    }

    /// Rebuild a fitted encoder from its persisted state (the inverse of
    /// reading [`Self::attr_encodings`] / [`Self::feature_names`] /
    /// [`Self::includes_sensitive`]). `names` must list one name per
    /// encoded column, including the trailing sensitive column when
    /// `include_sensitive` is set — exactly what a fitted encoder reports.
    pub fn from_parts(
        attrs: Vec<AttrEncoding>,
        include_sensitive: bool,
        names: Vec<String>,
    ) -> Result<Encoder, String> {
        let mut width: usize = attrs.iter().map(AttrEncoding::width).sum();
        let sensitive_index = if include_sensitive {
            width += 1;
            Some(width - 1)
        } else {
            None
        };
        if names.len() != width {
            return Err(format!(
                "encoder state lists {} column names for width {width}",
                names.len()
            ));
        }
        if let Some(AttrEncoding::OneHot { levels: 0 }) =
            attrs.iter().find(|a| matches!(a, AttrEncoding::OneHot { levels: 0 }))
        {
            return Err("one-hot encoding with zero levels".into());
        }
        Ok(Encoder { attrs, include_sensitive, width, names, sensitive_index })
    }

    /// The per-attribute fitted encoding state, in attribute order.
    pub fn attr_encodings(&self) -> &[AttrEncoding] {
        &self.attrs
    }

    /// Name of every encoded feature column (one-hot levels expanded;
    /// includes the trailing sensitive column when encoded).
    pub fn feature_names(&self) -> &[String] {
        &self.names
    }

    /// Number of encoded feature columns.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Whether `S` is appended as a feature.
    pub fn includes_sensitive(&self) -> bool {
        self.include_sensitive
    }

    /// Index of the raw `S` column in the encoded matrix, if included.
    pub fn sensitive_index(&self) -> Option<usize> {
        self.sensitive_index
    }

    /// Encode a dataset with the fitted parameters.
    ///
    /// # Panics
    /// Panics if the dataset's attribute arity differs from the fitted one,
    /// or if a categorical code exceeds the fitted level count.
    pub fn transform(&self, data: &Dataset) -> EncodedFeatures {
        assert_eq!(data.n_attrs(), self.attrs.len(), "encoder/dataset arity mismatch");
        let n = data.n_rows();
        let mut m = Matrix::zeros(n, self.width);
        for r in 0..n {
            let row = m.row_mut(r);
            let mut j = 0usize;
            for (col, enc) in data.columns().iter().zip(self.attrs.iter()) {
                match (col, enc) {
                    (Column::Numeric(v), AttrEncoding::Numeric { mean, std }) => {
                        row[j] = (v[r] - mean) / std;
                        j += 1;
                    }
                    (Column::Categorical { codes, .. }, AttrEncoding::OneHot { levels }) => {
                        let c = codes[r] as usize;
                        assert!(c < *levels, "categorical code beyond fitted levels");
                        row[j + c] = 1.0;
                        j += levels;
                    }
                    _ => panic!("encoder/dataset column kind mismatch"),
                }
            }
            if self.include_sensitive {
                row[j] = data.sensitive()[r] as f64;
            }
        }
        EncodedFeatures {
            matrix: m,
            names: self.names.clone(),
            sensitive_index: self.sensitive_index,
        }
    }
}

impl EncodedFeatures {
    /// A copy of the design matrix with the sensitive column flipped
    /// (`0 ↔ 1`) — the interventional twin used by the causal-discrimination
    /// metric. Returns `None` when `S` was not encoded as a feature.
    pub fn flip_sensitive(&self) -> Option<Matrix> {
        let idx = self.sensitive_index?;
        let mut m = self.matrix.clone();
        for r in 0..m.rows() {
            let v = m.get(r, idx);
            m.set(r, idx, 1.0 - v);
        }
        Some(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::builder("toy")
            .numeric("age", vec![20.0, 30.0, 40.0, 50.0])
            .categorical("job", vec![0, 1, 1, 0], vec!["a".into(), "b".into()])
            .sensitive("s", vec![1, 0, 1, 0])
            .labels("y", vec![1, 0, 1, 0])
            .build()
            .unwrap()
    }

    #[test]
    fn width_counts_levels_and_sensitive() {
        let d = toy();
        assert_eq!(Encoder::fit(&d, false).width(), 3); // age + 2 one-hot
        assert_eq!(Encoder::fit(&d, true).width(), 4);
    }

    #[test]
    fn numeric_is_standardised() {
        let d = toy();
        let enc = Encoder::fit(&d, false);
        let f = enc.transform(&d);
        let col = f.matrix.column(0);
        assert!(fairlens_linalg::vector::mean(&col).abs() < 1e-12);
        assert!((fairlens_linalg::vector::stddev(&col) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn one_hot_is_exclusive() {
        let d = toy();
        let f = Encoder::fit(&d, false).transform(&d);
        for r in 0..4 {
            let row = f.matrix.row(r);
            assert_eq!(row[1] + row[2], 1.0);
        }
        assert_eq!(f.matrix.get(0, 1), 1.0); // job=a for row 0
        assert_eq!(f.matrix.get(1, 2), 1.0); // job=b for row 1
    }

    #[test]
    fn sensitive_column_appended_raw() {
        let d = toy();
        let enc = Encoder::fit(&d, true);
        let f = enc.transform(&d);
        assert_eq!(f.sensitive_index, Some(3));
        assert_eq!(f.matrix.column(3), vec![1.0, 0.0, 1.0, 0.0]);
        assert_eq!(f.names[3], "s");
    }

    #[test]
    fn flip_sensitive_inverts_only_s() {
        let d = toy();
        let f = Encoder::fit(&d, true).transform(&d);
        let flipped = f.flip_sensitive().unwrap();
        assert_eq!(flipped.column(3), vec![0.0, 1.0, 0.0, 1.0]);
        assert_eq!(flipped.column(0), f.matrix.column(0));
        let f2 = Encoder::fit(&d, false).transform(&d);
        assert!(f2.flip_sensitive().is_none());
    }

    #[test]
    fn train_fitted_encoder_applies_to_test() {
        let d = toy();
        let enc = Encoder::fit(&d, false);
        let test = d.select_rows(&[0, 3]);
        let f = enc.transform(&test);
        assert_eq!(f.matrix.rows(), 2);
        // uses *train* mean 35, std from train — row 0 age 20
        let train_std = fairlens_linalg::vector::stddev(&[20.0, 30.0, 40.0, 50.0]);
        assert!((f.matrix.get(0, 0) - (20.0 - 35.0) / train_std).abs() < 1e-9);
    }

    #[test]
    fn from_parts_round_trips_fitted_state() {
        let d = toy();
        for include in [false, true] {
            let enc = Encoder::fit(&d, include);
            let rebuilt = Encoder::from_parts(
                enc.attr_encodings().to_vec(),
                enc.includes_sensitive(),
                enc.feature_names().to_vec(),
            )
            .unwrap();
            assert_eq!(rebuilt.width(), enc.width());
            assert_eq!(rebuilt.sensitive_index(), enc.sensitive_index());
            assert_eq!(rebuilt.attr_encodings(), enc.attr_encodings());
            assert!(rebuilt.transform(&d).matrix == enc.transform(&d).matrix);
        }
        // one name too few for the declared width
        assert!(Encoder::from_parts(
            vec![AttrEncoding::Numeric { mean: 0.0, std: 1.0 }],
            true,
            vec!["x".into()],
        )
        .is_err());
    }

    #[test]
    fn constant_numeric_column_is_safe() {
        let d = Dataset::builder("c")
            .numeric("k", vec![5.0, 5.0, 5.0])
            .sensitive("s", vec![0, 1, 0])
            .labels("y", vec![1, 0, 1])
            .build()
            .unwrap();
        let f = Encoder::fit(&d, false).transform(&d);
        assert!(f.matrix.column(0).iter().all(|v| v.is_finite()));
    }
}
