//! Quantile discretisation: mixed columns → small discrete domains.
//!
//! The causal and combinatorial approaches (Zha-Wu's PC-based discovery,
//! Salimi's integrity-constraint repair, Calmon's distribution optimisation)
//! all operate on discrete attribute domains. A [`Discretizer`] is fitted on
//! training data — numeric attributes get quantile cut points, categorical
//! attributes keep their codes — and produces a [`DiscreteView`]: a dense
//! code table plus per-attribute cardinalities.

use crate::column::Column;
use crate::dataset::Dataset;

/// Fitted per-attribute discretisation state.
#[derive(Debug, Clone)]
enum AttrBins {
    /// Numeric attribute with ascending interior cut points; a value `v`
    /// falls in bin `#{c in cuts : v > c}`.
    Quantile { cuts: Vec<f64> },
    /// Categorical attribute passed through with its original cardinality.
    Passthrough { card: u32 },
}

/// Fitted discretiser (see module docs).
#[derive(Debug, Clone)]
pub struct Discretizer {
    attrs: Vec<AttrBins>,
}

/// A discretised dataset: per-attribute code columns plus `S` and `Y`.
#[derive(Debug, Clone)]
pub struct DiscreteView {
    /// `columns[a][r]` is the bin code of attribute `a` at row `r`.
    pub columns: Vec<Vec<u32>>,
    /// Cardinality (number of bins / levels) of each attribute.
    pub cards: Vec<u32>,
    /// Attribute names, mirroring the source dataset.
    pub names: Vec<String>,
    /// Sensitive attribute values.
    pub sensitive: Vec<u8>,
    /// Ground-truth labels.
    pub labels: Vec<u8>,
}

impl Discretizer {
    /// Fit on `data`, using at most `max_bins` quantile bins per numeric
    /// attribute (categorical attributes keep their natural levels).
    ///
    /// # Panics
    /// Panics if `max_bins < 2`.
    pub fn fit(data: &Dataset, max_bins: usize) -> Discretizer {
        assert!(max_bins >= 2, "discretizer needs at least 2 bins");
        let attrs = data
            .columns()
            .iter()
            .map(|col| match col {
                Column::Numeric(v) => AttrBins::Quantile { cuts: quantile_cuts(v, max_bins) },
                Column::Categorical { levels, .. } => {
                    AttrBins::Passthrough { card: levels.len() as u32 }
                }
            })
            .collect();
        Discretizer { attrs }
    }

    /// Discretise a dataset with the fitted cut points.
    pub fn transform(&self, data: &Dataset) -> DiscreteView {
        assert_eq!(data.n_attrs(), self.attrs.len(), "discretizer arity mismatch");
        let mut columns = Vec::with_capacity(data.n_attrs());
        let mut cards = Vec::with_capacity(data.n_attrs());
        for (col, bins) in data.columns().iter().zip(self.attrs.iter()) {
            match (col, bins) {
                (Column::Numeric(v), AttrBins::Quantile { cuts }) => {
                    columns.push(v.iter().map(|&x| bin_of(x, cuts)).collect());
                    cards.push(cuts.len() as u32 + 1);
                }
                (Column::Categorical { codes, .. }, AttrBins::Passthrough { card }) => {
                    columns.push(codes.clone());
                    cards.push(*card);
                }
                _ => panic!("discretizer/dataset column kind mismatch"),
            }
        }
        DiscreteView {
            columns,
            cards,
            names: data.attr_names().to_vec(),
            sensitive: data.sensitive().to_vec(),
            labels: data.labels().to_vec(),
        }
    }
}

impl DiscreteView {
    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.labels.len()
    }

    /// Number of attributes.
    pub fn n_attrs(&self) -> usize {
        self.columns.len()
    }

    /// Encode the values of the attribute subset `attrs` at `row` into a
    /// single stratum key (mixed-radix over the attribute cardinalities).
    /// Used to group rows by admissible-attribute context.
    pub fn stratum_key(&self, row: usize, attrs: &[usize]) -> u64 {
        let mut key = 0u64;
        for &a in attrs {
            key = key * self.cards[a] as u64 + self.columns[a][row] as u64;
        }
        key
    }

    /// Total number of joint cells over an attribute subset (product of
    /// cardinalities, saturating).
    pub fn domain_size(&self, attrs: &[usize]) -> u64 {
        attrs
            .iter()
            .fold(1u64, |acc, &a| acc.saturating_mul(self.cards[a] as u64))
    }
}

/// Interior quantile cut points for up to `bins` bins.
///
/// Duplicate cut points (heavy-tailed or low-cardinality data) are collapsed,
/// so the effective number of bins may be smaller.
fn quantile_cuts(values: &[f64], bins: usize) -> Vec<f64> {
    if values.is_empty() {
        return Vec::new();
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len();
    let mut cuts = Vec::with_capacity(bins - 1);
    for q in 1..bins {
        let pos = (q * n) / bins;
        if pos == 0 {
            continue;
        }
        // Cut at the *last element of the bin*, so that `value <= cut` lands
        // in the lower bin and quantile bins come out balanced.
        let c = sorted[(pos - 1).min(n - 1)];
        if cuts.last().is_none_or(|&last| c > last) {
            cuts.push(c);
        }
    }
    // Drop a trailing cut equal to the maximum: it would create an empty bin.
    while cuts.last().is_some_and(|&c| c >= sorted[n - 1]) {
        cuts.pop();
    }
    cuts
}

/// Bin index of `x` for ascending `cuts`: number of cuts strictly below `x`.
#[inline]
fn bin_of(x: f64, cuts: &[f64]) -> u32 {
    cuts.partition_point(|&c| c < x) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::builder("toy")
            .numeric("v", vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0])
            .categorical(
                "c",
                vec![0, 1, 2, 0, 1, 2, 0, 1],
                vec!["x".into(), "y".into(), "z".into()],
            )
            .sensitive("s", vec![0, 1, 0, 1, 0, 1, 0, 1])
            .labels("y", vec![1, 1, 0, 0, 1, 1, 0, 0])
            .build()
            .unwrap()
    }

    #[test]
    fn quantile_bins_are_balanced() {
        let d = toy();
        let view = Discretizer::fit(&d, 4).transform(&d);
        assert_eq!(view.cards[0], 4);
        // 8 values into 4 quantile bins → 2 each
        let mut counts = [0usize; 4];
        for &b in &view.columns[0] {
            counts[b as usize] += 1;
        }
        assert_eq!(counts, [2, 2, 2, 2]);
    }

    #[test]
    fn categorical_passthrough() {
        let d = toy();
        let view = Discretizer::fit(&d, 4).transform(&d);
        assert_eq!(view.cards[1], 3);
        assert_eq!(view.columns[1], vec![0, 1, 2, 0, 1, 2, 0, 1]);
    }

    #[test]
    fn constant_column_yields_one_bin() {
        let d = Dataset::builder("k")
            .numeric("v", vec![3.0; 5])
            .sensitive("s", vec![0, 1, 0, 1, 0])
            .labels("y", vec![1, 0, 1, 0, 1])
            .build()
            .unwrap();
        let view = Discretizer::fit(&d, 4).transform(&d);
        assert_eq!(view.cards[0], 1);
        assert!(view.columns[0].iter().all(|&b| b == 0));
    }

    #[test]
    fn stratum_keys_are_mixed_radix() {
        let d = toy();
        let view = Discretizer::fit(&d, 2).transform(&d);
        // attrs [0, 1]: key = bin_v * 3 + code_c
        let k = view.stratum_key(0, &[0, 1]);
        assert_eq!(k, (view.columns[0][0] as u64) * 3 + view.columns[1][0] as u64);
        assert_eq!(view.domain_size(&[0, 1]), view.cards[0] as u64 * 3);
    }

    #[test]
    fn transform_applies_train_cuts_to_new_data() {
        let d = toy();
        let disc = Discretizer::fit(&d, 2);
        let test = d.select_rows(&[0, 7]);
        let view = disc.transform(&test);
        assert_eq!(view.n_rows(), 2);
        assert_eq!(view.columns[0][0], 0); // 1.0 below median cut
        assert_eq!(view.columns[0][1], 1); // 8.0 above median cut
    }

    #[test]
    fn max_value_lands_in_last_bin() {
        let vals: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let cuts = quantile_cuts(&vals, 5);
        assert!(bin_of(10.0, &cuts) as usize <= cuts.len());
        assert_eq!(bin_of(0.0, &cuts), 0);
    }
}
