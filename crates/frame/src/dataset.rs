//! The annotated dataset `(X, S; Y)` and its builder.

use rand::Rng;

use crate::column::Column;
use crate::error::FrameError;

/// An annotated dataset with the paper's schema `(X, S; Y)`.
///
/// * `X` — predictive attribute columns (mixed numeric/categorical),
/// * `S` — binary sensitive attribute (`1` = privileged group, `0` =
///   unprivileged group),
/// * `Y` — binary ground-truth label (`1` = favourable outcome).
///
/// The struct is immutable-by-convention: repairs produce new datasets via
/// the `with_*` constructors, which keeps every pre-processing approach a
/// pure `Dataset -> Dataset` function and makes the pipelines trivially
/// testable.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    name: String,
    attr_names: Vec<String>,
    columns: Vec<Column>,
    sensitive_name: String,
    sensitive: Vec<u8>,
    label_name: String,
    labels: Vec<u8>,
}

impl Dataset {
    /// Start building a dataset with the given display name.
    pub fn builder(name: impl Into<String>) -> DatasetBuilder {
        DatasetBuilder {
            name: name.into(),
            attr_names: Vec::new(),
            columns: Vec::new(),
            sensitive_name: "S".into(),
            sensitive: Vec::new(),
            label_name: "Y".into(),
            labels: Vec::new(),
        }
    }

    /// Dataset display name (e.g. `"adult"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows (tuples) `|D|`.
    pub fn n_rows(&self) -> usize {
        self.labels.len()
    }

    /// Number of predictive attributes `|X|`.
    pub fn n_attrs(&self) -> usize {
        self.columns.len()
    }

    /// Names of the predictive attributes.
    pub fn attr_names(&self) -> &[String] {
        &self.attr_names
    }

    /// The predictive attribute columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column by positional index.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Column index by name.
    pub fn column_index(&self, name: &str) -> Result<usize, FrameError> {
        self.attr_names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| FrameError::UnknownColumn { name: name.to_string() })
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column, FrameError> {
        Ok(&self.columns[self.column_index(name)?])
    }

    /// Name of the sensitive attribute `S`.
    pub fn sensitive_name(&self) -> &str {
        &self.sensitive_name
    }

    /// The sensitive attribute values (`1` privileged / `0` unprivileged).
    pub fn sensitive(&self) -> &[u8] {
        &self.sensitive
    }

    /// Name of the label attribute `Y`.
    pub fn label_name(&self) -> &str {
        &self.label_name
    }

    /// The ground-truth labels.
    pub fn labels(&self) -> &[u8] {
        &self.labels
    }

    /// Overall positive rate `Pr(Y = 1)`.
    pub fn pos_rate(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.labels.iter().map(|&y| y as usize).sum::<usize>() as f64 / self.labels.len() as f64
    }

    /// Group-conditional positive rate `Pr(Y = 1 | S = s)`.
    pub fn group_pos_rate(&self, s: u8) -> f64 {
        let mut pos = 0usize;
        let mut tot = 0usize;
        for (&si, &yi) in self.sensitive.iter().zip(self.labels.iter()) {
            if si == s {
                tot += 1;
                pos += yi as usize;
            }
        }
        if tot == 0 {
            0.0
        } else {
            pos as f64 / tot as f64
        }
    }

    /// Number of rows in group `S = s`.
    pub fn group_size(&self, s: u8) -> usize {
        self.sensitive.iter().filter(|&&si| si == s).count()
    }

    /// Number of rows in the joint cell `(S = s, Y = y)`.
    pub fn cell_count(&self, s: u8, y: u8) -> usize {
        self.sensitive
            .iter()
            .zip(self.labels.iter())
            .filter(|&(&si, &yi)| si == s && yi == y)
            .count()
    }

    /// Select rows by index (repetition allowed), producing a new dataset.
    pub fn select_rows(&self, idx: &[usize]) -> Dataset {
        Dataset {
            name: self.name.clone(),
            attr_names: self.attr_names.clone(),
            columns: self.columns.iter().map(|c| c.select(idx)).collect(),
            sensitive_name: self.sensitive_name.clone(),
            sensitive: idx.iter().map(|&i| self.sensitive[i]).collect(),
            label_name: self.label_name.clone(),
            labels: idx.iter().map(|&i| self.labels[i]).collect(),
        }
    }

    /// Keep only the given attribute columns (by index, in order). `S` and
    /// `Y` are always retained — used by the dimensionality sweep (Fig. 11d–f).
    pub fn select_attrs(&self, idx: &[usize]) -> Dataset {
        Dataset {
            name: self.name.clone(),
            attr_names: idx.iter().map(|&i| self.attr_names[i].clone()).collect(),
            columns: idx.iter().map(|&i| self.columns[i].clone()).collect(),
            sensitive_name: self.sensitive_name.clone(),
            sensitive: self.sensitive.clone(),
            label_name: self.label_name.clone(),
            labels: self.labels.clone(),
        }
    }

    /// Draw `n` rows with replacement, with probability proportional to
    /// `weights` — the kernel of Kam-Cal's reweighting repair.
    ///
    /// Uses inverse-CDF sampling over the cumulative weights; `O(n log |D|)`.
    pub fn sample_weighted<R: Rng + ?Sized>(
        &self,
        n: usize,
        weights: &[f64],
        rng: &mut R,
    ) -> Dataset {
        assert_eq!(weights.len(), self.n_rows(), "sample_weighted: weight length");
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            acc += w.max(0.0);
            cdf.push(acc);
        }
        let total = acc;
        let mut idx = Vec::with_capacity(n);
        for _ in 0..n {
            let u: f64 = rng.gen::<f64>() * total;
            // first index with cdf[i] >= u
            let i = cdf.partition_point(|&c| c < u).min(cdf.len() - 1);
            idx.push(i);
        }
        self.select_rows(&idx)
    }

    /// Same dataset with a replaced label vector (Zha-Wu label repair).
    ///
    /// # Panics
    /// Panics if the length differs.
    pub fn with_labels(&self, labels: Vec<u8>) -> Dataset {
        assert_eq!(labels.len(), self.n_rows(), "with_labels: length mismatch");
        Dataset { labels, ..self.clone() }
    }

    /// Same dataset with a replaced sensitive vector — used to build the
    /// interventional twin for the causal-discrimination metric.
    ///
    /// # Panics
    /// Panics if the length differs or values are not binary.
    pub fn with_sensitive(&self, sensitive: Vec<u8>) -> Dataset {
        assert_eq!(sensitive.len(), self.n_rows(), "with_sensitive: length mismatch");
        assert!(sensitive.iter().all(|&s| s <= 1), "with_sensitive: non-binary");
        Dataset { sensitive, ..self.clone() }
    }

    /// The interventional twin: every tuple's sensitive attribute flipped.
    pub fn flip_sensitive(&self) -> Dataset {
        self.with_sensitive(self.sensitive.iter().map(|&s| 1 - s).collect())
    }

    /// Same dataset with one attribute column replaced (Feld's per-attribute
    /// repair).
    ///
    /// # Panics
    /// Panics if the index is out of range or the length differs.
    pub fn with_column(&self, i: usize, column: Column) -> Dataset {
        assert_eq!(column.len(), self.n_rows(), "with_column: length mismatch");
        let mut columns = self.columns.clone();
        columns[i] = column;
        Dataset { columns, ..self.clone() }
    }

    /// Same dataset with every attribute column replaced at once (Calmon's
    /// joint transform). Names are retained.
    pub fn with_all_columns(&self, columns: Vec<Column>) -> Dataset {
        assert_eq!(columns.len(), self.n_attrs(), "with_all_columns: arity mismatch");
        for c in &columns {
            assert_eq!(c.len(), self.n_rows(), "with_all_columns: length mismatch");
        }
        Dataset { columns, ..self.clone() }
    }

    /// Append a copy of row `row` from `src` (which must share this schema).
    /// Used by Salimi's insertion repairs.
    pub fn push_row_from(&mut self, src: &Dataset, row: usize) {
        debug_assert_eq!(self.n_attrs(), src.n_attrs(), "push_row_from: schema mismatch");
        for (c, sc) in self.columns.iter_mut().zip(src.columns.iter()) {
            c.push_from(sc, row);
        }
        self.sensitive.push(src.sensitive[row]);
        self.labels.push(src.labels[row]);
    }

    /// A compact one-line summary used by the experiment harness logs.
    pub fn summary(&self) -> String {
        format!(
            "{}: |D|={}, |X|={}, S={} (unpriv {:.0}%), Pr(Y=1)={:.2} [S=0: {:.2}, S=1: {:.2}]",
            self.name,
            self.n_rows(),
            self.n_attrs(),
            self.sensitive_name,
            100.0 * self.group_size(0) as f64 / self.n_rows().max(1) as f64,
            self.pos_rate(),
            self.group_pos_rate(0),
            self.group_pos_rate(1),
        )
    }
}

/// Builder for [`Dataset`] with validation on `build`.
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    name: String,
    attr_names: Vec<String>,
    columns: Vec<Column>,
    sensitive_name: String,
    sensitive: Vec<u8>,
    label_name: String,
    labels: Vec<u8>,
}

impl DatasetBuilder {
    /// Add a numeric predictive attribute.
    pub fn numeric(mut self, name: impl Into<String>, values: Vec<f64>) -> Self {
        self.attr_names.push(name.into());
        self.columns.push(Column::Numeric(values));
        self
    }

    /// Add a categorical predictive attribute with level names.
    pub fn categorical(
        mut self,
        name: impl Into<String>,
        codes: Vec<u32>,
        levels: Vec<String>,
    ) -> Self {
        self.attr_names.push(name.into());
        self.columns.push(Column::Categorical { codes, levels });
        self
    }

    /// Set the sensitive attribute (`1` privileged / `0` unprivileged).
    pub fn sensitive(mut self, name: impl Into<String>, values: Vec<u8>) -> Self {
        self.sensitive_name = name.into();
        self.sensitive = values;
        self
    }

    /// Set the ground-truth labels.
    pub fn labels(mut self, name: impl Into<String>, values: Vec<u8>) -> Self {
        self.label_name = name.into();
        self.labels = values;
        self
    }

    /// Validate and build the dataset.
    pub fn build(self) -> Result<Dataset, FrameError> {
        let n = self.labels.len();
        if n == 0 {
            return Err(FrameError::Empty);
        }
        if self.sensitive.len() != n {
            return Err(FrameError::LengthMismatch {
                column: self.sensitive_name.clone(),
                expected: n,
                actual: self.sensitive.len(),
            });
        }
        for (name, col) in self.attr_names.iter().zip(self.columns.iter()) {
            if col.len() != n {
                return Err(FrameError::LengthMismatch {
                    column: name.clone(),
                    expected: n,
                    actual: col.len(),
                });
            }
            if let Column::Categorical { codes, levels } = col {
                if let Some(&bad) = codes.iter().find(|&&c| c as usize >= levels.len()) {
                    return Err(FrameError::CodeOutOfRange {
                        column: name.clone(),
                        code: bad,
                        levels: levels.len(),
                    });
                }
            }
        }
        if self.sensitive.iter().any(|&s| s > 1) {
            return Err(FrameError::NonBinary { attribute: self.sensitive_name });
        }
        if self.labels.iter().any(|&y| y > 1) {
            return Err(FrameError::NonBinary { attribute: self.label_name });
        }
        Ok(Dataset {
            name: self.name,
            attr_names: self.attr_names,
            columns: self.columns,
            sensitive_name: self.sensitive_name,
            sensitive: self.sensitive,
            label_name: self.label_name,
            labels: self.labels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    pub(crate) fn toy() -> Dataset {
        Dataset::builder("toy")
            .numeric("age", vec![20.0, 30.0, 40.0, 50.0, 60.0, 25.0])
            .categorical(
                "job",
                vec![0, 1, 1, 0, 2, 2],
                vec!["blue".into(), "white".into(), "none".into()],
            )
            .sensitive("sex", vec![1, 1, 0, 0, 1, 0])
            .labels("hired", vec![1, 0, 1, 0, 1, 1])
            .build()
            .unwrap()
    }

    #[test]
    fn builder_roundtrip() {
        let d = toy();
        assert_eq!(d.n_rows(), 6);
        assert_eq!(d.n_attrs(), 2);
        assert_eq!(d.attr_names(), &["age".to_string(), "job".to_string()]);
        assert_eq!(d.sensitive_name(), "sex");
        assert_eq!(d.label_name(), "hired");
    }

    #[test]
    fn builder_validates_lengths() {
        let err = Dataset::builder("bad")
            .numeric("x", vec![1.0])
            .sensitive("s", vec![0, 1])
            .labels("y", vec![1, 0])
            .build()
            .unwrap_err();
        assert!(matches!(err, FrameError::LengthMismatch { .. }));
    }

    #[test]
    fn builder_validates_binary() {
        let err = Dataset::builder("bad")
            .sensitive("s", vec![0, 2])
            .labels("y", vec![1, 0])
            .build()
            .unwrap_err();
        assert!(matches!(err, FrameError::NonBinary { .. }));
    }

    #[test]
    fn builder_validates_codes() {
        let err = Dataset::builder("bad")
            .categorical("c", vec![0, 5], vec!["a".into()])
            .sensitive("s", vec![0, 1])
            .labels("y", vec![1, 0])
            .build()
            .unwrap_err();
        assert!(matches!(err, FrameError::CodeOutOfRange { .. }));
    }

    #[test]
    fn builder_rejects_empty() {
        assert_eq!(Dataset::builder("e").build().unwrap_err(), FrameError::Empty);
    }

    #[test]
    fn rates_and_counts() {
        let d = toy();
        assert!((d.pos_rate() - 4.0 / 6.0).abs() < 1e-12);
        assert!((d.group_pos_rate(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((d.group_pos_rate(0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(d.group_size(0), 3);
        assert_eq!(d.cell_count(1, 1), 2);
        assert_eq!(d.cell_count(0, 0), 1);
    }

    #[test]
    fn select_rows_reorders() {
        let d = toy().select_rows(&[5, 0]);
        assert_eq!(d.n_rows(), 2);
        assert_eq!(d.labels(), &[1, 1]);
        assert_eq!(d.sensitive(), &[0, 1]);
        assert_eq!(d.column(0).as_numeric().unwrap(), &[25.0, 20.0]);
    }

    #[test]
    fn select_attrs_projects() {
        let d = toy().select_attrs(&[1]);
        assert_eq!(d.n_attrs(), 1);
        assert_eq!(d.attr_names(), &["job".to_string()]);
        assert_eq!(d.n_rows(), 6);
    }

    #[test]
    fn weighted_sampling_respects_weights() {
        let d = toy();
        let mut rng = StdRng::seed_from_u64(7);
        // All mass on row 2
        let mut w = vec![0.0; 6];
        w[2] = 1.0;
        let s = d.sample_weighted(10, &w, &mut rng);
        assert_eq!(s.n_rows(), 10);
        assert!(s.sensitive().iter().all(|&v| v == 0));
        assert!(s.labels().iter().all(|&v| v == 1));
    }

    #[test]
    fn with_labels_replaces() {
        let d = toy().with_labels(vec![0; 6]);
        assert_eq!(d.pos_rate(), 0.0);
    }

    #[test]
    fn push_row_from_appends() {
        let src = toy();
        let mut d = toy();
        d.push_row_from(&src, 0);
        assert_eq!(d.n_rows(), 7);
        assert_eq!(d.labels()[6], 1);
        assert_eq!(d.column(0).as_numeric().unwrap()[6], 20.0);
    }

    #[test]
    fn unknown_column_errors() {
        let d = toy();
        assert!(d.column_by_name("nope").is_err());
        assert_eq!(d.column_index("job").unwrap(), 1);
    }

    #[test]
    fn summary_mentions_name() {
        assert!(toy().summary().contains("toy"));
    }
}
