//! End-to-end tests: a real server on an ephemeral port, a real client
//! over TCP, and byte-identical agreement with offline prediction.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

use std::sync::Arc;

use fairlens_core::{
    all_approaches, baseline_approach, DataSchema, FittedPipeline, ModelArtifact,
};
use fairlens_json::{object, parse, Value};
use fairlens_serve::{ServeConfig, ServeFaults, Server};
use fairlens_synth::DatasetKind;

// ---------------------------------------------------------------------------
// Harness

fn temp_models_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flm-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Fit `approach_name` on German(300) and save it as `{id}.flm`,
/// returning the fitted pipeline for offline comparison.
fn export(dir: &Path, id: &str, approach_name: &str, seed: u64) -> (FittedPipeline, DataSchema) {
    let data = DatasetKind::German.generate(300, seed);
    let approach = std::iter::once(baseline_approach())
        .chain(all_approaches(DatasetKind::German.salimi_inadmissible()))
        .find(|a| a.name == approach_name)
        .unwrap_or_else(|| panic!("no approach {approach_name:?}"));
    let fitted = approach.fit(&data, seed).unwrap();
    let schema = DataSchema::of(&data);
    let artifact = ModelArtifact {
        approach: approach.name.to_string(),
        stage: approach.stage.label().to_string(),
        dataset: "German".into(),
        seed,
        train_rows: data.n_rows() as u64,
        train_metrics: vec![("accuracy".into(), 0.75)],
        schema: schema.clone(),
        pipeline: fitted.snapshot().unwrap(),
    };
    artifact.save(&dir.join(format!("{id}.flm"))).unwrap();
    (fitted, schema)
}

/// Launch a server on an ephemeral port; returns its address and the
/// thread running `Server::run`.
fn launch(dir: &Path, tweak: impl FnOnce(&mut ServeConfig)) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        models_dir: dir.to_path_buf(),
        ..ServeConfig::default()
    };
    tweak(&mut cfg);
    let server = Server::bind(cfg).unwrap();
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

/// Minimal keep-alive client.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn open(addr: &str) -> Self {
        let stream = TcpStream::connect(addr).unwrap();
        Self { reader: BufReader::new(stream.try_clone().unwrap()), writer: stream }
    }

    fn send_raw(&mut self, raw: &str) {
        self.writer.write_all(raw.as_bytes()).unwrap();
        self.writer.flush().unwrap();
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, Value) {
        self.send_raw(&format!(
            "{method} {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        ));
        self.read_response()
    }

    fn request_meta(&mut self, method: &str, path: &str, body: &str) -> (u16, Value, RespMeta) {
        self.send_raw(&format!(
            "{method} {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        ));
        let (status, body, meta) = self.read_response_full();
        (status, parse_body(body), meta)
    }

    fn read_response(&mut self) -> (u16, Value) {
        let (status, body, _) = self.read_response_full();
        (status, parse_body(body))
    }

    fn read_response_text(&mut self) -> (u16, String) {
        let (status, body, _) = self.read_response_full();
        (status, body)
    }

    fn read_response_full(&mut self) -> (u16, String, RespMeta) {
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        let status: u16 = line.split_whitespace().nth(1).unwrap().parse().unwrap();
        let mut content_length = 0usize;
        let mut meta = RespMeta { retry_after: None, close: false };
        loop {
            let mut header = String::new();
            self.reader.read_line(&mut header).unwrap();
            let header = header.trim_end().to_ascii_lowercase();
            if header.is_empty() {
                break;
            }
            if let Some(v) = header.strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap();
            } else if let Some(v) = header.strip_prefix("retry-after:") {
                meta.retry_after = v.trim().parse().ok();
            } else if header == "connection: close" {
                meta.close = true;
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).unwrap();
        (status, String::from_utf8(body).unwrap(), meta)
    }
}

/// Response headers the overload tests assert on.
struct RespMeta {
    retry_after: Option<u64>,
    close: bool,
}

fn parse_body(body: String) -> Value {
    if body.trim_start().starts_with('{') {
        parse(&body).unwrap_or(Value::Null)
    } else {
        Value::String(body)
    }
}

fn error_kind(v: &Value) -> Option<String> {
    v.get("error").and_then(|e| e.get("kind")).and_then(Value::as_str).map(str::to_string)
}

fn one_shot(addr: &str, method: &str, path: &str, body: &str) -> (u16, Value) {
    Client::open(addr).request(method, path, body)
}

/// Schema-shaped JSON rows from the first `n` rows of a German sample.
fn sample_rows(n: usize, seed: u64) -> Vec<Value> {
    use fairlens_frame::Column;
    let pool = DatasetKind::German.generate(64.max(n), seed);
    (0..n)
        .map(|r| {
            let mut fields: Vec<(String, Value)> = pool
                .columns()
                .iter()
                .zip(pool.attr_names())
                .map(|(col, name)| {
                    let v = match col {
                        Column::Numeric(xs) => Value::Number(xs[r]),
                        Column::Categorical { codes, levels } => {
                            Value::String(levels[codes[r] as usize].clone())
                        }
                    };
                    (name.clone(), v)
                })
                .collect();
            fields.push((
                pool.sensitive_name().to_string(),
                Value::Integer(u64::from(pool.sensitive()[r])),
            ));
            Value::Object(fields)
        })
        .collect()
}

fn predict_body(model: &str, rows: &[Value]) -> String {
    object([
        ("model", Value::String(model.into())),
        ("rows", Value::Array(rows.to_vec())),
    ])
    .to_json()
}

fn shutdown_and_join(
    addr: &str,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
) {
    let (status, _) = one_shot(addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    handle.join().unwrap().unwrap();
}

// ---------------------------------------------------------------------------
// Tests

#[test]
fn health_models_and_metrics_respond() {
    let dir = temp_models_dir("basic");
    export(&dir, "german-lr", "LR", 11);
    let (addr, handle) = launch(&dir, |_| {});

    let (status, v) = one_shot(&addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));

    let (status, v) = one_shot(&addr, "GET", "/v1/models", "");
    assert_eq!(status, 200);
    let models = v.get("models").cloned().unwrap().into_array().unwrap();
    assert_eq!(models.len(), 1);
    let m = &models[0];
    assert_eq!(m.get("id").and_then(Value::as_str), Some("german-lr"));
    assert_eq!(m.get("dataset").and_then(Value::as_str), Some("German"));
    assert!(m.get("train_metrics").unwrap().get("accuracy").is_some());

    let (status, text) = Client::open(&addr).request("GET", "/metrics", "");
    assert_eq!(status, 200);
    let Value::String(text) = text else { panic!("metrics is not JSON") };
    assert!(text.contains("fairlens_requests_total"), "{text}");

    shutdown_and_join(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn served_predictions_match_offline_predict_bit_exactly() {
    let dir = temp_models_dir("exact");
    let (fitted, schema) = export(&dir, "german-lr", "LR", 13);
    let (addr, handle) = launch(&dir, |_| {});

    let rows = sample_rows(24, 99);
    let offline = schema.dataset_from_rows(&rows).unwrap();
    let want_labels = fitted.predict(&offline);
    let want_scores = fitted.predict_proba(&offline);

    // Batch request.
    let (status, v) = one_shot(&addr, "POST", "/v1/predict", &predict_body("german-lr", &rows));
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(v.get("count").cloned().unwrap().into_u64().unwrap(), 24);
    let labels: Vec<u8> = v
        .get("predictions")
        .cloned()
        .unwrap()
        .into_array()
        .unwrap()
        .into_iter()
        .map(|x| x.into_u64().unwrap() as u8)
        .collect();
    let scores = v.get("scores").cloned().unwrap().into_f64s().unwrap();
    assert_eq!(labels, want_labels);
    assert_eq!(
        scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
        want_scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
        "served scores must round-trip bit-exactly"
    );

    // Single-row request.
    let body = object([
        ("model", Value::String("german-lr".into())),
        ("row", rows[0].clone()),
    ])
    .to_json();
    let (status, v) = one_shot(&addr, "POST", "/v1/predict", &body);
    assert_eq!(status, 200);
    assert_eq!(v.get("prediction").cloned().unwrap().into_u64().unwrap() as u8, want_labels[0]);
    assert_eq!(
        v.get("score").cloned().unwrap().into_f64().unwrap().to_bits(),
        want_scores[0].to_bits()
    );

    shutdown_and_join(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stochastic_postprocessors_match_offline_per_request() {
    let dir = temp_models_dir("hardt");
    let (fitted, schema) = export(&dir, "german-hardt", "Hardt^EO", 17);
    let (addr, handle) = launch(&dir, |_| {});

    // Hardt's rule draws from an RNG keyed on (seed, batch rows): served
    // predictions must match an offline call on exactly this row set,
    // which also proves the batcher did not merge it with anything else.
    for n in [1usize, 7] {
        let rows = sample_rows(n, 3 + n as u64);
        let offline = schema.dataset_from_rows(&rows).unwrap();
        let want = fitted.predict(&offline);
        let (status, v) =
            one_shot(&addr, "POST", "/v1/predict", &predict_body("german-hardt", &rows));
        assert_eq!(status, 200, "{v:?}");
        let labels: Vec<u8> = v
            .get("predictions")
            .cloned()
            .unwrap()
            .into_array()
            .unwrap()
            .into_iter()
            .map(|x| x.into_u64().unwrap() as u8)
            .collect();
        assert_eq!(labels, want, "n={n}");
    }

    shutdown_and_join(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn errors_are_structured_and_never_close_the_connection() {
    let dir = temp_models_dir("errors");
    export(&dir, "german-lr", "LR", 19);
    let (addr, handle) = launch(&dir, |_| {});
    let mut client = Client::open(&addr);

    let kind_of = |v: &Value| {
        v.get("error").and_then(|e| e.get("kind")).and_then(Value::as_str).map(str::to_string)
    };

    // Malformed JSON → 400, connection stays usable.
    let (status, v) = client.request("POST", "/v1/predict", "{not json");
    assert_eq!(status, 400);
    assert_eq!(kind_of(&v).as_deref(), Some("bad_request"));

    // Unknown model → 404 on the same connection.
    let rows = sample_rows(2, 5);
    let (status, v) = client.request("POST", "/v1/predict", &predict_body("nope", &rows));
    assert_eq!(status, 404);
    assert_eq!(kind_of(&v).as_deref(), Some("unknown_model"));

    // Bad row (unknown attribute) → row-addressed 400.
    let bad = object([("model", Value::String("german-lr".into())), (
        "rows",
        Value::Array(vec![object([("bogus_attr", Value::Number(1.0))])]),
    )]);
    let (status, v) = client.request("POST", "/v1/predict", &bad.to_json());
    assert_eq!(status, 400);
    let msg = v.get("error").unwrap().get("message").unwrap().as_str().unwrap().to_string();
    assert!(msg.contains("row 0"), "{msg}");

    // Missing rows → 400; wrong method → 405; unknown route → 404.
    let (status, v) =
        client.request("POST", "/v1/predict", "{\"model\": \"german-lr\"}");
    assert_eq!(status, 400);
    assert_eq!(kind_of(&v).as_deref(), Some("bad_request"));
    let (status, v) = client.request("GET", "/v1/predict", "");
    assert_eq!(status, 405);
    assert_eq!(kind_of(&v).as_deref(), Some("method_not_allowed"));
    let (status, v) = client.request("GET", "/v1/nothing", "");
    assert_eq!(status, 404);
    assert_eq!(kind_of(&v).as_deref(), Some("not_found"));

    // After all that, the same connection still serves a good request.
    let (status, _) =
        client.request("POST", "/v1/predict", &predict_body("german-lr", &rows));
    assert_eq!(status, 200);

    // Oversized declared body → 413 before any body byte is read (fresh
    // connection: framing errors do close).
    let mut big = Client::open(&addr);
    big.send_raw("POST /v1/predict HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n");
    let (status, v) = big.read_response();
    assert_eq!(status, 413);
    assert_eq!(kind_of(&v).as_deref(), Some("payload_too_large"));

    shutdown_and_join(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_deadline_times_out_with_504() {
    let dir = temp_models_dir("deadline");
    export(&dir, "german-lr", "LR", 23);
    let (addr, handle) = launch(&dir, |cfg| cfg.deadline = Duration::ZERO);

    let rows = sample_rows(4, 7);
    let (status, v) = one_shot(&addr, "POST", "/v1/predict", &predict_body("german-lr", &rows));
    assert_eq!(status, 504, "{v:?}");
    assert_eq!(
        v.get("error").and_then(|e| e.get("kind")).and_then(Value::as_str),
        Some("timed_out")
    );

    shutdown_and_join(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_drains_and_refuses_new_work() {
    let dir = temp_models_dir("drain");
    export(&dir, "german-lr", "LR", 29);
    let (addr, handle) = launch(&dir, |_| {});

    // A keep-alive connection opened before the drain trigger: its
    // in-flight request after shutdown gets a structured 503, not a reset.
    let mut survivor = Client::open(&addr);
    let (status, _) = survivor.request("GET", "/healthz", "");
    assert_eq!(status, 200);

    let (status, _) = one_shot(&addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);

    let rows = sample_rows(2, 31);
    let (status, v) =
        survivor.request("POST", "/v1/predict", &predict_body("german-lr", &rows));
    assert_eq!(status, 503, "{v:?}");
    assert_eq!(
        v.get("error").and_then(|e| e.get("kind")).and_then(Value::as_str),
        Some("shutting_down")
    );

    // run() returns Ok once drained; afterwards the port is closed.
    handle.join().unwrap().unwrap();
    assert!(TcpStream::connect(&addr).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flood_past_the_queue_bound_sheds_429_and_serves_the_queued_request() {
    let dir = temp_models_dir("flood");
    let (fitted, schema) = export(&dir, "german-lr", "LR", 37);
    // An injected hang parks the executor on the first request, so the
    // queue (bounded at 1) genuinely fills; the deadline bounds how long
    // the parked request stalls.
    let (addr, handle) = launch(&dir, |cfg| {
        cfg.max_queue = 1;
        cfg.max_batch = 1;
        cfg.deadline = Duration::from_millis(1500);
        cfg.faults = Arc::new(ServeFaults::parse("hang:german-lr:1").unwrap());
    });

    // A: parked inside the injected hang until its deadline.
    let rows_a = sample_rows(2, 41);
    let (addr_a, body_a) = (addr.clone(), predict_body("german-lr", &rows_a));
    let parked =
        std::thread::spawn(move || Client::open(&addr_a).request("POST", "/v1/predict", &body_a));
    std::thread::sleep(Duration::from_millis(300));

    // B: sits in the (capacity-1) queue behind the parked flush.
    let rows_b = sample_rows(3, 43);
    let offline_b = schema.dataset_from_rows(&rows_b).unwrap();
    let want_labels = fitted.predict(&offline_b);
    let want_scores = fitted.predict_proba(&offline_b);
    let (addr_b, body_b) = (addr.clone(), predict_body("german-lr", &rows_b));
    let queued =
        std::thread::spawn(move || Client::open(&addr_b).request("POST", "/v1/predict", &body_b));
    std::thread::sleep(Duration::from_millis(300));

    // C: the queue is full — shed with a structured 429 + Retry-After,
    // and the connection survives for the follow-up metrics scrape.
    let rows_c = sample_rows(1, 47);
    let mut c = Client::open(&addr);
    let (status, v, meta) =
        c.request_meta("POST", "/v1/predict", &predict_body("german-lr", &rows_c));
    assert_eq!(status, 429, "{v:?}");
    assert_eq!(error_kind(&v).as_deref(), Some("overloaded"));
    assert!(meta.retry_after.is_some(), "429 must carry Retry-After");
    assert_eq!(
        v.get("error").unwrap().get("retry_after_seconds").cloned().unwrap().into_u64(),
        Ok(meta.retry_after.unwrap()),
        "header and body hints must agree"
    );

    // Mid-overload metrics: the queue gauge is pinned at its bound and
    // the shed is counted.
    let (status, text) = c.request("GET", "/metrics", "");
    assert_eq!(status, 200);
    let Value::String(text) = text else { panic!("metrics is not JSON") };
    assert!(text.contains("fairlens_queue_depth{model=\"german-lr\"} 1"), "{text}");
    assert!(text.contains("fairlens_shed_total{reason=\"queue_full\"} 1"), "{text}");

    // A stalls out with a 504; B is served once the hang resolves, and
    // its answer is bit-exact with the offline pipeline.
    let (status, v) = parked.join().unwrap();
    assert_eq!(status, 504, "{v:?}");
    let (status, v) = queued.join().unwrap();
    assert_eq!(status, 200, "{v:?}");
    let labels: Vec<u8> = v
        .get("predictions")
        .cloned()
        .unwrap()
        .into_array()
        .unwrap()
        .into_iter()
        .map(|x| x.into_u64().unwrap() as u8)
        .collect();
    let scores = v.get("scores").cloned().unwrap().into_f64s().unwrap();
    assert_eq!(labels, want_labels);
    assert_eq!(
        scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
        want_scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
        "a request that survived the overload must still be bit-exact"
    );

    shutdown_and_join(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn breaker_opens_on_executor_death_and_a_probe_re_closes_it() {
    let dir = temp_models_dir("breaker");
    let (fitted, schema) = export(&dir, "german-lr", "LR", 53);
    let (addr, handle) = launch(&dir, |cfg| {
        cfg.breaker_threshold = 1;
        cfg.breaker_cooldown = Duration::from_millis(300);
        cfg.faults = Arc::new(ServeFaults::parse("panic:german-lr:1").unwrap());
    });
    let rows = sample_rows(4, 59);
    let offline = schema.dataset_from_rows(&rows).unwrap();
    let want_labels = fitted.predict(&offline);
    let mut client = Client::open(&addr);

    // 1: the injected panic kills the executor mid-request → structured
    // 503, never a dropped connection; the breaker (threshold 1) opens.
    let (status, v, meta) =
        client.request_meta("POST", "/v1/predict", &predict_body("german-lr", &rows));
    assert_eq!(status, 503, "{v:?}");
    assert_eq!(error_kind(&v).as_deref(), Some("unavailable"));
    assert!(meta.retry_after.is_some());

    // 2: rejected at the door by the open breaker, with Retry-After.
    let (status, v, meta) =
        client.request_meta("POST", "/v1/predict", &predict_body("german-lr", &rows));
    assert_eq!(status, 503, "{v:?}");
    assert!(v.get("error").unwrap().get("message").unwrap().as_str().unwrap().contains("breaker"));
    assert!(meta.retry_after.is_some());

    // The listing and metrics agree: open, tripped once.
    let (_, v) = client.request("GET", "/v1/models", "");
    let m = &v.get("models").cloned().unwrap().into_array().unwrap()[0];
    assert_eq!(m.get("breaker").and_then(Value::as_str), Some("open"));
    let (_, text) = client.request("GET", "/metrics", "");
    let Value::String(text) = text else { panic!("metrics is not JSON") };
    assert!(text.contains("fairlens_breaker_state{model=\"german-lr\"} 2"), "{text}");
    assert!(text.contains("fairlens_breaker_opens_total{model=\"german-lr\"} 1"), "{text}");
    assert!(text.contains("fairlens_shed_total{reason=\"breaker_open\"} 1"), "{text}");

    // 3: after the cooldown the probe is admitted, the registry respawns
    // the executor from the artifact, and the answer is bit-exact.
    std::thread::sleep(Duration::from_millis(400));
    let (status, v) = client.request("POST", "/v1/predict", &predict_body("german-lr", &rows));
    assert_eq!(status, 200, "{v:?}");
    let labels: Vec<u8> = v
        .get("predictions")
        .cloned()
        .unwrap()
        .into_array()
        .unwrap()
        .into_iter()
        .map(|x| x.into_u64().unwrap() as u8)
        .collect();
    assert_eq!(labels, want_labels, "respawned executor must serve bit-exactly");

    // The probe's success re-closed the breaker.
    let (_, v) = client.request("GET", "/v1/models", "");
    let m = &v.get("models").cloned().unwrap().into_array().unwrap()[0];
    assert_eq!(m.get("breaker").and_then(Value::as_str), Some("closed"));
    assert_eq!(m.get("status").and_then(Value::as_str), Some("ready"));
    let (_, text) = client.request("GET", "/metrics", "");
    let Value::String(text) = text else { panic!("metrics is not JSON") };
    assert!(text.contains("fairlens_breaker_state{model=\"german-lr\"} 0"), "{text}");

    shutdown_and_join(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slow_loris_requests_are_cut_off_with_408() {
    let dir = temp_models_dir("loris");
    export(&dir, "german-lr", "LR", 61);
    let (addr, handle) = launch(&dir, |cfg| {
        cfg.limits.read_deadline = Duration::from_millis(600);
    });

    // Drip half a request and go quiet: the read deadline must cut the
    // connection loose with a structured 408 instead of pinning a worker.
    let mut loris = Client::open(&addr);
    loris.send_raw("POST /v1/predict HTTP/1.1\r\ncontent-le");
    let t0 = std::time::Instant::now();
    let (status, v, meta) = {
        let (status, body, meta) = loris.read_response_full();
        (status, parse_body(body), meta)
    };
    assert_eq!(status, 408, "{v:?}");
    assert_eq!(error_kind(&v).as_deref(), Some("request_timeout"));
    assert!(meta.close, "a timed-out read poisons the stream");
    assert!(t0.elapsed() >= Duration::from_millis(300), "must not fire instantly");

    // The server is unharmed: a well-behaved request still round-trips.
    let rows = sample_rows(2, 67);
    let (status, _) = one_shot(&addr, "POST", "/v1/predict", &predict_body("german-lr", &rows));
    assert_eq!(status, 200);

    shutdown_and_join(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn connection_request_cap_closes_after_the_announced_response() {
    let dir = temp_models_dir("conncap");
    export(&dir, "german-lr", "LR", 71);
    let (addr, handle) = launch(&dir, |cfg| cfg.max_conn_requests = 2);

    let mut client = Client::open(&addr);
    let (status, _, meta) = client.request_meta("GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(!meta.close, "below the cap the connection stays open");
    let (status, _, meta) = client.request_meta("GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(meta.close, "the capped response must announce the close");

    // A fresh connection serves again — the cap is per connection.
    let (status, _) = one_shot(&addr, "GET", "/healthz", "");
    assert_eq!(status, 200);

    shutdown_and_join(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shadow_with_identical_candidate_stays_clean_and_promotes() {
    let dir = temp_models_dir("shadow-clean");
    let (fitted, schema) = export(&dir, "german-lr", "LR", 81);
    // The candidate lives outside the scanned models dir (a byte-exact
    // copy of the incumbent), so it is a shadow, not a second model.
    let cand_dir = temp_models_dir("shadow-clean-cand");
    let candidate = cand_dir.join("candidate.flm");
    std::fs::copy(dir.join("german-lr.flm"), &candidate).unwrap();
    let record = cand_dir.join("recorded.jsonl");
    let (addr, handle) = launch(&dir, |cfg| {
        cfg.shadow = vec![("german-lr".into(), candidate.clone())];
        cfg.record = Some(record.clone());
    });

    // Drive a few requests: answers still come from (and bit-match) the
    // incumbent, while the shadow compares in the background.
    let mut client = Client::open(&addr);
    for seed in [91u64, 92, 93] {
        let rows = sample_rows(4, seed);
        let offline = schema.dataset_from_rows(&rows).unwrap();
        let want = fitted.predict_proba(&offline);
        let (status, v) = client.request("POST", "/v1/predict", &predict_body("german-lr", &rows));
        assert_eq!(status, 200, "{v:?}");
        let scores = v.get("scores").cloned().unwrap().into_f64s().unwrap();
        assert_eq!(
            scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
        );
    }

    // The listing surfaces the clean comparison window.
    let (_, v) = client.request("GET", "/v1/models", "");
    let m = &v.get("models").cloned().unwrap().into_array().unwrap()[0];
    let shadow = m.get("shadow").expect("shadow block in /v1/models");
    assert_eq!(shadow.get("compared").cloned().unwrap().into_u64(), Ok(3));
    assert_eq!(shadow.get("divergence").cloned().unwrap().into_u64(), Ok(0));
    assert!(shadow.get("first_divergence").is_none());
    let (_, text) = client.request("GET", "/metrics", "");
    let Value::String(text) = text else { panic!("metrics is not JSON") };
    assert!(text.contains("fairlens_shadow_compared_total{model=\"german-lr\"} 3"), "{text}");
    assert!(text.contains("fairlens_shadow_divergence_total{model=\"german-lr\"} 0"), "{text}");

    // Clean window → promote succeeds and the shadow detaches.
    let (status, v) = client.request("POST", "/v1/promote", "{\"model\": \"german-lr\"}");
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(v.get("status").and_then(Value::as_str), Some("promoted"));
    assert_eq!(v.get("compared").cloned().unwrap().into_u64(), Ok(3));
    let (_, v) = client.request("GET", "/v1/models", "");
    let m = &v.get("models").cloned().unwrap().into_array().unwrap()[0];
    assert!(m.get("shadow").is_none(), "promoted shadow must detach");
    // A second promote has nothing to cut over → 400.
    let (status, v) = client.request("POST", "/v1/promote", "{\"model\": \"german-lr\"}");
    assert_eq!(status, 400, "{v:?}");

    // The promoted artifact still serves bit-exactly.
    let rows = sample_rows(2, 94);
    let offline = schema.dataset_from_rows(&rows).unwrap();
    let want = fitted.predict_proba(&offline);
    let (status, v) = client.request("POST", "/v1/predict", &predict_body("german-lr", &rows));
    assert_eq!(status, 200, "{v:?}");
    let scores = v.get("scores").cloned().unwrap().into_f64s().unwrap();
    assert_eq!(
        scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
        want.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
    );

    shutdown_and_join(&addr, handle);

    // The recorder captured every predict exchange, score bits included.
    let log = std::fs::read_to_string(&record).unwrap();
    let entries: Vec<Value> = log.lines().map(|l| parse(l).unwrap()).collect();
    assert_eq!(entries.len(), 4, "{log}");
    for e in &entries {
        assert_eq!(e.get("status").cloned().unwrap().into_u64(), Ok(200));
        let bits = e.get("score_bits").cloned().unwrap().into_array().unwrap();
        assert!(!bits.is_empty());
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&cand_dir);
}

#[test]
fn shadow_divergence_increments_counters_and_blocks_promote() {
    use fairlens_core::snapshot::{ModelParams, PipelineSnapshot};

    let dir = temp_models_dir("shadow-dirty");
    let (fitted, schema) = export(&dir, "german-lr", "LR", 83);
    // The candidate: the incumbent with one coefficient bit flipped —
    // bit 8 rather than the last place, because a 1-ulp weight change
    // is absorbed by output rounding on most rows (same choice as the
    // flm_flip tool, and still a ~1e-14 relative nudge).
    let cand_dir = temp_models_dir("shadow-dirty-cand");
    let candidate = cand_dir.join("candidate.flm");
    let mut artifact = ModelArtifact::load(&dir.join("german-lr.flm")).unwrap();
    let snapshot = match &mut artifact.pipeline {
        PipelineSnapshot::Model(m) => m,
        PipelineSnapshot::Adjusted { base, .. } => base,
    };
    let w = match &mut snapshot.params {
        ModelParams::Linear(p) => p.weights.first_mut().unwrap(),
        ModelParams::Mixture(ps) => ps.first_mut().unwrap().weights.first_mut().unwrap(),
    };
    *w = f64::from_bits(w.to_bits() ^ (1 << 8));
    artifact.save(&candidate).unwrap();
    let (addr, handle) = launch(&dir, |cfg| {
        cfg.shadow = vec![("german-lr".into(), candidate.clone())];
    });

    // The response still comes from — and bit-matches — the incumbent;
    // the flipped candidate only dirties the comparison window.
    let mut client = Client::open(&addr);
    let rows = sample_rows(8, 97);
    let offline = schema.dataset_from_rows(&rows).unwrap();
    let want = fitted.predict_proba(&offline);
    let (status, v) = client.request("POST", "/v1/predict", &predict_body("german-lr", &rows));
    assert_eq!(status, 200, "{v:?}");
    let scores = v.get("scores").cloned().unwrap().into_f64s().unwrap();
    assert_eq!(
        scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
        want.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
        "a diverging shadow must never shape the response"
    );

    let (_, text) = client.request("GET", "/metrics", "");
    let Value::String(text) = text else { panic!("metrics is not JSON") };
    assert!(text.contains("fairlens_shadow_compared_total{model=\"german-lr\"} 1"), "{text}");
    assert!(text.contains("fairlens_shadow_divergence_total{model=\"german-lr\"} 1"), "{text}");

    // The listing pins the first divergence with both bit patterns.
    let (_, v) = client.request("GET", "/v1/models", "");
    let m = &v.get("models").cloned().unwrap().into_array().unwrap()[0];
    let shadow = m.get("shadow").unwrap();
    assert_eq!(shadow.get("divergence").cloned().unwrap().into_u64(), Ok(1));
    let first = shadow.get("first_divergence").expect("first divergence pinned");
    assert_eq!(first.get("request").cloned().unwrap().into_u64(), Ok(1));
    let inc_bits = first.get("incumbent_bits").and_then(Value::as_str).unwrap().to_string();
    assert!(inc_bits.starts_with("0x"), "{inc_bits}");

    // Promote refuses with a structured 409 naming the first differing
    // request and the score bits.
    let (status, v) = client.request("POST", "/v1/promote", "{\"model\": \"german-lr\"}");
    assert_eq!(status, 409, "{v:?}");
    assert_eq!(error_kind(&v).as_deref(), Some("conflict"));
    let msg = v.get("error").unwrap().get("message").unwrap().as_str().unwrap().to_string();
    assert!(msg.contains("1 of 1"), "{msg}");
    assert!(msg.contains("request 1"), "{msg}");
    assert!(msg.contains(&inc_bits), "{msg} vs {inc_bits}");

    // The incumbent keeps serving after the refusal.
    let (status, _) = client.request("POST", "/v1/predict", &predict_body("german-lr", &rows));
    assert_eq!(status, 200);

    shutdown_and_join(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&cand_dir);
}

#[test]
fn promote_without_traffic_is_a_409_and_unknown_model_a_404() {
    let dir = temp_models_dir("promote-empty");
    export(&dir, "german-lr", "LR", 87);
    let cand_dir = temp_models_dir("promote-empty-cand");
    let candidate = cand_dir.join("candidate.flm");
    std::fs::copy(dir.join("german-lr.flm"), &candidate).unwrap();
    let (addr, handle) = launch(&dir, |cfg| {
        cfg.shadow = vec![("german-lr".into(), candidate.clone())];
    });

    // An empty comparison window has proven nothing → 409.
    let (status, v) = one_shot(&addr, "POST", "/v1/promote", "{\"model\": \"german-lr\"}");
    assert_eq!(status, 409, "{v:?}");
    assert_eq!(error_kind(&v).as_deref(), Some("conflict"));
    let (status, v) = one_shot(&addr, "POST", "/v1/promote", "{\"model\": \"nope\"}");
    assert_eq!(status, 404, "{v:?}");
    let (status, v) = one_shot(&addr, "POST", "/v1/promote", "{}");
    assert_eq!(status, 400, "{v:?}");
    let (status, _) = one_shot(&addr, "GET", "/v1/promote", "");
    assert_eq!(status, 405);

    shutdown_and_join(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&cand_dir);
}

#[test]
fn unloadable_artifacts_are_quarantined_not_fatal() {
    let dir = temp_models_dir("quarantine");
    export(&dir, "german-lr", "LR", 73);
    std::fs::write(dir.join("rotten.flm"), "definitely not an artifact").unwrap();
    let (addr, handle) = launch(&dir, |_| {});

    // The listing carries both: the loadable model ready, the corrupt
    // one quarantined with its reason.
    let (status, v) = one_shot(&addr, "GET", "/v1/models", "");
    assert_eq!(status, 200);
    let models = v.get("models").cloned().unwrap().into_array().unwrap();
    assert_eq!(models.len(), 2, "{v:?}");
    let by_id = |id: &str| {
        models.iter().find(|m| m.get("id").and_then(Value::as_str) == Some(id)).unwrap()
    };
    assert_eq!(by_id("german-lr").get("status").and_then(Value::as_str), Some("ready"));
    let rotten = by_id("rotten");
    assert_eq!(rotten.get("status").and_then(Value::as_str), Some("unloadable"));
    assert!(rotten.get("error").and_then(Value::as_str).is_some());

    // Predicting against it is an immediate structured 503 served from
    // the negative cache, and it is counted exactly once.
    let rows = sample_rows(1, 79);
    let (status, v) = one_shot(&addr, "POST", "/v1/predict", &predict_body("rotten", &rows));
    assert_eq!(status, 503, "{v:?}");
    assert_eq!(error_kind(&v).as_deref(), Some("unavailable"));
    let (_, text) = Client::open(&addr).request("GET", "/metrics", "");
    let Value::String(text) = text else { panic!("metrics is not JSON") };
    assert!(text.contains("fairlens_model_load_failures_total 1"), "{text}");

    shutdown_and_join(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn feedback_joins_labels_and_rejects_bad_reports_end_to_end() {
    let dir = temp_models_dir("feedback");
    export(&dir, "german-lr", "LR", 41);
    let (addr, handle) = launch(&dir, |cfg| cfg.monitor_window = 32);
    let mut client = Client::open(&addr);

    let rows = sample_rows(5, 51);
    let (status, v) = client.request("POST", "/v1/predict", &predict_body("german-lr", &rows));
    assert_eq!(status, 200, "{v:?}");
    let seq = v.get("seq").cloned().unwrap().into_u64().unwrap();
    let fb = |seq: u64, labels: &str| {
        format!("{{\"model\": \"german-lr\", \"seq\": {seq}, \"labels\": {labels}}}")
    };

    // Accepted: all five labels join rows still resident in the window.
    let (status, v) = client.request("POST", "/v1/feedback", &fb(seq, "[1,0,1,1,0]"));
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
    assert_eq!(v.get("matched").cloned().unwrap().into_u64(), Ok(5));
    assert_eq!(v.get("expected").cloned().unwrap().into_u64(), Ok(5));

    // A second report for the same seq is a conflict.
    let (status, v) = client.request("POST", "/v1/feedback", &fb(seq, "[1,0,1,1,0]"));
    assert_eq!(status, 409, "{v:?}");
    assert_eq!(error_kind(&v).as_deref(), Some("conflict"));
    // A seq this model never issued is not found.
    let (status, v) = client.request("POST", "/v1/feedback", &fb(999, "[1]"));
    assert_eq!(status, 404, "{v:?}");
    assert_eq!(error_kind(&v).as_deref(), Some("not_found"));
    // A label count disagreeing with the original row count is a 400
    // that still reaches the per-model feedback counters...
    let (status, v) =
        client.request("POST", "/v1/predict", &predict_body("german-lr", &rows[..3]));
    assert_eq!(status, 200, "{v:?}");
    let seq2 = v.get("seq").cloned().unwrap().into_u64().unwrap();
    let (status, v) = client.request("POST", "/v1/feedback", &fb(seq2, "[1]"));
    assert_eq!(status, 400, "{v:?}");
    assert_eq!(error_kind(&v).as_deref(), Some("bad_request"));
    // ...while a malformed label value is rejected before the monitor.
    let (status, v) = client.request("POST", "/v1/feedback", &fb(seq2, "[1, 2, 0]"));
    assert_eq!(status, 400, "{v:?}");
    // An unknown model is its own 404 and never counts against anyone.
    let (status, v) = client
        .request("POST", "/v1/feedback", "{\"model\": \"nope\", \"seq\": 0, \"label\": 1}");
    assert_eq!(status, 404, "{v:?}");
    let (status, _) = client.request("GET", "/v1/feedback", "");
    assert_eq!(status, 405);

    let (_, text) = client.request("GET", "/metrics", "");
    let Value::String(text) = text else { panic!("metrics is not JSON") };
    for want in [
        "fairlens_feedback_total{model=\"german-lr\",status=\"ok\"} 1",
        "fairlens_feedback_total{model=\"german-lr\",status=\"duplicate\"} 1",
        "fairlens_feedback_total{model=\"german-lr\",status=\"unknown\"} 1",
        "fairlens_feedback_total{model=\"german-lr\",status=\"invalid\"} 1",
    ] {
        assert!(text.contains(want), "missing {want} in:\n{text}");
    }

    // The listing's monitor block reflects the joins: 8 rows observed
    // across 2 requests, 5 of them labeled.
    let (_, v) = client.request("GET", "/v1/models", "");
    let models = v.get("models").cloned().unwrap().into_array().unwrap();
    let monitor = models[0].get("monitor").expect("monitor block");
    assert_eq!(monitor.get("window_len").cloned().unwrap().into_u64(), Ok(8));
    assert_eq!(monitor.get("observed").cloned().unwrap().into_u64(), Ok(8));
    assert_eq!(monitor.get("labeled").cloned().unwrap().into_u64(), Ok(5));
    assert_eq!(monitor.get("pending").cloned().unwrap().into_u64(), Ok(2));
    // Training-time baselines for the monitored metrics surface too.
    assert!(monitor.get("baseline").unwrap().get("accuracy").is_some());

    shutdown_and_join(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn skewed_feedback_drives_drift_to_alerting() {
    let dir = temp_models_dir("drift-skew");
    export(&dir, "german-lr", "LR", 43); // baseline accuracy 0.75
    let (addr, handle) = launch(&dir, |cfg| {
        cfg.monitor_window = 8;
        cfg.drift_thresholds = vec![("accuracy".into(), 0.25)];
        cfg.drift_warn = 1;
        cfg.drift_alert = 2;
        cfg.drift_min_labeled = 4;
    });
    let mut client = Client::open(&addr);

    // Report the opposite of every prediction: live accuracy over any
    // full window is exactly 0.0 against a 0.75 baseline — every
    // evaluation past the window fill breaches, so warn=1/alert=2 walks
    // ok → warning → alerting within two evaluations.
    for row in sample_rows(12, 53) {
        let body = object([
            ("model", Value::String("german-lr".into())),
            ("row", row),
        ])
        .to_json();
        let (status, v) = client.request("POST", "/v1/predict", &body);
        assert_eq!(status, 200, "{v:?}");
        let seq = v.get("seq").cloned().unwrap().into_u64().unwrap();
        let pred = v.get("prediction").cloned().unwrap().into_u64().unwrap();
        let (status, v) = client.request(
            "POST",
            "/v1/feedback",
            &format!("{{\"model\": \"german-lr\", \"seq\": {seq}, \"label\": {}}}", 1 - pred),
        );
        assert_eq!(status, 200, "{v:?}");
    }

    let (_, v) = client.request("GET", "/v1/models", "");
    let models = v.get("models").cloned().unwrap().into_array().unwrap();
    let monitor = models[0].get("monitor").expect("monitor block");
    let drift = monitor.get("drift").unwrap();
    assert_eq!(drift.get("state").and_then(Value::as_str), Some("alerting"), "{v:?}");
    let breaching = drift.get("breaching").cloned().unwrap().into_array().unwrap();
    assert!(
        breaching
            .iter()
            .any(|b| b.get("metric").and_then(Value::as_str) == Some("accuracy")),
        "accuracy must be named as the offending metric: {v:?}"
    );
    assert_eq!(
        monitor.get("live").unwrap().get("all").unwrap().get("accuracy").cloned().unwrap()
            .into_f64(),
        Ok(0.0),
        "every labeled window row disagrees with its prediction"
    );

    let (_, text) = client.request("GET", "/metrics", "");
    let Value::String(text) = text else { panic!("metrics is not JSON") };
    assert!(text.contains("fairlens_drift_state{model=\"german-lr\"} 2"), "{text}");
    assert!(
        text.contains("fairlens_live_metric{model=\"german-lr\",metric=\"accuracy\",group=\"all\"} 0"),
        "{text}"
    );

    shutdown_and_join(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flipped_artifact_drives_label_free_drift_into_alerting() {
    use fairlens_core::snapshot::{ModelParams, PipelineSnapshot};
    use fairlens_metrics::di_star;

    let dir = temp_models_dir("drift-flip");
    let (fitted, schema) = export(&dir, "german-lr", "LR", 47);
    let rows = sample_rows(16, 59);
    let offline = schema.dataset_from_rows(&rows).unwrap();
    let baseline_di = di_star(&fitted.predict(&offline), offline.sensitive());

    // Mangle the served artifact: negate every model weight (a gross
    // version of the bit corruption flm_flip exercises) while keeping
    // the *original* model's di_star as the recorded training-time
    // baseline — a deployment whose artifact no longer matches its own
    // provenance. No feedback anywhere: disparate impact is label-free,
    // so drift must fire from scored traffic alone.
    let path = dir.join("german-lr.flm");
    let mut artifact = ModelArtifact::load(&path).unwrap();
    artifact.train_metrics = vec![("di_star".into(), baseline_di)];
    let snapshot = match &mut artifact.pipeline {
        PipelineSnapshot::Model(m) => m,
        PipelineSnapshot::Adjusted { base, .. } => base,
    };
    let negate = |p: &mut fairlens_core::snapshot::LinearParams| {
        for w in &mut p.weights {
            *w = -*w;
        }
        p.intercept = -p.intercept;
    };
    match &mut snapshot.params {
        ModelParams::Linear(p) => negate(p),
        ModelParams::Mixture(ps) => ps.iter_mut().for_each(negate),
    }
    artifact.save(&path).unwrap();

    // Precondition (deterministic): on exactly these rows the mangled
    // model's group outcomes differ measurably from the baseline, and
    // both values are defined. The drift threshold is set to half that
    // gap, so every full-window evaluation below must breach.
    let flipped_di = di_star(&artifact.pipeline.restore().predict(&offline), offline.sensitive());
    let gap = (flipped_di - baseline_di).abs();
    assert!(
        baseline_di.is_finite() && flipped_di.is_finite() && gap > 0.01,
        "weight negation barely moved di_star: {baseline_di} vs {flipped_di}"
    );

    let (addr, handle) = launch(&dir, |cfg| {
        cfg.monitor_window = 16;
        cfg.drift_thresholds = vec![("di_star".into(), gap / 2.0)];
        cfg.drift_warn = 1;
        cfg.drift_alert = 2;
    });
    let mut client = Client::open(&addr);
    // One window-filling batch (first evaluation), then two repeat
    // singles. Each single evicts the row it re-sends, so the window
    // multiset — and with it live di_star — is *identical* across all
    // three evaluations: breach, breach, breach.
    let (status, v) = client.request("POST", "/v1/predict", &predict_body("german-lr", &rows));
    assert_eq!(status, 200, "{v:?}");
    for row in &rows[..2] {
        let body = object([
            ("model", Value::String("german-lr".into())),
            ("row", row.clone()),
        ])
        .to_json();
        let (status, v) = client.request("POST", "/v1/predict", &body);
        assert_eq!(status, 200, "{v:?}");
    }

    let (_, v) = client.request("GET", "/v1/models", "");
    let models = v.get("models").cloned().unwrap().into_array().unwrap();
    let monitor = models[0].get("monitor").expect("monitor block");
    assert_eq!(monitor.get("labeled").cloned().unwrap().into_u64(), Ok(0), "no feedback sent");
    let drift = monitor.get("drift").unwrap();
    assert_eq!(drift.get("state").and_then(Value::as_str), Some("alerting"), "{v:?}");
    let breaching = drift.get("breaching").cloned().unwrap().into_array().unwrap();
    let di = breaching
        .iter()
        .find(|b| b.get("metric").and_then(Value::as_str) == Some("di_star"))
        .expect("di_star named as the offending metric");
    assert_eq!(
        di.get("live").cloned().unwrap().into_f64().unwrap().to_bits(),
        flipped_di.to_bits(),
        "the breach quotes the mangled model's exact live value"
    );
    assert_eq!(
        di.get("baseline").cloned().unwrap().into_f64().unwrap().to_bits(),
        baseline_di.to_bits(),
    );

    let (_, text) = client.request("GET", "/metrics", "");
    let Value::String(text) = text else { panic!("metrics is not JSON") };
    assert!(text.contains("fairlens_drift_state{model=\"german-lr\"} 2"), "{text}");

    shutdown_and_join(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}
