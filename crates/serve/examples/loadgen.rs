//! Keep-alive load generator for the prediction server.
//!
//! Discovers a model from `GET /v1/models` (or takes `--model`), generates
//! schema-valid rows from the model's source synthetic dataset, and drives
//! a deterministic mix of single-row and batch predict requests over
//! several persistent connections, counting statuses. Exits non-zero on
//! any non-2xx response or transport error, so it doubles as the smoke
//! check in `scripts/check.sh`.
//!
//! ```text
//! cargo run -p fairlens-serve --example loadgen -- \
//!     --addr 127.0.0.1:8484 [--model ID] [--requests 1000] [--conns 4] \
//!     [--seed 42] [--shutdown]
//! ```

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::exit;

use fairlens_frame::{Column, Dataset};
use fairlens_json::{object, parse, Value};
use fairlens_synth::{DatasetKind, ALL_DATASETS};

struct Args {
    addr: String,
    model: Option<String>,
    requests: usize,
    conns: usize,
    seed: u64,
    shutdown: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: String::new(),
        model: None,
        requests: 1000,
        conns: 4,
        seed: 42,
        shutdown: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| {
            argv.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("missing value for {}", argv[i]);
                exit(2);
            })
        };
        match argv[i].as_str() {
            "--addr" => args.addr = value(i),
            "--model" => args.model = Some(value(i)),
            "--requests" => args.requests = value(i).parse().expect("--requests"),
            "--conns" => args.conns = value(i).parse().expect("--conns"),
            "--seed" => args.seed = value(i).parse().expect("--seed"),
            "--shutdown" => {
                args.shutdown = true;
                i += 1;
                continue;
            }
            other => {
                eprintln!("unknown flag {other}");
                exit(2);
            }
        }
        i += 2;
    }
    if args.addr.is_empty() {
        eprintln!("--addr is required");
        exit(2);
    }
    args
}

/// A minimal keep-alive HTTP/1.1 client connection.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn open(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { reader: BufReader::new(stream.try_clone()?), writer: stream })
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nhost: loadgen\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
            body.len(),
        )?;
        self.writer.flush()?;
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| std::io::Error::other(format!("bad status line {line:?}")))?;
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            self.reader.read_line(&mut header)?;
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some(v) = header.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap_or(0);
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok((status, String::from_utf8_lossy(&body).into_owned()))
    }
}

/// One schema-shaped JSON row from a synthetic dataset.
fn row_json(data: &Dataset, r: usize) -> Value {
    let mut fields: Vec<(String, Value)> = data
        .columns()
        .iter()
        .zip(data.attr_names())
        .map(|(col, name)| {
            let v = match col {
                Column::Numeric(xs) => Value::Number(xs[r]),
                Column::Categorical { codes, levels } => {
                    Value::String(levels[codes[r] as usize].clone())
                }
            };
            (name.clone(), v)
        })
        .collect();
    fields.push((
        data.sensitive_name().to_string(),
        Value::Integer(u64::from(data.sensitive()[r])),
    ));
    Value::Object(fields)
}

fn main() {
    let args = parse_args();

    // Discover the target model and its source dataset.
    let mut conn = Conn::open(&args.addr).expect("connect for model discovery");
    let (status, body) = conn.request("GET", "/v1/models", "").expect("list models");
    assert_eq!(status, 200, "model listing failed: {body}");
    let listing = parse(&body).expect("models JSON");
    let models = listing.get("models").cloned().unwrap().into_array().unwrap();
    let chosen = match &args.model {
        Some(id) => models
            .iter()
            .find(|m| m.get("id").and_then(Value::as_str) == Some(id))
            .unwrap_or_else(|| {
                eprintln!("model {id:?} not served");
                exit(2);
            }),
        None => models.first().unwrap_or_else(|| {
            eprintln!("server has no models");
            exit(2);
        }),
    };
    let model_id = chosen.get("id").and_then(Value::as_str).unwrap().to_string();
    let dataset = chosen.get("dataset").and_then(Value::as_str).unwrap().to_string();
    let kind: DatasetKind = *ALL_DATASETS
        .iter()
        .find(|k| k.name() == dataset)
        .unwrap_or_else(|| panic!("unknown source dataset {dataset:?}"));
    let pool = kind.generate(512, args.seed);
    let rows: Vec<Value> = (0..pool.n_rows()).map(|r| row_json(&pool, r)).collect();
    eprintln!(
        "[loadgen] {} requests over {} connection(s) against {model_id} ({dataset})",
        args.requests, args.conns
    );

    // Deterministic single/batch mix, fanned over keep-alive connections.
    let (counts, mut latencies_ms): (BTreeMap<u16, usize>, Vec<f64>) = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..args.conns.max(1) {
            let addr = &args.addr;
            let rows = &rows;
            let model_id = &model_id;
            handles.push(scope.spawn(move || {
                let mut counts: BTreeMap<u16, usize> = BTreeMap::new();
                let mut latencies: Vec<f64> = Vec::new();
                let mut conn = Conn::open(addr).expect("connect");
                let mut i = c;
                while i < args.requests {
                    // Mix: every 4th request is single-row; the rest are
                    // batches of 2..=9 rows starting at a rolling offset.
                    let body = if i % 4 == 0 {
                        object([
                            ("model", Value::String(model_id.clone())),
                            ("row", rows[i % rows.len()].clone()),
                        ])
                    } else {
                        let n = 2 + (i % 8);
                        let batch: Vec<Value> =
                            (0..n).map(|j| rows[(i + j) % rows.len()].clone()).collect();
                        object([
                            ("model", Value::String(model_id.clone())),
                            ("rows", Value::Array(batch)),
                        ])
                    };
                    let t0 = std::time::Instant::now();
                    let (status, body) = conn
                        .request("POST", "/v1/predict", &body.to_json())
                        .expect("predict request");
                    latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                    if status != 200 {
                        eprintln!("[loadgen] HTTP {status}: {body}");
                    }
                    *counts.entry(status).or_insert(0) += 1;
                    i += args.conns;
                }
                (counts, latencies)
            }));
        }
        let mut total = BTreeMap::new();
        let mut all_latencies = Vec::new();
        for h in handles {
            let (counts, latencies) = h.join().expect("connection thread");
            for (status, n) in counts {
                *total.entry(status).or_insert(0) += n;
            }
            all_latencies.extend(latencies);
        }
        (total, all_latencies)
    });

    let sent: usize = counts.values().sum();
    let ok = counts.get(&200).copied().unwrap_or(0);
    eprintln!("[loadgen] {sent} requests: {counts:?}");
    if !latencies_ms.is_empty() {
        latencies_ms.sort_by(|a, b| a.total_cmp(b));
        let mean = latencies_ms.iter().sum::<f64>() / latencies_ms.len() as f64;
        // Nearest-rank percentile: sorted[ceil(p/100 * n) - 1].
        let pct = |p: f64| {
            let rank = ((p / 100.0 * latencies_ms.len() as f64).ceil() as usize)
                .clamp(1, latencies_ms.len());
            latencies_ms[rank - 1]
        };
        eprintln!(
            "[loadgen] latency ms: mean {mean:.2} p50 {:.2} p95 {:.2} p99 {:.2}",
            pct(50.0),
            pct(95.0),
            pct(99.0)
        );
    }

    if args.shutdown {
        let mut conn = Conn::open(&args.addr).expect("connect for shutdown");
        let (status, body) = conn.request("POST", "/v1/shutdown", "").expect("shutdown");
        assert_eq!(status, 200, "shutdown failed: {body}");
        eprintln!("[loadgen] shutdown acknowledged");
    }

    if ok != sent {
        eprintln!("[loadgen] FAILED: {} non-200 response(s)", sent - ok);
        exit(1);
    }
    eprintln!("[loadgen] all {ok} requests returned 200");
}
