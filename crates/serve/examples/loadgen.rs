//! Keep-alive load generator for the prediction server.
//!
//! Discovers a model from `GET /v1/models` (or takes `--model`), generates
//! schema-valid rows from the model's source synthetic dataset, and drives
//! a deterministic mix of single-row and batch predict requests over
//! several persistent connections, counting statuses. Exits non-zero on
//! any unexpected non-2xx response or transport error, so it doubles as
//! the smoke check in `scripts/check.sh`.
//!
//! Two driving modes:
//!
//! * **Closed loop** (default): one request in flight per connection.
//!   Shed responses (429/503) that carry `Retry-After` are honoured —
//!   the connection sleeps the advertised hint and retries the same
//!   request a few times before counting the shed as final.
//! * **Open loop** (`--open-loop`): each connection pipelines bursts of
//!   `--burst` requests without waiting, deliberately outrunning the
//!   server to exercise admission control. Connections the server closes
//!   (request cap, drain) are reopened and unanswered requests resent.
//!
//! With `--allow-shed`, overload responses (429/503/504) are expected
//! output rather than failures: the run exits 0 as long as every request
//! got *some* well-formed answer. The summary always prints the full
//! status breakdown and the shed rate alongside latency percentiles.
//!
//! The request mix (single vs batch, batch size, which rows) is a pure
//! function of `--seed` and the request index, so two runs with the same
//! seed send byte-identical request streams — the property the record/
//! replay harness builds on.
//!
//! **Feedback** (`--feedback P`, closed loop only): after each answered
//! predict, with deterministic probability `P` (a pure function of
//! `--seed` and the request index), report the rows' true labels from
//! the synthetic source dataset via `POST /v1/feedback`, quoting the
//! `seq` from the predict response. `--feedback-skew` reports the
//! *opposite* of every predicted label instead — maximal disagreement,
//! for driving the server's drift detection into alerting on purpose.
//! Any feedback rejection is a failure (exit non-zero).
//!
//! **Replay mode** (`--replay PATH`): instead of generating traffic,
//! re-send every exchange from a `--record` JSONL log against the live
//! server and diff the answers — status codes always, score bit patterns
//! for recorded 200s. Exits non-zero on the first summary with any diff,
//! naming the first differing request (seq) and both bit patterns.
//!
//! ```text
//! cargo run -p fairlens-serve --example loadgen -- \
//!     --addr 127.0.0.1:8484 [--model ID] [--requests 1000] [--conns 4] \
//!     [--seed 42] [--open-loop] [--burst 16] [--allow-shed] [--shutdown] \
//!     [--feedback P] [--feedback-skew] [--replay recorded.jsonl]
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::exit;
use std::time::{Duration, Instant};

use fairlens_frame::{Column, Dataset};
use fairlens_json::{object, parse, Value};
use fairlens_serve::recorder::score_bits;
use fairlens_synth::{DatasetKind, ALL_DATASETS};

/// Statuses that admission control and breakers legitimately produce
/// under overload; `--allow-shed` accepts them as success for exit-code
/// purposes.
const SHED_STATUSES: [u16; 3] = [429, 503, 504];

struct Args {
    addr: String,
    model: Option<String>,
    requests: usize,
    conns: usize,
    seed: u64,
    open_loop: bool,
    burst: usize,
    allow_shed: bool,
    shutdown: bool,
    replay: Option<String>,
    /// Probability (0..=1) of reporting labels for an answered predict.
    feedback: f64,
    /// Report `1 - predicted` instead of the dataset's true labels.
    feedback_skew: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: String::new(),
        model: None,
        requests: 1000,
        conns: 4,
        seed: 42,
        open_loop: false,
        burst: 16,
        allow_shed: false,
        shutdown: false,
        replay: None,
        feedback: 0.0,
        feedback_skew: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| {
            argv.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("missing value for {}", argv[i]);
                exit(2);
            })
        };
        match argv[i].as_str() {
            "--addr" => args.addr = value(i),
            "--model" => args.model = Some(value(i)),
            "--requests" => args.requests = value(i).parse().expect("--requests"),
            "--conns" => args.conns = value(i).parse().expect("--conns"),
            "--seed" => args.seed = value(i).parse().expect("--seed"),
            "--burst" => args.burst = value(i).parse().expect("--burst"),
            "--replay" => args.replay = Some(value(i)),
            "--feedback" => args.feedback = value(i).parse().expect("--feedback"),
            "--feedback-skew" => {
                args.feedback_skew = true;
                i += 1;
                continue;
            }
            "--open-loop" => {
                args.open_loop = true;
                i += 1;
                continue;
            }
            "--allow-shed" => {
                args.allow_shed = true;
                i += 1;
                continue;
            }
            "--shutdown" => {
                args.shutdown = true;
                i += 1;
                continue;
            }
            other => {
                eprintln!("unknown flag {other}");
                exit(2);
            }
        }
        i += 2;
    }
    if args.addr.is_empty() {
        eprintln!("--addr is required");
        exit(2);
    }
    if !(0.0..=1.0).contains(&args.feedback) {
        eprintln!("--feedback wants a probability in 0..=1, got {}", args.feedback);
        exit(2);
    }
    if args.feedback_skew && args.feedback == 0.0 {
        args.feedback = 1.0;
    }
    if args.feedback > 0.0 && args.open_loop {
        eprintln!("--feedback needs the closed loop (each feedback quotes the seq of an already-answered predict); drop --open-loop");
        exit(2);
    }
    args
}

/// One parsed response off a keep-alive connection.
struct Response {
    status: u16,
    body: String,
    /// The `Retry-After` hint (seconds), on shed/breaker rejections.
    retry_after: Option<u64>,
    /// Whether the server announced it will close the connection.
    close: bool,
}

/// A minimal keep-alive HTTP/1.1 client connection.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn open(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { reader: BufReader::new(stream.try_clone()?), writer: stream })
    }

    fn write_request(&mut self, method: &str, path: &str, body: &str) -> std::io::Result<()> {
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nhost: loadgen\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
            body.len(),
        )?;
        self.writer.flush()
    }

    fn read_response(&mut self) -> std::io::Result<Response> {
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| std::io::Error::other(format!("bad status line {line:?}")))?;
        let mut content_length = 0usize;
        let mut retry_after = None;
        let mut close = false;
        loop {
            let mut header = String::new();
            self.reader.read_line(&mut header)?;
            let header = header.trim_end().to_ascii_lowercase();
            if header.is_empty() {
                break;
            }
            if let Some(v) = header.strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap_or(0);
            } else if let Some(v) = header.strip_prefix("retry-after:") {
                retry_after = v.trim().parse().ok();
            } else if header == "connection: close" {
                close = true;
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(Response { status, body: String::from_utf8_lossy(&body).into_owned(), retry_after, close })
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> std::io::Result<Response> {
        self.write_request(method, path, body)?;
        self.read_response()
    }
}

/// One schema-shaped JSON row from a synthetic dataset.
fn row_json(data: &Dataset, r: usize) -> Value {
    let mut fields: Vec<(String, Value)> = data
        .columns()
        .iter()
        .zip(data.attr_names())
        .map(|(col, name)| {
            let v = match col {
                Column::Numeric(xs) => Value::Number(xs[r]),
                Column::Categorical { codes, levels } => {
                    Value::String(levels[codes[r] as usize].clone())
                }
            };
            (name.clone(), v)
        })
        .collect();
    fields.push((
        data.sensitive_name().to_string(),
        Value::Integer(u64::from(data.sensitive()[r])),
    ));
    Value::Object(fields)
}

/// SplitMix64 finalizer: one well-mixed word per (seed, index) pair.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic single/batch request body for request index `i`: the
/// shape, batch size, and row choices are all functions of the seed, so
/// `--seed` genuinely selects the request mix (not just the row pool).
/// Also returns which pool rows the body holds, so `--feedback` can look
/// up their true labels.
fn body_for(model_id: &str, rows: &[Value], seed: u64, i: usize) -> (String, Vec<usize>) {
    let h = mix(seed, i as u64);
    let (body, picked) = if h.is_multiple_of(4) {
        let r = (h >> 8) as usize % rows.len();
        let body = object([
            ("model", Value::String(model_id.to_string())),
            ("row", rows[r].clone()),
        ]);
        (body, vec![r])
    } else {
        let n = 2 + ((h >> 16) % 8) as usize;
        let picked: Vec<usize> =
            (0..n).map(|j| ((h >> 24) as usize + j) % rows.len()).collect();
        let batch: Vec<Value> = picked.iter().map(|&r| rows[r].clone()).collect();
        let body = object([
            ("model", Value::String(model_id.to_string())),
            ("rows", Value::Array(batch)),
        ]);
        (body, picked)
    };
    (body.to_json(), picked)
}

/// Per-connection result accumulator.
#[derive(Default)]
struct Tally {
    counts: BTreeMap<u16, usize>,
    latencies_ms: Vec<f64>,
    reconnects: usize,
    retries: usize,
    /// Requests re-sent after a mid-request transport error (reset,
    /// refused, truncated response) — what a worker crash mid-failover
    /// looks like from the client side.
    transport_retries: usize,
    feedback_sent: usize,
    feedback_failed: usize,
}

/// Salt separating the feedback coin flips from the request-mix stream:
/// both are pure functions of (`--seed`, request index), but independent.
const FEEDBACK_SALT: u64 = 0x6665_6564_6261_636b; // "feedback"

/// Closed loop: one request in flight, honouring `Retry-After` on shed.
fn run_closed_loop(
    args: &Args,
    model_id: &str,
    rows: &[Value],
    labels: &[u8],
    c: usize,
) -> Tally {
    let mut tally = Tally::default();
    let mut conn = Conn::open(&args.addr).expect("connect");
    let mut i = c;
    while i < args.requests {
        let (body, picked) = body_for(model_id, rows, args.seed, i);
        let mut attempts = 0;
        let final_resp = loop {
            let t0 = Instant::now();
            let resp = request_resilient(
                &mut conn,
                &args.addr,
                "POST",
                "/v1/predict",
                &body,
                &mut tally.transport_retries,
            );
            tally.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            *tally.counts.entry(resp.status).or_insert(0) += 1;
            if resp.close {
                tally.reconnects += 1;
                conn = reconnect(&args.addr);
            }
            // A shed with a Retry-After hint: wait as told, retry the
            // same request a few times before accepting the shed.
            let retriable = SHED_STATUSES.contains(&resp.status);
            match resp.retry_after {
                Some(secs) if retriable && attempts < 3 => {
                    attempts += 1;
                    tally.retries += 1;
                    std::thread::sleep(Duration::from_secs(secs.min(2)));
                }
                _ => {
                    if resp.status != 200 {
                        eprintln!("[loadgen] HTTP {}: {}", resp.status, resp.body);
                    }
                    break resp;
                }
            }
        };
        if final_resp.status == 200
            && args.feedback > 0.0
            && ((mix(args.seed ^ FEEDBACK_SALT, i as u64) % 1000) as f64)
                < args.feedback * 1000.0
        {
            send_feedback(args, &mut conn, model_id, &final_resp.body, &picked, labels, &mut tally);
        }
        i += args.conns;
    }
    tally
}

/// Report labels for one answered predict via `POST /v1/feedback`: the
/// pool's true labels for the rows the request held, or (with
/// `--feedback-skew`) the opposite of every predicted label.
fn send_feedback(
    args: &Args,
    conn: &mut Conn,
    model_id: &str,
    predict_body: &str,
    picked: &[usize],
    labels: &[u8],
    tally: &mut Tally,
) {
    let answer = parse(predict_body).expect("predict response JSON");
    let seq = answer
        .get("seq")
        .cloned()
        .and_then(|v| v.into_u64().ok())
        .expect("predict response carries a seq");
    let reported: Vec<u64> = if args.feedback_skew {
        let preds: Vec<u64> = match answer.get("prediction") {
            Some(p) => vec![p.clone().into_u64().expect("prediction")],
            None => answer
                .get("predictions")
                .cloned()
                .and_then(|v| v.into_array().ok())
                .expect("predictions array")
                .into_iter()
                .map(|p| p.into_u64().expect("prediction"))
                .collect(),
        };
        preds.into_iter().map(|p| 1 - p).collect()
    } else {
        picked.iter().map(|&r| u64::from(labels[r])).collect()
    };
    let mut fields = vec![
        ("model", Value::String(model_id.to_string())),
        ("seq", Value::Integer(seq)),
    ];
    if picked.len() == 1 {
        fields.push(("label", Value::Integer(reported[0])));
    } else {
        fields.push((
            "labels",
            Value::Array(reported.into_iter().map(Value::Integer).collect()),
        ));
    }
    let resp = request_resilient(
        conn,
        &args.addr,
        "POST",
        "/v1/feedback",
        &object(fields).to_json(),
        &mut tally.transport_retries,
    );
    tally.feedback_sent += 1;
    if resp.status != 200 {
        tally.feedback_failed += 1;
        eprintln!("[loadgen] feedback HTTP {} for seq {seq}: {}", resp.status, resp.body);
    }
    if resp.close {
        tally.reconnects += 1;
        *conn = reconnect(&args.addr);
    }
}

/// Open loop: pipeline bursts without waiting for answers, reopening
/// connections the server closes and resending whatever went unanswered.
fn run_open_loop(args: &Args, model_id: &str, rows: &[Value], c: usize) -> Tally {
    let mut tally = Tally::default();
    let mut conn = Conn::open(&args.addr).expect("connect");
    let mut pending: VecDeque<usize> =
        (c..args.requests).step_by(args.conns.max(1)).collect();
    let burst_len = args.burst.max(1);
    while !pending.is_empty() {
        let burst: Vec<usize> =
            (0..burst_len.min(pending.len())).filter_map(|_| pending.pop_front()).collect();
        let t0 = Instant::now();
        let mut wrote = 0;
        for &i in &burst {
            if conn
                .write_request("POST", "/v1/predict", &body_for(model_id, rows, args.seed, i).0)
                .is_err()
            {
                break;
            }
            wrote += 1;
        }
        let mut answered = 0;
        let mut closed = false;
        for _ in 0..wrote {
            match conn.read_response() {
                Ok(resp) => {
                    tally.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                    *tally.counts.entry(resp.status).or_insert(0) += 1;
                    answered += 1;
                    if resp.close {
                        closed = true;
                        break;
                    }
                }
                Err(_) => {
                    closed = true;
                    break;
                }
            }
        }
        if closed || answered < burst.len() {
            // The server closed the connection (request cap, drain) or a
            // response was lost with it: reopen and resend the rest.
            for &i in burst[answered..].iter().rev() {
                pending.push_front(i);
            }
            tally.reconnects += 1;
            assert!(
                tally.reconnects <= 1000,
                "giving up after 1000 reconnects; server keeps dropping us"
            );
            conn = reconnect(&args.addr);
        }
    }
    tally
}

/// Replay a `--record` JSONL log: re-send every exchange and diff the
/// live answers against the recorded ones. Status codes are compared on
/// every entry; score bit patterns only where the recording saw a 200
/// (error bodies carry no scores — those entries are counted as
/// status-only). Shed responses with a `Retry-After` hint are retried a
/// few times first, like the closed loop.
fn run_replay(args: &Args, log_path: &str) -> ! {
    let text = std::fs::read_to_string(log_path).unwrap_or_else(|e| {
        eprintln!("[loadgen] cannot read replay log {log_path}: {e}");
        exit(2);
    });
    let mut conn = Conn::open(&args.addr).expect("connect for replay");
    let (mut sent, mut clean, mut status_only, mut diffs) = (0usize, 0usize, 0usize, 0usize);
    let mut transport_retries = 0usize;
    let mut first_diff: Option<String> = None;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let entry = parse(line).unwrap_or_else(|e| {
            eprintln!("[loadgen] bad replay entry: {e}\n  {line}");
            exit(2);
        });
        let seq = entry.get("seq").cloned().and_then(|v| v.into_u64().ok()).unwrap_or(0);
        let method = entry.get("method").and_then(Value::as_str).unwrap_or("POST").to_string();
        let path = entry.get("path").and_then(Value::as_str).unwrap_or("/v1/predict").to_string();
        let recorded_status =
            entry.get("status").cloned().and_then(|v| v.into_u64().ok()).unwrap_or(0) as u16;
        // String request = a recorded malformed body, replayed verbatim.
        let body = match entry.get("request") {
            Some(Value::String(s)) => s.clone(),
            Some(v) => v.to_json(),
            None => String::new(),
        };
        let recorded_bits: Vec<u64> = entry
            .get("score_bits")
            .cloned()
            .and_then(|v| v.into_array().ok())
            .map(|items| items.into_iter().filter_map(|b| b.into_u64().ok()).collect())
            .unwrap_or_default();

        let mut attempts = 0;
        let resp = loop {
            let resp = request_resilient(
                &mut conn,
                &args.addr,
                &method,
                &path,
                &body,
                &mut transport_retries,
            );
            if resp.close {
                conn = reconnect(&args.addr);
            }
            match resp.retry_after {
                Some(secs) if SHED_STATUSES.contains(&resp.status) && attempts < 3 => {
                    attempts += 1;
                    std::thread::sleep(Duration::from_secs(secs.min(2)));
                }
                _ => break resp,
            }
        };
        sent += 1;
        let diff = if resp.status != recorded_status {
            Some(format!(
                "seq {seq}: status {recorded_status} recorded, {} live ({})",
                resp.status, resp.body
            ))
        } else if recorded_status == 200 {
            let live_bits = score_bits(&parse(&resp.body).unwrap_or(Value::Null));
            bits_diff(seq, &recorded_bits, &live_bits)
        } else {
            status_only += 1;
            None
        };
        match diff {
            Some(d) => {
                diffs += 1;
                if first_diff.is_none() {
                    eprintln!("[loadgen] replay diff at {d}");
                    first_diff = Some(d);
                }
            }
            None => clean += 1,
        }
    }
    eprintln!(
        "[loadgen] replayed {sent} exchange(s): {clean} identical \
         ({status_only} status-only), {diffs} diff(s), \
         {transport_retries} transport retry(s)"
    );
    if args.shutdown {
        let mut conn = Conn::open(&args.addr).expect("connect for shutdown");
        let resp = conn.request("POST", "/v1/shutdown", "").expect("shutdown");
        assert_eq!(resp.status, 200, "shutdown failed: {}", resp.body);
        eprintln!("[loadgen] shutdown acknowledged");
    }
    if diffs > 0 {
        eprintln!(
            "[loadgen] REPLAY FAILED: first divergence — {}",
            first_diff.as_deref().unwrap_or("?")
        );
        exit(1);
    }
    eprintln!("[loadgen] REPLAY PASS: every response matched the recording");
    exit(0);
}

/// The first differing score between a recorded and a live response.
fn bits_diff(seq: u64, recorded: &[u64], live: &[u64]) -> Option<String> {
    if recorded == live {
        return None;
    }
    let row = recorded.iter().zip(live).position(|(a, b)| a != b).unwrap_or(recorded.len().min(live.len()));
    let fmt = |bits: Option<&u64>| match bits {
        Some(b) => format!("{b:#018x} ({})", f64::from_bits(*b)),
        None => "missing".to_string(),
    };
    Some(format!(
        "seq {seq}: score[{row}] recorded {} vs live {}",
        fmt(recorded.get(row)),
        fmt(live.get(row)),
    ))
}

fn reconnect(addr: &str) -> Conn {
    for _ in 0..50 {
        if let Ok(conn) = Conn::open(addr) {
            return conn;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("cannot reconnect to {addr}");
}

/// Send one request, transparently reconnecting and re-sending it on a
/// mid-request transport error (connection reset, refused, truncated
/// response) — exactly what a crashing worker or a failover cutover
/// looks like from the client. Bounded so a server that is actually gone
/// still fails loudly; every re-send is counted so a chaos run reports a
/// retry rate in its summary instead of dying on the first reset.
fn request_resilient(
    conn: &mut Conn,
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    transport_retries: &mut usize,
) -> Response {
    let mut attempts = 0;
    loop {
        match conn.request(method, path, body) {
            Ok(resp) => return resp,
            Err(e) => {
                attempts += 1;
                assert!(
                    attempts <= 5,
                    "transport error persists after 5 re-sends of {method} {path} to {addr}: {e}"
                );
                *transport_retries += 1;
                *conn = reconnect(addr);
            }
        }
    }
}

fn main() {
    let args = parse_args();

    if let Some(log_path) = args.replay.clone() {
        run_replay(&args, &log_path);
    }

    // Discover the target model and its source dataset.
    let mut conn = Conn::open(&args.addr).expect("connect for model discovery");
    let resp = conn.request("GET", "/v1/models", "").expect("list models");
    assert_eq!(resp.status, 200, "model listing failed: {}", resp.body);
    let listing = parse(&resp.body).expect("models JSON");
    let models = listing.get("models").cloned().unwrap().into_array().unwrap();
    let chosen = match &args.model {
        Some(id) => models
            .iter()
            .find(|m| m.get("id").and_then(Value::as_str) == Some(id))
            .unwrap_or_else(|| {
                eprintln!("model {id:?} not served");
                exit(2);
            }),
        None => models
            .iter()
            .find(|m| m.get("status").and_then(Value::as_str) != Some("unloadable"))
            .unwrap_or_else(|| {
                eprintln!("server has no loadable models");
                exit(2);
            }),
    };
    let model_id = chosen.get("id").and_then(Value::as_str).unwrap().to_string();
    let dataset = chosen.get("dataset").and_then(Value::as_str).unwrap().to_string();
    let kind: DatasetKind = *ALL_DATASETS
        .iter()
        .find(|k| k.name() == dataset)
        .unwrap_or_else(|| panic!("unknown source dataset {dataset:?}"));
    let pool = kind.generate(512, args.seed);
    let rows: Vec<Value> = (0..pool.n_rows()).map(|r| row_json(&pool, r)).collect();
    let labels: Vec<u8> = pool.labels().to_vec();
    eprintln!(
        "[loadgen] {} requests over {} connection(s) against {model_id} ({dataset}), {} loop",
        args.requests,
        args.conns,
        if args.open_loop { "open" } else { "closed" },
    );

    // Deterministic request mix, fanned over keep-alive connections.
    let tally: Tally = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..args.conns.max(1) {
            let (args, rows, labels, model_id) = (&args, &rows, &labels, &model_id);
            handles.push(scope.spawn(move || {
                if args.open_loop {
                    run_open_loop(args, model_id, rows, c)
                } else {
                    run_closed_loop(args, model_id, rows, labels, c)
                }
            }));
        }
        let mut total = Tally::default();
        for h in handles {
            let t = h.join().expect("connection thread");
            for (status, n) in t.counts {
                *total.counts.entry(status).or_insert(0) += n;
            }
            total.latencies_ms.extend(t.latencies_ms);
            total.reconnects += t.reconnects;
            total.retries += t.retries;
            total.transport_retries += t.transport_retries;
            total.feedback_sent += t.feedback_sent;
            total.feedback_failed += t.feedback_failed;
        }
        total
    });

    let Tally {
        counts,
        mut latencies_ms,
        reconnects,
        retries,
        transport_retries,
        feedback_sent,
        feedback_failed,
    } = tally;
    let sent: usize = counts.values().sum();
    let ok = counts.get(&200).copied().unwrap_or(0);
    let shed: usize =
        SHED_STATUSES.iter().map(|s| counts.get(s).copied().unwrap_or(0)).sum();
    eprintln!(
        "[loadgen] {sent} response(s): {counts:?} — shed rate {:.1}% ({shed} shed), \
         {reconnects} reconnect(s), {retries} retry-after wait(s), \
         {transport_retries} transport retry(s)",
        100.0 * shed as f64 / sent.max(1) as f64,
    );
    if feedback_sent > 0 {
        eprintln!(
            "[loadgen] feedback: {feedback_sent} report(s) sent{}, {feedback_failed} rejected",
            if args.feedback_skew { " (skewed: opposite of every prediction)" } else { "" },
        );
    }
    if !latencies_ms.is_empty() {
        latencies_ms.sort_by(|a, b| a.total_cmp(b));
        let mean = latencies_ms.iter().sum::<f64>() / latencies_ms.len() as f64;
        // Nearest-rank percentile: sorted[ceil(p/100 * n) - 1].
        let pct = |p: f64| {
            let rank = ((p / 100.0 * latencies_ms.len() as f64).ceil() as usize)
                .clamp(1, latencies_ms.len());
            latencies_ms[rank - 1]
        };
        eprintln!(
            "[loadgen] latency ms: mean {mean:.2} p50 {:.2} p95 {:.2} p99 {:.2}",
            pct(50.0),
            pct(95.0),
            pct(99.0)
        );
    }

    if args.shutdown {
        let mut conn = Conn::open(&args.addr).expect("connect for shutdown");
        let resp = conn.request("POST", "/v1/shutdown", "").expect("shutdown");
        assert_eq!(resp.status, 200, "shutdown failed: {}", resp.body);
        eprintln!("[loadgen] shutdown acknowledged");
    }

    let unexpected: usize = counts
        .iter()
        .filter(|(s, _)| **s != 200 && !(args.allow_shed && SHED_STATUSES.contains(s)))
        .map(|(_, n)| n)
        .sum();
    if unexpected > 0 {
        eprintln!("[loadgen] FAILED: {unexpected} unexpected non-200 response(s)");
        exit(1);
    }
    if feedback_failed > 0 {
        eprintln!("[loadgen] FAILED: {feedback_failed} feedback report(s) rejected");
        exit(1);
    }
    eprintln!(
        "[loadgen] PASS: {ok} ok, {shed} shed{}",
        if args.allow_shed { " (allowed)" } else { "" },
    );
}
