//! The server's error taxonomy.
//!
//! Every failure a client can observe is one of a small closed set of
//! kinds, serialized as a structured JSON body — mirroring the benchmark's
//! failure-sidecar taxonomy (`panicked` / `timed_out` / …): a machine-
//! readable `kind` for dashboards and retry logic, a human message for
//! debugging. Malformed input never closes the connection and never
//! panics a worker; it produces a 400 with the offending row spelled out.

use fairlens_json::{object, Value};

/// What went wrong, from the client's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Unparseable or invalid request (syntax, schema, row values).
    BadRequest,
    /// The requested model id is not in the registry.
    UnknownModel,
    /// No route matches the path.
    NotFound,
    /// The route exists but not for this method.
    MethodNotAllowed,
    /// Head or body exceeds the configured limits.
    PayloadTooLarge,
    /// The request's deadline expired before a prediction was produced.
    TimedOut,
    /// The server is draining and no longer takes new work.
    ShuttingDown,
    /// Unexpected server-side failure (a panic in the prediction path).
    Internal,
}

impl ErrorKind {
    /// HTTP status code for the kind.
    pub fn status(self) -> u16 {
        match self {
            ErrorKind::BadRequest => 400,
            ErrorKind::UnknownModel | ErrorKind::NotFound => 404,
            ErrorKind::MethodNotAllowed => 405,
            ErrorKind::PayloadTooLarge => 413,
            ErrorKind::ShuttingDown => 503,
            ErrorKind::TimedOut => 504,
            ErrorKind::Internal => 500,
        }
    }

    /// The stable wire name of the kind.
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::UnknownModel => "unknown_model",
            ErrorKind::NotFound => "not_found",
            ErrorKind::MethodNotAllowed => "method_not_allowed",
            ErrorKind::PayloadTooLarge => "payload_too_large",
            ErrorKind::TimedOut => "timed_out",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::Internal => "internal",
        }
    }
}

/// A client-visible error: kind + message.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeError {
    /// The taxonomy kind.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl ServeError {
    /// Build an error of `kind` with a message.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        Self { kind, message: message.into() }
    }

    /// Shorthand for a [`ErrorKind::BadRequest`].
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::BadRequest, message)
    }

    /// The structured JSON body.
    pub fn to_json(&self) -> String {
        object([(
            "error",
            object([
                ("kind", Value::String(self.kind.name().into())),
                ("message", Value::String(self.message.clone())),
            ]),
        )])
        .to_json()
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.name(), self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bodies_are_structured() {
        let e = ServeError::new(ErrorKind::UnknownModel, "no model \"x\"");
        assert_eq!(e.kind.status(), 404);
        let body = e.to_json();
        let v = fairlens_json::parse(&body).unwrap();
        let inner = v.get("error").unwrap();
        assert_eq!(inner.get("kind").unwrap().as_str(), Some("unknown_model"));
        assert!(inner.get("message").unwrap().as_str().unwrap().contains("x"));
    }

    #[test]
    fn statuses_cover_the_taxonomy() {
        for (kind, status) in [
            (ErrorKind::BadRequest, 400),
            (ErrorKind::UnknownModel, 404),
            (ErrorKind::NotFound, 404),
            (ErrorKind::MethodNotAllowed, 405),
            (ErrorKind::PayloadTooLarge, 413),
            (ErrorKind::Internal, 500),
            (ErrorKind::ShuttingDown, 503),
            (ErrorKind::TimedOut, 504),
        ] {
            assert_eq!(kind.status(), status, "{}", kind.name());
        }
    }
}
