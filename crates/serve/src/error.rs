//! The server's error taxonomy.
//!
//! Every failure a client can observe is one of a small closed set of
//! kinds, serialized as a structured JSON body — mirroring the benchmark's
//! failure-sidecar taxonomy (`panicked` / `timed_out` / …): a machine-
//! readable `kind` for dashboards and retry logic, a human message for
//! debugging. Malformed input never closes the connection and never
//! panics a worker; it produces a 400 with the offending row spelled out.
//!
//! Overload and self-healing added three kinds: `overloaded` (429 — the
//! request was shed by admission control and is safe to retry),
//! `unavailable` (503 — the model's breaker is open, its executor died,
//! or its artifact is quarantined), and `request_timeout` (408 — the
//! client fed the request slower than the read deadline allows). Shed
//! and breaker rejections carry a `Retry-After` hint, surfaced both as
//! the HTTP header and as `retry_after_seconds` in the JSON body.

use fairlens_json::{object, Value};

/// What went wrong, from the client's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Unparseable or invalid request (syntax, schema, row values).
    BadRequest,
    /// The requested model id is not in the registry.
    UnknownModel,
    /// No route matches the path.
    NotFound,
    /// The route exists but not for this method.
    MethodNotAllowed,
    /// The requested state transition is refused: promoting a shadow
    /// candidate whose comparison window is dirty (observed divergence)
    /// or empty (nothing compared yet).
    Conflict,
    /// The client did not deliver the request within the read deadline.
    RequestTimeout,
    /// Head or body exceeds the configured limits.
    PayloadTooLarge,
    /// Shed by admission control (queue full or in-flight budget spent);
    /// safe to retry after the `Retry-After` hint.
    Overloaded,
    /// The request's deadline expired before a prediction was produced.
    TimedOut,
    /// The server is draining and no longer takes new work.
    ShuttingDown,
    /// The model cannot serve right now: breaker open, executor dead and
    /// awaiting respawn, or artifact quarantined.
    Unavailable,
    /// Unexpected server-side failure (a panic in the prediction path).
    Internal,
}

impl ErrorKind {
    /// HTTP status code for the kind.
    pub fn status(self) -> u16 {
        match self {
            ErrorKind::BadRequest => 400,
            ErrorKind::UnknownModel | ErrorKind::NotFound => 404,
            ErrorKind::MethodNotAllowed => 405,
            ErrorKind::RequestTimeout => 408,
            ErrorKind::Conflict => 409,
            ErrorKind::PayloadTooLarge => 413,
            ErrorKind::Overloaded => 429,
            ErrorKind::ShuttingDown | ErrorKind::Unavailable => 503,
            ErrorKind::TimedOut => 504,
            ErrorKind::Internal => 500,
        }
    }

    /// The stable wire name of the kind.
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::UnknownModel => "unknown_model",
            ErrorKind::NotFound => "not_found",
            ErrorKind::MethodNotAllowed => "method_not_allowed",
            ErrorKind::RequestTimeout => "request_timeout",
            ErrorKind::Conflict => "conflict",
            ErrorKind::PayloadTooLarge => "payload_too_large",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::TimedOut => "timed_out",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::Unavailable => "unavailable",
            ErrorKind::Internal => "internal",
        }
    }
}

/// A client-visible error: kind + message, plus an optional retry hint.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeError {
    /// The taxonomy kind.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
    /// Seconds the client should wait before retrying; becomes the
    /// `Retry-After` response header and `retry_after_seconds` in the
    /// body. Set on shed (429) and breaker (503) rejections.
    pub retry_after: Option<u64>,
}

impl ServeError {
    /// Build an error of `kind` with a message.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        Self { kind, message: message.into(), retry_after: None }
    }

    /// Shorthand for a [`ErrorKind::BadRequest`].
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::BadRequest, message)
    }

    /// Attach a `Retry-After` hint (seconds, minimum 1 so a sub-second
    /// cooldown still yields a well-formed positive header).
    pub fn with_retry_after(mut self, secs: u64) -> Self {
        self.retry_after = Some(secs.max(1));
        self
    }

    /// The structured JSON body.
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            ("kind", Value::String(self.kind.name().into())),
            ("message", Value::String(self.message.clone())),
        ];
        if let Some(secs) = self.retry_after {
            fields.push(("retry_after_seconds", Value::Integer(secs)));
        }
        object([("error", object(fields))]).to_json()
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.name(), self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bodies_are_structured() {
        let e = ServeError::new(ErrorKind::UnknownModel, "no model \"x\"");
        assert_eq!(e.kind.status(), 404);
        let body = e.to_json();
        let v = fairlens_json::parse(&body).unwrap();
        let inner = v.get("error").unwrap();
        assert_eq!(inner.get("kind").unwrap().as_str(), Some("unknown_model"));
        assert!(inner.get("message").unwrap().as_str().unwrap().contains("x"));
        assert!(inner.get("retry_after_seconds").is_none());
    }

    #[test]
    fn retry_after_rides_in_the_body_and_is_clamped_positive() {
        let e = ServeError::new(ErrorKind::Overloaded, "queue full").with_retry_after(0);
        assert_eq!(e.retry_after, Some(1));
        let v = fairlens_json::parse(&e.to_json()).unwrap();
        assert_eq!(
            v.get("error").unwrap().get("retry_after_seconds").cloned().unwrap().into_u64(),
            Ok(1)
        );
    }

    #[test]
    fn statuses_cover_the_taxonomy() {
        for (kind, status) in [
            (ErrorKind::BadRequest, 400),
            (ErrorKind::UnknownModel, 404),
            (ErrorKind::NotFound, 404),
            (ErrorKind::MethodNotAllowed, 405),
            (ErrorKind::RequestTimeout, 408),
            (ErrorKind::Conflict, 409),
            (ErrorKind::PayloadTooLarge, 413),
            (ErrorKind::Overloaded, 429),
            (ErrorKind::Internal, 500),
            (ErrorKind::ShuttingDown, 503),
            (ErrorKind::Unavailable, 503),
            (ErrorKind::TimedOut, 504),
        ] {
            assert_eq!(kind.status(), status, "{}", kind.name());
        }
    }
}
