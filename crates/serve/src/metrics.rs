//! Prometheus text-format metrics for the prediction server.
//!
//! Counters use a mutexed map keyed by label tuple (request handling is
//! socket-bound, so one short lock per request is noise); histograms use
//! fixed buckets over atomics so the batcher's hot path never takes a
//! lock. Rendering follows the Prometheus exposition format v0.0.4:
//! `# HELP` / `# TYPE` preambles, cumulative `_bucket{le=...}` counts,
//! `_sum` and `_count` per histogram.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Latency buckets, seconds.
const LATENCY_BUCKETS: [f64; 10] =
    [0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1.0];
/// Flush-size buckets, rows.
const BATCH_BUCKETS: [f64; 8] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];
/// Predict-request phases, in request order. Must match the span names
/// the handler emits so the trace and the exposition agree.
pub const PREDICT_PHASES: [&str; 4] = ["parse", "queue", "batch", "predict"];

/// A fixed-bucket histogram over atomics.
struct Histogram<const N: usize> {
    buckets: [AtomicU64; N],
    overflow: AtomicU64,
    /// Sum scaled by 1e6 (micro-units) to stay integral.
    sum_micro: AtomicU64,
    count: AtomicU64,
    bounds: [f64; N],
}

impl<const N: usize> Histogram<N> {
    fn new(bounds: [f64; N]) -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            sum_micro: AtomicU64::new(0),
            count: AtomicU64::new(0),
            bounds,
        }
    }

    fn observe(&self, v: f64) {
        match self.bounds.iter().position(|&b| v <= b) {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.sum_micro.fetch_add((v.max(0.0) * 1e6) as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn render(&self, out: &mut String, name: &str, help: &str) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} histogram");
        self.render_series(out, name, "");
    }

    /// One histogram series under a metric `name`, tagged with `label`
    /// (e.g. `phase="queue"`; empty for an unlabelled histogram). The
    /// caller owns the `# HELP`/`# TYPE` preamble so several labelled
    /// series can share one metric family.
    fn render_series(&self, out: &mut String, name: &str, label: &str) {
        use std::fmt::Write as _;
        let sep = if label.is_empty() { String::new() } else { format!("{label},") };
        let mut cumulative = 0u64;
        for (bound, bucket) in self.bounds.iter().zip(&self.buckets) {
            cumulative += bucket.load(Ordering::Relaxed);
            let _ = writeln!(out, "{name}_bucket{{{sep}le=\"{bound}\"}} {cumulative}");
        }
        cumulative += self.overflow.load(Ordering::Relaxed);
        let _ = writeln!(out, "{name}_bucket{{{sep}le=\"+Inf\"}} {cumulative}");
        let sum = self.sum_micro.load(Ordering::Relaxed) as f64 / 1e6;
        let braces = if label.is_empty() { String::new() } else { format!("{{{label}}}") };
        let _ = writeln!(out, "{name}_sum{braces} {sum}");
        let _ = writeln!(out, "{name}_count{braces} {}", self.count.load(Ordering::Relaxed));
    }
}

/// The server's metric registry.
pub struct Metrics {
    /// `(route, status)` → request count. BTreeMap keeps render order
    /// deterministic.
    requests: Mutex<BTreeMap<(String, u16), u64>>,
    /// Error-taxonomy kind → count.
    errors: Mutex<BTreeMap<&'static str, u64>>,
    latency: Histogram<10>,
    /// Per-phase latency, index-aligned with [`PREDICT_PHASES`].
    phases: [Histogram<10>; 4],
    batch_rows: Histogram<8>,
    rows_total: AtomicU64,
    models_loaded: AtomicU64,
    model_evictions: AtomicU64,
    /// Shed reason → count (`queue_full` / `inflight` / `breaker_open`).
    sheds: Mutex<BTreeMap<&'static str, u64>>,
    /// Model id → live executor queue depth.
    queue_depth: Mutex<BTreeMap<String, u64>>,
    /// Model id → (breaker state gauge, opens counter).
    breakers: Mutex<BTreeMap<String, (u64, u64)>>,
    /// Model id → (shadow comparisons, divergences observed).
    shadow: Mutex<BTreeMap<String, (u64, u64)>>,
    /// Predict requests currently being handled.
    inflight: AtomicU64,
    /// Artifacts that failed to load/restore and were quarantined.
    load_failures: AtomicU64,
    /// `(model, metric, group)` → live windowed fairness-metric value.
    live: Mutex<BTreeMap<(String, String, String), f64>>,
    /// Model id → drift-state gauge (0 ok / 1 warning / 2 alerting).
    drift: Mutex<BTreeMap<String, u64>>,
    /// `(model, status)` → feedback reports (ok/unknown/duplicate/invalid).
    feedback: Mutex<BTreeMap<(String, &'static str), u64>>,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// A fresh registry.
    pub fn new() -> Self {
        Self {
            requests: Mutex::new(BTreeMap::new()),
            errors: Mutex::new(BTreeMap::new()),
            latency: Histogram::new(LATENCY_BUCKETS),
            phases: std::array::from_fn(|_| Histogram::new(LATENCY_BUCKETS)),
            batch_rows: Histogram::new(BATCH_BUCKETS),
            rows_total: AtomicU64::new(0),
            models_loaded: AtomicU64::new(0),
            model_evictions: AtomicU64::new(0),
            sheds: Mutex::new(BTreeMap::new()),
            queue_depth: Mutex::new(BTreeMap::new()),
            breakers: Mutex::new(BTreeMap::new()),
            shadow: Mutex::new(BTreeMap::new()),
            inflight: AtomicU64::new(0),
            load_failures: AtomicU64::new(0),
            live: Mutex::new(BTreeMap::new()),
            drift: Mutex::new(BTreeMap::new()),
            feedback: Mutex::new(BTreeMap::new()),
        }
    }

    /// Count one handled request and its wall-clock latency.
    pub fn record_request(&self, route: &str, status: u16, latency_secs: f64) {
        *self
            .requests
            .lock()
            .unwrap()
            .entry((route.to_string(), status))
            .or_insert(0) += 1;
        self.latency.observe(latency_secs);
    }

    /// Record time spent in one predict-request phase. Unknown phase
    /// names are ignored (they still reach the trace, just not the
    /// exposition).
    pub fn record_phase(&self, phase: &str, secs: f64) {
        if let Some(i) = PREDICT_PHASES.iter().position(|p| *p == phase) {
            self.phases[i].observe(secs);
        }
    }

    /// Count one taxonomy error.
    pub fn record_error(&self, kind: &'static str) {
        *self.errors.lock().unwrap().entry(kind).or_insert(0) += 1;
    }

    /// Record one batcher flush of `rows` rows.
    pub fn record_flush(&self, rows: usize) {
        self.batch_rows.observe(rows as f64);
        self.rows_total.fetch_add(rows as u64, Ordering::Relaxed);
    }

    /// Track the number of resident models.
    pub fn set_models_loaded(&self, n: usize) {
        self.models_loaded.store(n as u64, Ordering::Relaxed);
    }

    /// Count one LRU eviction.
    pub fn record_eviction(&self) {
        self.model_evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one shed request by admission-control reason.
    pub fn record_shed(&self, reason: &'static str) {
        *self.sheds.lock().unwrap().entry(reason).or_insert(0) += 1;
    }

    /// Track one model's live executor queue depth.
    pub fn set_queue_depth(&self, model: &str, depth: u64) {
        // Entry reuse keeps this at one allocation per model, not per job.
        let mut map = self.queue_depth.lock().unwrap();
        match map.get_mut(model) {
            Some(d) => *d = depth,
            None => {
                map.insert(model.to_string(), depth);
            }
        }
    }

    /// Track one model's breaker state (0 closed / 1 half-open / 2 open).
    pub fn set_breaker_state(&self, model: &str, gauge: u64) {
        let mut map = self.breakers.lock().unwrap();
        map.entry(model.to_string()).or_insert((0, 0)).0 = gauge;
    }

    /// Count one closed→open (or half-open→open) breaker transition.
    pub fn record_breaker_open(&self, model: &str) {
        self.breakers.lock().unwrap().entry(model.to_string()).or_insert((0, 0)).1 += 1;
    }

    /// Count one shadow comparison for `model`, and whether the candidate
    /// diverged from the incumbent on it.
    pub fn record_shadow_compare(&self, model: &str, diverged: bool) {
        let mut map = self.shadow.lock().unwrap();
        let entry = map.entry(model.to_string()).or_insert((0, 0));
        entry.0 += 1;
        if diverged {
            entry.1 += 1;
        }
    }

    /// Track the number of predict requests currently in flight.
    pub fn set_inflight(&self, n: u64) {
        self.inflight.store(n, Ordering::Relaxed);
    }

    /// Count one artifact load/restore failure (quarantine).
    pub fn record_load_failure(&self) {
        self.load_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Publish the full live-metric suite for one model, replacing the
    /// previous snapshot (metrics that left the suite — e.g. a group
    /// vanished from the window — must disappear from the exposition).
    pub fn set_live_metrics(&self, model: &str, values: &[(&str, &str, f64)]) {
        let mut map = self.live.lock().unwrap();
        map.retain(|(m, _, _), _| m != model);
        for &(metric, group, value) in values {
            map.insert((model.to_string(), metric.to_string(), group.to_string()), value);
        }
    }

    /// Track one model's drift state (0 ok / 1 warning / 2 alerting).
    pub fn set_drift_state(&self, model: &str, gauge: u64) {
        let mut map = self.drift.lock().unwrap();
        match map.get_mut(model) {
            Some(g) => *g = gauge,
            None => {
                map.insert(model.to_string(), gauge);
            }
        }
    }

    /// Count one `POST /v1/feedback` report by outcome
    /// (`ok` / `unknown` / `duplicate` / `invalid`).
    pub fn record_feedback(&self, model: &str, status: &'static str) {
        *self.feedback.lock().unwrap().entry((model.to_string(), status)).or_insert(0) += 1;
    }

    /// Render the Prometheus text exposition.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(2048);

        let _ = writeln!(out, "# HELP fairlens_requests_total Handled HTTP requests.");
        let _ = writeln!(out, "# TYPE fairlens_requests_total counter");
        for ((route, status), count) in self.requests.lock().unwrap().iter() {
            let _ = writeln!(
                out,
                "fairlens_requests_total{{route=\"{route}\",status=\"{status}\"}} {count}"
            );
        }

        let _ = writeln!(out, "# HELP fairlens_errors_total Structured errors by taxonomy kind.");
        let _ = writeln!(out, "# TYPE fairlens_errors_total counter");
        for (kind, count) in self.errors.lock().unwrap().iter() {
            let _ = writeln!(out, "fairlens_errors_total{{kind=\"{kind}\"}} {count}");
        }

        self.latency.render(
            &mut out,
            "fairlens_request_latency_seconds",
            "Request wall-clock latency.",
        );
        let _ = writeln!(
            out,
            "# HELP fairlens_phase_seconds Predict-request time by phase \
             (parse/queue/batch/predict)."
        );
        let _ = writeln!(out, "# TYPE fairlens_phase_seconds histogram");
        for (phase, hist) in PREDICT_PHASES.iter().zip(&self.phases) {
            hist.render_series(&mut out, "fairlens_phase_seconds", &format!("phase=\"{phase}\""));
        }

        self.batch_rows.render(
            &mut out,
            "fairlens_batch_rows",
            "Rows per batcher flush (one matrix pass each).",
        );

        let _ = writeln!(out, "# HELP fairlens_predict_rows_total Predicted rows.");
        let _ = writeln!(out, "# TYPE fairlens_predict_rows_total counter");
        let _ = writeln!(
            out,
            "fairlens_predict_rows_total {}",
            self.rows_total.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "# HELP fairlens_shed_total Requests shed by admission control, by reason."
        );
        let _ = writeln!(out, "# TYPE fairlens_shed_total counter");
        for (reason, count) in self.sheds.lock().unwrap().iter() {
            let _ = writeln!(out, "fairlens_shed_total{{reason=\"{reason}\"}} {count}");
        }

        let _ = writeln!(out, "# HELP fairlens_queue_depth Jobs queued per model executor.");
        let _ = writeln!(out, "# TYPE fairlens_queue_depth gauge");
        for (model, depth) in self.queue_depth.lock().unwrap().iter() {
            let _ = writeln!(out, "fairlens_queue_depth{{model=\"{model}\"}} {depth}");
        }

        {
            let breakers = self.breakers.lock().unwrap();
            let _ = writeln!(
                out,
                "# HELP fairlens_breaker_state Circuit-breaker state per model \
                 (0 closed, 1 half-open, 2 open)."
            );
            let _ = writeln!(out, "# TYPE fairlens_breaker_state gauge");
            for (model, (gauge, _)) in breakers.iter() {
                let _ = writeln!(out, "fairlens_breaker_state{{model=\"{model}\"}} {gauge}");
            }
            let _ = writeln!(
                out,
                "# HELP fairlens_breaker_opens_total Breaker trips (transitions to open)."
            );
            let _ = writeln!(out, "# TYPE fairlens_breaker_opens_total counter");
            for (model, (_, opens)) in breakers.iter() {
                let _ =
                    writeln!(out, "fairlens_breaker_opens_total{{model=\"{model}\"}} {opens}");
            }
        }

        {
            let shadow = self.shadow.lock().unwrap();
            let _ = writeln!(
                out,
                "# HELP fairlens_shadow_compared_total Requests scored by both the \
                 incumbent and its shadow candidate."
            );
            let _ = writeln!(out, "# TYPE fairlens_shadow_compared_total counter");
            for (model, (compared, _)) in shadow.iter() {
                let _ = writeln!(
                    out,
                    "fairlens_shadow_compared_total{{model=\"{model}\"}} {compared}"
                );
            }
            let _ = writeln!(
                out,
                "# HELP fairlens_shadow_divergence_total Shadow comparisons where the \
                 candidate's scores differed from the incumbent's."
            );
            let _ = writeln!(out, "# TYPE fairlens_shadow_divergence_total counter");
            for (model, (_, diverged)) in shadow.iter() {
                let _ = writeln!(
                    out,
                    "fairlens_shadow_divergence_total{{model=\"{model}\"}} {diverged}"
                );
            }
        }

        let _ = writeln!(
            out,
            "# HELP fairlens_live_metric Windowed live fairness/correctness metrics \
             over scored traffic."
        );
        let _ = writeln!(out, "# TYPE fairlens_live_metric gauge");
        for ((model, metric, group), value) in self.live.lock().unwrap().iter() {
            let _ = writeln!(
                out,
                "fairlens_live_metric{{model=\"{model}\",metric=\"{metric}\",group=\"{group}\"}} {value}"
            );
        }

        let _ = writeln!(
            out,
            "# HELP fairlens_drift_state Live-vs-training drift status per model \
             (0 ok, 1 warning, 2 alerting)."
        );
        let _ = writeln!(out, "# TYPE fairlens_drift_state gauge");
        for (model, gauge) in self.drift.lock().unwrap().iter() {
            let _ = writeln!(out, "fairlens_drift_state{{model=\"{model}\"}} {gauge}");
        }

        let _ = writeln!(
            out,
            "# HELP fairlens_feedback_total Outcome-label reports via POST /v1/feedback, \
             by status."
        );
        let _ = writeln!(out, "# TYPE fairlens_feedback_total counter");
        for ((model, status), count) in self.feedback.lock().unwrap().iter() {
            let _ = writeln!(
                out,
                "fairlens_feedback_total{{model=\"{model}\",status=\"{status}\"}} {count}"
            );
        }

        let _ = writeln!(out, "# HELP fairlens_inflight Predict requests currently in flight.");
        let _ = writeln!(out, "# TYPE fairlens_inflight gauge");
        let _ = writeln!(out, "fairlens_inflight {}", self.inflight.load(Ordering::Relaxed));

        let _ = writeln!(
            out,
            "# HELP fairlens_model_load_failures_total Artifact load failures (quarantines)."
        );
        let _ = writeln!(out, "# TYPE fairlens_model_load_failures_total counter");
        let _ = writeln!(
            out,
            "fairlens_model_load_failures_total {}",
            self.load_failures.load(Ordering::Relaxed)
        );

        let _ = writeln!(out, "# HELP fairlens_models_loaded Models resident in the registry.");
        let _ = writeln!(out, "# TYPE fairlens_models_loaded gauge");
        let _ =
            writeln!(out, "fairlens_models_loaded {}", self.models_loaded.load(Ordering::Relaxed));
        let _ = writeln!(out, "# HELP fairlens_model_evictions_total LRU evictions.");
        let _ = writeln!(out, "# TYPE fairlens_model_evictions_total counter");
        let _ = writeln!(
            out,
            "fairlens_model_evictions_total {}",
            self.model_evictions.load(Ordering::Relaxed)
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_histograms_render() {
        let m = Metrics::new();
        m.record_request("/v1/predict", 200, 0.003);
        m.record_request("/v1/predict", 200, 0.3);
        m.record_request("/v1/predict", 400, 0.0001);
        m.record_error("bad_request");
        m.record_phase("queue", 0.002);
        m.record_phase("queue", 0.004);
        m.record_phase("predict", 0.05);
        m.record_phase("not-a-phase", 1.0); // ignored, not a panic
        m.record_flush(3);
        m.record_flush(200);
        m.set_models_loaded(2);
        m.record_eviction();
        let text = m.render();
        assert!(text.contains(
            "fairlens_requests_total{route=\"/v1/predict\",status=\"200\"} 2"
        ));
        assert!(text.contains(
            "fairlens_requests_total{route=\"/v1/predict\",status=\"400\"} 1"
        ));
        assert!(text.contains("fairlens_errors_total{kind=\"bad_request\"} 1"));
        assert!(text.contains("fairlens_request_latency_seconds_count 3"));
        // 0.0001 and 0.003 fall below 0.005; 0.3 only in +Inf
        assert!(text.contains("fairlens_request_latency_seconds_bucket{le=\"0.005\"} 2"));
        assert!(text.contains("fairlens_request_latency_seconds_bucket{le=\"+Inf\"} 3"));
        // Labelled phase series share one HELP/TYPE family.
        assert_eq!(text.matches("# TYPE fairlens_phase_seconds histogram").count(), 1);
        assert!(text.contains("fairlens_phase_seconds_bucket{phase=\"queue\",le=\"0.005\"} 2"));
        assert!(text.contains("fairlens_phase_seconds_count{phase=\"queue\"} 2"));
        assert!(text.contains("fairlens_phase_seconds_count{phase=\"predict\"} 1"));
        assert!(text.contains("fairlens_phase_seconds_count{phase=\"parse\"} 0"));
        assert!(!text.contains("not-a-phase"));
        assert!(text.contains("fairlens_batch_rows_bucket{le=\"4\"} 1"));
        assert!(text.contains("fairlens_batch_rows_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("fairlens_batch_rows_sum 203"));
        assert!(text.contains("fairlens_predict_rows_total 203"));
        assert!(text.contains("fairlens_models_loaded 2"));
        assert!(text.contains("fairlens_model_evictions_total 1"));
    }

    #[test]
    fn overload_and_breaker_series_render() {
        let m = Metrics::new();
        m.record_shed("queue_full");
        m.record_shed("queue_full");
        m.record_shed("inflight");
        m.set_queue_depth("german-lr", 3);
        m.set_queue_depth("german-lr", 1); // gauge keeps the latest value
        m.set_breaker_state("german-lr", 2);
        m.record_breaker_open("german-lr");
        m.set_inflight(5);
        m.record_load_failure();
        m.record_shadow_compare("german-lr", false);
        m.record_shadow_compare("german-lr", true);
        let text = m.render();
        assert!(text.contains("fairlens_shed_total{reason=\"queue_full\"} 2"), "{text}");
        assert!(text.contains("fairlens_shed_total{reason=\"inflight\"} 1"));
        assert!(text.contains("fairlens_queue_depth{model=\"german-lr\"} 1"));
        assert!(text.contains("fairlens_breaker_state{model=\"german-lr\"} 2"));
        assert!(text.contains("fairlens_breaker_opens_total{model=\"german-lr\"} 1"));
        assert!(text.contains("fairlens_inflight 5"));
        assert!(text.contains("fairlens_model_load_failures_total 1"));
        assert!(text.contains("fairlens_shadow_compared_total{model=\"german-lr\"} 2"));
        assert!(text.contains("fairlens_shadow_divergence_total{model=\"german-lr\"} 1"));
    }

    #[test]
    fn monitor_series_render_and_replace() {
        let m = Metrics::new();
        m.set_live_metrics(
            "german-lr",
            &[("di_star", "all", 0.75), ("pos_rate", "0", 0.5), ("pos_rate", "1", 0.375)],
        );
        m.set_drift_state("german-lr", 0);
        m.record_feedback("german-lr", "ok");
        m.record_feedback("german-lr", "ok");
        m.record_feedback("german-lr", "duplicate");
        let text = m.render();
        assert!(text.contains(
            "fairlens_live_metric{model=\"german-lr\",metric=\"di_star\",group=\"all\"} 0.75"
        ), "{text}");
        assert!(text.contains(
            "fairlens_live_metric{model=\"german-lr\",metric=\"pos_rate\",group=\"1\"} 0.375"
        ));
        assert!(text.contains("fairlens_drift_state{model=\"german-lr\"} 0"));
        assert!(text.contains("fairlens_feedback_total{model=\"german-lr\",status=\"ok\"} 2"));
        assert!(text.contains(
            "fairlens_feedback_total{model=\"german-lr\",status=\"duplicate\"} 1"
        ));
        // A new snapshot replaces the model's whole live suite.
        m.set_live_metrics("german-lr", &[("di_star", "all", 0.8)]);
        m.set_drift_state("german-lr", 2);
        let text = m.render();
        assert!(text.contains(
            "fairlens_live_metric{model=\"german-lr\",metric=\"di_star\",group=\"all\"} 0.8"
        ));
        assert!(!text.contains("pos_rate"), "stale series must be dropped");
        assert!(text.contains("fairlens_drift_state{model=\"german-lr\"} 2"));
    }
}
