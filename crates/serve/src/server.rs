//! The prediction server: listener, worker pool, routing, drain.
//!
//! Concurrency model: one blocking accept loop hands sockets to a fixed
//! pool of connection workers over an mpsc channel (the receiver behind a
//! mutex, the textbook `std` work queue); each worker speaks keep-alive
//! HTTP/1.1 on its socket and blocks on the per-model executor for
//! predictions. Sockets carry a 250 ms read timeout so idle keep-alive
//! connections notice the shutdown flag promptly; a total read deadline
//! layered on that tick turns slow-loris requests into 408s (see
//! [`crate::http`]).
//!
//! Overload protection happens in three layers, cheapest first:
//!
//! 1. **Global in-flight budget** (`--max-inflight`): a predict request
//!    that would push concurrent predictions past the budget is shed with
//!    a 429 + `Retry-After` before its body is even parsed.
//! 2. **Per-model breaker admission** (via [`Registry::checkout`]): a
//!    model that keeps failing gets its requests rejected at the door
//!    with a 503 + `Retry-After` until a cooldown probe proves recovery.
//! 3. **Bounded executor queues** (`--max-queue`): a full queue sheds
//!    with a 429 instead of growing without bound.
//!
//! Every shed increments `fairlens_shed_total{reason=...}` and (when
//! tracing) drops a zero-width `shed:<reason>` marker on the request's
//! track. Request outcomes feed back into the model's breaker through
//! [`Registry::report`]; an executor death is never fatal to the server —
//! the handler answers 503, the breaker trips, and the registry respawns
//! the executor from its artifact on the next admitted request.
//!
//! Graceful shutdown (`POST /v1/shutdown` — `std` has no signal API, so
//! the drain trigger is a route): set the flag, self-connect to wake the
//! blocking accept, stop accepting, drop the queue sender so workers
//! drain already-accepted connections, join the pool, unload the registry
//! (joining every model executor), return `Ok(())`. In-flight requests
//! complete and are answered; idle keep-alive connections close; new
//! predict requests on draining connections get a structured 503.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use fairlens_budget::Budget;
use fairlens_frame::Dataset;
use fairlens_json::{object, parse, Value};

use crate::batcher::{BatchConfig, ModelWorker, PredictJob, PredictOutput};
use crate::breaker::BreakerConfig;
use crate::error::{ErrorKind, ServeError};
use crate::faults::ServeFaults;
use crate::http::{read_request, write_response_with, Limits, ReadOutcome, Request};
use crate::metrics::Metrics;
use crate::monitors::MonitorHub;
use crate::recorder::Recorder;
use crate::registry::{ModelInfo, ModelOutcome, Registry, ShadowSummary};
use fairlens_monitor::{DriftConfig, MonitorConfig, MonitorSnapshot, SystemClock};

const JSON: &str = "application/json";
const PROM: &str = "text/plain; version=0.0.4";

/// Server configuration (CLI flags map onto this one-to-one).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Directory of `.flm` artifacts.
    pub models_dir: PathBuf,
    /// Connection-worker threads.
    pub workers: usize,
    /// Batcher flush threshold, rows.
    pub max_batch: usize,
    /// Batcher flush window.
    pub batch_wait: Duration,
    /// Per-request prediction deadline.
    pub deadline: Duration,
    /// LRU capacity for resident models.
    pub max_loaded: usize,
    /// Bound on each model's executor queue; overflow sheds with a 429.
    pub max_queue: usize,
    /// Global budget of concurrently processed predict requests; overflow
    /// sheds with a 429 before the body is parsed (0 = unlimited).
    pub max_inflight: usize,
    /// Consecutive model failures that open its circuit breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker rejects before allowing a probe.
    pub breaker_cooldown: Duration,
    /// Requests served per connection before the server closes it, so a
    /// single pipelining client cannot monopolize a worker forever
    /// (0 = unlimited).
    pub max_conn_requests: usize,
    /// Fault-injection plan for chaos runs (empty in production).
    pub faults: Arc<ServeFaults>,
    /// HTTP parsing limits (head/body size, read deadline).
    pub limits: Limits,
    /// Write per-request trace tracks (`req/NNNNNN`) here at drain; a
    /// flamegraph-ready `.collapsed` sibling rides along.
    pub trace: Option<PathBuf>,
    /// Shadow deployments: incumbent model id → candidate artifact path.
    /// Every admitted predict is scored by both; the response comes from
    /// the incumbent and the score streams are compared.
    pub shadow: Vec<(String, PathBuf)>,
    /// ULP bound for shadow score comparison (`None` = bit-exact).
    pub shadow_tolerance: Option<u64>,
    /// Append every `/v1/predict` and `/v1/feedback` exchange to this
    /// JSONL log.
    pub record: Option<PathBuf>,
    /// Live-monitoring sliding-window capacity, rows per model.
    pub monitor_window: usize,
    /// Bound on remembered request seqs awaiting `/v1/feedback`.
    pub monitor_pending: usize,
    /// `--drift-threshold METRIC=DELTA` pairs; empty uses the monitor
    /// crate's defaults.
    pub drift_thresholds: Vec<(String, f64)>,
    /// Consecutive breaching window evaluations before `ok → warning`.
    pub drift_warn: u32,
    /// Consecutive breaching window evaluations before `warning → alerting`.
    pub drift_alert: u32,
    /// Consecutive clean evaluations that step the drift state back down.
    pub drift_recover: u32,
    /// Labeled rows required in-window before label-dependent metrics
    /// participate in drift detection.
    pub drift_min_labeled: usize,
    /// Fleet worker index (`--worker-id`). Surfaced in `/healthz` so the
    /// fleet supervisor can confirm it is probing the shard it spawned.
    pub worker_id: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8484".into(),
            models_dir: PathBuf::from("models"),
            workers: 4,
            max_batch: 64,
            batch_wait: Duration::from_millis(2),
            deadline: Duration::from_secs(5),
            max_loaded: 8,
            max_queue: 256,
            max_inflight: 64,
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_secs(1),
            max_conn_requests: 1000,
            faults: Arc::new(ServeFaults::none()),
            limits: Limits::default(),
            trace: None,
            shadow: Vec::new(),
            shadow_tolerance: None,
            record: None,
            monitor_window: 256,
            monitor_pending: 1024,
            drift_thresholds: Vec::new(),
            drift_warn: 2,
            drift_alert: 4,
            drift_recover: 4,
            drift_min_labeled: 16,
            worker_id: None,
        }
    }
}

/// Shared state for connection workers.
struct Ctx {
    registry: Registry,
    metrics: Arc<Metrics>,
    shutdown: AtomicBool,
    deadline: Duration,
    limits: Limits,
    local_addr: SocketAddr,
    /// Concurrently processed predict requests, against `max_inflight`.
    inflight: AtomicU64,
    max_inflight: u64,
    max_conn_requests: usize,
    /// Present when the server was configured with a trace path.
    trace: Option<fairlens_trace::TraceSink>,
    /// Request counter naming the per-request tracks (`req/000042`).
    req_seq: AtomicU64,
    /// Present when the server was configured with `--record`.
    recorder: Option<Recorder>,
    /// Live fairness monitoring: per-model windows, feedback joins,
    /// drift detection.
    monitors: MonitorHub,
    /// Fleet worker index, echoed in `/healthz`.
    worker_id: Option<u64>,
}

/// RAII slot in the global in-flight budget: acquired before a predict
/// request's body is parsed, released when the response is built (drop).
/// The live count is mirrored into the `fairlens_inflight` gauge.
struct InflightSlot<'a> {
    ctx: &'a Ctx,
}

impl<'a> InflightSlot<'a> {
    fn acquire(ctx: &'a Ctx) -> Option<Self> {
        let n = ctx.inflight.fetch_add(1, Ordering::SeqCst) + 1;
        if ctx.max_inflight > 0 && n > ctx.max_inflight {
            ctx.inflight.fetch_sub(1, Ordering::SeqCst);
            return None;
        }
        ctx.metrics.set_inflight(n);
        Some(Self { ctx })
    }
}

impl Drop for InflightSlot<'_> {
    fn drop(&mut self) {
        let n = self.ctx.inflight.fetch_sub(1, Ordering::SeqCst) - 1;
        self.ctx.metrics.set_inflight(n);
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    ctx: Arc<Ctx>,
    workers: usize,
    trace_path: Option<PathBuf>,
}

impl Server {
    /// Bind the listener and scan the models directory.
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Self> {
        let metrics = Arc::new(Metrics::new());
        let batch = BatchConfig {
            max_batch: cfg.max_batch.max(1),
            batch_wait: cfg.batch_wait,
            max_queue: cfg.max_queue.max(1),
        };
        let breaker =
            BreakerConfig { threshold: cfg.breaker_threshold, cooldown: cfg.breaker_cooldown };
        let mut registry = Registry::scan(
            &cfg.models_dir,
            batch,
            cfg.max_loaded,
            metrics.clone(),
            breaker,
            cfg.faults.clone(),
        )?;
        registry.set_shadow_tolerance(cfg.shadow_tolerance);
        // Shadows attach before the listener binds: a candidate that
        // cannot load or has the wrong schema fails startup, not the
        // first live comparison.
        for (id, path) in &cfg.shadow {
            registry.attach_shadow(id, path).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("--shadow {id}: {e}"),
                )
            })?;
            eprintln!("[serve] shadowing model {id:?} with candidate {}", path.display());
        }
        let recorder = match &cfg.record {
            Some(path) => {
                eprintln!("[serve] recording predict exchanges to {}", path.display());
                Some(Recorder::create(path)?)
            }
            None => None,
        };
        let monitors = MonitorHub::new(
            MonitorConfig {
                window: cfg.monitor_window,
                pending_cap: cfg.monitor_pending,
                drift: DriftConfig {
                    thresholds: cfg.drift_thresholds.clone(),
                    warn_after: cfg.drift_warn,
                    alert_after: cfg.drift_alert,
                    recover_after: cfg.drift_recover,
                    min_labeled: cfg.drift_min_labeled,
                },
            },
            metrics.clone(),
            Arc::new(SystemClock),
        );
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Self {
            listener,
            ctx: Arc::new(Ctx {
                registry,
                metrics,
                shutdown: AtomicBool::new(false),
                deadline: cfg.deadline,
                limits: cfg.limits,
                local_addr,
                inflight: AtomicU64::new(0),
                max_inflight: cfg.max_inflight as u64,
                max_conn_requests: cfg.max_conn_requests,
                trace: cfg.trace.as_ref().map(|_| fairlens_trace::TraceSink::new()),
                req_seq: AtomicU64::new(0),
                recorder,
                monitors,
                worker_id: cfg.worker_id,
            }),
            workers: cfg.workers.max(1),
            trace_path: cfg.trace,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.ctx.local_addr
    }

    /// The metric registry (shared with in-process tests).
    pub fn metrics(&self) -> Arc<Metrics> {
        self.ctx.metrics.clone()
    }

    /// Serve until drained. Returns once a shutdown request has been
    /// honoured: no accepting socket, no worker, no model executor left.
    pub fn run(self) -> std::io::Result<()> {
        eprintln!(
            "[serve] listening on {} ({} model(s), {} quarantined)",
            self.ctx.local_addr,
            self.ctx.registry.len(),
            self.ctx.registry.quarantined().len(),
        );
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let mut pool = Vec::with_capacity(self.workers);
        for i in 0..self.workers {
            let rx = rx.clone();
            let ctx = self.ctx.clone();
            pool.push(
                std::thread::Builder::new()
                    .name(format!("serve-{i}"))
                    .spawn(move || loop {
                        // The temporary guard drops before handling, so
                        // only the dequeue is serialized.
                        let stream = match rx.lock().unwrap().recv() {
                            Ok(s) => s,
                            Err(_) => return,
                        };
                        handle_connection(stream, &ctx);
                    })?,
            );
        }
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(e) => {
                    if self.ctx.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    eprintln!("[serve] accept error: {e}");
                    continue;
                }
            };
            if self.ctx.shutdown.load(Ordering::SeqCst) {
                // The self-connect wake (or a late client); stop accepting.
                drop(stream);
                break;
            }
            let _ = tx.send(stream);
        }
        drop(tx); // workers drain accepted connections, then exit
        for h in pool {
            let _ = h.join();
        }
        self.ctx.registry.shutdown(); // joins every model executor
        if let (Some(path), Some(sink)) = (&self.trace_path, &self.ctx.trace) {
            let collapsed = path.with_extension("collapsed");
            sink.write_jsonl(path)?;
            sink.write_collapsed(&collapsed)?;
            eprintln!(
                "[trace] wrote {} (flamegraph stacks: {})",
                path.display(),
                collapsed.display()
            );
        }
        eprintln!("[serve] drained, bye");
        Ok(())
    }
}

/// Speak keep-alive HTTP on one socket until close, error, or drain.
fn handle_connection(stream: TcpStream, ctx: &Ctx) {
    // The read timeout is the shutdown-poll tick for idle keep-alives and
    // the resolution of the per-request read deadline.
    if stream.set_read_timeout(Some(Duration::from_millis(250))).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut served: usize = 0;
    loop {
        let abandon_when_idle =
            |started: bool| ctx.shutdown.load(Ordering::SeqCst) && !started;
        match read_request(&mut reader, &ctx.limits, abandon_when_idle) {
            Ok(ReadOutcome::Closed) => return,
            Err(e) => {
                // Framing errors poison the stream: answer, then close.
                ctx.metrics.record_error(e.kind.name());
                ctx.metrics.record_request("parse-error", e.kind.status(), 0.0);
                let _ = write_response_with(
                    &mut writer,
                    e.kind.status(),
                    JSON,
                    e.retry_after,
                    e.to_json().as_bytes(),
                    true,
                );
                return;
            }
            Ok(ReadOutcome::Complete(req)) => {
                served += 1;
                let t0 = Instant::now();
                let (status, content_type, body, retry_after) = match route(ctx, &req) {
                    Ok((status, content_type, body)) => (status, content_type, body, None),
                    Err(e) => {
                        ctx.metrics.record_error(e.kind.name());
                        (e.kind.status(), JSON, e.to_json(), e.retry_after)
                    }
                };
                // Draining connections close after the in-flight answer,
                // as do connections that hit the per-connection request
                // cap (the client reconnects; one pipelining socket
                // cannot pin a worker forever).
                let close = req.close
                    || ctx.shutdown.load(Ordering::SeqCst)
                    || (ctx.max_conn_requests > 0 && served >= ctx.max_conn_requests);
                ctx.metrics.record_request(
                    route_label(&req.path),
                    status,
                    t0.elapsed().as_secs_f64(),
                );
                if let Some(rec) = &ctx.recorder {
                    // Feedback exchanges are part of the recorded truth:
                    // replaying them is what reproduces window state.
                    if req.path == "/v1/predict" || req.path == "/v1/feedback" {
                        rec.record(
                            &req.method,
                            &req.path,
                            &req.body,
                            status,
                            &body,
                            t0.elapsed().as_micros() as u64,
                        );
                    }
                }
                if write_response_with(
                    &mut writer,
                    status,
                    content_type,
                    retry_after,
                    body.as_bytes(),
                    close,
                )
                .is_err()
                    || close
                {
                    return;
                }
            }
        }
    }
}

/// Known paths keep their own metric label; the rest share one so a
/// path-scanning client cannot explode series cardinality.
fn route_label(path: &str) -> &str {
    match path {
        "/healthz" | "/metrics" | "/v1/models" | "/v1/predict" | "/v1/feedback"
        | "/v1/promote" | "/v1/shadow" | "/v1/refresh" | "/v1/shutdown" => path,
        _ => "other",
    }
}

fn route(ctx: &Ctx, req: &Request) -> Result<(u16, &'static str, String), ServeError> {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            // Detail beyond "ok" is for the fleet supervisor: the pid
            // confirms the probe reached the process it spawned, and
            // draining tells the router to stop placing new traffic here.
            let draining = ctx.shutdown.load(Ordering::SeqCst);
            let mut fields = vec![
                (
                    "status",
                    Value::String(if draining { "draining" } else { "ok" }.into()),
                ),
                ("pid", Value::Integer(std::process::id() as u64)),
                ("inflight", Value::Integer(ctx.inflight.load(Ordering::SeqCst))),
                ("models_loaded", Value::Integer(ctx.registry.loaded_count() as u64)),
            ];
            if let Some(w) = ctx.worker_id {
                fields.push(("worker", Value::Integer(w)));
            }
            Ok((200, JSON, object(fields).to_json()))
        }
        ("GET", "/metrics") => Ok((200, PROM, ctx.metrics.render())),
        ("GET", "/v1/models") => Ok((200, JSON, models_body(ctx))),
        ("POST", "/v1/predict") => {
            if ctx.shutdown.load(Ordering::SeqCst) {
                // Retry-After 1: the client should land on a healthy
                // replica (or the restarted server) almost immediately.
                return Err(ServeError::new(
                    ErrorKind::ShuttingDown,
                    "server is draining; no new predictions",
                )
                .with_retry_after(1));
            }
            predict(ctx, req)
        }
        ("POST", "/v1/feedback") => feedback(ctx, req),
        ("POST", "/v1/promote") => promote(ctx, req),
        ("POST", "/v1/shadow") => shadow_ctl(ctx, req),
        ("POST", "/v1/refresh") => refresh(ctx, req),
        ("POST", "/v1/shutdown") => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            // Wake the blocking accept so the drain starts immediately.
            let _ = TcpStream::connect(ctx.local_addr);
            Ok((200, JSON, object([("status", Value::String("shutting down".into()))]).to_json()))
        }
        (_, "/healthz" | "/metrics" | "/v1/models" | "/v1/predict" | "/v1/feedback"
        | "/v1/promote" | "/v1/shadow" | "/v1/refresh" | "/v1/shutdown") => {
            Err(ServeError::new(
                ErrorKind::MethodNotAllowed,
                format!("{} does not support {}", req.path, req.method),
            ))
        }
        _ => Err(ServeError::new(ErrorKind::NotFound, format!("no route {}", req.path))),
    }
}

fn shadow_value(s: &ShadowSummary) -> Value {
    let mut fields = vec![
        ("candidate", Value::String(s.candidate.display().to_string())),
        ("compared", Value::Integer(s.compared)),
        ("divergence", Value::Integer(s.diverged)),
    ];
    if let Some(d) = &s.first {
        fields.push((
            "first_divergence",
            object([
                ("request", Value::Integer(d.request)),
                ("row", Value::Integer(d.row as u64)),
                ("incumbent", Value::from_f64(d.incumbent)),
                ("candidate", Value::from_f64(d.candidate)),
                ("incumbent_bits", Value::String(format!("{:#018x}", d.incumbent.to_bits()))),
                ("candidate_bits", Value::String(format!("{:#018x}", d.candidate.to_bits()))),
            ]),
        ));
    }
    object(fields)
}

/// The live-monitoring block of one `/v1/models` entry: window
/// occupancy, the live metric suite (nested per group, floats rendered
/// bit-exactly by `fairlens-json`), the training-time baseline subset
/// drift is judged against, and the drift status with any breaching
/// metrics named.
fn monitor_value(info: &ModelInfo, snap: &MonitorSnapshot) -> Value {
    let mut groups: Vec<(String, Vec<(String, Value)>)> = Vec::new();
    for m in &snap.live {
        match groups.iter_mut().find(|(g, _)| g == m.group) {
            Some((_, fields)) => fields.push((m.metric.to_string(), Value::from_f64(m.value))),
            None => groups.push((
                m.group.to_string(),
                vec![(m.metric.to_string(), Value::from_f64(m.value))],
            )),
        }
    }
    let live = Value::Object(
        groups.into_iter().map(|(g, fields)| (g, Value::Object(fields))).collect(),
    );
    let baseline = Value::Object(
        snap.thresholds
            .iter()
            .filter_map(|(metric, _)| {
                info.train_metrics
                    .iter()
                    .find(|(k, _)| k == metric)
                    .map(|(k, v)| (k.clone(), Value::from_f64(*v)))
            })
            .collect(),
    );
    let breaching = Value::Array(
        snap.breaching
            .iter()
            .map(|b| {
                object([
                    ("metric", Value::String(b.metric.clone())),
                    ("live", Value::from_f64(b.live)),
                    ("baseline", Value::from_f64(b.baseline)),
                    ("delta", Value::from_f64(b.delta)),
                    ("threshold", Value::from_f64(b.threshold)),
                ])
            })
            .collect(),
    );
    let mut drift = vec![
        ("state", Value::String(snap.drift_state.name().into())),
        ("breaching", breaching),
        ("evaluations", Value::Integer(snap.evaluations)),
    ];
    if let Some(secs) = snap.in_state_secs {
        drift.push(("in_state_secs", Value::from_f64(secs)));
    }
    object([
        ("window_len", Value::Integer(snap.window_len as u64)),
        ("window_capacity", Value::Integer(snap.window_capacity as u64)),
        ("labeled", Value::Integer(snap.labeled as u64)),
        ("observed", Value::Integer(snap.pushed)),
        ("pending", Value::Integer(snap.pending as u64)),
        ("live", live),
        ("baseline", baseline),
        ("drift", object(drift)),
    ])
}

fn model_value(
    info: &ModelInfo,
    breaker: &'static str,
    shadow: Option<ShadowSummary>,
    monitor: Option<MonitorSnapshot>,
) -> Value {
    let mut fields = vec![
        ("id", Value::String(info.id.clone())),
        ("status", Value::String("ready".into())),
        ("breaker", Value::String(breaker.into())),
        ("approach", Value::String(info.approach.clone())),
        ("stage", Value::String(info.stage.clone())),
        ("dataset", Value::String(info.dataset.clone())),
        ("seed", Value::Integer(info.seed)),
        ("train_rows", Value::Integer(info.train_rows)),
        ("stochastic", Value::Bool(info.stochastic)),
        (
            "train_metrics",
            Value::Object(
                info.train_metrics
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::from_f64(*v)))
                    .collect(),
            ),
        ),
    ];
    if let Some(s) = shadow {
        fields.push(("shadow", shadow_value(&s)));
    }
    if let Some(snap) = monitor {
        fields.push(("monitor", monitor_value(info, &snap)));
    }
    object(fields)
}

fn unloadable_value(id: String, reason: String) -> Value {
    object([
        ("id", Value::String(id)),
        ("status", Value::String("unloadable".into())),
        ("error", Value::String(reason)),
    ])
}

fn models_body(ctx: &Ctx) -> String {
    let quarantined: std::collections::BTreeMap<String, String> =
        ctx.registry.quarantined().into_iter().collect();
    let mut models: Vec<Value> = ctx
        .registry
        .list()
        .into_iter()
        .map(|info| match quarantined.get(&info.id) {
            // Quarantined after the scan (the artifact rotted on disk):
            // listed, but marked unloadable instead of ready.
            Some(reason) => unloadable_value(info.id.clone(), reason.clone()),
            None => model_value(
                &info,
                ctx.registry.breaker_state(&info.id).name(),
                ctx.registry.shadow_summary(&info.id),
                ctx.monitors.snapshot(&info.id),
            ),
        })
        .collect();
    // Artifacts that never made it past the scan.
    for (id, reason) in quarantined {
        if ctx.registry.info(&id).is_none() {
            models.push(unloadable_value(id, reason));
        }
    }
    object([
        ("count", Value::Integer(models.len() as u64)),
        ("models", Value::Array(models)),
    ])
    .to_json()
}

/// `POST /v1/predict`: `{"model": id, "rows": [...]}` (batch) or
/// `{"model": id, "row": {...}}` (single).
fn predict(ctx: &Ctx, req: &Request) -> Result<(u16, &'static str, String), ServeError> {
    // One trace track per predict request; the guard flushes at return
    // (error paths included), so failed requests still leave their
    // `parse` span behind.
    let _collect = ctx.trace.as_ref().map(|sink| {
        sink.collect(format!("req/{:06}", ctx.req_seq.fetch_add(1, Ordering::Relaxed)))
    });
    // Layer 1: the global in-flight budget, checked before the body is
    // even parsed — shedding must stay cheap when the server is drowning.
    let Some(_slot) = InflightSlot::acquire(ctx) else {
        ctx.metrics.record_shed("inflight");
        fairlens_trace::complete("shed:inflight", Duration::ZERO);
        return Err(ServeError::new(
            ErrorKind::Overloaded,
            "server is at its in-flight request budget; retry shortly",
        )
        .with_retry_after(1));
    };
    let parse_t0 = Instant::now();
    let parse_span = fairlens_trace::span("parse");
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| ServeError::bad_request("body is not UTF-8"))?;
    let v = parse(text).map_err(|e| ServeError::bad_request(format!("invalid JSON: {e}")))?;
    let model_id = v
        .get("model")
        .and_then(Value::as_str)
        .ok_or_else(|| ServeError::bad_request("missing string field \"model\""))?;
    let (rows, singular) = match (v.get("row"), v.get("rows")) {
        (Some(row), None) => (std::slice::from_ref(row).to_vec(), true),
        (None, Some(Value::Array(rows))) => (rows.clone(), false),
        (None, Some(other)) => {
            return Err(ServeError::bad_request(format!(
                "\"rows\" must be an array, got {}",
                other.kind_name()
            )))
        }
        (Some(_), Some(_)) => {
            return Err(ServeError::bad_request("give either \"row\" or \"rows\", not both"))
        }
        (None, None) => Err(ServeError::bad_request("missing \"row\" or \"rows\""))?,
    };
    if rows.is_empty() {
        return Err(ServeError::bad_request("\"rows\" is empty"));
    }
    // Validate rows before admission layers 2 and 3: a 400 must never
    // consume a breaker probe or trip failure accounting, and the schema
    // is resident from the scan, so this costs no artifact load.
    let info = ctx.registry.model(model_id)?;
    let data = info.schema.dataset_from_rows(&rows).map_err(ServeError::bad_request)?;
    // The monitor needs the sensitive column after `data` is consumed by
    // the executor; one small copy per request.
    let groups: Vec<u8> = data.sensitive().to_vec();
    drop(parse_span); // parse = decode + validation + model lookup
    ctx.metrics.record_phase("parse", parse_t0.elapsed().as_secs_f64());

    // A shadow deployment needs the validated rows a second time; clone
    // only when one is attached so the common path stays allocation-free.
    let shadow_worker = ctx.registry.shadow_worker(model_id);
    let shadow_data = shadow_worker.as_ref().map(|_| data.clone());

    // Layer 2: breaker admission (an open breaker rejects here with a
    // 503 + Retry-After), plus the artifact load / executor respawn.
    let worker = ctx.registry.checkout(model_id)?;
    // Layer 3 (queue bound) is inside submit; every post-checkout path
    // reports exactly one outcome so breaker bookkeeping stays balanced.
    let result = drive(ctx, &worker, data);
    let outcome = match &result {
        Ok(_) => ModelOutcome::Success,
        Err(e) => match e.kind {
            // Shed at the queue: says nothing about the model's health.
            ErrorKind::Overloaded => ModelOutcome::Shed,
            // The executor thread is gone: unload + respawn next time.
            ErrorKind::Unavailable => ModelOutcome::Dead,
            // Timeouts and panics are model failures: breaker fodder.
            _ => ModelOutcome::Failure,
        },
    };
    if matches!(&result, Err(e) if e.kind == ErrorKind::Overloaded) {
        ctx.metrics.record_shed("queue_full");
        fairlens_trace::complete("shed:queue_full", Duration::ZERO);
    }
    ctx.registry.report(model_id, &worker, outcome);
    let out = result?;
    // The executor measured these on its own thread; replay them here as
    // completed spans so the request track tells the whole story, and
    // mirror them into the Prometheus phase histograms.
    for (phase, us) in
        [("queue", out.queue_us), ("batch", out.batch_us), ("predict", out.predict_us)]
    {
        fairlens_trace::complete(phase, Duration::from_micros(us));
        ctx.metrics.record_phase(phase, us as f64 / 1e6);
    }
    // Shadow scoring is synchronous, after the incumbent's answer is in
    // hand: the request pays for both predictions, but the divergence
    // counters are exact at every instant — a promote can never race a
    // still-pending comparison. The candidate never shapes the response.
    if let (Some(worker), Some(data)) = (shadow_worker, shadow_data) {
        let span = fairlens_trace::span("shadow");
        shadow_compare(ctx, model_id, &out.scores, &worker, data);
        drop(span);
    }

    // Feed the live fairness monitor: group ids from the request rows,
    // predicted labels and scores from the answer. The returned seq is
    // the handle `POST /v1/feedback` quotes to report true outcomes.
    let monitor_span = fairlens_trace::span("monitor");
    let seq =
        ctx.monitors.observe(model_id, &info.train_metrics, &groups, &out.labels, &out.scores);
    drop(monitor_span);

    let body = if singular {
        object([
            ("model", Value::String(model_id.into())),
            ("seq", Value::Integer(seq)),
            ("prediction", Value::Integer(u64::from(out.labels[0]))),
            ("score", Value::from_f64(out.scores[0])),
        ])
    } else {
        object([
            ("model", Value::String(model_id.into())),
            ("seq", Value::Integer(seq)),
            ("count", Value::Integer(out.labels.len() as u64)),
            (
                "predictions",
                Value::Array(out.labels.iter().map(|&l| Value::Integer(u64::from(l))).collect()),
            ),
            ("scores", Value::from_f64s(out.scores.iter().copied())),
        ])
    };
    Ok((200, JSON, body.to_json()))
}

/// Score the request on the shadow candidate and record the comparison
/// against the incumbent's scores. A queue-full shed on the shadow skips
/// the comparison (it says nothing about agreement); any other candidate
/// failure is recorded as a divergence — a candidate that cannot answer
/// must not be promotable.
fn shadow_compare(
    ctx: &Ctx,
    model_id: &str,
    incumbent: &[f64],
    worker: &ModelWorker,
    data: Dataset,
) {
    let candidate = match drive(ctx, worker, data) {
        Ok(out) => out.scores,
        Err(e) if e.kind == ErrorKind::Overloaded => return,
        Err(e) => {
            eprintln!("[serve] shadow for model {model_id:?} failed: {e}");
            vec![f64::NAN; incumbent.len()]
        }
    };
    ctx.registry.record_shadow(model_id, incumbent, &candidate);
}

/// `POST /v1/feedback`: `{"model": id, "seq": n, "label": 0|1}` or
/// `{"model": id, "seq": n, "labels": [...]}` — report the true outcomes
/// for a previously answered predict call so the live monitor can join
/// them onto its window. Unknown models and unknown/expired seqs are
/// 404s, a second report for the same seq is a 409, and a label count
/// that disagrees with the original request's row count is a 400.
fn feedback(ctx: &Ctx, req: &Request) -> Result<(u16, &'static str, String), ServeError> {
    // Feedback gets its own request track: a drift transition this
    // report triggers emits its trace event from this thread, and
    // without a collector the event would be dropped on the floor.
    let _collect = ctx.trace.as_ref().map(|sink| {
        sink.collect(format!("req/{:06}", ctx.req_seq.fetch_add(1, Ordering::Relaxed)))
    });
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| ServeError::bad_request("body is not UTF-8"))?;
    let v = parse(text).map_err(|e| ServeError::bad_request(format!("invalid JSON: {e}")))?;
    let model_id = v
        .get("model")
        .and_then(Value::as_str)
        .ok_or_else(|| ServeError::bad_request("missing string field \"model\""))?;
    // Resolve the model first: an unknown model is its own 404 and never
    // reaches the per-model feedback counters.
    ctx.registry.model(model_id)?;
    let seq = v
        .get("seq")
        .cloned()
        .ok_or_else(|| ServeError::bad_request("missing integer field \"seq\""))?
        .into_u64()
        .map_err(|e| ServeError::bad_request(format!("\"seq\": {e}")))?;
    let label_value = |x: Value| -> Result<u8, ServeError> {
        match x.into_u64() {
            Ok(l @ (0 | 1)) => Ok(l as u8),
            _ => Err(ServeError::bad_request("labels must be 0 or 1")),
        }
    };
    let labels: Vec<u8> = match (v.get("label"), v.get("labels")) {
        (Some(l), None) => vec![label_value(l.clone())?],
        (None, Some(Value::Array(ls))) => {
            ls.iter().cloned().map(label_value).collect::<Result<_, _>>()?
        }
        (None, Some(other)) => {
            return Err(ServeError::bad_request(format!(
                "\"labels\" must be an array, got {}",
                other.kind_name()
            )))
        }
        (Some(_), Some(_)) => {
            return Err(ServeError::bad_request("give either \"label\" or \"labels\", not both"))
        }
        (None, None) => return Err(ServeError::bad_request("missing \"label\" or \"labels\"")),
    };
    if labels.is_empty() {
        return Err(ServeError::bad_request("\"labels\" is empty"));
    }
    let receipt = ctx.monitors.feedback(model_id, seq, &labels)?;
    Ok((
        200,
        JSON,
        object([
            ("status", Value::String("ok".into())),
            ("model", Value::String(model_id.into())),
            ("seq", Value::Integer(receipt.seq)),
            ("matched", Value::Integer(receipt.matched as u64)),
            ("expected", Value::Integer(receipt.expected as u64)),
        ])
        .to_json(),
    ))
}

/// `POST /v1/promote`: `{"model": id}` — cut the model's shadow
/// candidate over the incumbent artifact, provided the comparison window
/// is non-empty and divergence-free (else a structured 409 naming the
/// first differing request and score bits).
fn promote(ctx: &Ctx, req: &Request) -> Result<(u16, &'static str, String), ServeError> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| ServeError::bad_request("body is not UTF-8"))?;
    let v = parse(text).map_err(|e| ServeError::bad_request(format!("invalid JSON: {e}")))?;
    let model_id = v
        .get("model")
        .and_then(Value::as_str)
        .ok_or_else(|| ServeError::bad_request("missing string field \"model\""))?;
    let compared = ctx.registry.promote(model_id)?;
    Ok((
        200,
        JSON,
        object([
            ("status", Value::String("promoted".into())),
            ("model", Value::String(model_id.into())),
            ("compared", Value::Integer(compared)),
        ])
        .to_json(),
    ))
}

/// `POST /v1/shadow`: runtime shadow control, the fleet's blue/green
/// staging hook. `{"model": id, "artifact": path}` attaches the artifact
/// at `path` as the model's shadow candidate (replacing any existing
/// one); `{"model": id}` detaches whatever is attached without
/// promoting — the reload abort path. Detaching with nothing attached is
/// an idempotent no-op so an abort can always run it.
fn shadow_ctl(ctx: &Ctx, req: &Request) -> Result<(u16, &'static str, String), ServeError> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| ServeError::bad_request("body is not UTF-8"))?;
    let v = parse(text).map_err(|e| ServeError::bad_request(format!("invalid JSON: {e}")))?;
    let model_id = v
        .get("model")
        .and_then(Value::as_str)
        .ok_or_else(|| ServeError::bad_request("missing string field \"model\""))?;
    match v.get("artifact").map(|a| a.as_str()) {
        Some(Some(artifact)) => {
            let path = PathBuf::from(artifact);
            ctx.registry.attach_shadow(model_id, &path).map_err(|e| {
                if e.contains("no incumbent") {
                    ServeError::new(ErrorKind::UnknownModel, e)
                } else {
                    ServeError::bad_request(e)
                }
            })?;
            eprintln!("[serve] shadowing model {model_id:?} with candidate {}", path.display());
            Ok((
                200,
                JSON,
                object([
                    ("status", Value::String("shadowing".into())),
                    ("model", Value::String(model_id.into())),
                    ("candidate", Value::String(artifact.into())),
                ])
                .to_json(),
            ))
        }
        Some(None) => Err(ServeError::bad_request("\"artifact\" must be a string path")),
        None => {
            let detached = ctx.registry.detach_shadow(model_id);
            if detached {
                eprintln!("[serve] detached shadow candidate from model {model_id:?}");
            }
            Ok((
                200,
                JSON,
                object([
                    ("status", Value::String("detached".into())),
                    ("model", Value::String(model_id.into())),
                    ("was_attached", Value::Bool(detached)),
                ])
                .to_json(),
            ))
        }
    }
}

/// `POST /v1/refresh`: `{"model": id}` — re-read the model's artifact
/// from disk, evict any resident executor (the next admitted request
/// restores the new pipeline), drop any attached shadow, and clear the
/// id's quarantine entry. This is the fleet's blue/green cutover hook:
/// the fleet swaps the artifact file, then refreshes every replica so no
/// worker keeps answering from the old version.
fn refresh(ctx: &Ctx, req: &Request) -> Result<(u16, &'static str, String), ServeError> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| ServeError::bad_request("body is not UTF-8"))?;
    let v = parse(text).map_err(|e| ServeError::bad_request(format!("invalid JSON: {e}")))?;
    let model_id = v
        .get("model")
        .and_then(Value::as_str)
        .ok_or_else(|| ServeError::bad_request("missing string field \"model\""))?;
    ctx.registry.refresh(model_id)?;
    Ok((
        200,
        JSON,
        object([
            ("status", Value::String("refreshed".into())),
            ("model", Value::String(model_id.into())),
        ])
        .to_json(),
    ))
}

/// Submit one validated job and wait for its reply within the deadline.
fn drive(
    ctx: &Ctx,
    worker: &ModelWorker,
    data: Dataset,
) -> Result<PredictOutput, ServeError> {
    let budget = Budget::new();
    let (reply, rx) = mpsc::sync_channel(1);
    worker.submit(PredictJob {
        data,
        reply,
        budget: budget.clone(),
        submitted: Instant::now(),
    })?;
    match rx.recv_timeout(ctx.deadline) {
        Ok(result) => result,
        Err(mpsc::RecvTimeoutError::Timeout) => {
            // The executor skips the job at dequeue (or unwinds at the
            // next checkpoint if it is mid-flush on this lone job).
            budget.cancel();
            Err(ServeError::new(
                ErrorKind::TimedOut,
                format!("no prediction within {:.1}s", ctx.deadline.as_secs_f64()),
            ))
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            // The executor died (panic) while holding our job: a
            // structured 503 — never a worker panic — and the caller
            // reports `Dead` so the registry respawns it.
            Err(ServeError::new(
                ErrorKind::Unavailable,
                "model executor died mid-request; it will be restarted",
            )
            .with_retry_after(1))
        }
    }
}
