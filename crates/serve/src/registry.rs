//! Model registry: startup scan, lazy load, LRU eviction.
//!
//! At startup the registry parses every `*.flm` artifact in the models
//! directory once, keeping only provenance metadata (the listing for
//! `GET /v1/models`). Pipelines are restored lazily on first use and held
//! in an LRU of at most `max_loaded` workers; evicting a worker drops its
//! job channel, which drains in-flight work and joins the executor thread
//! before the pipeline is freed (see [`ModelWorker`]'s `Drop`).

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use fairlens_core::ModelArtifact;

use crate::batcher::{BatchConfig, ModelWorker};
use crate::error::{ErrorKind, ServeError};
use crate::metrics::Metrics;

/// Provenance surfaced by `GET /v1/models`, captured at scan time.
#[derive(Debug, Clone)]
pub struct ModelInfo {
    /// The serving id (the artifact's file stem).
    pub id: String,
    /// Artifact path, loaded on demand.
    pub path: PathBuf,
    /// Fair-classification approach name (e.g. `Hardt^EO`).
    pub approach: String,
    /// Intervention stage label (pre/in/post/baseline).
    pub stage: String,
    /// Source dataset name.
    pub dataset: String,
    /// The training seed.
    pub seed: u64,
    /// Training-set size.
    pub train_rows: u64,
    /// Held-out metric suite recorded at export time.
    pub train_metrics: Vec<(String, f64)>,
    /// Whether the pipeline's predictions depend on batch composition.
    pub stochastic: bool,
}

struct LruState {
    /// id → (last-use tick, worker).
    map: HashMap<String, (u64, Arc<ModelWorker>)>,
    tick: u64,
}

/// The server's model catalogue.
pub struct Registry {
    infos: BTreeMap<String, ModelInfo>,
    loaded: Mutex<LruState>,
    cfg: BatchConfig,
    max_loaded: usize,
    metrics: Arc<Metrics>,
}

impl Registry {
    /// Scan `dir` for `*.flm` artifacts. Unreadable artifacts are reported
    /// and skipped — one corrupt file must not take the server down.
    pub fn scan(
        dir: &Path,
        cfg: BatchConfig,
        max_loaded: usize,
        metrics: Arc<Metrics>,
    ) -> std::io::Result<Self> {
        let mut infos = BTreeMap::new();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("flm") {
                continue;
            }
            let Some(id) = path.file_stem().and_then(|s| s.to_str()).map(str::to_string)
            else {
                continue;
            };
            match ModelArtifact::load(&path) {
                Ok(a) => {
                    let stochastic = a.restore().is_stochastic();
                    infos.insert(
                        id.clone(),
                        ModelInfo {
                            id,
                            path: path.clone(),
                            approach: a.approach,
                            stage: a.stage,
                            dataset: a.dataset,
                            seed: a.seed,
                            train_rows: a.train_rows,
                            train_metrics: a.train_metrics,
                            stochastic,
                        },
                    );
                }
                Err(e) => eprintln!("[serve] skipping {}: {e}", path.display()),
            }
        }
        Ok(Self {
            infos,
            loaded: Mutex::new(LruState { map: HashMap::new(), tick: 0 }),
            cfg,
            max_loaded: max_loaded.max(1),
            metrics,
        })
    }

    /// All known models, id-sorted.
    pub fn list(&self) -> impl Iterator<Item = &ModelInfo> {
        self.infos.values()
    }

    /// Number of artifacts discovered at scan.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// Whether the scan found nothing.
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }

    /// Metadata for one model.
    pub fn info(&self, id: &str) -> Option<&ModelInfo> {
        self.infos.get(id)
    }

    /// The worker for `id`, loading the artifact (and evicting the
    /// least-recently-used worker past capacity) if necessary. Loading
    /// happens under the registry lock: a burst of first requests for the
    /// same cold model deserializes it once, not once per request.
    pub fn get(&self, id: &str) -> Result<Arc<ModelWorker>, ServeError> {
        let info = self.infos.get(id).ok_or_else(|| {
            ServeError::new(ErrorKind::UnknownModel, format!("no model {id:?}"))
        })?;
        let mut lru = self.loaded.lock().unwrap();
        lru.tick += 1;
        let tick = lru.tick;
        if let Some((last_use, worker)) = lru.map.get_mut(id) {
            *last_use = tick;
            return Ok(worker.clone());
        }
        let artifact = ModelArtifact::load(&info.path).map_err(|e| {
            ServeError::new(ErrorKind::Internal, format!("cannot load model {id:?}: {e}"))
        })?;
        let worker = Arc::new(ModelWorker::spawn(
            id,
            artifact.schema.clone(),
            artifact.restore(),
            self.cfg,
            self.metrics.clone(),
        ));
        lru.map.insert(id.to_string(), (tick, worker.clone()));
        while lru.map.len() > self.max_loaded {
            let victim = lru
                .map
                .iter()
                .min_by_key(|(_, (last_use, _))| *last_use)
                .map(|(k, _)| k.clone())
                .expect("non-empty LRU");
            // The worker is dropped outside any request's reply path; if
            // a handler still holds its Arc, the executor survives until
            // that request completes.
            lru.map.remove(&victim);
            self.metrics.record_eviction();
        }
        self.metrics.set_models_loaded(lru.map.len());
        Ok(worker)
    }

    /// Unload everything, joining all executors. Called on drain.
    pub fn shutdown(&self) {
        let mut lru = self.loaded.lock().unwrap();
        lru.map.clear();
        self.metrics.set_models_loaded(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairlens_core::{baseline_approach, DataSchema};
    use fairlens_synth::DatasetKind;

    fn export(dir: &Path, id: &str, seed: u64) {
        let data = DatasetKind::German.generate(200, seed);
        let fitted = baseline_approach().fit(&data, seed).unwrap();
        let artifact = ModelArtifact {
            approach: "LR".into(),
            stage: "baseline".into(),
            dataset: "German".into(),
            seed,
            train_rows: data.n_rows() as u64,
            train_metrics: vec![("accuracy".into(), 0.5)],
            schema: DataSchema::of(&data),
            pipeline: fitted.snapshot().unwrap(),
        };
        artifact.save(&dir.join(format!("{id}.flm"))).unwrap();
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("flm-registry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn scan_lists_and_skips_corrupt() {
        let dir = temp_dir("scan");
        export(&dir, "german-lr", 1);
        export(&dir, "german-lr2", 2);
        std::fs::write(dir.join("broken.flm"), "not json").unwrap();
        std::fs::write(dir.join("ignored.txt"), "x").unwrap();
        let reg =
            Registry::scan(&dir, BatchConfig::default(), 4, Arc::new(Metrics::new())).unwrap();
        let ids: Vec<&str> = reg.list().map(|i| i.id.as_str()).collect();
        assert_eq!(ids, ["german-lr", "german-lr2"]);
        assert_eq!(reg.info("german-lr").unwrap().approach, "LR");
        assert!(reg.get("missing").is_err_and(|e| e.kind == ErrorKind::UnknownModel));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_evicts_the_coldest_worker() {
        let dir = temp_dir("lru");
        for (i, id) in ["a", "b", "c"].iter().enumerate() {
            export(&dir, id, i as u64 + 1);
        }
        let metrics = Arc::new(Metrics::new());
        let reg = Registry::scan(&dir, BatchConfig::default(), 2, metrics.clone()).unwrap();
        let _a = reg.get("a").unwrap();
        let _b = reg.get("b").unwrap();
        let _a2 = reg.get("a").unwrap(); // refresh a: b is now coldest
        let _c = reg.get("c").unwrap();
        let text = metrics.render();
        assert!(text.contains("fairlens_model_evictions_total 1"), "{text}");
        assert!(text.contains("fairlens_models_loaded 2"), "{text}");
        // The evicted model reloads transparently.
        assert!(reg.get("b").is_ok());
        reg.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
