//! Model registry: startup scan, lazy load, LRU eviction, supervision.
//!
//! At startup the registry parses every `*.flm` artifact in the models
//! directory once, keeping only provenance metadata (the listing for
//! `GET /v1/models`). Pipelines are restored lazily on first use and held
//! in an LRU of at most `max_loaded` workers; evicting a worker drops its
//! job channel, which drains in-flight work and joins the executor thread
//! before the pipeline is freed (see [`ModelWorker`]'s `Drop`).
//!
//! The registry is also the serving stack's supervisor:
//!
//! * **Circuit breaking.** Each model owns a [`CircuitBreaker`];
//!   [`Registry::checkout`] runs breaker admission before touching the
//!   LRU, and [`Registry::report`] feeds request outcomes back. An open
//!   breaker rejects with a structured 503 + `Retry-After` instead of
//!   queueing work a failing model cannot serve.
//! * **Executor respawn.** A dead executor (its thread killed by a
//!   panic) is dropped from the LRU — either when a handler reports
//!   [`ModelOutcome::Dead`] or when `checkout` notices the cached worker
//!   finished — and the next admitted request restores the pipeline from
//!   the artifact into a fresh executor. The HTTP worker never panics.
//! * **Negative caching (quarantine).** An artifact that fails to parse
//!   or restore — at scan or on a lazy load — is quarantined: the id is
//!   marked `unloadable` in `GET /v1/models`, every predict gets an
//!   immediate 503 (+ `Retry-After`), and the file is never re-read and
//!   re-failed per request. Quarantine is permanent until restart (a
//!   corrupt file does not heal), and each entry counts once in
//!   `fairlens_model_load_failures_total`.
//! * **Shadow deployments.** A candidate artifact can be attached to an
//!   incumbent model (`--shadow id=path`); every admitted predict is then
//!   scored by both, the response comes from the incumbent, and the
//!   score streams are compared bit-exactly (or within a ULP bound).
//!   [`Registry::promote`] cuts the candidate over the incumbent's
//!   artifact only when the comparison window is non-empty and clean —
//!   a dirty or empty window is a structured 409.

use std::collections::{BTreeMap, HashMap};
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use fairlens_core::{DataSchema, ModelArtifact};
use fairlens_monitor::{Clock, SystemClock};
use fairlens_xverify::Tolerance;

use crate::batcher::{BatchConfig, ModelWorker};
use crate::breaker::{Admission, BreakerConfig, BreakerState, CircuitBreaker};
use crate::error::{ErrorKind, ServeError};
use crate::faults::ServeFaults;
use crate::metrics::Metrics;

/// Provenance surfaced by `GET /v1/models`, captured at scan time.
#[derive(Debug, Clone)]
pub struct ModelInfo {
    /// The serving id (the artifact's file stem).
    pub id: String,
    /// Artifact path, loaded on demand.
    pub path: PathBuf,
    /// Fair-classification approach name (e.g. `Hardt^EO`).
    pub approach: String,
    /// Intervention stage label (pre/in/post/baseline).
    pub stage: String,
    /// Source dataset name.
    pub dataset: String,
    /// The training seed.
    pub seed: u64,
    /// Training-set size.
    pub train_rows: u64,
    /// Held-out metric suite recorded at export time.
    pub train_metrics: Vec<(String, f64)>,
    /// Whether the pipeline's predictions depend on batch composition.
    pub stochastic: bool,
    /// Input schema, kept resident so request validation (and the 400s
    /// it produces) never forces an artifact load.
    pub schema: DataSchema,
}

/// How a checked-out request ended, as observed by the predict handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelOutcome {
    /// The model produced a prediction.
    Success,
    /// The model failed the request (panic inside the flush guard,
    /// injected fault, or deadline expiry): breaker fodder.
    Failure,
    /// The executor thread is gone; drop it from the LRU so the next
    /// admitted request respawns it, and count a breaker failure.
    Dead,
    /// The request was shed after admission (e.g. queue full) without
    /// exercising the model: frees a half-open probe slot, judges
    /// nothing.
    Shed,
}

struct LruState {
    /// id → (last-use tick, worker).
    map: HashMap<String, (u64, Arc<ModelWorker>)>,
    tick: u64,
}

/// The first score disagreement a shadow deployment observed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShadowDivergence {
    /// Comparison ordinal (1-based) of the diverging request.
    pub request: u64,
    /// Row within that request's batch.
    pub row: usize,
    /// The incumbent's score for the row.
    pub incumbent: f64,
    /// The candidate's score (NaN when the candidate failed outright).
    pub candidate: f64,
}

impl std::fmt::Display for ShadowDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "request {} row {}: incumbent {:#018x} ({}) vs candidate {:#018x} ({})",
            self.request,
            self.row,
            self.incumbent.to_bits(),
            self.incumbent,
            self.candidate.to_bits(),
            self.candidate,
        )
    }
}

/// A shadow deployment's comparison window, for `GET /v1/models`.
#[derive(Debug, Clone)]
pub struct ShadowSummary {
    /// The candidate artifact's path.
    pub candidate: PathBuf,
    /// Requests scored by both incumbent and candidate.
    pub compared: u64,
    /// Comparisons where the score streams disagreed.
    pub diverged: u64,
    /// The first disagreement, pinned for the promote refusal message.
    pub first: Option<ShadowDivergence>,
}

struct ShadowState {
    path: PathBuf,
    worker: Arc<ModelWorker>,
    compared: u64,
    diverged: u64,
    first: Option<ShadowDivergence>,
}

/// The server's model catalogue and supervisor.
pub struct Registry {
    /// Mutexed (and `Arc`-valued) so [`Registry::promote`] can swap an
    /// entry for the freshly cut-over artifact while handlers hold the
    /// old metadata.
    infos: Mutex<BTreeMap<String, Arc<ModelInfo>>>,
    /// id → reason, for artifacts that failed to load or restore.
    quarantined: Mutex<BTreeMap<String, String>>,
    breakers: Mutex<HashMap<String, CircuitBreaker>>,
    loaded: Mutex<LruState>,
    /// Incumbent id → its shadow candidate and comparison window.
    shadows: Mutex<BTreeMap<String, ShadowState>>,
    /// How shadow score streams are compared (bit-exact by default).
    shadow_tolerance: Tolerance,
    cfg: BatchConfig,
    breaker_cfg: BreakerConfig,
    max_loaded: usize,
    metrics: Arc<Metrics>,
    faults: Arc<ServeFaults>,
    /// Time source for breaker admission/trip decisions. The breakers
    /// themselves never read the clock (every method takes `now`); the
    /// registry is where `now` is sourced, so injecting a
    /// [`fairlens_monitor::ManualClock`] here makes breaker timing fully
    /// deterministic in tests.
    clock: Arc<dyn Clock>,
    /// The scanned models directory, kept so [`Registry::refresh`] can
    /// resolve `{id}.flm` for ids that never loaded (quarantined at scan,
    /// or dropped into the directory after startup).
    dir: PathBuf,
}

impl Registry {
    /// Scan `dir` for `*.flm` artifacts. Unreadable artifacts are
    /// quarantined and surfaced as `unloadable` — one corrupt file must
    /// not take the server down, and must not be re-read per request.
    pub fn scan(
        dir: &Path,
        cfg: BatchConfig,
        max_loaded: usize,
        metrics: Arc<Metrics>,
        breaker_cfg: BreakerConfig,
        faults: Arc<ServeFaults>,
    ) -> std::io::Result<Self> {
        let mut infos = BTreeMap::new();
        let mut quarantined = BTreeMap::new();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("flm") {
                continue;
            }
            let Some(id) = path.file_stem().and_then(|s| s.to_str()).map(str::to_string)
            else {
                continue;
            };
            match load_artifact(&path) {
                Ok((a, stochastic)) => {
                    infos.insert(id.clone(), Arc::new(info_from(id, path.clone(), a, stochastic)));
                }
                Err(reason) => {
                    eprintln!("[serve] quarantining {}: {reason}", path.display());
                    metrics.record_load_failure();
                    quarantined.insert(id, reason);
                }
            }
        }
        Ok(Self {
            infos: Mutex::new(infos),
            quarantined: Mutex::new(quarantined),
            breakers: Mutex::new(HashMap::new()),
            loaded: Mutex::new(LruState { map: HashMap::new(), tick: 0 }),
            shadows: Mutex::new(BTreeMap::new()),
            shadow_tolerance: Tolerance::Exact,
            cfg,
            breaker_cfg,
            max_loaded: max_loaded.max(1),
            metrics,
            faults,
            clock: Arc::new(SystemClock),
            dir: dir.to_path_buf(),
        })
    }

    /// Replace the breaker time source (tests inject a
    /// [`fairlens_monitor::ManualClock`]). Configure before serving
    /// traffic.
    pub fn set_clock(&mut self, clock: Arc<dyn Clock>) {
        self.clock = clock;
    }

    /// How shadow score streams are compared: `None` keeps the bit-exact
    /// default, `Some(k)` allows `k` ulps (with the `k·ε` absolute
    /// fallback for near-zero scores). Configure before serving traffic.
    pub fn set_shadow_tolerance(&mut self, ulps: Option<u64>) {
        self.shadow_tolerance = match ulps {
            None | Some(0) => Tolerance::Exact,
            Some(k) => Tolerance::Ulps(k),
        };
    }

    /// All loadable models, id-sorted.
    pub fn list(&self) -> Vec<Arc<ModelInfo>> {
        self.infos.lock().unwrap().values().cloned().collect()
    }

    /// Quarantined ids with the failure reason, id-sorted.
    pub fn quarantined(&self) -> Vec<(String, String)> {
        self.quarantined
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Number of loadable artifacts discovered at scan.
    pub fn len(&self) -> usize {
        self.infos.lock().unwrap().len()
    }

    /// Whether the scan found nothing loadable.
    pub fn is_empty(&self) -> bool {
        self.infos.lock().unwrap().is_empty()
    }

    /// Metadata for one model.
    pub fn info(&self, id: &str) -> Option<Arc<ModelInfo>> {
        self.infos.lock().unwrap().get(id).cloned()
    }

    /// The breaker state for one model (`Closed` if it never tripped).
    pub fn breaker_state(&self, id: &str) -> BreakerState {
        self.breakers
            .lock()
            .unwrap()
            .get(id)
            .map_or(BreakerState::Closed, CircuitBreaker::state)
    }

    /// The metadata (notably the input schema) for `id`, for request
    /// validation before any admission or load work. Unknown ids are
    /// 404s; quarantined ids are immediate 503s (+ `Retry-After`) served
    /// from the negative cache (no disk I/O).
    pub fn model(&self, id: &str) -> Result<Arc<ModelInfo>, ServeError> {
        if let Some(reason) = self.quarantined.lock().unwrap().get(id) {
            return Err(ServeError::new(
                ErrorKind::Unavailable,
                format!("model {id:?} is quarantined (unloadable): {reason}"),
            )
            .with_retry_after(QUARANTINE_RETRY_AFTER));
        }
        self.info(id).ok_or_else(|| {
            ServeError::new(ErrorKind::UnknownModel, format!("no model {id:?}"))
        })
    }

    /// Admit one request through the model's breaker and hand out its
    /// worker, loading the artifact (and evicting the least-recently-used
    /// worker past capacity) if necessary. Loading happens under the
    /// registry lock: a burst of first requests for the same cold model
    /// deserializes it once, not once per request. A cached worker whose
    /// executor died is replaced here — the respawn path of supervision.
    ///
    /// Callers must pair every successful checkout with exactly one
    /// [`Registry::report`] so breaker bookkeeping (especially the
    /// half-open probe slot) stays balanced.
    pub fn checkout(&self, id: &str) -> Result<Arc<ModelWorker>, ServeError> {
        let info = self.info(id).ok_or_else(|| {
            ServeError::new(ErrorKind::UnknownModel, format!("no model {id:?}"))
        })?;
        let now = self.clock.now();
        {
            let mut breakers = self.breakers.lock().unwrap();
            let b = breakers
                .entry(id.to_string())
                .or_insert_with(|| CircuitBreaker::new(self.breaker_cfg));
            match b.admit(now) {
                Admission::Admit | Admission::Probe => {
                    self.metrics.set_breaker_state(id, b.state().gauge());
                }
                Admission::Reject { retry_after } => {
                    self.metrics.record_shed("breaker_open");
                    return Err(ServeError::new(
                        ErrorKind::Unavailable,
                        format!("model {id:?} breaker is open; retry later"),
                    )
                    .with_retry_after(retry_after.as_secs_f64().ceil() as u64));
                }
            }
        }
        match self.load_worker(&info) {
            Ok(worker) => Ok(worker),
            Err(e) => {
                // The load itself failed (quarantine): settle the breaker
                // bookkeeping we opened above — there will be no report.
                self.report_breaker_only(id, ModelOutcome::Failure);
                Err(e)
            }
        }
    }

    fn load_worker(&self, info: &ModelInfo) -> Result<Arc<ModelWorker>, ServeError> {
        let id = info.id.as_str();
        let mut lru = self.loaded.lock().unwrap();
        lru.tick += 1;
        let tick = lru.tick;
        if let Some((last_use, worker)) = lru.map.get_mut(id) {
            if !worker.is_dead() {
                *last_use = tick;
                return Ok(worker.clone());
            }
            // Executor thread gone: drop the corpse and fall through to
            // a fresh restore from the artifact.
            lru.map.remove(id);
            self.metrics.set_queue_depth(id, 0);
            eprintln!("[serve] respawning dead executor for model {id:?}");
        }
        let pipeline = match load_artifact(&info.path) {
            Ok((artifact, _)) => artifact.restore(),
            Err(reason) => {
                // Negative-cache the failure: quarantine the id so the
                // next request fails fast instead of re-reading the file.
                eprintln!("[serve] quarantining {id:?} at load: {reason}");
                self.metrics.record_load_failure();
                self.quarantined.lock().unwrap().insert(id.to_string(), reason.clone());
                return Err(ServeError::new(
                    ErrorKind::Unavailable,
                    format!("model {id:?} is quarantined (unloadable): {reason}"),
                )
                .with_retry_after(QUARANTINE_RETRY_AFTER));
            }
        };
        let worker = Arc::new(ModelWorker::spawn(
            id,
            info.schema.clone(),
            pipeline,
            self.cfg,
            self.metrics.clone(),
            self.faults.clone(),
        ));
        lru.map.insert(id.to_string(), (tick, worker.clone()));
        while lru.map.len() > self.max_loaded {
            let victim = lru
                .map
                .iter()
                .min_by_key(|(_, (last_use, _))| *last_use)
                .map(|(k, _)| k.clone())
                .expect("non-empty LRU");
            // The worker is dropped outside any request's reply path; if
            // a handler still holds its Arc, the executor survives until
            // that request completes.
            lru.map.remove(&victim);
            self.metrics.record_eviction();
        }
        self.metrics.set_models_loaded(lru.map.len());
        Ok(worker)
    }

    /// Report the outcome of a checked-out request: feeds the breaker and
    /// — for [`ModelOutcome::Dead`] — unloads the dead worker so the next
    /// admitted request respawns the executor from the artifact.
    pub fn report(&self, id: &str, worker: &Arc<ModelWorker>, outcome: ModelOutcome) {
        if outcome == ModelOutcome::Dead {
            let mut lru = self.loaded.lock().unwrap();
            if let Some((_, cached)) = lru.map.get(id) {
                if Arc::ptr_eq(cached, worker) {
                    lru.map.remove(id);
                    self.metrics.set_models_loaded(lru.map.len());
                }
            }
            // The corpse's queue is gone with it.
            self.metrics.set_queue_depth(id, 0);
        }
        self.report_breaker_only(id, outcome);
    }

    fn report_breaker_only(&self, id: &str, outcome: ModelOutcome) {
        let now = self.clock.now();
        let mut breakers = self.breakers.lock().unwrap();
        let Some(b) = breakers.get_mut(id) else { return };
        let opened = match outcome {
            ModelOutcome::Success => {
                b.on_success();
                false
            }
            ModelOutcome::Failure | ModelOutcome::Dead => b.on_failure(now),
            ModelOutcome::Shed => {
                b.release();
                false
            }
        };
        if opened {
            self.metrics.record_breaker_open(id);
            eprintln!("[serve] breaker opened for model {id:?}");
        }
        self.metrics.set_breaker_state(id, b.state().gauge());
    }

    /// Attach a shadow candidate to incumbent `id`: the candidate must
    /// load, restore, and carry the incumbent's exact input schema (a
    /// shadow that cannot score the same requests is a config error, not
    /// a divergence). The candidate gets its own executor immediately —
    /// a broken artifact fails startup, not the first live comparison.
    pub fn attach_shadow(&self, id: &str, path: &Path) -> Result<(), String> {
        let info = self.info(id).ok_or_else(|| format!("no incumbent model {id:?}"))?;
        let (artifact, _) = load_artifact(path)
            .map_err(|e| format!("candidate {} failed to load: {e}", path.display()))?;
        if artifact.schema != info.schema {
            return Err(format!(
                "candidate {} input schema differs from incumbent {id:?}",
                path.display()
            ));
        }
        let pipeline = artifact.restore();
        let worker = Arc::new(ModelWorker::spawn(
            &format!("{id}#shadow"),
            artifact.schema.clone(),
            pipeline,
            self.cfg,
            self.metrics.clone(),
            self.faults.clone(),
        ));
        self.shadows.lock().unwrap().insert(
            id.to_string(),
            ShadowState {
                path: path.to_path_buf(),
                worker,
                compared: 0,
                diverged: 0,
                first: None,
            },
        );
        Ok(())
    }

    /// The shadow executor for `id`, if a candidate is attached.
    pub fn shadow_worker(&self, id: &str) -> Option<Arc<ModelWorker>> {
        self.shadows.lock().unwrap().get(id).map(|s| s.worker.clone())
    }

    /// Record one shadow comparison: the incumbent's scores against the
    /// candidate's (pass NaNs when the candidate failed — a candidate
    /// that cannot answer is a divergence, not a pass). Returns whether
    /// the streams diverged; the first divergence is pinned for the
    /// promote refusal and `GET /v1/models`.
    pub fn record_shadow(&self, id: &str, incumbent: &[f64], candidate: &[f64]) -> bool {
        let mut shadows = self.shadows.lock().unwrap();
        let Some(state) = shadows.get_mut(id) else { return false };
        state.compared += 1;
        let rows = incumbent.len().max(candidate.len());
        let mismatch = (0..rows).find_map(|row| {
            let a = incumbent.get(row).copied().unwrap_or(f64::NAN);
            let b = candidate.get(row).copied().unwrap_or(f64::NAN);
            (!self.shadow_tolerance.matches(a, b)).then_some(ShadowDivergence {
                request: state.compared,
                row,
                incumbent: a,
                candidate: b,
            })
        });
        let diverged = mismatch.is_some();
        if let Some(d) = mismatch {
            state.diverged += 1;
            if state.first.is_none() {
                eprintln!("[serve] shadow divergence for model {id:?}: {d}");
                state.first = Some(d);
            }
        }
        self.metrics.record_shadow_compare(id, diverged);
        diverged
    }

    /// The comparison window for `id`'s shadow, if one is attached.
    pub fn shadow_summary(&self, id: &str) -> Option<ShadowSummary> {
        self.shadows.lock().unwrap().get(id).map(|s| ShadowSummary {
            candidate: s.path.clone(),
            compared: s.compared,
            diverged: s.diverged,
            first: s.first,
        })
    }

    /// Promote `id`'s shadow candidate to incumbent. Refuses with a 400
    /// when no shadow is attached and a structured 409 when the
    /// comparison window is empty (nothing proven) or dirty (divergence
    /// observed — the refusal names the first differing request and both
    /// score bit patterns). On success the candidate's bytes replace the
    /// incumbent's artifact (write-then-rename), the catalogue entry is
    /// refreshed from the promoted file, the incumbent's resident
    /// executor is evicted so the next request restores the promoted
    /// pipeline, and the shadow is detached. Returns the size of the
    /// clean comparison window.
    pub fn promote(&self, id: &str) -> Result<u64, ServeError> {
        let info = self.info(id).ok_or_else(|| {
            ServeError::new(ErrorKind::UnknownModel, format!("no model {id:?}"))
        })?;
        let mut shadows = self.shadows.lock().unwrap();
        let Some(state) = shadows.get(id) else {
            return Err(ServeError::bad_request(format!(
                "no shadow candidate attached for model {id:?}"
            )));
        };
        if state.compared == 0 {
            return Err(ServeError::new(
                ErrorKind::Conflict,
                format!(
                    "model {id:?} shadow has no comparisons yet; \
                     drive traffic through it before promoting"
                ),
            ));
        }
        if state.diverged > 0 {
            let first = state
                .first
                .map(|d| format!("; first divergence at {d}"))
                .unwrap_or_default();
            return Err(ServeError::new(
                ErrorKind::Conflict,
                format!(
                    "model {id:?} shadow diverged on {} of {} comparisons{first}",
                    state.diverged, state.compared
                ),
            ));
        }
        let internal =
            |msg: String| ServeError::new(ErrorKind::Internal, msg);
        let bytes = std::fs::read(&state.path).map_err(|e| {
            internal(format!("cannot read candidate {}: {e}", state.path.display()))
        })?;
        // Write-then-rename so a crash mid-cutover never leaves a
        // half-written incumbent artifact.
        let tmp = info.path.with_extension("flm.tmp");
        std::fs::write(&tmp, &bytes)
            .and_then(|()| std::fs::rename(&tmp, &info.path))
            .map_err(|e| internal(format!("cutover to {} failed: {e}", info.path.display())))?;
        let (artifact, stochastic) = load_artifact(&info.path).map_err(|e| {
            internal(format!("promoted artifact failed to re-load: {e}"))
        })?;
        self.infos.lock().unwrap().insert(
            id.to_string(),
            Arc::new(info_from(id.to_string(), info.path.clone(), artifact, stochastic)),
        );
        {
            let mut lru = self.loaded.lock().unwrap();
            lru.map.remove(id);
            self.metrics.set_models_loaded(lru.map.len());
            self.metrics.set_queue_depth(id, 0);
        }
        let compared = state.compared;
        shadows.remove(id);
        eprintln!(
            "[serve] promoted shadow candidate for model {id:?} \
             after {compared} clean comparison(s)"
        );
        Ok(compared)
    }

    /// Detach `id`'s shadow candidate without promoting — the fleet's
    /// reload abort path. Returns whether one was attached; detaching
    /// with nothing attached is a no-op, so the abort path is idempotent.
    pub fn detach_shadow(&self, id: &str) -> bool {
        self.shadows.lock().unwrap().remove(id).is_some()
    }

    /// Number of models with a resident executor right now.
    pub fn loaded_count(&self) -> usize {
        self.loaded.lock().unwrap().map.len()
    }

    /// Re-read `id`'s artifact from disk: refresh the catalogue entry,
    /// evict any resident executor (the next admitted request restores
    /// the new pipeline), detach any attached shadow, and clear the id's
    /// quarantine entry — a refresh is an explicit operator assertion
    /// that the file was replaced, the one case where quarantine may
    /// heal without a restart. This is the fleet's blue/green cutover
    /// hook: the fleet swaps the artifact file in the shared models
    /// directory, then refreshes every replica. Ids never seen before
    /// resolve to `{dir}/{id}.flm`, so a refresh can also introduce a
    /// model dropped into the directory after startup.
    pub fn refresh(&self, id: &str) -> Result<(), ServeError> {
        let path = self
            .info(id)
            .map(|i| i.path.clone())
            .unwrap_or_else(|| self.dir.join(format!("{id}.flm")));
        let (artifact, stochastic) = load_artifact(&path).map_err(|reason| {
            // The file on disk is (still) bad: keep or enter quarantine
            // so per-request traffic keeps getting the cached 503.
            eprintln!("[serve] refresh of model {id:?} failed: {reason}");
            self.metrics.record_load_failure();
            self.quarantined.lock().unwrap().insert(id.to_string(), reason.clone());
            ServeError::new(
                ErrorKind::Unavailable,
                format!("model {id:?} failed to refresh: {reason}"),
            )
            .with_retry_after(QUARANTINE_RETRY_AFTER)
        })?;
        self.quarantined.lock().unwrap().remove(id);
        self.infos.lock().unwrap().insert(
            id.to_string(),
            Arc::new(info_from(id.to_string(), path, artifact, stochastic)),
        );
        {
            let mut lru = self.loaded.lock().unwrap();
            lru.map.remove(id);
            self.metrics.set_models_loaded(lru.map.len());
            self.metrics.set_queue_depth(id, 0);
        }
        self.shadows.lock().unwrap().remove(id);
        eprintln!("[serve] refreshed model {id:?} from disk");
        Ok(())
    }

    /// Unload everything, joining all executors (shadows included).
    /// Called on drain.
    pub fn shutdown(&self) {
        self.shadows.lock().unwrap().clear();
        let mut lru = self.loaded.lock().unwrap();
        lru.map.clear();
        self.metrics.set_models_loaded(0);
    }
}

/// `Retry-After` hint on quarantine 503s: quarantine only heals on
/// restart, so point clients at a redeploy-scale horizon, not a backoff
/// spin.
const QUARANTINE_RETRY_AFTER: u64 = 30;

fn info_from(id: String, path: PathBuf, a: ModelArtifact, stochastic: bool) -> ModelInfo {
    ModelInfo {
        id,
        path,
        approach: a.approach,
        stage: a.stage,
        dataset: a.dataset,
        seed: a.seed,
        train_rows: a.train_rows,
        train_metrics: a.train_metrics,
        stochastic,
        schema: a.schema,
    }
}

/// Parse an artifact and prove it restores (the restore result also
/// yields the stochasticity flag for the listing). Any parse error or
/// restore panic becomes a quarantine reason.
fn load_artifact(path: &Path) -> Result<(ModelArtifact, bool), String> {
    let artifact = ModelArtifact::load(path)?;
    let stochastic =
        std::panic::catch_unwind(AssertUnwindSafe(|| artifact.restore().is_stochastic()))
            .map_err(|_| "artifact restore panicked".to_string())?;
    Ok((artifact, stochastic))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairlens_core::baseline_approach;
    use fairlens_synth::DatasetKind;
    use std::time::Instant;

    fn export(dir: &Path, id: &str, seed: u64) {
        let data = DatasetKind::German.generate(200, seed);
        let fitted = baseline_approach().fit(&data, seed).unwrap();
        let artifact = ModelArtifact {
            approach: "LR".into(),
            stage: "baseline".into(),
            dataset: "German".into(),
            seed,
            train_rows: data.n_rows() as u64,
            train_metrics: vec![("accuracy".into(), 0.5)],
            schema: DataSchema::of(&data),
            pipeline: fitted.snapshot().unwrap(),
        };
        artifact.save(&dir.join(format!("{id}.flm"))).unwrap();
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("flm-registry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn scan(dir: &Path, max_loaded: usize, metrics: Arc<Metrics>) -> Registry {
        Registry::scan(
            dir,
            BatchConfig::default(),
            max_loaded,
            metrics,
            BreakerConfig::default(),
            Arc::new(ServeFaults::none()),
        )
        .unwrap()
    }

    #[test]
    fn scan_lists_loadable_and_quarantines_corrupt() {
        let dir = temp_dir("scan");
        export(&dir, "german-lr", 1);
        export(&dir, "german-lr2", 2);
        std::fs::write(dir.join("broken.flm"), "not json").unwrap();
        std::fs::write(dir.join("ignored.txt"), "x").unwrap();
        let metrics = Arc::new(Metrics::new());
        let reg = scan(&dir, 4, metrics.clone());
        let ids: Vec<String> = reg.list().iter().map(|i| i.id.clone()).collect();
        assert_eq!(ids, ["german-lr", "german-lr2"]);
        assert_eq!(reg.info("german-lr").unwrap().approach, "LR");
        assert!(reg.model("missing").is_err_and(|e| e.kind == ErrorKind::UnknownModel));
        assert!(reg.checkout("missing").is_err_and(|e| e.kind == ErrorKind::UnknownModel));
        // The corrupt artifact is listed as quarantined, counted once,
        // and every predict against it is an immediate 503.
        let q = reg.quarantined();
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].0, "broken");
        let err = reg.model("broken").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Unavailable);
        assert_eq!(err.retry_after, Some(QUARANTINE_RETRY_AFTER));
        assert!(metrics.render().contains("fairlens_model_load_failures_total 1"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_evicts_the_coldest_worker() {
        let dir = temp_dir("lru");
        for (i, id) in ["a", "b", "c"].iter().enumerate() {
            export(&dir, id, i as u64 + 1);
        }
        let metrics = Arc::new(Metrics::new());
        let reg = scan(&dir, 2, metrics.clone());
        let _a = reg.checkout("a").unwrap();
        reg.report("a", &_a, ModelOutcome::Success);
        let _b = reg.checkout("b").unwrap();
        reg.report("b", &_b, ModelOutcome::Success);
        let _a2 = reg.checkout("a").unwrap(); // refresh a: b is now coldest
        reg.report("a", &_a2, ModelOutcome::Success);
        let _c = reg.checkout("c").unwrap();
        reg.report("c", &_c, ModelOutcome::Success);
        let text = metrics.render();
        assert!(text.contains("fairlens_model_evictions_total 1"), "{text}");
        assert!(text.contains("fairlens_models_loaded 2"), "{text}");
        // The evicted model reloads transparently.
        assert!(reg.checkout("b").is_ok());
        reg.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_failure_is_negatively_cached() {
        let dir = temp_dir("negcache");
        export(&dir, "german-lr", 3);
        let metrics = Arc::new(Metrics::new());
        let reg = scan(&dir, 4, metrics.clone());
        // Corrupt the artifact after the scan: the first load fails and
        // quarantines the id.
        std::fs::write(dir.join("german-lr.flm"), "{ scrambled").unwrap();
        let err = reg.checkout("german-lr").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Unavailable);
        assert!(err.message.contains("quarantined"), "{err}");
        assert_eq!(err.retry_after, Some(QUARANTINE_RETRY_AFTER));
        // Restore a pristine artifact on disk: the negative cache must
        // answer without re-reading the file, so the id stays quarantined.
        export(&dir, "german-lr", 3);
        let err = reg.model("german-lr").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Unavailable);
        assert!(err.message.contains("quarantined"), "{err}");
        assert_eq!(reg.quarantined().len(), 1);
        assert!(metrics.render().contains("fairlens_model_load_failures_total 1"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shadow_window_gates_promotion() {
        let dir = temp_dir("shadow");
        export(&dir, "m", 11);
        // The candidate: byte-identical copy of the incumbent.
        std::fs::copy(dir.join("m.flm"), dir.join("candidate.flm")).unwrap();
        let metrics = Arc::new(Metrics::new());
        let reg = scan(&dir, 4, metrics.clone());
        // No shadow attached → 400, not 409.
        assert!(reg.promote("m").is_err_and(|e| e.kind == ErrorKind::BadRequest));
        reg.attach_shadow("m", &dir.join("candidate.flm")).unwrap();
        assert!(reg.shadow_worker("m").is_some());
        // Empty window → 409: nothing has been proven yet.
        let err = reg.promote("m").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Conflict);
        assert!(err.message.contains("no comparisons"), "{err}");
        // Identical scores → clean comparison, promote succeeds.
        assert!(!reg.record_shadow("m", &[0.25, 0.5], &[0.25, 0.5]));
        assert_eq!(reg.shadow_summary("m").unwrap().compared, 1);
        assert_eq!(reg.promote("m").unwrap(), 1);
        assert!(reg.shadow_summary("m").is_none(), "shadow detaches on promote");
        let text = metrics.render();
        assert!(text.contains("fairlens_shadow_compared_total{model=\"m\"} 1"), "{text}");
        assert!(text.contains("fairlens_shadow_divergence_total{model=\"m\"} 0"), "{text}");
        reg.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shadow_divergence_blocks_promotion_with_the_bits() {
        let dir = temp_dir("shadow-div");
        export(&dir, "m", 13);
        std::fs::copy(dir.join("m.flm"), dir.join("candidate.flm")).unwrap();
        let metrics = Arc::new(Metrics::new());
        let reg = scan(&dir, 4, metrics.clone());
        reg.attach_shadow("m", &dir.join("candidate.flm")).unwrap();
        assert!(!reg.record_shadow("m", &[0.5], &[0.5]));
        // One ulp off on row 1 of the second comparison.
        let off = f64::from_bits(0.75f64.to_bits() ^ 1);
        assert!(reg.record_shadow("m", &[0.5, 0.75], &[0.5, off]));
        // A candidate that failed outright (NaN scores) also diverges.
        assert!(reg.record_shadow("m", &[0.5], &[f64::NAN]));
        let s = reg.shadow_summary("m").unwrap();
        assert_eq!((s.compared, s.diverged), (3, 2));
        let first = s.first.unwrap();
        assert_eq!((first.request, first.row), (2, 1));
        let err = reg.promote("m").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Conflict);
        // The refusal names the first differing request and both score
        // bit patterns.
        assert!(err.message.contains("2 of 3"), "{err}");
        assert!(err.message.contains("request 2 row 1"), "{err}");
        assert!(err.message.contains(&format!("{:#018x}", 0.75f64.to_bits())), "{err}");
        assert!(err.message.contains(&format!("{:#018x}", off.to_bits())), "{err}");
        let text = metrics.render();
        assert!(text.contains("fairlens_shadow_divergence_total{model=\"m\"} 2"), "{text}");
        reg.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shadow_tolerance_and_schema_are_enforced() {
        let dir = temp_dir("shadow-tol");
        export(&dir, "m", 17);
        std::fs::copy(dir.join("m.flm"), dir.join("candidate.flm")).unwrap();
        let metrics = Arc::new(Metrics::new());
        let mut reg = scan(&dir, 4, metrics);
        reg.set_shadow_tolerance(Some(4));
        assert!(reg.attach_shadow("missing", &dir.join("candidate.flm")).is_err());
        assert!(reg
            .attach_shadow("m", &dir.join("nope.flm"))
            .is_err_and(|e| e.contains("failed to load")));
        // A candidate trained on a different input schema cannot shadow.
        let other = DatasetKind::Adult.generate(200, 1);
        let fitted = baseline_approach().fit(&other, 1).unwrap();
        let artifact = ModelArtifact {
            approach: "LR".into(),
            stage: "baseline".into(),
            dataset: "Adult".into(),
            seed: 1,
            train_rows: other.n_rows() as u64,
            train_metrics: vec![],
            schema: DataSchema::of(&other),
            pipeline: fitted.snapshot().unwrap(),
        };
        artifact.save(&dir.join("other.flm")).unwrap();
        assert!(reg
            .attach_shadow("m", &dir.join("other.flm"))
            .is_err_and(|e| e.contains("schema")));
        reg.attach_shadow("m", &dir.join("candidate.flm")).unwrap();
        // Within the ulp bound → clean; far off → divergence.
        let near = f64::from_bits(0.5f64.to_bits() + 3);
        assert!(!reg.record_shadow("m", &[0.5], &[near]));
        assert!(reg.record_shadow("m", &[0.5], &[0.625]));
        reg.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn breaker_trips_after_reported_failures_and_recovers() {
        let dir = temp_dir("breaker");
        export(&dir, "m", 5);
        let metrics = Arc::new(Metrics::new());
        let mut reg = Registry::scan(
            &dir,
            BatchConfig::default(),
            2,
            metrics.clone(),
            BreakerConfig { threshold: 2, cooldown: std::time::Duration::from_millis(50) },
            Arc::new(ServeFaults::none()),
        )
        .unwrap();
        // Drive breaker timing off a hand-cranked clock: no sleeps, no
        // timing flake — cooldown expiry happens exactly when advanced.
        let clock = fairlens_monitor::ManualClock::new();
        reg.set_clock(Arc::new(clock.clone()));
        let w = reg.checkout("m").unwrap();
        reg.report("m", &w, ModelOutcome::Failure);
        assert_eq!(reg.breaker_state("m"), BreakerState::Closed);
        let w = reg.checkout("m").unwrap();
        reg.report("m", &w, ModelOutcome::Failure);
        assert_eq!(reg.breaker_state("m"), BreakerState::Open);
        // Open: immediate 503 with Retry-After, counted as a shed.
        let err = reg.checkout("m").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Unavailable);
        assert!(err.retry_after.is_some());
        let text = metrics.render();
        assert!(text.contains("fairlens_shed_total{reason=\"breaker_open\"} 1"), "{text}");
        assert!(text.contains("fairlens_breaker_opens_total{model=\"m\"} 1"), "{text}");
        assert!(text.contains("fairlens_breaker_state{model=\"m\"} 2"), "{text}");
        // After the cooldown the probe flows and a success re-closes.
        clock.advance(std::time::Duration::from_millis(60));
        let w = reg.checkout("m").unwrap();
        reg.report("m", &w, ModelOutcome::Success);
        assert_eq!(reg.breaker_state("m"), BreakerState::Closed);
        assert!(metrics.render().contains("fairlens_breaker_state{model=\"m\"} 0"));
        reg.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_worker_is_respawned_on_next_checkout() {
        let dir = temp_dir("respawn");
        export(&dir, "m", 7);
        let metrics = Arc::new(Metrics::new());
        let reg = Registry::scan(
            &dir,
            BatchConfig::default(),
            2,
            metrics.clone(),
            BreakerConfig { threshold: 10, cooldown: std::time::Duration::from_millis(10) },
            // One executor panic: the first dequeue kills the thread.
            Arc::new(ServeFaults::parse("panic:m:1").unwrap()),
        )
        .unwrap();
        let w = reg.checkout("m").unwrap();
        // Feed it one job so the injected panic fires and the thread dies.
        let (reply, rx) = std::sync::mpsc::sync_channel(1);
        let data = DatasetKind::German.generate(8, 7);
        w.submit(crate::batcher::PredictJob {
            data: data.select_rows(&[0]),
            reply,
            budget: fairlens_budget::Budget::new(),
            submitted: Instant::now(),
        })
        .unwrap();
        assert!(rx.recv_timeout(std::time::Duration::from_secs(5)).is_err());
        reg.report("m", &w, ModelOutcome::Dead);
        drop(w);
        // Fault budget spent: the next checkout respawns a live executor
        // that serves correctly.
        let w2 = reg.checkout("m").unwrap();
        assert!(!w2.is_dead());
        let (reply, rx) = std::sync::mpsc::sync_channel(1);
        w2.submit(crate::batcher::PredictJob {
            data: data.select_rows(&[0]),
            reply,
            budget: fairlens_budget::Budget::new(),
            submitted: Instant::now(),
        })
        .unwrap();
        assert!(rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap().is_ok());
        reg.report("m", &w2, ModelOutcome::Success);
        reg.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
