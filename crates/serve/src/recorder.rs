//! Request/response recording for the replay regression harness.
//!
//! With `--record PATH` the server appends one JSONL entry per
//! `/v1/predict` exchange: sequence number, method, path, status, the
//! parsed request and response bodies, and the response's score bit
//! patterns (`f64::to_bits`, recoverable because the JSON layer prints
//! shortest round-trip floats). Timestamps come **last** in each entry so
//! two recordings of the same traffic diff cleanly up to the clock
//! fields.
//!
//! The log is the input to the loadgen's `--replay` mode, which re-sends
//! every recorded request against a live server and diffs status codes
//! and score bits — a regression harness for "same artifacts, same
//! answers" across server versions.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use fairlens_json::{object, parse, Value};

/// An append-only JSONL recorder shared by the connection workers.
pub struct Recorder {
    out: Mutex<BufWriter<File>>,
    seq: AtomicU64,
}

impl Recorder {
    /// Open `path` for appending (created if missing), so a restarted
    /// server extends the log instead of truncating the evidence.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self { out: Mutex::new(BufWriter::new(file)), seq: AtomicU64::new(0) })
    }

    /// Append one exchange. Bodies that fail to parse as JSON are kept
    /// as strings — a malformed request is exactly the kind of exchange
    /// a replay wants to reproduce.
    pub fn record(
        &self,
        method: &str,
        path: &str,
        request_body: &[u8],
        status: u16,
        response_body: &str,
        elapsed_us: u64,
    ) {
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        let request = match std::str::from_utf8(request_body) {
            Ok(text) => parse(text)
                .unwrap_or_else(|_| Value::String(text.to_string())),
            Err(_) => Value::String(String::from_utf8_lossy(request_body).into_owned()),
        };
        let response =
            parse(response_body).unwrap_or_else(|_| Value::String(response_body.to_string()));
        let bits = score_bits(&response);
        let ts = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let line = object([
            ("seq", Value::Integer(seq)),
            ("method", Value::String(method.into())),
            ("path", Value::String(path.into())),
            ("status", Value::Integer(u64::from(status))),
            ("request", request),
            ("response", response),
            ("score_bits", Value::Array(bits.into_iter().map(Value::Integer).collect())),
            ("elapsed_us", Value::Integer(elapsed_us)),
            ("ts_unix_ms", Value::Integer(ts)),
        ])
        .to_json();
        let mut out = self.out.lock().unwrap();
        // Line-buffered durability: a crashed server loses at most the
        // entry being written, never tears one across lines.
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }
}

/// The score bit patterns in a predict response body: `score` (single)
/// or `scores` (batch); error bodies yield an empty list.
pub fn score_bits(response: &Value) -> Vec<u64> {
    if let Some(s) = response.get("score") {
        return s.clone().into_f64().map(|v| vec![v.to_bits()]).unwrap_or_default();
    }
    match response.get("scores") {
        Some(Value::Array(items)) => items
            .iter()
            .filter_map(|v| v.clone().into_f64().ok())
            .map(f64::to_bits)
            .collect(),
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_are_jsonl_with_timestamps_last() {
        let path = std::env::temp_dir()
            .join(format!("flm-recorder-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let rec = Recorder::create(&path).unwrap();
        rec.record(
            "POST",
            "/v1/predict",
            br#"{"model":"m","row":{"age":1}}"#,
            200,
            r#"{"model":"m","prediction":1,"score":0.75}"#,
            1234,
        );
        rec.record("POST", "/v1/predict", b"not json", 400, r#"{"error":{}}"#, 10);
        drop(rec);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = parse(lines[0]).unwrap();
        assert_eq!(first.get("seq").cloned().unwrap().into_u64(), Ok(0));
        assert_eq!(first.get("status").cloned().unwrap().into_u64(), Ok(200));
        assert_eq!(
            first.get("request").unwrap().get("model").unwrap().as_str(),
            Some("m")
        );
        assert_eq!(
            first.get("score_bits").cloned().unwrap().into_array().unwrap(),
            vec![Value::Integer(0.75f64.to_bits())]
        );
        // Timestamps are the trailing fields of every entry.
        let fields: Vec<String> = first
            .into_object()
            .unwrap()
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(&fields[fields.len() - 2..], ["elapsed_us", "ts_unix_ms"]);
        // The malformed request survives as a string; no score bits.
        let second = parse(lines[1]).unwrap();
        assert_eq!(second.get("request").unwrap().as_str(), Some("not json"));
        assert_eq!(second.get("score_bits").cloned().unwrap().into_array().unwrap(), vec![]);
        // A reopened recorder appends instead of truncating.
        let rec = Recorder::create(&path).unwrap();
        rec.record("POST", "/v1/predict", b"{}", 400, "{}", 1);
        drop(rec);
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn score_bits_cover_single_and_batch() {
        let single = parse(r#"{"score":0.5}"#).unwrap();
        assert_eq!(score_bits(&single), vec![0.5f64.to_bits()]);
        let batch = parse(r#"{"scores":[0.25,0.75]}"#).unwrap();
        assert_eq!(score_bits(&batch), vec![0.25f64.to_bits(), 0.75f64.to_bits()]);
        let error = parse(r#"{"error":{"kind":"bad_request"}}"#).unwrap();
        assert!(score_bits(&error).is_empty());
    }
}
