//! The server's live fairness monitoring hub.
//!
//! One [`ModelMonitor`] per served model, created lazily at its first
//! scored request with the training-time metrics from the artifact's
//! `.flm` provenance as the drift baseline. The hub owns the clock (the
//! monitor crate never reads time itself), publishes the
//! `fairlens_live_metric` / `fairlens_drift_state` /
//! `fairlens_feedback_total` Prometheus families after every mutation,
//! and emits a trace event plus an operator log line on every drift
//! state transition.
//!
//! Everything is keyed by model id under one mutex: intake is a few
//! ring-buffer writes plus one metric pass over a bounded window, far
//! cheaper than the prediction that precedes it.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use fairlens_monitor::{
    Clock, DriftState, FeedbackError, FeedbackReceipt, ModelMonitor, MonitorConfig,
    MonitorSnapshot,
};

use crate::error::{ErrorKind, ServeError};
use crate::metrics::Metrics;

/// Per-model monitors plus the shared config, clock and metric registry.
pub struct MonitorHub {
    inner: Mutex<BTreeMap<String, ModelMonitor>>,
    cfg: MonitorConfig,
    metrics: Arc<Metrics>,
    clock: Arc<dyn Clock>,
}

impl MonitorHub {
    /// An empty hub; monitors appear at each model's first observation.
    pub fn new(cfg: MonitorConfig, metrics: Arc<Metrics>, clock: Arc<dyn Clock>) -> Self {
        Self { inner: Mutex::new(BTreeMap::new()), cfg, metrics, clock }
    }

    /// Record one scored predict call and return the per-model `seq` the
    /// client quotes back in `POST /v1/feedback`.
    pub fn observe(
        &self,
        model: &str,
        baseline: &[(String, f64)],
        groups: &[u8],
        preds: &[u8],
        scores: &[f64],
    ) -> u64 {
        let now = self.clock.now();
        let mut inner = self.inner.lock().unwrap();
        let monitor = inner
            .entry(model.to_string())
            .or_insert_with(|| ModelMonitor::new(&self.cfg, baseline.to_vec()));
        let (seq, transition) = monitor.observe(groups, preds, scores, now);
        self.publish(model, monitor, transition);
        seq
    }

    /// Join reported true labels onto request `seq`'s rows. The caller
    /// has already resolved `model` against the registry, so an unknown
    /// model never reaches here — but a known model with no monitor yet
    /// (no scored traffic) still rejects every seq as unknown.
    pub fn feedback(
        &self,
        model: &str,
        seq: u64,
        labels: &[u8],
    ) -> Result<FeedbackReceipt, ServeError> {
        let now = self.clock.now();
        let mut inner = self.inner.lock().unwrap();
        let result = match inner.get_mut(model) {
            None => Err(FeedbackError::UnknownSeq(seq)),
            Some(monitor) => monitor.feedback(seq, labels, now).map(|(receipt, transition)| {
                self.publish(model, monitor, transition);
                receipt
            }),
        };
        match result {
            Ok(receipt) => {
                self.metrics.record_feedback(model, "ok");
                Ok(receipt)
            }
            Err(e) => {
                let (status, kind) = match &e {
                    FeedbackError::UnknownSeq(_) => ("unknown", ErrorKind::NotFound),
                    FeedbackError::Duplicate(_) => ("duplicate", ErrorKind::Conflict),
                    FeedbackError::WrongCount { .. } => ("invalid", ErrorKind::BadRequest),
                };
                self.metrics.record_feedback(model, status);
                Err(ServeError::new(kind, format!("feedback for model {model:?}: {e}")))
            }
        }
    }

    /// A read-only snapshot for `GET /v1/models` (`None` until the model
    /// has seen scored traffic).
    pub fn snapshot(&self, model: &str) -> Option<MonitorSnapshot> {
        let now = self.clock.now();
        self.inner.lock().unwrap().get(model).map(|m| m.snapshot(now))
    }

    /// Mirror the monitor's state into the Prometheus families and
    /// announce any drift transition (trace event + operator log).
    fn publish(
        &self,
        model: &str,
        monitor: &ModelMonitor,
        transition: Option<(DriftState, DriftState)>,
    ) {
        let snap = monitor.snapshot(self.clock.now());
        let live: Vec<(&str, &str, f64)> =
            snap.live.iter().map(|m| (m.metric, m.group, m.value)).collect();
        self.metrics.set_live_metrics(model, &live);
        self.metrics.set_drift_state(model, snap.drift_state.gauge());
        if let Some((from, to)) = transition {
            fairlens_trace::event(match to {
                DriftState::Ok => "drift:ok",
                DriftState::Warning => "drift:warning",
                DriftState::Alerting => "drift:alerting",
            });
            let offender = snap
                .breaching
                .first()
                .map(|b| {
                    format!(
                        " (worst: {} live {:.4} vs baseline {:.4}, threshold {})",
                        b.metric, b.live, b.baseline, b.threshold
                    )
                })
                .unwrap_or_default();
            eprintln!(
                "[serve] drift for model {model:?}: {} -> {}{offender}",
                from.name(),
                to.name(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairlens_monitor::{DriftConfig, ManualClock};

    fn hub(metrics: Arc<Metrics>) -> MonitorHub {
        let cfg = MonitorConfig {
            window: 4,
            pending_cap: 8,
            drift: DriftConfig {
                thresholds: vec![("accuracy".into(), 0.2)],
                warn_after: 1,
                alert_after: 2,
                recover_after: 2,
                min_labeled: 2,
            },
        };
        MonitorHub::new(cfg, metrics, Arc::new(ManualClock::new()))
    }

    #[test]
    fn observe_assigns_seqs_and_publishes_gauges() {
        let metrics = Arc::new(Metrics::new());
        let h = hub(metrics.clone());
        let baseline = vec![("accuracy".to_string(), 1.0)];
        assert_eq!(h.observe("m", &baseline, &[0], &[1], &[0.9]), 0);
        assert_eq!(h.observe("m", &baseline, &[1, 1], &[0, 1], &[0.2, 0.8]), 1);
        assert_eq!(h.observe("other", &baseline, &[0], &[0], &[0.1]), 0, "seqs are per-model");
        let text = metrics.render();
        assert!(text.contains("fairlens_drift_state{model=\"m\"} 0"), "{text}");
        assert!(text.contains("fairlens_live_metric{model=\"m\",metric=\"di_star\","));
        let snap = h.snapshot("m").unwrap();
        assert_eq!((snap.window_len, snap.pending), (3, 2));
        assert!(h.snapshot("absent").is_none());
    }

    #[test]
    fn feedback_maps_monitor_errors_onto_the_taxonomy() {
        let metrics = Arc::new(Metrics::new());
        let h = hub(metrics.clone());
        let baseline = vec![];
        assert_eq!(
            h.feedback("m", 0, &[1]).unwrap_err().kind,
            ErrorKind::NotFound,
            "no scored traffic yet"
        );
        let seq = h.observe("m", &baseline, &[0, 1], &[1, 0], &[0.9, 0.1]);
        assert_eq!(h.feedback("m", seq, &[1]).unwrap_err().kind, ErrorKind::BadRequest);
        let receipt = h.feedback("m", seq, &[1, 0]).unwrap();
        assert_eq!((receipt.matched, receipt.expected), (2, 2));
        assert_eq!(h.feedback("m", seq, &[1, 0]).unwrap_err().kind, ErrorKind::Conflict);
        assert_eq!(h.feedback("m", 99, &[1]).unwrap_err().kind, ErrorKind::NotFound);
        let text = metrics.render();
        assert!(text.contains("fairlens_feedback_total{model=\"m\",status=\"ok\"} 1"), "{text}");
        assert!(text.contains("fairlens_feedback_total{model=\"m\",status=\"unknown\"} 2"));
        assert!(text.contains("fairlens_feedback_total{model=\"m\",status=\"duplicate\"} 1"));
        assert!(text.contains("fairlens_feedback_total{model=\"m\",status=\"invalid\"} 1"));
    }

    #[test]
    fn skewed_feedback_drives_the_drift_gauge_to_alerting() {
        let metrics = Arc::new(Metrics::new());
        let h = hub(metrics.clone());
        let baseline = vec![("accuracy".to_string(), 1.0)];
        // Fill the window with labeled, always-wrong predictions.
        for _ in 0..6 {
            let seq = h.observe("m", &baseline, &[0], &[1], &[0.9]);
            let _ = h.feedback("m", seq, &[0]);
        }
        assert_eq!(h.snapshot("m").unwrap().drift_state, DriftState::Alerting);
        let text = metrics.render();
        assert!(text.contains("fairlens_drift_state{model=\"m\"} 2"), "{text}");
        assert!(text.contains(
            "fairlens_live_metric{model=\"m\",metric=\"accuracy\",group=\"all\"} 0"
        ));
    }
}
