//! `fairlens-serve` — a batching HTTP prediction server over persisted
//! FairLens model artifacts.
//!
//! The crate turns the benchmark's fitted fair-classification pipelines
//! (exported as versioned `.flm` artifacts by the bench crate's
//! `export_models` binary) into an online prediction service, with zero
//! dependencies beyond the workspace:
//!
//! * [`http`] — a defensive hand-rolled HTTP/1.1 layer on `std::net`
//!   (keep-alive, pipelining, hard head/body limits, a total per-request
//!   read deadline that turns slow-loris clients into 408s).
//! * [`registry`] — artifact scan at startup, lazy pipeline restore,
//!   LRU eviction bounded by `--max-loaded`; also the supervision layer:
//!   per-model circuit breakers, respawn of dead executors from their
//!   artifacts, and a negative cache quarantining unloadable artifacts.
//! * [`breaker`] — the clock-injected circuit-breaker state machine
//!   (closed → open → half-open probe → closed).
//! * [`batcher`] — the micro-batching core: one executor thread per
//!   loaded model coalesces concurrent predict requests into a single
//!   matrix pass, preserving bit-exactness with offline `predict` and
//!   never merging batches for stochastic (Hardt/Pleiss) pipelines.
//! * [`error`] — the closed client-visible error taxonomy; every failure
//!   is a structured JSON body, never a dropped connection or a panic.
//!   Shed (429) and breaker (503) rejections carry `Retry-After`.
//! * [`metrics`] — Prometheus text exposition: request/error counters,
//!   latency and batch-size histograms, registry gauges, and the
//!   overload series (sheds, queue depth, breaker state, in-flight).
//! * [`faults`] — deterministic `FAIRLENS_FAULT` chaos hooks
//!   (`panic:`/`hang:`/`flaky:`/`abort:` per model id) for the chaos
//!   harness; `abort:` kills the whole process at the k-th request, the
//!   hook the fleet supervisor's respawn path is tested with.
//! * [`recorder`] — `--record PATH` appends every `/v1/predict` and
//!   `/v1/feedback` exchange (request, response, score bit patterns,
//!   timestamps last) as JSONL; the loadgen's `--replay` mode re-sends a
//!   recorded log and diffs the answers.
//! * [`monitors`] — live fairness monitoring over scored traffic: a
//!   per-model `fairlens-monitor` sliding window fed from every predict
//!   answer, `POST /v1/feedback` joining reported true labels back onto
//!   window rows, and drift detection against the training-time metrics
//!   in the artifact's `.flm` provenance (three-state
//!   ok → warning → alerting status with hysteresis, surfaced in
//!   `GET /v1/models`, `fairlens_live_metric` / `fairlens_drift_state` /
//!   `fairlens_feedback_total`, and drift trace events).
//! * [`server`] — listener + fixed worker pool + admission control +
//!   routing + graceful drain (`POST /v1/shutdown`). `--shadow id=path`
//!   scores every admitted request on both the incumbent and a candidate
//!   artifact, answers from the incumbent, and counts divergences;
//!   `POST /v1/promote` cuts the candidate over only when the comparison
//!   window is clean (else a structured 409).
//!
//! Routes: `POST /v1/predict`, `POST /v1/feedback`, `GET /v1/models`,
//! `GET /healthz`, `GET /metrics`, `POST /v1/promote`,
//! `POST /v1/shadow` (runtime shadow attach/detach), `POST /v1/refresh`
//! (re-read an artifact from disk — the fleet's blue/green cutover
//! hook), `POST /v1/shutdown`.
//!
//! One `fairlens-serve` process is one fault domain. The companion
//! `fairlens-fleet` crate supervises several of them as worker shards
//! behind a routing front door (consistent-hash placement, replication,
//! crash failover, blue/green artifact reload); `--worker-id` tags a
//! process as a fleet shard.

pub mod batcher;
pub mod breaker;
pub mod error;
pub mod faults;
pub mod http;
pub mod metrics;
pub mod monitors;
pub mod recorder;
pub mod registry;
pub mod server;

pub use batcher::{BatchConfig, ModelWorker, PredictJob, PredictOutput};
pub use breaker::{Admission, BreakerConfig, BreakerState, CircuitBreaker};
pub use error::{ErrorKind, ServeError};
pub use faults::{ServeFaultKind, ServeFaults};
pub use metrics::Metrics;
pub use monitors::MonitorHub;
pub use recorder::Recorder;
pub use registry::{ModelInfo, ModelOutcome, Registry, ShadowDivergence, ShadowSummary};
pub use server::{ServeConfig, Server};
