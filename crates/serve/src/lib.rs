//! `fairlens-serve` — a batching HTTP prediction server over persisted
//! FairLens model artifacts.
//!
//! The crate turns the benchmark's fitted fair-classification pipelines
//! (exported as versioned `.flm` artifacts by the bench crate's
//! `export_models` binary) into an online prediction service, with zero
//! dependencies beyond the workspace:
//!
//! * [`http`] — a defensive hand-rolled HTTP/1.1 layer on `std::net`
//!   (keep-alive, pipelining, hard head/body limits).
//! * [`registry`] — artifact scan at startup, lazy pipeline restore,
//!   LRU eviction bounded by `--max-loaded`.
//! * [`batcher`] — the micro-batching core: one executor thread per
//!   loaded model coalesces concurrent predict requests into a single
//!   matrix pass, preserving bit-exactness with offline `predict` and
//!   never merging batches for stochastic (Hardt/Pleiss) pipelines.
//! * [`error`] — the closed client-visible error taxonomy; every failure
//!   is a structured JSON body, never a dropped connection or a panic.
//! * [`metrics`] — Prometheus text exposition: request/error counters,
//!   latency and batch-size histograms, registry gauges.
//! * [`server`] — listener + fixed worker pool + routing + graceful
//!   drain (`POST /v1/shutdown`).
//!
//! Routes: `POST /v1/predict`, `GET /v1/models`, `GET /healthz`,
//! `GET /metrics`, `POST /v1/shutdown`.

pub mod batcher;
pub mod error;
pub mod http;
pub mod metrics;
pub mod registry;
pub mod server;

pub use batcher::{BatchConfig, ModelWorker, PredictJob, PredictOutput};
pub use error::{ErrorKind, ServeError};
pub use metrics::Metrics;
pub use registry::{ModelInfo, Registry};
pub use server::{ServeConfig, Server};
