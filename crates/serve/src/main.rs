//! CLI entry point for the prediction server.

use std::path::PathBuf;
use std::process::exit;
use std::time::Duration;

use fairlens_serve::{ServeConfig, Server};

const USAGE: &str = "\
fairlens-serve [--addr HOST:PORT] [--models DIR] [--workers N]
               [--max-batch ROWS] [--batch-wait-ms MS]
               [--deadline-ms MS] [--max-loaded N] [--trace PATH]

Serves predictions from the .flm artifacts in DIR (default: models).
Port 0 binds an ephemeral port, announced on stderr as
'[serve] listening on ...'. Stop with POST /v1/shutdown.
--trace records one span track per predict request (parse/queue/batch/
predict) and writes PATH (JSONL) plus PATH.collapsed at drain.";

fn parse_flag<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> T {
    let Some(value) = value else {
        eprintln!("missing value for {flag}\n{USAGE}");
        exit(2);
    };
    value.parse().unwrap_or_else(|_| {
        eprintln!("bad value {value:?} for {flag}\n{USAGE}");
        exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ServeConfig::default();
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1);
        match args[i].as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--addr" => cfg.addr = parse_flag("--addr", value),
            "--models" => cfg.models_dir = parse_flag::<PathBuf>("--models", value),
            "--workers" => cfg.workers = parse_flag("--workers", value),
            "--max-batch" => cfg.max_batch = parse_flag("--max-batch", value),
            "--batch-wait-ms" => {
                cfg.batch_wait = Duration::from_millis(parse_flag("--batch-wait-ms", value));
            }
            "--deadline-ms" => {
                cfg.deadline = Duration::from_millis(parse_flag("--deadline-ms", value));
            }
            "--max-loaded" => cfg.max_loaded = parse_flag("--max-loaded", value),
            "--trace" => cfg.trace = Some(parse_flag::<PathBuf>("--trace", value)),
            other => {
                eprintln!("unknown flag {other}\n{USAGE}");
                exit(2);
            }
        }
        i += 2;
    }

    let server = match Server::bind(cfg.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[serve] cannot start on {} with models {}: {e}", cfg.addr, cfg.models_dir.display());
            exit(1);
        }
    };
    if let Err(e) = server.run() {
        eprintln!("[serve] server error: {e}");
        exit(1);
    }
}
