//! CLI entry point for the prediction server.

use std::path::PathBuf;
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

use fairlens_serve::{ServeConfig, ServeFaults, Server};

const USAGE: &str = "\
fairlens-serve [--addr HOST:PORT] [--models DIR] [--workers N]
               [--max-batch ROWS] [--batch-wait-ms MS]
               [--deadline-ms MS] [--max-loaded N] [--trace PATH]
               [--max-queue N] [--max-inflight N]
               [--breaker-threshold N] [--breaker-cooldown-ms MS]
               [--read-deadline-ms MS] [--max-conn-requests N]
               [--shadow MODEL=CANDIDATE.flm]... [--shadow-tolerance ULPS]
               [--record PATH] [--monitor-window ROWS] [--monitor-pending N]
               [--drift-threshold METRIC=DELTA]... [--drift-warn N]
               [--drift-alert N] [--drift-recover N] [--drift-min-labeled N]
               [--worker-id N]

Serves predictions from the .flm artifacts in DIR (default: models).
Port 0 binds an ephemeral port, announced on stderr as
'[serve] listening on ...'. Stop with POST /v1/shutdown.
--trace records one span track per predict request (parse/queue/batch/
predict) and writes PATH (JSONL) plus PATH.collapsed at drain.

Overload protection: --max-queue bounds each model executor's queue and
--max-inflight bounds concurrently processed predictions (0 = unlimited);
past either, requests shed with 429 + Retry-After. --breaker-threshold
consecutive model failures open that model's circuit breaker for
--breaker-cooldown-ms (rejections are 503 + Retry-After; a probe then
re-closes it). --read-deadline-ms bounds how long a client may take to
deliver one request (408 past it); --max-conn-requests closes a
keep-alive connection after N requests (0 = unlimited).

Cross-verified deployment: --shadow MODEL=PATH (repeatable) scores every
admitted predict on both the incumbent MODEL and the candidate artifact
at PATH; the response always comes from the incumbent, and score streams
are compared bit-exactly (or within --shadow-tolerance ULPS), surfaced
as fairlens_shadow_{compared,divergence}_total and in GET /v1/models.
POST /v1/promote {\"model\": id} cuts the candidate over only when the
comparison window is non-empty and clean (else a structured 409).
--record PATH appends every /v1/predict and /v1/feedback exchange as
JSONL (request, response, score bits, timestamps last) for the loadgen's
--replay mode.

Live fairness monitoring: every scored predict lands in a per-model
sliding window of --monitor-window rows (group id, predicted label,
score); POST /v1/feedback {\"model\", \"seq\", \"label\"|\"labels\"}
joins true outcomes onto it (seqs come back in predict responses;
--monitor-pending bounds how many are remembered). Live windowed metrics
are compared against the artifact's training-time metrics:
--drift-threshold METRIC=DELTA (repeatable; default accuracy=0.10,
di_star/tprb_fair/tnrb_fair=0.15) flags a breach past |live-baseline| >
DELTA. --drift-warn consecutive breaching full-window evaluations raise
ok->warning, --drift-alert raise warning->alerting, --drift-recover
clean evaluations step back down; label-dependent metrics wait for
--drift-min-labeled labeled rows. Status appears in GET /v1/models
(\"monitor\" block) and as fairlens_live_metric / fairlens_drift_state /
fairlens_feedback_total.

Fleet worker mode: --worker-id N tags this process as fleet shard N; the
id is echoed in GET /healthz along with pid, in-flight count and
draining status so the fairlens-fleet supervisor can probe it.
POST /v1/shadow {\"model\", \"artifact\"?} attaches (or, without
\"artifact\", detaches) a shadow candidate at runtime; POST /v1/refresh
{\"model\"} re-reads the model's artifact from disk, evicting the
resident executor — the fleet's blue/green staging and cutover hooks.

Chaos: the FAIRLENS_FAULT env var injects deterministic faults, e.g.
'panic:german-lr:1;flaky:3:german-lr' (kinds: panic:<model>:<k>,
hang:<model>:<k>, flaky:<k>:<model>, abort:<model>:<k> — abort kills
the whole process at the k-th request for the model).";

fn parse_flag<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> T {
    let Some(value) = value else {
        eprintln!("missing value for {flag}\n{USAGE}");
        exit(2);
    };
    value.parse().unwrap_or_else(|_| {
        eprintln!("bad value {value:?} for {flag}\n{USAGE}");
        exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ServeConfig::default();
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1);
        match args[i].as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--addr" => cfg.addr = parse_flag("--addr", value),
            "--models" => cfg.models_dir = parse_flag::<PathBuf>("--models", value),
            "--workers" => cfg.workers = parse_flag("--workers", value),
            "--max-batch" => cfg.max_batch = parse_flag("--max-batch", value),
            "--batch-wait-ms" => {
                cfg.batch_wait = Duration::from_millis(parse_flag("--batch-wait-ms", value));
            }
            "--deadline-ms" => {
                cfg.deadline = Duration::from_millis(parse_flag("--deadline-ms", value));
            }
            "--max-loaded" => cfg.max_loaded = parse_flag("--max-loaded", value),
            "--max-queue" => cfg.max_queue = parse_flag("--max-queue", value),
            "--max-inflight" => cfg.max_inflight = parse_flag("--max-inflight", value),
            "--breaker-threshold" => {
                cfg.breaker_threshold = parse_flag("--breaker-threshold", value);
            }
            "--breaker-cooldown-ms" => {
                cfg.breaker_cooldown =
                    Duration::from_millis(parse_flag("--breaker-cooldown-ms", value));
            }
            "--read-deadline-ms" => {
                cfg.limits.read_deadline =
                    Duration::from_millis(parse_flag("--read-deadline-ms", value));
            }
            "--max-conn-requests" => {
                cfg.max_conn_requests = parse_flag("--max-conn-requests", value);
            }
            "--trace" => cfg.trace = Some(parse_flag::<PathBuf>("--trace", value)),
            "--shadow" => {
                let spec: String = parse_flag("--shadow", value);
                let Some((model, path)) = spec.split_once('=') else {
                    eprintln!("--shadow wants MODEL=CANDIDATE.flm, got {spec:?}\n{USAGE}");
                    exit(2);
                };
                cfg.shadow.push((model.to_string(), PathBuf::from(path)));
            }
            "--shadow-tolerance" => {
                cfg.shadow_tolerance = Some(parse_flag("--shadow-tolerance", value));
            }
            "--record" => cfg.record = Some(parse_flag::<PathBuf>("--record", value)),
            "--monitor-window" => cfg.monitor_window = parse_flag("--monitor-window", value),
            "--monitor-pending" => {
                cfg.monitor_pending = parse_flag("--monitor-pending", value);
            }
            "--drift-threshold" => {
                let spec: String = parse_flag("--drift-threshold", value);
                let parsed = spec
                    .split_once('=')
                    .and_then(|(m, d)| d.parse::<f64>().ok().map(|d| (m.to_string(), d)));
                let Some((metric, delta)) = parsed.filter(|(_, d)| d.is_finite() && *d >= 0.0)
                else {
                    eprintln!("--drift-threshold wants METRIC=DELTA, got {spec:?}\n{USAGE}");
                    exit(2);
                };
                cfg.drift_thresholds.push((metric, delta));
            }
            "--drift-warn" => cfg.drift_warn = parse_flag("--drift-warn", value),
            "--drift-alert" => cfg.drift_alert = parse_flag("--drift-alert", value),
            "--drift-recover" => cfg.drift_recover = parse_flag("--drift-recover", value),
            "--drift-min-labeled" => {
                cfg.drift_min_labeled = parse_flag("--drift-min-labeled", value);
            }
            "--worker-id" => cfg.worker_id = Some(parse_flag("--worker-id", value)),
            other => {
                eprintln!("unknown flag {other}\n{USAGE}");
                exit(2);
            }
        }
        i += 2;
    }
    // Malformed FAIRLENS_FAULT aborts here, before the listener binds.
    cfg.faults = Arc::new(ServeFaults::from_env());

    let server = match Server::bind(cfg.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[serve] cannot start on {} with models {}: {e}", cfg.addr, cfg.models_dir.display());
            exit(1);
        }
    };
    if let Err(e) = server.run() {
        eprintln!("[serve] server error: {e}");
        exit(1);
    }
}
