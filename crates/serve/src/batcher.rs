//! Per-model micro-batching executor.
//!
//! Each loaded model owns one executor thread. Request handlers validate
//! rows against the artifact schema, then submit a [`PredictJob`] carrying
//! the pre-built [`Dataset`]; the executor coalesces whatever jobs arrive
//! within a short window (flushing at `max_batch` rows or after
//! `batch_wait`) and runs **one** pipeline pass over the concatenated
//! rows, slicing the outputs back per job.
//!
//! Two invariants shape the flush logic:
//!
//! * **Bit-exactness.** Hard labels come from `FittedPipeline::predict`
//!   on the coalesced dataset — never re-derived from scores — so batched
//!   predictions are byte-identical to an offline `predict` over the same
//!   rows (thresholding scores would disagree with the model's raw-margin
//!   decision for |z| within rounding of the sigmoid's 0.5 crossing).
//! * **Stochastic pipelines never coalesce.** Hardt and Pleiss consume
//!   seeded randomness keyed on the batch's row count, so merging
//!   requests would change every participant's predictions. Pipelines
//!   reporting [`FittedPipeline::is_stochastic`] flush one job at a time;
//!   deterministic pipelines are invariant under concatenation.
//!
//! Deadlines ride on [`fairlens_budget::Budget`]: the handler cancels the
//! job's budget when its deadline expires, the executor drops cancelled
//! jobs at dequeue, and single-job flushes install the budget so any
//! `checkpoint()` inside the pipeline unwinds early (merged flushes skip
//! the install — one request's deadline must not abort its batchmates).
//!
//! Overload protection: the job channel is **bounded** at
//! [`BatchConfig::max_queue`] jobs. [`ModelWorker::submit`] never blocks
//! and never panics — a full queue is an immediate structured
//! `overloaded` (429) shed, and a dead executor (one whose thread was
//! killed by a panic) is an `unavailable` (503) that the registry's
//! supervision layer turns into a breaker trip and a lazy respawn from
//! the artifact. The live queue depth is mirrored into the
//! `fairlens_queue_depth` gauge on every enqueue/dequeue.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fairlens_budget::{Budget, Interrupted};
use fairlens_core::{DataSchema, FittedPipeline};
use fairlens_frame::Dataset;

use crate::error::{ErrorKind, ServeError};
use crate::faults::{ServeFaultKind, ServeFaults};
use crate::metrics::Metrics;

/// Executor tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Flush as soon as at least this many rows are queued.
    pub max_batch: usize,
    /// Flush after this long even if the batch is smaller.
    pub batch_wait: Duration,
    /// Bound on queued (not-yet-flushed) jobs; submissions past it are
    /// shed with a 429 instead of growing the queue (min 1).
    pub max_queue: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self { max_batch: 64, batch_wait: Duration::from_millis(2), max_queue: 256 }
    }
}

/// The per-request output: hard labels plus pipeline scores, annotated
/// with where the request's time went inside the executor (the handler
/// turns these into trace spans and phase histograms).
#[derive(Debug, Clone, PartialEq)]
pub struct PredictOutput {
    /// Hard 0/1 predictions, one per submitted row.
    pub labels: Vec<u8>,
    /// Score per row (model probability, or the post rule's expected label).
    pub scores: Vec<f64>,
    /// Time from submit to the start of the flush that served this job.
    pub queue_us: u64,
    /// The flush's pipeline pass (predict + predict_proba), shared by
    /// every job in the batch.
    pub predict_us: u64,
    /// Flush overhead around the pipeline pass (concat, slicing, replies).
    pub batch_us: u64,
}

/// One request's unit of work for the executor.
pub struct PredictJob {
    /// Rows already validated against the model's schema.
    pub data: Dataset,
    /// Where the executor sends the outcome.
    pub reply: SyncSender<Result<PredictOutput, ServeError>>,
    /// Cancelled by the handler on deadline expiry.
    pub budget: Budget,
    /// When the handler queued the job; anchors `queue_us`.
    pub submitted: Instant,
}

/// A loaded model wired to its executor thread. Dropping the worker drops
/// the job channel and joins the executor, so LRU eviction (dropping the
/// last `Arc<ModelWorker>`) drains in-flight jobs before unloading.
pub struct ModelWorker {
    /// Schema requests are validated against.
    pub schema: DataSchema,
    /// Whether the pipeline forbids cross-request coalescing.
    pub stochastic: bool,
    model_id: String,
    tx: Option<SyncSender<PredictJob>>,
    handle: Option<JoinHandle<()>>,
    /// Jobs enqueued but not yet dequeued by the executor; mirrored into
    /// the `fairlens_queue_depth{model=...}` gauge.
    depth: Arc<AtomicU64>,
    metrics: Arc<Metrics>,
}

impl ModelWorker {
    /// Restore-and-spawn: the executor thread takes ownership of the
    /// pipeline; the returned worker is the submission handle.
    pub fn spawn(
        model_id: &str,
        schema: DataSchema,
        pipeline: FittedPipeline,
        cfg: BatchConfig,
        metrics: Arc<Metrics>,
        faults: Arc<ServeFaults>,
    ) -> Self {
        let stochastic = pipeline.is_stochastic();
        let (tx, rx) = mpsc::sync_channel::<PredictJob>(cfg.max_queue.max(1));
        let cfg = if stochastic { BatchConfig { max_batch: 1, ..cfg } } else { cfg };
        let depth = Arc::new(AtomicU64::new(0));
        let handle = {
            let depth = depth.clone();
            let metrics = metrics.clone();
            let model_id = model_id.to_string();
            std::thread::Builder::new()
                .name(format!("flm-{model_id}"))
                .spawn(move || {
                    executor_loop(&model_id, &pipeline, &rx, cfg, &metrics, &depth, &faults)
                })
                .expect("spawn model executor")
        };
        Self {
            schema,
            stochastic,
            model_id: model_id.to_string(),
            tx: Some(tx),
            handle: Some(handle),
            depth,
            metrics,
        }
    }

    /// Queue a job without blocking. A full queue is an `overloaded`
    /// (429) shed; a dead executor — its thread killed by a panic that
    /// escaped the flush guard — is a structured `unavailable` (503),
    /// never a handler panic. The caller (the predict handler) reports
    /// the dead case to the registry so the breaker trips and the
    /// executor is respawned from the artifact.
    pub fn submit(&self, job: PredictJob) -> Result<(), ServeError> {
        let Some(tx) = self.tx.as_ref() else {
            // Retry-After 1: the registry respawns the executor on the
            // next admitted request, so an immediate retry usually lands.
            return Err(ServeError::new(
                ErrorKind::Unavailable,
                format!("model {:?} executor is shut down", self.model_id),
            )
            .with_retry_after(1));
        };
        // Count the job before it becomes visible in the channel — the
        // executor may dequeue (and decrement) the instant `try_send`
        // lands, so incrementing afterwards would underflow the counter.
        let depth = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        match tx.try_send(job) {
            Ok(()) => {
                self.metrics.set_queue_depth(&self.model_id, depth);
                Ok(())
            }
            Err(rejected) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                match rejected {
                    TrySendError::Full(_) => Err(ServeError::new(
                        ErrorKind::Overloaded,
                        format!("model {:?} queue is full; retry shortly", self.model_id),
                    )
                    .with_retry_after(1)),
                    TrySendError::Disconnected(_) => Err(ServeError::new(
                        ErrorKind::Unavailable,
                        format!("model {:?} executor died; it will be restarted", self.model_id),
                    )
                    .with_retry_after(1)),
                }
            }
        }
    }

    /// Whether the executor thread has exited (its receiver is gone).
    /// `true` after a panic killed it; the registry uses this to decide
    /// on a respawn.
    pub fn is_dead(&self) -> bool {
        self.handle.as_ref().is_some_and(JoinHandle::is_finished)
    }
}

impl std::fmt::Debug for ModelWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelWorker")
            .field("model_id", &self.model_id)
            .field("stochastic", &self.stochastic)
            .field("dead", &self.is_dead())
            .finish_non_exhaustive()
    }
}

impl Drop for ModelWorker {
    fn drop(&mut self) {
        // Closing the channel lets the executor drain queued jobs and
        // exit; joining makes eviction and shutdown deterministic.
        drop(self.tx.take());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Concatenate schema-identical datasets into one. The parts all come
/// from `DataSchema::dataset_from_rows` on the same schema, so columns
/// align by construction.
pub fn concat_datasets(parts: &[&Dataset]) -> Dataset {
    let mut merged = parts[0].clone();
    for part in &parts[1..] {
        for row in 0..part.n_rows() {
            merged.push_row_from(part, row);
        }
    }
    merged
}

fn executor_loop(
    model_id: &str,
    pipeline: &FittedPipeline,
    rx: &Receiver<PredictJob>,
    cfg: BatchConfig,
    metrics: &Metrics,
    depth: &AtomicU64,
    faults: &ServeFaults,
) {
    let dequeued = |n: u64| {
        let d = depth.fetch_sub(n, Ordering::Relaxed).saturating_sub(n);
        metrics.set_queue_depth(model_id, d);
    };
    loop {
        // Block for the first job; channel closure is the stop signal.
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        dequeued(1);
        // Chaos hook: die at dequeue, before the flush guard. The held
        // job unwinds with the thread (its handler observes a closed
        // reply channel → structured 503), queued jobs likewise; the
        // registry respawns the executor from the artifact on the next
        // admitted request.
        if !faults.is_empty() && faults.take(model_id, ServeFaultKind::Panic) {
            panic!("injected executor panic for model {model_id}");
        }
        // Chaos hook for the fleet supervisor: take the whole process
        // down, not just this executor. stderr is unbuffered, so the
        // marker reaches the supervisor's log before the abort lands.
        if !faults.is_empty() && faults.take(model_id, ServeFaultKind::Abort) {
            eprintln!("[serve] injected abort fault for model {model_id}: aborting process");
            std::process::abort();
        }
        let mut jobs = vec![first];
        let mut rows = jobs[0].data.n_rows();
        let deadline = Instant::now() + cfg.batch_wait;
        // Coalesce until the row target or the wait window is hit.
        while rows < cfg.max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(job) => {
                    dequeued(1);
                    rows += job.data.n_rows();
                    jobs.push(job);
                }
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        // A job whose deadline already fired has no listener; skip it
        // rather than spend a matrix pass on it.
        jobs.retain(|j| !j.budget.is_cancelled());
        if jobs.is_empty() {
            continue;
        }
        flush(model_id, pipeline, &jobs, metrics, faults);
    }
}

/// One coalesced pipeline pass; slices outputs back per job.
fn flush(
    model_id: &str,
    pipeline: &FittedPipeline,
    jobs: &[PredictJob],
    metrics: &Metrics,
    faults: &ServeFaults,
) {
    if !faults.is_empty() {
        if faults.take(model_id, ServeFaultKind::Hang) {
            // Stall until the first job's handler cancels its budget at
            // the request deadline (bounded so a deadline-less test can
            // never wedge the executor), then time the whole flush out.
            jobs[0].budget.wait_cancelled(Duration::from_millis(2), Duration::from_secs(30));
            let err = ServeError::new(
                ErrorKind::TimedOut,
                "injected hang fault: flush stalled past the request deadline",
            );
            for job in jobs {
                let _ = job.reply.send(Err(err.clone()));
            }
            return;
        }
        if faults.take(model_id, ServeFaultKind::Flaky) {
            let err =
                ServeError::new(ErrorKind::Internal, "injected flaky fault: flush failed");
            for job in jobs {
                let _ = job.reply.send(Err(err.clone()));
            }
            return;
        }
    }
    let flush_start = Instant::now();
    let total: usize = jobs.iter().map(|j| j.data.n_rows()).sum();
    metrics.record_flush(total);
    let merged;
    let batch = if jobs.len() == 1 {
        &jobs[0].data
    } else {
        let parts: Vec<&Dataset> = jobs.iter().map(|j| &j.data).collect();
        merged = concat_datasets(&parts);
        &merged
    };
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        // Only a lone job may arm its budget: in a merged batch one
        // request's expiry must not unwind its batchmates' pass.
        let _guard = (jobs.len() == 1).then(|| jobs[0].budget.install());
        let t0 = Instant::now();
        // One encode + one batched GEMV serves both outputs; bit-identical
        // to the separate predict / predict_proba calls (see
        // `FittedPipeline::predict_with_proba`).
        let (labels, scores) = pipeline.predict_with_proba(batch);
        (labels, scores, t0.elapsed().as_micros() as u64)
    }));
    match outcome {
        Ok((labels, scores, predict_us)) => {
            let batch_us =
                (flush_start.elapsed().as_micros() as u64).saturating_sub(predict_us);
            let mut offset = 0;
            for job in jobs {
                let n = job.data.n_rows();
                let out = PredictOutput {
                    labels: labels[offset..offset + n].to_vec(),
                    scores: scores[offset..offset + n].to_vec(),
                    queue_us: flush_start.saturating_duration_since(job.submitted).as_micros()
                        as u64,
                    predict_us,
                    batch_us,
                };
                offset += n;
                let _ = job.reply.send(Ok(out));
            }
        }
        Err(payload) => {
            let err = if payload.downcast_ref::<Interrupted>().is_some() {
                ServeError::new(ErrorKind::TimedOut, "prediction exceeded the request deadline")
            } else {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                ServeError::new(ErrorKind::Internal, format!("prediction panicked: {msg}"))
            };
            for job in jobs {
                let _ = job.reply.send(Err(err.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairlens_core::baseline_approach;
    use fairlens_synth::DatasetKind;

    fn fitted_german() -> (FittedPipeline, Dataset) {
        let data = DatasetKind::German.generate(300, 7);
        let fitted = baseline_approach().fit(&data, 7).unwrap();
        (fitted, data)
    }

    fn no_faults() -> Arc<ServeFaults> {
        Arc::new(ServeFaults::none())
    }

    fn submit(worker: &ModelWorker, data: Dataset) -> mpsc::Receiver<Result<PredictOutput, ServeError>> {
        let (reply, rx) = mpsc::sync_channel(1);
        worker
            .submit(PredictJob { data, reply, budget: Budget::new(), submitted: Instant::now() })
            .unwrap();
        rx
    }

    #[test]
    fn concat_preserves_rows() {
        let data = DatasetKind::German.generate(50, 3);
        let a = data.select_rows(&(0..20).collect::<Vec<_>>());
        let b = data.select_rows(&(20..50).collect::<Vec<_>>());
        let merged = concat_datasets(&[&a, &b]);
        assert_eq!(merged.n_rows(), 50);
        assert_eq!(merged.labels(), data.labels());
        assert_eq!(merged.sensitive(), data.sensitive());
    }

    #[test]
    fn coalesced_predictions_match_offline_predict() {
        let (fitted, data) = fitted_german();
        let expected = fitted.predict(&data);
        let expected_scores = fitted.predict_proba(&data);
        let metrics = Arc::new(Metrics::new());
        // A generous wait so both jobs land in one flush.
        let cfg = BatchConfig {
            max_batch: 1024,
            batch_wait: Duration::from_millis(200),
            ..BatchConfig::default()
        };
        let schema = DataSchema::of(&data);
        let worker =
            ModelWorker::spawn("t", schema, fitted, cfg, metrics.clone(), no_faults());
        let a = data.select_rows(&(0..120).collect::<Vec<_>>());
        let b = data.select_rows(&(120..300).collect::<Vec<_>>());
        let rx_a = submit(&worker, a);
        let rx_b = submit(&worker, b);
        let out_a = rx_a.recv_timeout(Duration::from_secs(5)).unwrap().unwrap();
        let out_b = rx_b.recv_timeout(Duration::from_secs(5)).unwrap().unwrap();
        assert_eq!(out_a.labels, expected[..120]);
        assert_eq!(out_b.labels, expected[120..]);
        let scores: Vec<f64> = out_a.scores.iter().chain(&out_b.scores).copied().collect();
        assert_eq!(
            scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            expected_scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
        );
        drop(worker);
        assert!(metrics.render().contains("fairlens_batch_rows_count 1"));
    }

    #[test]
    fn cancelled_jobs_are_dropped_at_dequeue() {
        let (fitted, data) = fitted_german();
        let metrics = Arc::new(Metrics::new());
        let schema = DataSchema::of(&data);
        let worker = ModelWorker::spawn(
            "t",
            schema,
            fitted,
            BatchConfig::default(),
            metrics.clone(),
            no_faults(),
        );
        let budget = Budget::new();
        budget.cancel();
        let (reply, rx) = mpsc::sync_channel(1);
        worker
            .submit(PredictJob {
                data: data.select_rows(&[0, 1]),
                reply,
                budget,
                submitted: Instant::now(),
            })
            .unwrap();
        drop(worker); // join: executor saw and skipped the job
        assert!(rx.try_recv().is_err());
        assert!(metrics.render().contains("fairlens_batch_rows_count 0"));
    }

    #[test]
    fn full_queue_sheds_with_a_structured_429() {
        let (fitted, data) = fitted_german();
        let metrics = Arc::new(Metrics::new());
        // A hang fault parks the executor on the first job so later
        // submissions genuinely queue; capacity 1 makes the third
        // submission overflow deterministically.
        let faults = Arc::new(ServeFaults::parse("hang:t:1").unwrap());
        let cfg = BatchConfig { max_queue: 1, max_batch: 1, ..BatchConfig::default() };
        let worker =
            ModelWorker::spawn("t", DataSchema::of(&data), fitted, cfg, metrics.clone(), faults);
        let stall = Budget::new();
        let (stall_reply, stall_rx) = mpsc::sync_channel(1);
        worker
            .submit(PredictJob {
                data: data.select_rows(&[0]),
                reply: stall_reply,
                budget: stall.clone(),
                submitted: Instant::now(),
            })
            .unwrap();
        // Give the executor time to dequeue the stalled job, then fill
        // the queue and overflow it.
        std::thread::sleep(Duration::from_millis(50));
        let _queued_rx = submit(&worker, data.select_rows(&[1]));
        let (reply, _rx) = mpsc::sync_channel(1);
        let err = worker
            .submit(PredictJob {
                data: data.select_rows(&[2]),
                reply,
                budget: Budget::new(),
                submitted: Instant::now(),
            })
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::Overloaded);
        assert_eq!(err.retry_after, Some(1));
        assert!(metrics.render().contains("fairlens_queue_depth{model=\"t\"} 1"));
        // Release the stalled flush (as the handler's deadline would).
        stall.cancel();
        let stalled = stall_rx.recv_timeout(Duration::from_secs(5)).unwrap().unwrap_err();
        assert_eq!(stalled.kind, ErrorKind::TimedOut);
    }

    #[test]
    fn dead_executor_yields_structured_unavailable_not_a_panic() {
        let (fitted, data) = fitted_german();
        let faults = Arc::new(ServeFaults::parse("panic:t:1").unwrap());
        let worker = ModelWorker::spawn(
            "t",
            DataSchema::of(&data),
            fitted,
            BatchConfig::default(),
            Arc::new(Metrics::new()),
            faults,
        );
        // First job: the executor panics at dequeue; the reply channel
        // closes without an answer.
        let rx = submit(&worker, data.select_rows(&[0]));
        assert!(rx.recv_timeout(Duration::from_secs(5)).is_err());
        // The reply channel drops mid-unwind, slightly before the job
        // channel's receiver; wait for the thread to finish so the
        // disconnect is observable.
        let deadline = Instant::now() + Duration::from_secs(5);
        while !worker.is_dead() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        // The executor is now dead: submit must return a structured 503,
        // never expect-panic the calling HTTP worker.
        let (reply, _rx2) = mpsc::sync_channel(1);
        let err = worker
            .submit(PredictJob {
                data: data.select_rows(&[1]),
                reply,
                budget: Budget::new(),
                submitted: Instant::now(),
            })
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::Unavailable);
        assert!(worker.is_dead());
    }

    #[test]
    fn flaky_fault_fails_exactly_k_flushes_then_recovers() {
        let (fitted, data) = fitted_german();
        let expected = fitted.predict(&data.select_rows(&[0]));
        let faults = Arc::new(ServeFaults::parse("flaky:2:t").unwrap());
        let cfg = BatchConfig { max_batch: 1, ..BatchConfig::default() };
        let worker = ModelWorker::spawn(
            "t",
            DataSchema::of(&data),
            fitted,
            cfg,
            Arc::new(Metrics::new()),
            faults,
        );
        for _ in 0..2 {
            let rx = submit(&worker, data.select_rows(&[0]));
            let err = rx.recv_timeout(Duration::from_secs(5)).unwrap().unwrap_err();
            assert_eq!(err.kind, ErrorKind::Internal);
            assert!(err.message.contains("injected"), "{err}");
        }
        // Budget spent: the third flush succeeds with correct output.
        let rx = submit(&worker, data.select_rows(&[0]));
        let out = rx.recv_timeout(Duration::from_secs(5)).unwrap().unwrap();
        assert_eq!(out.labels, expected);
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let (fitted, data) = fitted_german();
        let worker = ModelWorker::spawn(
            "t",
            DataSchema::of(&data),
            fitted,
            BatchConfig::default(),
            Arc::new(Metrics::new()),
            no_faults(),
        );
        let receivers: Vec<_> =
            (0..8).map(|i| submit(&worker, data.select_rows(&[i, i + 8]))).collect();
        drop(worker);
        for rx in receivers {
            assert!(rx.try_recv().expect("drained before join").is_ok());
        }
    }
}
