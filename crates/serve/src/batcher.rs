//! Per-model micro-batching executor.
//!
//! Each loaded model owns one executor thread. Request handlers validate
//! rows against the artifact schema, then submit a [`PredictJob`] carrying
//! the pre-built [`Dataset`]; the executor coalesces whatever jobs arrive
//! within a short window (flushing at `max_batch` rows or after
//! `batch_wait`) and runs **one** pipeline pass over the concatenated
//! rows, slicing the outputs back per job.
//!
//! Two invariants shape the flush logic:
//!
//! * **Bit-exactness.** Hard labels come from `FittedPipeline::predict`
//!   on the coalesced dataset — never re-derived from scores — so batched
//!   predictions are byte-identical to an offline `predict` over the same
//!   rows (thresholding scores would disagree with the model's raw-margin
//!   decision for |z| within rounding of the sigmoid's 0.5 crossing).
//! * **Stochastic pipelines never coalesce.** Hardt and Pleiss consume
//!   seeded randomness keyed on the batch's row count, so merging
//!   requests would change every participant's predictions. Pipelines
//!   reporting [`FittedPipeline::is_stochastic`] flush one job at a time;
//!   deterministic pipelines are invariant under concatenation.
//!
//! Deadlines ride on [`fairlens_budget::Budget`]: the handler cancels the
//! job's budget when its deadline expires, the executor drops cancelled
//! jobs at dequeue, and single-job flushes install the budget so any
//! `checkpoint()` inside the pipeline unwinds early (merged flushes skip
//! the install — one request's deadline must not abort its batchmates).

use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fairlens_budget::{Budget, Interrupted};
use fairlens_core::{DataSchema, FittedPipeline};
use fairlens_frame::Dataset;

use crate::error::{ErrorKind, ServeError};
use crate::metrics::Metrics;

/// Executor tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Flush as soon as at least this many rows are queued.
    pub max_batch: usize,
    /// Flush after this long even if the batch is smaller.
    pub batch_wait: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self { max_batch: 64, batch_wait: Duration::from_millis(2) }
    }
}

/// The per-request output: hard labels plus pipeline scores, annotated
/// with where the request's time went inside the executor (the handler
/// turns these into trace spans and phase histograms).
#[derive(Debug, Clone, PartialEq)]
pub struct PredictOutput {
    /// Hard 0/1 predictions, one per submitted row.
    pub labels: Vec<u8>,
    /// Score per row (model probability, or the post rule's expected label).
    pub scores: Vec<f64>,
    /// Time from submit to the start of the flush that served this job.
    pub queue_us: u64,
    /// The flush's pipeline pass (predict + predict_proba), shared by
    /// every job in the batch.
    pub predict_us: u64,
    /// Flush overhead around the pipeline pass (concat, slicing, replies).
    pub batch_us: u64,
}

/// One request's unit of work for the executor.
pub struct PredictJob {
    /// Rows already validated against the model's schema.
    pub data: Dataset,
    /// Where the executor sends the outcome.
    pub reply: SyncSender<Result<PredictOutput, ServeError>>,
    /// Cancelled by the handler on deadline expiry.
    pub budget: Budget,
    /// When the handler queued the job; anchors `queue_us`.
    pub submitted: Instant,
}

/// A loaded model wired to its executor thread. Dropping the worker drops
/// the job channel and joins the executor, so LRU eviction (dropping the
/// last `Arc<ModelWorker>`) drains in-flight jobs before unloading.
pub struct ModelWorker {
    /// Schema requests are validated against.
    pub schema: DataSchema,
    /// Whether the pipeline forbids cross-request coalescing.
    pub stochastic: bool,
    tx: Option<Sender<PredictJob>>,
    handle: Option<JoinHandle<()>>,
}

impl ModelWorker {
    /// Restore-and-spawn: the executor thread takes ownership of the
    /// pipeline; the returned worker is the submission handle.
    pub fn spawn(
        model_id: &str,
        schema: DataSchema,
        pipeline: FittedPipeline,
        cfg: BatchConfig,
        metrics: Arc<Metrics>,
    ) -> Self {
        let stochastic = pipeline.is_stochastic();
        let (tx, rx) = mpsc::channel::<PredictJob>();
        let cfg = if stochastic { BatchConfig { max_batch: 1, ..cfg } } else { cfg };
        let handle = std::thread::Builder::new()
            .name(format!("flm-{model_id}"))
            .spawn(move || executor_loop(&pipeline, &rx, cfg, &metrics))
            .expect("spawn model executor");
        Self { schema, stochastic, tx: Some(tx), handle: Some(handle) }
    }

    /// Queue a job. Fails only if the executor died (a panic that escaped
    /// the flush guard), which clients see as an internal error.
    pub fn submit(&self, job: PredictJob) -> Result<(), ServeError> {
        self.tx
            .as_ref()
            .expect("worker submitted after drop")
            .send(job)
            .map_err(|_| ServeError::new(ErrorKind::Internal, "model executor is gone"))
    }
}

impl Drop for ModelWorker {
    fn drop(&mut self) {
        // Closing the channel lets the executor drain queued jobs and
        // exit; joining makes eviction and shutdown deterministic.
        drop(self.tx.take());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Concatenate schema-identical datasets into one. The parts all come
/// from `DataSchema::dataset_from_rows` on the same schema, so columns
/// align by construction.
pub fn concat_datasets(parts: &[&Dataset]) -> Dataset {
    let mut merged = parts[0].clone();
    for part in &parts[1..] {
        for row in 0..part.n_rows() {
            merged.push_row_from(part, row);
        }
    }
    merged
}

fn executor_loop(
    pipeline: &FittedPipeline,
    rx: &Receiver<PredictJob>,
    cfg: BatchConfig,
    metrics: &Metrics,
) {
    loop {
        // Block for the first job; channel closure is the stop signal.
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        let mut jobs = vec![first];
        let mut rows = jobs[0].data.n_rows();
        let deadline = Instant::now() + cfg.batch_wait;
        // Coalesce until the row target or the wait window is hit.
        while rows < cfg.max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(job) => {
                    rows += job.data.n_rows();
                    jobs.push(job);
                }
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        // A job whose deadline already fired has no listener; skip it
        // rather than spend a matrix pass on it.
        jobs.retain(|j| !j.budget.is_cancelled());
        if jobs.is_empty() {
            continue;
        }
        flush(pipeline, &jobs, metrics);
    }
}

/// One coalesced pipeline pass; slices outputs back per job.
fn flush(pipeline: &FittedPipeline, jobs: &[PredictJob], metrics: &Metrics) {
    let flush_start = Instant::now();
    let total: usize = jobs.iter().map(|j| j.data.n_rows()).sum();
    metrics.record_flush(total);
    let merged;
    let batch = if jobs.len() == 1 {
        &jobs[0].data
    } else {
        let parts: Vec<&Dataset> = jobs.iter().map(|j| &j.data).collect();
        merged = concat_datasets(&parts);
        &merged
    };
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        // Only a lone job may arm its budget: in a merged batch one
        // request's expiry must not unwind its batchmates' pass.
        let _guard = (jobs.len() == 1).then(|| jobs[0].budget.install());
        let t0 = Instant::now();
        let labels = pipeline.predict(batch);
        let scores = pipeline.predict_proba(batch);
        (labels, scores, t0.elapsed().as_micros() as u64)
    }));
    match outcome {
        Ok((labels, scores, predict_us)) => {
            let batch_us =
                (flush_start.elapsed().as_micros() as u64).saturating_sub(predict_us);
            let mut offset = 0;
            for job in jobs {
                let n = job.data.n_rows();
                let out = PredictOutput {
                    labels: labels[offset..offset + n].to_vec(),
                    scores: scores[offset..offset + n].to_vec(),
                    queue_us: flush_start.saturating_duration_since(job.submitted).as_micros()
                        as u64,
                    predict_us,
                    batch_us,
                };
                offset += n;
                let _ = job.reply.send(Ok(out));
            }
        }
        Err(payload) => {
            let err = if payload.downcast_ref::<Interrupted>().is_some() {
                ServeError::new(ErrorKind::TimedOut, "prediction exceeded the request deadline")
            } else {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                ServeError::new(ErrorKind::Internal, format!("prediction panicked: {msg}"))
            };
            for job in jobs {
                let _ = job.reply.send(Err(err.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairlens_core::baseline_approach;
    use fairlens_synth::DatasetKind;

    fn fitted_german() -> (FittedPipeline, Dataset) {
        let data = DatasetKind::German.generate(300, 7);
        let fitted = baseline_approach().fit(&data, 7).unwrap();
        (fitted, data)
    }

    fn submit(worker: &ModelWorker, data: Dataset) -> mpsc::Receiver<Result<PredictOutput, ServeError>> {
        let (reply, rx) = mpsc::sync_channel(1);
        worker
            .submit(PredictJob { data, reply, budget: Budget::new(), submitted: Instant::now() })
            .unwrap();
        rx
    }

    #[test]
    fn concat_preserves_rows() {
        let data = DatasetKind::German.generate(50, 3);
        let a = data.select_rows(&(0..20).collect::<Vec<_>>());
        let b = data.select_rows(&(20..50).collect::<Vec<_>>());
        let merged = concat_datasets(&[&a, &b]);
        assert_eq!(merged.n_rows(), 50);
        assert_eq!(merged.labels(), data.labels());
        assert_eq!(merged.sensitive(), data.sensitive());
    }

    #[test]
    fn coalesced_predictions_match_offline_predict() {
        let (fitted, data) = fitted_german();
        let expected = fitted.predict(&data);
        let expected_scores = fitted.predict_proba(&data);
        let metrics = Arc::new(Metrics::new());
        // A generous wait so both jobs land in one flush.
        let cfg = BatchConfig { max_batch: 1024, batch_wait: Duration::from_millis(200) };
        let schema = DataSchema::of(&data);
        let worker = ModelWorker::spawn("t", schema, fitted, cfg, metrics.clone());
        let a = data.select_rows(&(0..120).collect::<Vec<_>>());
        let b = data.select_rows(&(120..300).collect::<Vec<_>>());
        let rx_a = submit(&worker, a);
        let rx_b = submit(&worker, b);
        let out_a = rx_a.recv_timeout(Duration::from_secs(5)).unwrap().unwrap();
        let out_b = rx_b.recv_timeout(Duration::from_secs(5)).unwrap().unwrap();
        assert_eq!(out_a.labels, expected[..120]);
        assert_eq!(out_b.labels, expected[120..]);
        let scores: Vec<f64> = out_a.scores.iter().chain(&out_b.scores).copied().collect();
        assert_eq!(
            scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            expected_scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
        );
        drop(worker);
        assert!(metrics.render().contains("fairlens_batch_rows_count 1"));
    }

    #[test]
    fn cancelled_jobs_are_dropped_at_dequeue() {
        let (fitted, data) = fitted_german();
        let metrics = Arc::new(Metrics::new());
        let schema = DataSchema::of(&data);
        let worker =
            ModelWorker::spawn("t", schema, fitted, BatchConfig::default(), metrics.clone());
        let budget = Budget::new();
        budget.cancel();
        let (reply, rx) = mpsc::sync_channel(1);
        worker
            .submit(PredictJob {
                data: data.select_rows(&[0, 1]),
                reply,
                budget,
                submitted: Instant::now(),
            })
            .unwrap();
        drop(worker); // join: executor saw and skipped the job
        assert!(rx.try_recv().is_err());
        assert!(metrics.render().contains("fairlens_batch_rows_count 0"));
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let (fitted, data) = fitted_german();
        let worker = ModelWorker::spawn(
            "t",
            DataSchema::of(&data),
            fitted,
            BatchConfig::default(),
            Arc::new(Metrics::new()),
        );
        let receivers: Vec<_> =
            (0..8).map(|i| submit(&worker, data.select_rows(&[i, i + 8]))).collect();
        drop(worker);
        for rx in receivers {
            assert!(rx.try_recv().expect("drained before join").is_ok());
        }
    }
}
