//! A minimal, defensive HTTP/1.1 layer over `std::io`.
//!
//! Hand-rolled on purpose — the workspace takes no external dependencies —
//! and scoped to exactly what the prediction server needs: request-line +
//! headers + `Content-Length` bodies, keep-alive with pipelining, and
//! hard limits on head size, header count and body size so a misbehaving
//! client cannot balloon memory. Anything outside that envelope is a
//! structured [`ServeError`], never a panic and never a silently dropped
//! connection.
//!
//! The parser is generic over [`BufRead`] so the negative paths (oversized
//! heads, truncated bodies, pipelined garbage, slow-loris stalls) are
//! unit-testable on in-memory cursors without sockets.
//!
//! Slow-loris defense: the socket's 250 ms read timeout is only a poll
//! tick; [`Limits::read_deadline`] bounds the *total* time from the
//! first request byte to the final body byte. A client that trickles
//! bytes slower than that gets a structured 408 and the connection is
//! closed. The deadline clock starts at the first poll tick after a
//! request byte arrives, so its practical granularity is one tick.

use std::cell::Cell;
use std::io::{BufRead, Write};
use std::time::{Duration, Instant};

use crate::error::{ErrorKind, ServeError};

/// Hard limits on a single request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes across the request line and all header lines.
    pub max_head: usize,
    /// Maximum number of header lines.
    pub max_headers: usize,
    /// Maximum `Content-Length`.
    pub max_body: usize,
    /// Maximum wall-clock time to receive one full request (head + body),
    /// measured from the first byte. Exceeding it is a 408. Idle
    /// keep-alive connections (no request byte yet) are unaffected.
    pub read_deadline: Duration,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_head: 16 * 1024,
            max_headers: 64,
            max_body: 1024 * 1024,
            read_deadline: Duration::from_secs(10),
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Path component (query string split off into `query`).
    pub path: String,
    /// Raw query string, without the `?` (empty when absent).
    pub query: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty without `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to close the connection after this
    /// exchange (`Connection: close`, or HTTP/1.0 without keep-alive).
    pub close: bool,
}

impl Request {
    /// First header value by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// Why `read_request` returned without a request.
#[derive(Debug, Clone, PartialEq)]
pub enum ReadOutcome {
    /// A complete request was parsed.
    Complete(Request),
    /// Clean end of stream (or idle give-up) before any request byte.
    Closed,
}

/// Read one request. `on_idle(started)` is invoked on every read timeout
/// tick with whether any byte of the request has arrived; returning `true`
/// abandons the read (the connection is closed by the caller). A timeout
/// *mid-request* that `on_idle` abandons surfaces as `Closed` when nothing
/// had arrived, or as a `bad_request` error when the request was cut off.
pub fn read_request<R: BufRead>(
    reader: &mut R,
    limits: &Limits,
    mut on_idle: impl FnMut(bool) -> bool,
) -> Result<ReadOutcome, ServeError> {
    // Layer the total-read deadline over the caller's idle policy: once
    // any request byte has arrived, every poll tick checks elapsed time
    // against `limits.read_deadline` and abandons the read when it is
    // spent. `Cell`s let the wrapped closure and the error-mapping code
    // below share the flags without fighting the borrow checker.
    let first_tick: Cell<Option<Instant>> = Cell::new(None);
    let expired = Cell::new(false);
    let deadline = limits.read_deadline;
    let mut on_idle = |started: bool| {
        if started {
            let t0 = first_tick.get().unwrap_or_else(|| {
                let now = Instant::now();
                first_tick.set(Some(now));
                now
            });
            if t0.elapsed() >= deadline {
                expired.set(true);
                return true;
            }
        }
        on_idle(started)
    };
    // Abandoned reads surface as truncation; a deadline expiry upgrades
    // that to a structured 408 so the slow client learns why.
    let cut = |what: &str| {
        if expired.get() {
            ServeError::new(
                ErrorKind::RequestTimeout,
                format!("read deadline exceeded while receiving the {what}"),
            )
        } else {
            truncated(what)
        }
    };

    let mut head_bytes = 0usize;
    let mut started = false;

    // Request line. Skip stray CRLFs between pipelined requests (RFC 7230
    // §3.5 tolerance).
    let line = loop {
        match read_line(reader, limits.max_head, &mut on_idle, &mut started)? {
            None => {
                return if started {
                    Err(cut("request line"))
                } else {
                    Ok(ReadOutcome::Closed)
                }
            }
            Some(l) if l.is_empty() => continue,
            Some(l) => break l,
        }
    };
    head_bytes += line.len();
    let line = String::from_utf8(line)
        .map_err(|_| ServeError::bad_request("request line is not UTF-8"))?;
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
    {
        (Some(m), Some(t), Some(v), None) => (m.to_string(), t.to_string(), v.to_string()),
        _ => return Err(ServeError::bad_request(format!("malformed request line {line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ServeError::bad_request(format!("unsupported version {version:?}")));
    }
    let http10 = version == "HTTP/1.0";

    // Headers.
    let mut headers = Vec::new();
    loop {
        let Some(line) = read_line(reader, limits.max_head - head_bytes, &mut on_idle, &mut started)?
        else {
            return Err(cut("headers"));
        };
        head_bytes += line.len() + 2;
        if head_bytes > limits.max_head {
            return Err(ServeError::new(
                ErrorKind::PayloadTooLarge,
                format!("request head exceeds {} bytes", limits.max_head),
            ));
        }
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(ServeError::new(
                ErrorKind::PayloadTooLarge,
                format!("more than {} headers", limits.max_headers),
            ));
        }
        let line = String::from_utf8(line)
            .map_err(|_| ServeError::bad_request("header is not UTF-8"))?;
        let Some((name, value)) = line.split_once(':') else {
            return Err(ServeError::bad_request(format!("malformed header {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    // Body.
    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        None => 0usize,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| ServeError::bad_request(format!("bad content-length {v:?}")))?,
    };
    if headers.iter().any(|(n, v)| n == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(ServeError::bad_request("chunked transfer encoding is not supported"));
    }
    if content_length > limits.max_body {
        return Err(ServeError::new(
            ErrorKind::PayloadTooLarge,
            format!("body of {content_length} bytes exceeds limit {}", limits.max_body),
        ));
    }
    let mut body = vec![0u8; content_length];
    let mut read = 0usize;
    while read < content_length {
        match reader.fill_buf() {
            Ok([]) => return Err(truncated("body")),
            Ok(buf) => {
                let take = buf.len().min(content_length - read);
                body[read..read + take].copy_from_slice(&buf[..take]);
                reader.consume(take);
                read += take;
            }
            Err(e) if is_timeout(&e) => {
                if on_idle(true) {
                    return Err(cut("body"));
                }
            }
            Err(e) => return Err(io_error(e)),
        }
    }

    let connection = headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| v.to_ascii_lowercase())
        .unwrap_or_default();
    let close = connection.contains("close") || (http10 && !connection.contains("keep-alive"));

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };
    Ok(ReadOutcome::Complete(Request { method, path, query, headers, body, close }))
}

/// Read up to CRLF (or bare LF), stripping the terminator. `None` on EOF
/// or when `on_idle` abandons the wait before a terminator arrived.
fn read_line<R: BufRead>(
    reader: &mut R,
    cap: usize,
    on_idle: &mut impl FnMut(bool) -> bool,
    started: &mut bool,
) -> Result<Option<Vec<u8>>, ServeError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        match reader.fill_buf() {
            Ok([]) => return Ok(None), // EOF
            Ok(buf) => {
                *started = true;
                match buf.iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        line.extend_from_slice(&buf[..pos]);
                        reader.consume(pos + 1);
                        if line.last() == Some(&b'\r') {
                            line.pop();
                        }
                        if line.len() > cap {
                            return Err(ServeError::new(
                                ErrorKind::PayloadTooLarge,
                                "request head line too long",
                            ));
                        }
                        return Ok(Some(line));
                    }
                    None => {
                        line.extend_from_slice(buf);
                        let n = buf.len();
                        reader.consume(n);
                        if line.len() > cap {
                            return Err(ServeError::new(
                                ErrorKind::PayloadTooLarge,
                                "request head line too long",
                            ));
                        }
                    }
                }
            }
            Err(e) if is_timeout(&e) => {
                if on_idle(*started || !line.is_empty()) {
                    return Ok(None);
                }
            }
            Err(e) => return Err(io_error(e)),
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

fn truncated(what: &str) -> ServeError {
    ServeError::bad_request(format!("connection closed mid-request ({what})"))
}

fn io_error(e: std::io::Error) -> ServeError {
    ServeError::bad_request(format!("read error: {e}"))
}

/// Reason-phrase for the statuses the server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Write a response with `Content-Length`, flushing the stream.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
) -> std::io::Result<()> {
    write_response_with(w, status, content_type, None, body, close)
}

/// [`write_response`] with an optional `Retry-After` header (seconds) —
/// shed and breaker rejections tell well-behaved clients when to come
/// back instead of letting them hammer the admission gate.
pub fn write_response_with(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    retry_after: Option<u64>,
    body: &[u8],
    close: bool,
) -> std::io::Result<()> {
    let retry = match retry_after {
        Some(secs) => format!("retry-after: {secs}\r\n"),
        None => String::new(),
    };
    write!(
        w,
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\n{retry}connection: {}\r\n\r\n",
        reason(status),
        body.len(),
        if close { "close" } else { "keep-alive" },
    )?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn read(input: &[u8]) -> Result<ReadOutcome, ServeError> {
        read_request(&mut Cursor::new(input.to_vec()), &Limits::default(), |_| false)
    }

    fn expect_request(input: &[u8]) -> Request {
        match read(input).unwrap() {
            ReadOutcome::Complete(r) => r,
            other => panic!("expected a request, got {other:?}"),
        }
    }

    #[test]
    fn parses_a_get() {
        let r = expect_request(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert!(r.body.is_empty());
        assert!(!r.close);
    }

    #[test]
    fn parses_a_post_with_body_and_query() {
        let r = expect_request(
            b"POST /v1/predict?debug=1 HTTP/1.1\r\nContent-Length: 4\r\nConnection: close\r\n\r\nwxyz",
        );
        assert_eq!(r.path, "/v1/predict");
        assert_eq!(r.query, "debug=1");
        assert_eq!(r.body, b"wxyz");
        assert!(r.close);
        assert_eq!(r.header("content-length"), Some("4"));
    }

    #[test]
    fn http10_defaults_to_close() {
        let r = expect_request(b"GET / HTTP/1.0\r\n\r\n");
        assert!(r.close);
        let r = expect_request(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(!r.close);
    }

    #[test]
    fn keep_alive_pipelining_reads_in_sequence() {
        let mut c = Cursor::new(
            b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\ncontent-length: 2\r\n\r\nhi".to_vec(),
        );
        let l = Limits::default();
        let ReadOutcome::Complete(a) = read_request(&mut c, &l, |_| false).unwrap() else {
            panic!()
        };
        let ReadOutcome::Complete(b) = read_request(&mut c, &l, |_| false).unwrap() else {
            panic!()
        };
        assert_eq!(a.path, "/a");
        assert_eq!(b.path, "/b");
        assert_eq!(b.body, b"hi");
        assert_eq!(read_request(&mut c, &l, |_| false).unwrap(), ReadOutcome::Closed);
    }

    #[test]
    fn eof_before_any_byte_is_a_clean_close() {
        assert_eq!(read(b"").unwrap(), ReadOutcome::Closed);
    }

    #[test]
    fn pipelined_garbage_is_a_bad_request() {
        for garbage in [
            &b"x\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET / HTTP/1.1 EXTRA\r\n\r\n",
            b"GET / SPDY/9\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"\xff\xfe / HTTP/1.1\r\n\r\n",
        ] {
            let err = read(garbage).unwrap_err();
            assert_eq!(err.kind, ErrorKind::BadRequest, "{garbage:?} → {err}");
        }
    }

    #[test]
    fn truncated_body_is_a_bad_request() {
        let err = read(b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc").unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRequest);
        assert!(err.message.contains("body"), "{err}");
        // ...and a cut-off head too
        let err = read(b"POST / HTT").unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRequest);
    }

    #[test]
    fn oversized_head_is_rejected() {
        let mut input = b"GET /".to_vec();
        input.extend(std::iter::repeat_n(b'a', 20 * 1024));
        input.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        let err = read(&input).unwrap_err();
        assert_eq!(err.kind, ErrorKind::PayloadTooLarge);

        let mut input = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..100 {
            input.extend_from_slice(format!("h{i}: v\r\n").as_bytes());
        }
        input.extend_from_slice(b"\r\n");
        let err = read(&input).unwrap_err();
        assert_eq!(err.kind, ErrorKind::PayloadTooLarge);
    }

    #[test]
    fn oversized_body_is_rejected_up_front() {
        let err = read(b"POST / HTTP/1.1\r\ncontent-length: 9999999999\r\n\r\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::PayloadTooLarge);
        let err = read(b"POST / HTTP/1.1\r\ncontent-length: nope\r\n\r\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRequest);
    }

    /// A reader that yields its chunks separated by `WouldBlock` timeout
    /// ticks, mimicking a slow-loris client on a socket with a read
    /// timeout.
    struct Stutter {
        chunks: Vec<Vec<u8>>,
        next: usize,
        pending_timeout: bool,
    }

    impl Stutter {
        fn new(chunks: &[&[u8]]) -> Self {
            Self {
                chunks: chunks.iter().map(|c| c.to_vec()).collect(),
                next: 0,
                pending_timeout: true,
            }
        }
    }

    impl std::io::Read for Stutter {
        fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
            unreachable!("read_request only uses fill_buf/consume")
        }
    }

    impl BufRead for Stutter {
        fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
            if self.pending_timeout {
                self.pending_timeout = false;
                return Err(std::io::Error::from(std::io::ErrorKind::WouldBlock));
            }
            self.pending_timeout = true;
            match self.chunks.get(self.next) {
                Some(c) => Ok(c),
                // Out of data: stall forever (the client went quiet
                // without closing), so only the deadline or the caller's
                // idle policy can end the read.
                None => Err(std::io::Error::from(std::io::ErrorKind::WouldBlock)),
            }
        }

        fn consume(&mut self, amt: usize) {
            if amt > 0 {
                let chunk = &mut self.chunks[self.next];
                chunk.drain(..amt);
                if chunk.is_empty() {
                    self.next += 1;
                }
            }
        }
    }

    #[test]
    fn slow_request_trips_the_read_deadline_with_408() {
        // A zero deadline expires on the first timeout tick after the
        // first byte: the stalled header read becomes a 408.
        let limits = Limits { read_deadline: Duration::ZERO, ..Limits::default() };
        let mut r = Stutter::new(&[b"GET /healthz HT", b"TP/1.1\r\n"]);
        let err = read_request(&mut r, &limits, |_| false).unwrap_err();
        assert_eq!(err.kind, ErrorKind::RequestTimeout, "{err}");
        assert!(err.message.contains("read deadline"), "{err}");

        // Same for a body that never finishes arriving.
        let mut r = Stutter::new(&[b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\n", b"abc"]);
        let err = read_request(&mut r, &limits, |_| false).unwrap_err();
        assert_eq!(err.kind, ErrorKind::RequestTimeout, "{err}");
    }

    #[test]
    fn idle_keep_alive_is_not_subject_to_the_read_deadline() {
        // No request byte yet: ticks go to the caller's idle policy, and
        // abandoning the wait is a clean close, never a 408.
        let limits = Limits { read_deadline: Duration::ZERO, ..Limits::default() };
        let mut ticks = 0;
        let mut r = Stutter::new(&[]);
        let out = read_request(&mut r, &limits, |started| {
            assert!(!started);
            ticks += 1;
            ticks >= 2
        });
        assert_eq!(out.unwrap(), ReadOutcome::Closed);
    }

    #[test]
    fn generous_deadline_lets_a_stuttering_request_through() {
        let limits = Limits { read_deadline: Duration::from_secs(30), ..Limits::default() };
        let mut r = Stutter::new(&[b"GET /health", b"z HTTP/1.1\r\n", b"\r\n"]);
        let r = match read_request(&mut r, &limits, |_| false).unwrap() {
            ReadOutcome::Complete(r) => r,
            other => panic!("expected a request, got {other:?}"),
        };
        assert_eq!(r.path, "/healthz");
    }

    #[test]
    fn responses_carry_length_and_connection() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        write_response(&mut out, 404, "application/json", b"{}", true).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("connection: close"));
    }
}
