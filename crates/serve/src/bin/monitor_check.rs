//! Cross-check the server's live fairness monitor against a recording.
//!
//! Reads a `--record` JSONL log, rebuilds the per-model monitoring
//! window with a deliberately naive reference implementation (an
//! unbounded `Vec` of observations; the window is its trailing slice —
//! no ring buffer, no ordinal arithmetic), recomputes the live metric
//! suite offline, and compares it **bit-exactly** against the `monitor`
//! block a live server reported in `GET /v1/models` (saved to a file).
//!
//! This is the subsystem's end-to-end oracle: the server computes its
//! live metrics incrementally over a ring buffer under concurrency; this
//! binary recomputes them from first principles off the recorded
//! traffic. Any float differing in even one bit, any miscounted window
//! row or label join, fails the check and names the offender.
//!
//! ```text
//! monitor_check recorded.jsonl --models DIR --model ID --window N \
//!               --expect models.json
//! ```
//!
//! `--models DIR` locates `DIR/ID.flm`, whose schema maps recorded
//! request rows to sensitive-group ids exactly as the server did.
//! `--window N` must match the server's `--monitor-window`. The expect
//! file is the raw body of `GET /v1/models` from the server under test.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::exit;

use fairlens_core::ModelArtifact;
use fairlens_json::{parse, Value};
use fairlens_monitor::{live_metrics, Observation};

struct Args {
    recording: String,
    models_dir: PathBuf,
    model: String,
    window: usize,
    expect: String,
}

const USAGE: &str = "\
monitor_check <recording.jsonl> --models DIR --model ID --window N --expect models.json";

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut recording = None;
    let mut models_dir = PathBuf::from("models");
    let mut model = None;
    let mut window = None;
    let mut expect = None;
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| {
            argv.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("missing value for {}\n{USAGE}", argv[i]);
                exit(2);
            })
        };
        match argv[i].as_str() {
            "--models" => models_dir = PathBuf::from(value(i)),
            "--model" => model = Some(value(i)),
            "--window" => window = Some(value(i).parse().expect("--window")),
            "--expect" => expect = Some(value(i)),
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}\n{USAGE}");
                exit(2);
            }
            positional => {
                recording = Some(positional.to_string());
                i += 1;
                continue;
            }
        }
        i += 2;
    }
    match (recording, model, window, expect) {
        (Some(recording), Some(model), Some(window), Some(expect)) => {
            Args { recording, models_dir, model, window, expect }
        }
        _ => {
            eprintln!("{USAGE}");
            exit(2);
        }
    }
}

/// Rows of a recorded predict request, in request order.
fn request_rows(request: &Value) -> Vec<Value> {
    match (request.get("row"), request.get("rows")) {
        (Some(row), None) => vec![row.clone()],
        (None, Some(Value::Array(rows))) => rows.clone(),
        _ => Vec::new(),
    }
}

/// Predicted labels of a recorded 200 predict response.
fn response_preds(response: &Value) -> Vec<u8> {
    match (response.get("prediction"), response.get("predictions")) {
        (Some(p), None) => vec![p.clone().into_u64().expect("prediction") as u8],
        (None, Some(Value::Array(ps))) => {
            ps.iter().map(|p| p.clone().into_u64().expect("prediction") as u8).collect()
        }
        _ => Vec::new(),
    }
}

/// Scores of a recorded 200 predict response.
fn response_scores(response: &Value) -> Vec<f64> {
    match (response.get("score"), response.get("scores")) {
        (Some(s), None) => vec![s.clone().into_f64().expect("score")],
        (None, Some(scores)) => scores.clone().into_f64s().expect("scores"),
        _ => Vec::new(),
    }
}

/// Reported labels of a recorded 200 feedback request.
fn feedback_labels(request: &Value) -> Vec<u8> {
    match (request.get("label"), request.get("labels")) {
        (Some(l), None) => vec![l.clone().into_u64().expect("label") as u8],
        (None, Some(Value::Array(ls))) => {
            ls.iter().map(|l| l.clone().into_u64().expect("label") as u8).collect()
        }
        _ => Vec::new(),
    }
}

/// Flatten a `/v1/models` `monitor.live` block into (group, metric) →
/// float bit pattern.
fn flatten_live(live: &Value) -> BTreeMap<(String, String), u64> {
    let mut flat = BTreeMap::new();
    if let Value::Object(groups) = live {
        for (group, metrics) in groups {
            if let Value::Object(fields) = metrics {
                for (metric, v) in fields {
                    let bits =
                        v.clone().into_f64().expect("live metric is a number").to_bits();
                    flat.insert((group.clone(), metric.clone()), bits);
                }
            }
        }
    }
    flat
}

fn main() {
    let args = parse_args();

    let flm = args.models_dir.join(format!("{}.flm", args.model));
    let artifact = ModelArtifact::load(&flm).unwrap_or_else(|e| {
        eprintln!("[monitor_check] cannot load {}: {e}", flm.display());
        exit(2);
    });

    let text = std::fs::read_to_string(&args.recording).unwrap_or_else(|e| {
        eprintln!("[monitor_check] cannot read recording {}: {e}", args.recording);
        exit(2);
    });

    // The naive reference window: every scored row ever observed, in
    // arrival order; feedback joins labels by the seq's row range. The
    // "window" is simply the trailing `--window` slice — eviction,
    // overwrite, and label-expiry semantics all fall out for free.
    let mut all: Vec<Observation> = Vec::new();
    let mut seq_rows: BTreeMap<u64, (usize, usize)> = BTreeMap::new();
    let (mut predicts, mut feedbacks) = (0usize, 0usize);
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let entry = parse(line).unwrap_or_else(|e| {
            eprintln!("[monitor_check] bad recording entry: {e}\n  {line}");
            exit(2);
        });
        let status =
            entry.get("status").cloned().and_then(|v| v.into_u64().ok()).unwrap_or(0);
        let path = entry.get("path").and_then(Value::as_str).unwrap_or("");
        // Only answered (200) exchanges reached the monitor; rejected
        // predicts and feedbacks never touched its state.
        if status != 200 {
            continue;
        }
        let request = entry.get("request").cloned().unwrap_or(Value::Null);
        if request.get("model").and_then(Value::as_str) != Some(args.model.as_str()) {
            continue;
        }
        match path {
            "/v1/predict" => {
                let response = entry.get("response").cloned().unwrap_or(Value::Null);
                let rows = request_rows(&request);
                let data = artifact.schema.dataset_from_rows(&rows).unwrap_or_else(|e| {
                    eprintln!("[monitor_check] recorded 200 with invalid rows: {e}");
                    exit(2);
                });
                let groups = data.sensitive();
                let preds = response_preds(&response);
                let scores = response_scores(&response);
                let seq = response
                    .get("seq")
                    .cloned()
                    .and_then(|v| v.into_u64().ok())
                    .expect("200 predict response carries a seq");
                assert_eq!(groups.len(), preds.len(), "rows vs predictions in recording");
                assert_eq!(groups.len(), scores.len(), "rows vs scores in recording");
                seq_rows.insert(seq, (all.len(), groups.len()));
                for ((&group, &pred), &score) in
                    groups.iter().zip(&preds).zip(&scores)
                {
                    all.push(Observation { group, pred, score, label: None });
                }
                predicts += 1;
            }
            "/v1/feedback" => {
                let seq = request
                    .get("seq")
                    .cloned()
                    .and_then(|v| v.into_u64().ok())
                    .expect("feedback request carries a seq");
                let labels = feedback_labels(&request);
                let (start, len) = *seq_rows.get(&seq).unwrap_or_else(|| {
                    eprintln!("[monitor_check] 200 feedback for unrecorded seq {seq}");
                    exit(2);
                });
                assert_eq!(labels.len(), len, "feedback label count for seq {seq}");
                for (obs, &label) in all[start..start + len].iter_mut().zip(&labels) {
                    obs.label = Some(label);
                }
                feedbacks += 1;
            }
            _ => {}
        }
    }

    let window_start = all.len().saturating_sub(args.window);
    let window = &all[window_start..];
    let computed = live_metrics(window);
    let labeled = window.iter().filter(|o| o.label.is_some()).count();
    eprintln!(
        "[monitor_check] replayed {predicts} predict(s) + {feedbacks} feedback(s): \
         window {} of {} observed row(s), {labeled} labeled, {} live metric(s)",
        window.len(),
        all.len(),
        computed.len(),
    );

    // The server's view, as captured from GET /v1/models.
    let listing_text = std::fs::read_to_string(&args.expect).unwrap_or_else(|e| {
        eprintln!("[monitor_check] cannot read expect file {}: {e}", args.expect);
        exit(2);
    });
    let listing = parse(&listing_text).expect("expect file JSON");
    let models = listing.get("models").cloned().and_then(|v| v.into_array().ok()).unwrap_or_default();
    let entry = models
        .iter()
        .find(|m| m.get("id").and_then(Value::as_str) == Some(args.model.as_str()))
        .unwrap_or_else(|| {
            eprintln!("[monitor_check] model {:?} not in expect file", args.model);
            exit(2);
        });
    let monitor = entry.get("monitor").cloned().unwrap_or_else(|| {
        eprintln!("[monitor_check] model {:?} has no monitor block", args.model);
        exit(2);
    });

    let mut failures = 0usize;
    let mut check_count = |name: &str, reported: Option<Value>, expected: u64| {
        let got = reported.and_then(|v| v.into_u64().ok());
        if got != Some(expected) {
            eprintln!("[monitor_check] MISMATCH {name}: server {got:?}, recomputed {expected}");
            failures += 1;
        }
    };
    check_count("window_len", monitor.get("window_len").cloned(), window.len() as u64);
    check_count("labeled", monitor.get("labeled").cloned(), labeled as u64);
    check_count("observed", monitor.get("observed").cloned(), all.len() as u64);

    let served = flatten_live(monitor.get("live").unwrap_or(&Value::Null));
    let mut recomputed = BTreeMap::new();
    for m in &computed {
        recomputed.insert((m.group.to_string(), m.metric.to_string()), m.value.to_bits());
    }
    // Both directions: a metric the server reports that the reference
    // does not (or vice versa) is as much a bug as a differing value.
    for (key, &bits) in &served {
        match recomputed.get(key) {
            Some(&want) if want == bits => {}
            Some(&want) => {
                eprintln!(
                    "[monitor_check] MISMATCH live {}/{}: server {:#018x} ({}), \
                     recomputed {:#018x} ({})",
                    key.0,
                    key.1,
                    bits,
                    f64::from_bits(bits),
                    want,
                    f64::from_bits(want),
                );
                failures += 1;
            }
            None => {
                eprintln!(
                    "[monitor_check] MISMATCH live {}/{}: server reports it, \
                     reference does not",
                    key.0, key.1,
                );
                failures += 1;
            }
        }
    }
    for key in recomputed.keys() {
        if !served.contains_key(key) {
            eprintln!(
                "[monitor_check] MISMATCH live {}/{}: reference computes it, \
                 server does not report it",
                key.0, key.1,
            );
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!("[monitor_check] FAILED: {failures} mismatch(es)");
        exit(1);
    }
    eprintln!(
        "[monitor_check] PASS: {} live metric(s) bit-identical to the offline recomputation",
        served.len(),
    );
}
