//! Deterministic fault injection for the serving path.
//!
//! Extends the benchmark runner's `FAIRLENS_FAULT` hook (PR 2) to the
//! online stack so a chaos run can prove the server survives executor
//! death, stuck predictions, and transient failures. Specs are matched
//! by **model id** and carry a budget of `k` activations, decremented
//! atomically, so a scripted run knows exactly how many faults fire and
//! can assert the breaker re-closes once the budget is spent:
//!
//! * `panic:<model>:<k>` — the executor thread panics at dequeue (before
//!   the flush guard), killing it. Queued jobs lose their reply channel,
//!   handlers observe a dead executor (503), the breaker counts the
//!   failure, and the registry respawns the executor from the artifact
//!   on the next admitted request.
//! * `hang:<model>:<k>` — one flush stalls until the first job's budget
//!   is cancelled (the handler cancels it at its deadline), then every
//!   job in the flush is answered with a structured timeout.
//! * `flaky:<k>:<model>` — the first `k` flushes fail with an injected
//!   internal error (breaker fodder that stops on its own).
//! * `abort:<model>:<k>` — the **whole process** aborts
//!   (`std::process::abort`) when the k-th request for the model is
//!   dequeued. Unlike the budgeted kinds this is a countdown: the first
//!   `k - 1` requests pass through untouched and the fault fires exactly
//!   once, which is what the fleet supervisor's respawn path needs — a
//!   worker that dies deterministically mid-storm, and whose respawned
//!   incarnation (launched without the fault) stays up.
//!
//! Unlike the bench hook this is not `cfg`-gated: the serving hot path
//! pays one `Vec::is_empty` check per flush, and keeping it always
//! compiled lets integration tests and the chaos smoke inject faults
//! without feature plumbing. The hook only activates when the
//! `FAIRLENS_FAULT` environment variable (or an explicit config) names
//! a model.

use std::sync::atomic::{AtomicU32, Ordering};

/// What an activated fault does to the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeFaultKind {
    /// Kill the executor thread (exercises supervision + respawn).
    Panic,
    /// Stall one flush until the client's deadline cancels it.
    Hang,
    /// Fail one flush with an injected internal error.
    Flaky,
    /// Abort the whole process at the k-th request (countdown, fires once).
    Abort,
}

#[derive(Debug)]
struct FaultEntry {
    kind: ServeFaultKind,
    model: String,
    remaining: AtomicU32,
}

/// A parsed fault plan with per-spec activation budgets.
#[derive(Debug, Default)]
pub struct ServeFaults {
    specs: Vec<FaultEntry>,
}

impl ServeFaults {
    /// No faults (production default).
    pub fn none() -> Self {
        Self::default()
    }

    /// Parse a `;`-separated spec list: `panic:<model>:<k>`,
    /// `hang:<model>:<k>`, `flaky:<k>:<model>`, `abort:<model>:<k>`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let specs = s
            .split(';')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .map(|part| {
                let fields: Vec<&str> = part.split(':').collect();
                let (kind, model, k) = match fields.as_slice() {
                    ["panic", model, k] => (ServeFaultKind::Panic, *model, *k),
                    ["hang", model, k] => (ServeFaultKind::Hang, *model, *k),
                    ["flaky", k, model] => (ServeFaultKind::Flaky, *model, *k),
                    ["abort", model, k] => (ServeFaultKind::Abort, *model, *k),
                    _ => {
                        return Err(format!(
                            "bad fault spec {part:?} (want panic:<model>:<k>, \
                             hang:<model>:<k>, flaky:<k>:<model> or abort:<model>:<k>)"
                        ))
                    }
                };
                let k: u32 = k
                    .parse()
                    .map_err(|_| format!("bad activation count {k:?} in {part:?}"))?;
                Ok(FaultEntry {
                    kind,
                    model: model.to_string(),
                    remaining: AtomicU32::new(k),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Self { specs })
    }

    /// Faults from the `FAIRLENS_FAULT` environment variable. Malformed
    /// specs abort the process — a chaos-run configuration error must be
    /// caught before any request is served.
    pub fn from_env() -> Self {
        match std::env::var("FAIRLENS_FAULT") {
            Ok(v) if !v.trim().is_empty() => {
                Self::parse(&v).unwrap_or_else(|e| panic!("FAIRLENS_FAULT: {e}"))
            }
            _ => Self::none(),
        }
    }

    /// Whether any spec exists at all (hot-path early-out).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Consume one activation of `kind` for `model`, if any budget is
    /// left. Each call burns at most one activation. Budgeted kinds
    /// (panic/hang/flaky) activate on each of the first `k` calls;
    /// `abort` is a countdown and activates only on the call that takes
    /// the budget from 1 to 0 — i.e. exactly the k-th matching request.
    pub fn take(&self, model: &str, kind: ServeFaultKind) -> bool {
        self.specs
            .iter()
            .filter(|e| e.kind == kind && e.model == model)
            .any(|e| {
                match e
                    .remaining
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                {
                    Ok(prev) => !matches!(e.kind, ServeFaultKind::Abort) || prev == 1,
                    Err(_) => false,
                }
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_three_kinds() {
        let f = ServeFaults::parse("panic:german-lr:1; hang:german-lr:2;flaky:3:adult-feld").unwrap();
        assert!(!f.is_empty());
        assert!(f.take("german-lr", ServeFaultKind::Panic));
        assert!(!f.take("german-lr", ServeFaultKind::Panic), "budget of 1 is spent");
        assert!(f.take("german-lr", ServeFaultKind::Hang));
        assert!(f.take("german-lr", ServeFaultKind::Hang));
        assert!(!f.take("german-lr", ServeFaultKind::Hang));
        for _ in 0..3 {
            assert!(f.take("adult-feld", ServeFaultKind::Flaky));
        }
        assert!(!f.take("adult-feld", ServeFaultKind::Flaky));
    }

    #[test]
    fn abort_counts_down_and_fires_exactly_once() {
        let f = ServeFaults::parse("abort:german-lr:3").unwrap();
        assert!(!f.take("german-lr", ServeFaultKind::Abort), "request 1 passes");
        assert!(!f.take("german-lr", ServeFaultKind::Abort), "request 2 passes");
        assert!(f.take("german-lr", ServeFaultKind::Abort), "fires on the 3rd");
        assert!(!f.take("german-lr", ServeFaultKind::Abort), "spent");
        // k = 0 never fires.
        let f = ServeFaults::parse("abort:german-lr:0").unwrap();
        assert!(!f.take("german-lr", ServeFaultKind::Abort));
    }

    #[test]
    fn non_matching_models_are_untouched() {
        let f = ServeFaults::parse("panic:german-lr:5").unwrap();
        assert!(!f.take("other-model", ServeFaultKind::Panic));
        assert!(!f.take("german-lr", ServeFaultKind::Flaky));
    }

    #[test]
    fn empty_and_malformed_specs() {
        assert!(ServeFaults::parse("").unwrap().is_empty());
        assert!(ServeFaults::parse(" ; ").unwrap().is_empty());
        assert!(ServeFaults::parse("panic:x").is_err());
        assert!(ServeFaults::parse("flaky:x:2").is_err(), "count must be numeric");
        assert!(ServeFaults::parse("explode:x:1").is_err());
    }
}
