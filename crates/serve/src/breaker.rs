//! Per-model circuit breaker.
//!
//! The breaker sits between admission and the model executor and keeps a
//! failing model from burning worker time (and client patience) on
//! requests that are overwhelmingly likely to fail. It is the classic
//! three-state machine:
//!
//! * **Closed** — requests flow; consecutive failures are counted and
//!   any success resets the count. Reaching `threshold` consecutive
//!   failures opens the breaker.
//! * **Open** — requests are rejected immediately with a `Retry-After`
//!   equal to the remaining cooldown. Once `cooldown` has elapsed the
//!   next admission becomes a **probe**.
//! * **Half-open** — exactly one probe request is in flight; everyone
//!   else is rejected. A successful probe closes the breaker, a failed
//!   probe re-opens it (restarting the cooldown).
//!
//! The struct is deliberately pure: every method takes `now` explicitly
//! (no internal clock reads), so unit tests drive the entire state space
//! deterministically, and the registry — which owns one breaker per
//! model behind its lock — passes a single `Instant::now()` per request.

use std::time::{Duration, Instant};

/// Breaker tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive failures that open the breaker (min 1).
    pub threshold: u32,
    /// How long the breaker stays open before allowing a probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self { threshold: 5, cooldown: Duration::from_secs(1) }
    }
}

/// The externally visible state, for `/v1/models` and `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow normally.
    Closed,
    /// One probe in flight (or about to be); everyone else is rejected.
    HalfOpen,
    /// Cooling down; all requests rejected.
    Open,
}

impl BreakerState {
    /// Stable wire name (`/v1/models`).
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::HalfOpen => "half_open",
            BreakerState::Open => "open",
        }
    }

    /// Prometheus gauge encoding: closed 0, half-open 1, open 2.
    pub fn gauge(self) -> u64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        }
    }
}

/// What [`CircuitBreaker::admit`] decided for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Closed: proceed normally.
    Admit,
    /// Half-open: proceed, and this request's outcome decides the
    /// breaker's fate. The caller must report exactly one outcome
    /// (`on_success`, `on_failure`, or `release` if the request never
    /// exercised the model).
    Probe,
    /// Open (or a probe is already in flight): reject with `Retry-After`.
    Reject {
        /// How long the client should wait before retrying.
        retry_after: Duration,
    },
}

#[derive(Debug, Clone, Copy)]
enum Inner {
    Closed { failures: u32 },
    Open { since: Instant },
    HalfOpen { probing: bool },
}

/// One model's breaker. See the module docs for the state machine.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    inner: Inner,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(cfg: BreakerConfig) -> Self {
        let cfg = BreakerConfig { threshold: cfg.threshold.max(1), ..cfg };
        Self { cfg, inner: Inner::Closed { failures: 0 } }
    }

    /// The externally visible state.
    pub fn state(&self) -> BreakerState {
        match self.inner {
            Inner::Closed { .. } => BreakerState::Closed,
            Inner::Open { .. } => BreakerState::Open,
            Inner::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }

    /// Decide one request's admission at time `now`.
    pub fn admit(&mut self, now: Instant) -> Admission {
        match self.inner {
            Inner::Closed { .. } => Admission::Admit,
            Inner::Open { since } => {
                let reopen = since + self.cfg.cooldown;
                if now >= reopen {
                    self.inner = Inner::HalfOpen { probing: true };
                    Admission::Probe
                } else {
                    Admission::Reject { retry_after: reopen - now }
                }
            }
            Inner::HalfOpen { probing: false } => {
                self.inner = Inner::HalfOpen { probing: true };
                Admission::Probe
            }
            Inner::HalfOpen { probing: true } => {
                Admission::Reject { retry_after: self.cfg.cooldown }
            }
        }
    }

    /// A request the model served correctly: closes the breaker (from
    /// half-open) and resets the consecutive-failure count.
    pub fn on_success(&mut self) {
        self.inner = Inner::Closed { failures: 0 };
    }

    /// A model-side failure (panic, timeout, dead executor). Returns
    /// `true` when this failure transitioned the breaker to open.
    pub fn on_failure(&mut self, now: Instant) -> bool {
        match &mut self.inner {
            Inner::Closed { failures } => {
                *failures += 1;
                if *failures >= self.cfg.threshold {
                    self.inner = Inner::Open { since: now };
                    return true;
                }
                false
            }
            Inner::HalfOpen { .. } => {
                // Probe failed: back to open, cooldown restarts.
                self.inner = Inner::Open { since: now };
                true
            }
            // A straggler reporting failure while already open (e.g. a
            // request admitted just before the trip): stay open, keep
            // the original cooldown anchor.
            Inner::Open { .. } => false,
        }
    }

    /// An admitted probe that never exercised the model (the request was
    /// shed or failed client-side after admission): free the probe slot
    /// without judging the model.
    pub fn release(&mut self) {
        if let Inner::HalfOpen { probing } = &mut self.inner {
            *probing = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown_ms: u64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            threshold,
            cooldown: Duration::from_millis(cooldown_ms),
        })
    }

    #[test]
    fn closed_admits_and_counts_consecutive_failures() {
        let t0 = Instant::now();
        let mut b = breaker(3, 100);
        assert_eq!(b.admit(t0), Admission::Admit);
        assert!(!b.on_failure(t0));
        assert!(!b.on_failure(t0));
        // A success resets the streak: two more failures don't open it.
        b.on_success();
        assert!(!b.on_failure(t0));
        assert!(!b.on_failure(t0));
        assert_eq!(b.state(), BreakerState::Closed);
        // The third consecutive failure trips it.
        assert!(b.on_failure(t0));
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn open_rejects_with_remaining_cooldown() {
        let t0 = Instant::now();
        let mut b = breaker(1, 100);
        assert!(b.on_failure(t0));
        let Admission::Reject { retry_after } = b.admit(t0 + Duration::from_millis(30)) else {
            panic!("open breaker must reject");
        };
        assert_eq!(retry_after, Duration::from_millis(70));
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn cooldown_expiry_allows_exactly_one_probe() {
        let t0 = Instant::now();
        let mut b = breaker(1, 100);
        b.on_failure(t0);
        let after = t0 + Duration::from_millis(100);
        assert_eq!(b.admit(after), Admission::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Concurrent request while the probe is in flight: rejected.
        assert!(matches!(b.admit(after), Admission::Reject { .. }));
    }

    #[test]
    fn probe_success_closes() {
        let t0 = Instant::now();
        let mut b = breaker(2, 100);
        b.on_failure(t0);
        assert!(b.on_failure(t0));
        assert_eq!(b.admit(t0 + Duration::from_millis(150)), Admission::Probe);
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(t0 + Duration::from_millis(151)), Admission::Admit);
        // ...and the failure streak restarted from zero: one failure is
        // below the threshold of two again.
        assert!(!b.on_failure(t0));
    }

    #[test]
    fn probe_failure_reopens_and_restarts_cooldown() {
        let t0 = Instant::now();
        let mut b = breaker(1, 100);
        b.on_failure(t0);
        let probe_at = t0 + Duration::from_millis(120);
        assert_eq!(b.admit(probe_at), Admission::Probe);
        assert!(b.on_failure(probe_at));
        assert_eq!(b.state(), BreakerState::Open);
        // Cooldown is anchored at the probe failure, not the first trip.
        let Admission::Reject { retry_after } = b.admit(probe_at + Duration::from_millis(40))
        else {
            panic!("must reject during the restarted cooldown");
        };
        assert_eq!(retry_after, Duration::from_millis(60));
        assert_eq!(b.admit(probe_at + Duration::from_millis(100)), Admission::Probe);
    }

    #[test]
    fn released_probe_slot_reopens_for_the_next_request() {
        let t0 = Instant::now();
        let mut b = breaker(1, 100);
        b.on_failure(t0);
        let after = t0 + Duration::from_millis(100);
        assert_eq!(b.admit(after), Admission::Probe);
        // The probe was shed before reaching the model: slot freed,
        // breaker still half-open, next admission probes again.
        b.release();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.admit(after), Admission::Probe);
    }

    #[test]
    fn late_failure_while_open_keeps_the_original_anchor() {
        let t0 = Instant::now();
        let mut b = breaker(1, 100);
        b.on_failure(t0);
        // A request admitted just before the trip reports its failure late.
        assert!(!b.on_failure(t0 + Duration::from_millis(90)));
        // The cooldown still expires 100ms after the first trip.
        assert_eq!(b.admit(t0 + Duration::from_millis(100)), Admission::Probe);
    }

    #[test]
    fn zero_threshold_is_clamped_to_one() {
        let t0 = Instant::now();
        let mut b = breaker(0, 50);
        assert!(b.on_failure(t0));
        assert_eq!(b.state(), BreakerState::Open);
    }
}
