//! Ready-made paired-solver drivers.
//!
//! Each pair runs two independent implementations of the same problem and
//! lockstep-compares their checkpoint streams:
//!
//! * **LR determinism** — the same logistic solver run twice, compared
//!   bit-exactly per IRLS/GD iteration. Any divergence here is a
//!   reproducibility bug (uninitialised state, environment-dependent
//!   numerics, data races).
//! * **LR agreement** — Newton (IRLS) vs gradient descent on the same
//!   weighted loss; both converge to the unique ridge-regularised optimum,
//!   so the *converged* coefficients must agree within a ULP bound.
//! * **Optim agreement** — GD vs Adam minimising one shared
//!   [`Objective`]; converged objective values must agree within a bound.
//! * **MaxSAT agreement** — exhaustive exact solve vs WalkSAT local search
//!   at small scale; the reached optimum (soft weight, hard feasibility)
//!   must coincide.

use fairlens_linalg::Matrix;
use fairlens_model::{FitError, LogisticOptions, LogisticRegression, Solver};
use fairlens_optim::{adam, gd, AdamOptions, GdOptions, Objective};
use fairlens_solver::MaxSatProblem;

use crate::{lockstep, Report, State, Tolerance};

/// Default ULP bound for cross-*algorithm* agreement checks. Two different
/// convergent algorithms stop at slightly different points of the same
/// basin; 2⁴⁰ ulps ≈ 2.4 × 10⁻⁴ relative — loose enough for honest
/// convergence, tight enough to catch a wrong objective or a flipped sign.
pub const AGREEMENT_ULPS: u64 = 1 << 40;

/// Capture the per-iteration parameter stream of one logistic fit.
///
/// Fields are `beta[0]..beta[d]` (weights then intercept), one checkpoint
/// per solver iteration, in the exact bits the solver computed.
pub fn capture_lr(
    x: &Matrix,
    y: &[u8],
    sample_weights: Option<&[f64]>,
    opts: &LogisticOptions,
) -> Result<Vec<State>, FitError> {
    let mut stream = Vec::new();
    LogisticRegression::fit_weighted_observed(x, y, sample_weights, opts, &mut |_, beta| {
        stream.push(State::of_params("beta", beta));
    })?;
    Ok(stream)
}

/// Run the same logistic solver twice and lockstep-compare every iteration
/// bit-exactly. `tol` is almost always [`Tolerance::Exact`]; a looser bound
/// is accepted for experimentation.
pub fn lr_determinism(
    x: &Matrix,
    y: &[u8],
    sample_weights: Option<&[f64]>,
    opts: &LogisticOptions,
    tol: Tolerance,
) -> Result<Report, FitError> {
    let a = capture_lr(x, y, sample_weights, opts)?;
    let b = capture_lr(x, y, sample_weights, opts)?;
    let pair = match opts.solver {
        Solver::Irls => "lr/irls-vs-irls",
        Solver::GradientDescent => "lr/gd-vs-gd",
    };
    Ok(lockstep(pair, &a, &b, tol))
}

/// Fit the same weighted loss with Newton (IRLS) and gradient descent and
/// compare the *converged* coefficients within `tol`.
///
/// The checkpoint stream has a single entry per solver (fields `w[j]`,
/// `intercept`), so a reported divergence names the first coefficient that
/// disagrees.
pub fn lr_agreement(
    x: &Matrix,
    y: &[u8],
    sample_weights: Option<&[f64]>,
    opts: &LogisticOptions,
    tol: Tolerance,
) -> Result<Report, FitError> {
    let newton = LogisticRegression::fit_weighted(
        x,
        y,
        sample_weights,
        &LogisticOptions { solver: Solver::Irls, ..opts.clone() },
    )?;
    let gradient = LogisticRegression::fit_weighted(
        x,
        y,
        sample_weights,
        &LogisticOptions {
            solver: Solver::GradientDescent,
            max_iter: opts.max_iter.max(20_000),
            tol: opts.tol.min(1e-10),
            ..opts.clone()
        },
    )?;
    let summary = |m: &LogisticRegression| {
        let mut s = State::of_params("w", m.weights());
        s.fields.push(("intercept".into(), m.intercept()));
        vec![s]
    };
    Ok(lockstep("lr/irls-vs-gd", &summary(&newton), &summary(&gradient), tol))
}

/// Minimise one shared objective with GD and Adam and compare the best
/// objective values reached, within `tol`.
pub fn optim_agreement(obj: &dyn Objective, x0: &[f64], tol: Tolerance) -> Report {
    let g = gd::minimize(obj, x0, &GdOptions { max_iter: 20_000, grad_tol: 1e-10, ..Default::default() });
    let (_, adam_val) =
        adam::minimize(obj, x0, &AdamOptions { iterations: 20_000, lr: 0.01, ..Default::default() });
    let left = [State::new([("objective".to_string(), g.value)])];
    let right = [State::new([("objective".to_string(), adam_val)])];
    lockstep("optim/gd-vs-adam", &left, &right, tol)
}

/// Solve a small instance exactly and with WalkSAT and compare the reached
/// optimum. The local search emits a per-restart incumbent stream; the
/// comparison is on the final incumbent (fields `soft_weight`, `hard_ok`),
/// and the report's `checkpoints` counts the restarts observed.
pub fn maxsat_agreement(
    problem: &MaxSatProblem,
    seed: u64,
    flips: usize,
    restarts: usize,
    tol: Tolerance,
) -> Report {
    let exact = problem.solve_exact();
    let mut incumbents = Vec::new();
    let local = problem.solve_local_search_observed(seed, flips, restarts, &mut |_, w, ok| {
        incumbents.push((w, ok));
    });
    let summary = |soft: f64, hard_ok: bool| {
        vec![State::new([
            ("soft_weight".to_string(), soft),
            ("hard_ok".to_string(), f64::from(u8::from(hard_ok))),
        ])]
    };
    let mut report = lockstep(
        "maxsat/exact-vs-walksat",
        &summary(exact.soft_weight, exact.hard_ok),
        &summary(local.soft_weight, local.hard_ok),
        tol,
    );
    report.checkpoints = incumbents.len();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bump;
    use fairlens_solver::{Clause, Lit};

    /// Deterministic synthetic design: two informative columns plus an
    /// intercept-friendly spread, labels from a fixed linear rule.
    fn synthetic(n: usize) -> (Matrix, Vec<u8>) {
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let a = ((i * 7919) % 97) as f64 / 48.5 - 1.0;
            let b = ((i * 104729) % 89) as f64 / 44.5 - 1.0;
            rows.push(vec![a, b]);
            y.push(u8::from(1.4 * a - 2.2 * b + 0.3 > 0.0));
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn lr_determinism_is_bit_exact() {
        let (x, y) = synthetic(300);
        for solver in [Solver::Irls, Solver::GradientDescent] {
            let opts = LogisticOptions { solver, ..Default::default() };
            let r = lr_determinism(&x, &y, None, &opts, Tolerance::Exact).unwrap();
            assert!(r.ok(), "{r}");
            assert!(r.checkpoints > 0);
        }
    }

    #[test]
    fn lr_determinism_catches_injected_perturbation() {
        let (x, y) = synthetic(300);
        let opts = LogisticOptions::default();
        let a = capture_lr(&x, &y, None, &opts).unwrap();
        let mut b = a.clone();
        let k = b.len() / 2;
        b[k].fields[0].1 = bump(b[k].fields[0].1, 1);
        let r = lockstep("lr/irls-vs-irls", &a, &b, Tolerance::Exact);
        let d = r.divergence.expect("1-ulp perturbation must be caught");
        assert_eq!(d.iteration, k);
        assert_eq!(d.field, "beta[0]");
        assert_eq!(d.ulps(), 1);
    }

    #[test]
    fn lr_agreement_newton_vs_gd() {
        let (x, y) = synthetic(400);
        let opts = LogisticOptions { l2: 0.01, ..Default::default() };
        let r = lr_agreement(&x, &y, None, &opts, Tolerance::Ulps(AGREEMENT_ULPS)).unwrap();
        assert!(r.ok(), "{r}");
        // A sign flip on a coefficient is far outside any honest bound.
        let newton = LogisticRegression::fit_weighted(&x, &y, None, &opts).unwrap();
        let flipped = State::of_params("w", &[-newton.weights()[0], newton.weights()[1]]);
        let honest = State::of_params("w", newton.weights());
        assert!(!lockstep("t", &[honest], &[flipped], Tolerance::Ulps(AGREEMENT_ULPS)).ok());
    }

    #[test]
    fn optim_agreement_gd_vs_adam() {
        let (x, y) = synthetic(200);
        let loss = fairlens_model::LogisticLoss::new(&x, &y, 0.05);
        let x0 = vec![0.0; loss.dim()];
        let r = optim_agreement(&loss, &x0, Tolerance::Ulps(AGREEMENT_ULPS));
        assert!(r.ok(), "{r}");
    }

    #[test]
    fn maxsat_exact_vs_walksat_agree_on_small_instances() {
        let mut p = MaxSatProblem::new(8);
        for v in 0..7 {
            p.add(Clause::hard(vec![Lit::neg(v), Lit::pos(v + 1)])).unwrap();
        }
        p.add(Clause::soft(vec![Lit::pos(0)], 2.5).unwrap()).unwrap();
        p.add(Clause::soft(vec![Lit::neg(7)], 4.0).unwrap()).unwrap();
        p.add(Clause::soft(vec![Lit::pos(3)], 1.0).unwrap()).unwrap();
        let r = maxsat_agreement(&p, 11, 4000, 8, Tolerance::Exact);
        assert!(r.ok(), "{r}");
        assert!(r.checkpoints > 0);
    }
}
