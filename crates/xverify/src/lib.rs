//! # fairlens-xverify
//!
//! Cross-verified execution: run two implementations of the same
//! computation in lockstep and report the **exact first divergence** —
//! iteration, field name, and both values down to the bit pattern.
//!
//! The paper's reproducibility claim rests on bit-exact numerics; FFB and
//! fairlib both document in-processing instability across runs. Silent
//! numeric divergence is precisely the failure mode a test-time assertion
//! misses: it appears only on some data, some iteration, deep inside a
//! solver. This crate turns the invariant into a runtime check:
//!
//! * [`Checkpoint`] — per-iteration solver state as named scalar fields;
//! * [`Tolerance`] — bit-exact or a ULP bound ([`ulp_distance`]);
//! * [`lockstep`] — compare two checkpoint streams field by field and stop
//!   at the first disagreement ([`Divergence`]);
//! * [`pairs`] — ready-made paired-solver drivers: Newton (IRLS) vs
//!   gradient-descent logistic regression, exact vs WalkSAT MaxSAT at
//!   small scale, and GD vs Adam on a shared [`fairlens_optim::Objective`].
//!
//! The bench crate wires these into an `xverify` binary and a `--xverify`
//! flag on the figure binaries; `fairlens-serve` applies the same
//! comparison discipline to shadow deployments.

pub mod pairs;

/// How two floating-point values are compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tolerance {
    /// Values must agree bit for bit.
    Exact,
    /// Values may differ by at most this many units in the last place, or
    /// by at most `k · ε` absolutely ("k ulps at unit scale") — the
    /// absolute fallback keeps near-zero values from failing on the
    /// astronomically large ULP distances across the sign boundary.
    Ulps(u64),
}

impl Tolerance {
    /// Do `a` and `b` agree under this tolerance?
    pub fn matches(self, a: f64, b: f64) -> bool {
        match self {
            Tolerance::Exact => a.to_bits() == b.to_bits(),
            Tolerance::Ulps(k) => {
                ulp_distance(a, b) <= k || (a - b).abs() <= k as f64 * f64::EPSILON
            }
        }
    }
}

/// Map a float onto a monotone integer line, so that ULP distance is a
/// plain integer difference. `-0.0` and `+0.0` coincide at the origin.
fn ordered(v: f64) -> i128 {
    let a = v.to_bits() as i64 as i128;
    if a < 0 {
        (i64::MIN as i128) - a
    } else {
        a
    }
}

/// Distance between two finite floats in units in the last place.
///
/// Identical bit patterns are 0 apart; any comparison involving NaN is
/// `u64::MAX` apart (NaN never silently passes a tolerance gate).
pub fn ulp_distance(a: f64, b: f64) -> u64 {
    if a.to_bits() == b.to_bits() {
        return 0;
    }
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    u64::try_from((ordered(a) - ordered(b)).unsigned_abs()).unwrap_or(u64::MAX)
}

/// Move `v` up by `ulps` representable values (the perturbation injector
/// used by the smoke tests to prove the harness actually fires).
pub fn bump(v: f64, ulps: u64) -> f64 {
    let mut out = v;
    for _ in 0..ulps {
        out = next_up(out);
    }
    out
}

fn next_up(v: f64) -> f64 {
    // f64::next_up is unstable on our MSRV; walk the bit pattern directly.
    if v.is_nan() || v == f64::INFINITY {
        return v;
    }
    let bits = v.to_bits();
    if v == 0.0 {
        f64::from_bits(1)
    } else if bits >> 63 == 0 {
        f64::from_bits(bits + 1)
    } else {
        f64::from_bits(bits - 1)
    }
}

/// Per-iteration solver state exposed for lockstep comparison.
///
/// Implementors surface their state as an ordered list of named scalar
/// fields — coefficients, objective values, satisfied weight — the exact
/// `f64`s the solver computed, so a bit-exact comparison is meaningful.
pub trait Checkpoint {
    /// Named scalar fields of this checkpoint, in a stable order.
    fn fields(&self) -> Vec<(String, f64)>;
}

/// A plain captured checkpoint: what the observer hooks in
/// `fairlens-model` / `fairlens-optim` / `fairlens-solver` emit.
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    /// The named fields.
    pub fields: Vec<(String, f64)>,
}

impl State {
    /// Build a checkpoint from `(name, value)` pairs.
    pub fn new(fields: impl IntoIterator<Item = (String, f64)>) -> Self {
        Self { fields: fields.into_iter().collect() }
    }

    /// A checkpoint of one parameter vector, fields named `{prefix}[j]`.
    pub fn of_params(prefix: &str, params: &[f64]) -> Self {
        Self::new(params.iter().enumerate().map(|(j, &v)| (format!("{prefix}[{j}]"), v)))
    }
}

impl Checkpoint for State {
    fn fields(&self) -> Vec<(String, f64)> {
        self.fields.clone()
    }
}

/// The first point where two checkpoint streams disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Index in the checkpoint stream (the solver iteration).
    pub iteration: usize,
    /// Which field disagreed.
    pub field: String,
    /// The left run's value.
    pub left: f64,
    /// The right run's value.
    pub right: f64,
}

impl Divergence {
    /// ULP distance between the two values.
    pub fn ulps(&self) -> u64 {
        ulp_distance(self.left, self.right)
    }
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "first divergence at iteration {} field {}: left {:e} (bits {:#018x}) vs right {:e} (bits {:#018x}), {} ulps apart",
            self.iteration,
            self.field,
            self.left,
            self.left.to_bits(),
            self.right,
            self.right.to_bits(),
            self.ulps(),
        )
    }
}

/// Outcome of one lockstep comparison.
#[derive(Debug, Clone)]
pub struct Report {
    /// Which solver pair ran (e.g. `"lr/irls-vs-irls"`).
    pub pair: String,
    /// Number of checkpoints compared before stopping.
    pub checkpoints: usize,
    /// The first divergence, if any.
    pub divergence: Option<Divergence>,
}

impl Report {
    /// Did the two runs agree everywhere?
    pub fn ok(&self) -> bool {
        self.divergence.is_none()
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.divergence {
            None => write!(f, "[{}] ok: {} checkpoints agree", self.pair, self.checkpoints),
            Some(d) => write!(f, "[{}] DIVERGED: {d}", self.pair),
        }
    }
}

/// Compare two checkpoint streams in lockstep.
///
/// Streams are walked index by index; at each index every field of the
/// left checkpoint must be present in the right one and match under `tol`.
/// The comparison stops at the first disagreement. A length mismatch (one
/// solver took more iterations) is itself a divergence, reported on the
/// synthetic field `"checkpoints"`.
pub fn lockstep<L: Checkpoint, R: Checkpoint>(
    pair: &str,
    left: &[L],
    right: &[R],
    tol: Tolerance,
) -> Report {
    let n = left.len().min(right.len());
    for i in 0..n {
        let lf = left[i].fields();
        let rf = right[i].fields();
        for (name, lv) in &lf {
            let rv = match rf.iter().find(|(rn, _)| rn == name) {
                Some((_, rv)) => *rv,
                None => f64::NAN,
            };
            if !tol.matches(*lv, rv) {
                return Report {
                    pair: pair.to_string(),
                    checkpoints: i,
                    divergence: Some(Divergence {
                        iteration: i,
                        field: name.clone(),
                        left: *lv,
                        right: rv,
                    }),
                };
            }
        }
    }
    let divergence = (left.len() != right.len()).then(|| Divergence {
        iteration: n,
        field: "checkpoints".into(),
        left: left.len() as f64,
        right: right.len() as f64,
    });
    Report { pair: pair.to_string(), checkpoints: n, divergence }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(0.0, -0.0), 0);
        assert_eq!(ulp_distance(1.0, f64::from_bits(1.0f64.to_bits() + 1)), 1);
        assert_eq!(ulp_distance(1.0, f64::NAN), u64::MAX);
        // Straddling zero: smallest positive vs smallest negative subnormal.
        assert_eq!(ulp_distance(f64::from_bits(1), -f64::from_bits(1)), 2);
        // Distance grows monotonically with magnitude gap.
        assert!(ulp_distance(1.0, 2.0) > ulp_distance(1.0, 1.5));
    }

    #[test]
    fn bump_moves_by_exact_ulps() {
        let v = 3.25f64;
        assert_eq!(ulp_distance(v, bump(v, 1)), 1);
        assert_eq!(ulp_distance(v, bump(v, 7)), 7);
        assert_eq!(ulp_distance(-v, bump(-v, 3)), 3);
        assert!(bump(-v, 3) > -v);
        assert!(bump(0.0, 1) > 0.0);
    }

    #[test]
    fn tolerance_modes() {
        let a = 1.0;
        let b = bump(a, 4);
        assert!(Tolerance::Exact.matches(a, a));
        assert!(!Tolerance::Exact.matches(a, b));
        assert!(Tolerance::Ulps(4).matches(a, b));
        assert!(!Tolerance::Ulps(3).matches(a, b));
        assert!(!Tolerance::Ulps(u64::MAX - 1).matches(a, f64::NAN));
        // Absolute fallback: values straddling zero are billions of ulps
        // apart but agree at unit scale.
        assert!(Tolerance::Ulps(1 << 40).matches(1e-20, -1e-20));
        assert!(!Tolerance::Ulps(1 << 40).matches(0.1, -0.1));
    }

    #[test]
    fn lockstep_agrees_on_identical_streams() {
        let s: Vec<State> =
            (0..5).map(|i| State::of_params("beta", &[i as f64, -0.5 * i as f64])).collect();
        let r = lockstep("test", &s, &s.clone(), Tolerance::Exact);
        assert!(r.ok());
        assert_eq!(r.checkpoints, 5);
    }

    #[test]
    fn lockstep_names_first_diverging_iteration_and_field() {
        let left: Vec<State> = (0..5).map(|i| State::of_params("beta", &[1.0, i as f64])).collect();
        let mut right = left.clone();
        right[3].fields[1].1 = bump(right[3].fields[1].1, 2);
        let r = lockstep("test", &left, &right, Tolerance::Exact);
        let d = r.divergence.expect("must diverge");
        assert_eq!(d.iteration, 3);
        assert_eq!(d.field, "beta[1]");
        assert_eq!(d.ulps(), 2);
        // Within a 2-ulp bound the same streams agree.
        assert!(lockstep("test", &left, &right, Tolerance::Ulps(2)).ok());
    }

    #[test]
    fn lockstep_reports_length_mismatch() {
        let left: Vec<State> = (0..4).map(|i| State::of_params("x", &[i as f64])).collect();
        let right: Vec<State> = left[..3].to_vec();
        let r = lockstep("test", &left, &right, Tolerance::Exact);
        let d = r.divergence.expect("must diverge");
        assert_eq!(d.field, "checkpoints");
        assert_eq!(d.iteration, 3);
    }

    #[test]
    fn lockstep_missing_field_is_a_divergence() {
        let left = [State::new([("a".to_string(), 1.0), ("b".to_string(), 2.0)])];
        let right = [State::new([("a".to_string(), 1.0)])];
        let r = lockstep("test", &left, &right, Tolerance::Ulps(10));
        assert_eq!(r.divergence.unwrap().field, "b");
    }

    #[test]
    fn divergence_display_names_bits() {
        let d = Divergence { iteration: 7, field: "beta[2]".into(), left: 1.0, right: bump(1.0, 1) };
        let s = d.to_string();
        assert!(s.contains("iteration 7"), "{s}");
        assert!(s.contains("beta[2]"), "{s}");
        assert!(s.contains("0x3ff0000000000000"), "{s}");
        assert!(s.contains("1 ulps"), "{s}");
    }
}
