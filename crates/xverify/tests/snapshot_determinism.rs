//! Snapshot/restore determinism, checked with the cross-verification
//! tolerances.
//!
//! A saved model must reproduce the original's predictions after a full
//! snapshot → save → load → restore round trip. For deterministic
//! pipelines (baseline, pre-, in-processing, and the deterministic
//! post-processors) the restored score stream must be **bit-exact**
//! ([`Tolerance::Exact`]). The stochastic post-processors (Hardt^EO,
//! Pleiss^EOP) randomise *labels* per predict call — their score stream
//! is still deterministic, and is held to the solver-agreement bound
//! [`AGREEMENT_ULPS`]; their label stream must replay identically
//! because the artifact carries the prediction-time seed.

use fairlens_core::{all_approaches, baseline_approach, Approach, ModelArtifact};
use fairlens_synth::DatasetKind;
use fairlens_xverify::pairs::AGREEMENT_ULPS;
use fairlens_xverify::Tolerance;

fn approach(name: &str) -> Approach {
    std::iter::once(baseline_approach())
        .chain(all_approaches(DatasetKind::German.salimi_inadmissible()))
        .find(|a| a.name == name)
        .unwrap_or_else(|| panic!("no approach {name:?}"))
}

/// Fit `name` on German(300), round-trip it through a `.flm` file, and
/// return (original scores, restored scores, original labels, restored
/// labels) on a held-out sample.
fn round_trip(name: &str, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<u8>, Vec<u8>) {
    let train = DatasetKind::German.generate(300, seed);
    let held_out = DatasetKind::German.generate(120, seed ^ 0x5eed);
    let approach = approach(name);
    let fitted = approach.fit(&train, seed).unwrap();

    let dir = std::env::temp_dir()
        .join(format!("flm-snap-{}-{}", seed, std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{}.flm", name.replace(['^', '(', ')', '.'], "-")));
    let artifact = ModelArtifact {
        approach: approach.name.to_string(),
        stage: approach.stage.label().to_string(),
        dataset: "German".into(),
        seed,
        train_rows: train.n_rows() as u64,
        train_metrics: vec![],
        schema: fairlens_core::DataSchema::of(&train),
        pipeline: fitted.snapshot().unwrap(),
    };
    artifact.save(&path).unwrap();
    let restored = ModelArtifact::load(&path).unwrap().restore();
    let _ = std::fs::remove_dir_all(&dir);

    (
        fitted.predict_proba(&held_out),
        restored.predict_proba(&held_out),
        fitted.predict(&held_out),
        restored.predict(&held_out),
    )
}

#[test]
fn deterministic_pipelines_restore_bit_exactly() {
    // One representative per stage: baseline, pre-, in-, and a
    // deterministic post-processor.
    for name in ["LR", "KamCal^DP", "Zafar^DP_Fair", "KamKar^DP"] {
        let (scores, restored_scores, labels, restored_labels) = round_trip(name, 41);
        for (row, (a, b)) in scores.iter().zip(&restored_scores).enumerate() {
            assert!(
                Tolerance::Exact.matches(*a, *b),
                "{name}: row {row} scores diverge after restore: \
                 {:#018x} ({a}) vs {:#018x} ({b})",
                a.to_bits(),
                b.to_bits(),
            );
        }
        assert_eq!(labels, restored_labels, "{name}: labels diverge after restore");
    }
}

#[test]
fn stochastic_postprocessors_restore_within_agreement_ulps() {
    for name in ["Hardt^EO", "Pleiss^EOP"] {
        let (scores, restored_scores, labels, restored_labels) = round_trip(name, 43);
        assert!(
            scores.iter().any(|s| *s > 0.0 && *s < 1.0),
            "{name}: degenerate score stream"
        );
        for (row, (a, b)) in scores.iter().zip(&restored_scores).enumerate() {
            assert!(
                Tolerance::Ulps(AGREEMENT_ULPS).matches(*a, *b),
                "{name}: row {row} scores drift past {AGREEMENT_ULPS} ulps: \
                 {:#018x} ({a}) vs {:#018x} ({b})",
                a.to_bits(),
                b.to_bits(),
            );
        }
        // The artifact carries the prediction-time seed, so even the
        // randomised label stream replays draw-for-draw.
        assert_eq!(labels, restored_labels, "{name}: label replay diverges");
    }
}
