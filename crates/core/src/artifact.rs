//! The `.flm` ("FairLens model") on-disk artifact format.
//!
//! An artifact is a single JSON document (written with the workspace's
//! bit-exact float serializer, so save → load → predict reproduces the
//! in-memory pipeline byte for byte) carrying:
//!
//! * provenance — approach name, stage, dataset kind, training seed, row
//!   count and training-fold metrics;
//! * the training data's [`DataSchema`], so a server can validate and
//!   encode raw JSON rows without ever seeing the training data;
//! * the [`PipelineSnapshot`] of the fitted pipeline.
//!
//! The envelope is versioned (`"format": "flm"`, `"version": 1`); loaders
//! reject unknown formats/versions up front with a structured error rather
//! than mis-parsing.

use std::io::Write as _;
use std::path::Path;

use fairlens_frame::{Column, Dataset};
use fairlens_json::{object, parse, Value};

use crate::pipeline::FittedPipeline;
use crate::snapshot::PipelineSnapshot;

/// File extension for model artifacts.
pub const ARTIFACT_EXT: &str = "flm";
/// Envelope format tag.
pub const ARTIFACT_FORMAT: &str = "flm";
/// Current envelope version.
pub const ARTIFACT_VERSION: u64 = 1;

/// The domain of one predictive attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrSchemaKind {
    /// Real-valued attribute.
    Numeric,
    /// Finite-domain attribute with named levels (`levels[code]`).
    Categorical {
        /// Level display names, in code order.
        levels: Vec<String>,
    },
}

/// Name + domain of one predictive attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrSchema {
    /// Attribute name (JSON key in prediction requests).
    pub name: String,
    /// Attribute domain.
    pub kind: AttrSchemaKind,
}

/// The `(X, S; Y)` schema of the data a pipeline was trained on — enough
/// to validate and assemble prediction-time rows from raw JSON objects.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSchema {
    /// Predictive attributes, in training column order.
    pub attrs: Vec<AttrSchema>,
    /// Sensitive attribute name (binary, `1` = privileged).
    pub sensitive: String,
    /// Label attribute name (not required in prediction rows).
    pub label: String,
}

impl DataSchema {
    /// Capture the schema of a dataset.
    pub fn of(data: &Dataset) -> Self {
        let attrs = data
            .columns()
            .iter()
            .zip(data.attr_names())
            .map(|(col, name)| AttrSchema {
                name: name.clone(),
                kind: match col {
                    Column::Numeric(_) => AttrSchemaKind::Numeric,
                    Column::Categorical { levels, .. } => {
                        AttrSchemaKind::Categorical { levels: levels.clone() }
                    }
                },
            })
            .collect();
        Self {
            attrs,
            sensitive: data.sensitive_name().to_string(),
            label: data.label_name().to_string(),
        }
    }

    /// Assemble a prediction-time [`Dataset`] from JSON row objects.
    ///
    /// Each row must be an object providing every predictive attribute and
    /// the sensitive attribute; unknown keys are rejected (they almost
    /// always indicate a typo'd attribute name, and silently ignoring them
    /// would mis-predict). Categorical values accept either the level name
    /// (string) or the integer code; numeric values must be finite;
    /// the sensitive value must be 0 or 1. Labels are not part of
    /// prediction input — the returned dataset carries dummy `0` labels.
    ///
    /// Errors are row-addressed (`"row 3: ..."`) so a serving layer can
    /// return actionable 400 bodies.
    pub fn dataset_from_rows(&self, rows: &[Value]) -> Result<Dataset, String> {
        if rows.is_empty() {
            return Err("no rows to predict".into());
        }
        let n = rows.len();
        let mut numeric: Vec<Vec<f64>> = Vec::new();
        let mut codes: Vec<Vec<u32>> = Vec::new();
        for attr in &self.attrs {
            match &attr.kind {
                AttrSchemaKind::Numeric => numeric.push(Vec::with_capacity(n)),
                AttrSchemaKind::Categorical { .. } => codes.push(Vec::with_capacity(n)),
            }
        }
        let mut sensitive = Vec::with_capacity(n);

        for (r, row) in rows.iter().enumerate() {
            let fail = |msg: String| format!("row {r}: {msg}");
            let Value::Object(fields) = row else {
                return Err(fail(format!("expected an object, got {}", row.kind_name())));
            };
            for (key, _) in fields {
                let known = key == &self.sensitive
                    || self.attrs.iter().any(|a| &a.name == key);
                if !known {
                    return Err(fail(format!("unknown attribute {key:?}")));
                }
            }
            let field = |key: &str| {
                row.get(key).ok_or_else(|| fail(format!("missing attribute {key:?}")))
            };
            let (mut ni, mut ci) = (0usize, 0usize);
            for attr in &self.attrs {
                let v = field(&attr.name)?;
                match &attr.kind {
                    AttrSchemaKind::Numeric => {
                        let x = v.clone().into_f64().map_err(|e| {
                            fail(format!("attribute {:?}: {e}", attr.name))
                        })?;
                        if !x.is_finite() {
                            return Err(fail(format!(
                                "attribute {:?} must be finite",
                                attr.name
                            )));
                        }
                        numeric[ni].push(x);
                        ni += 1;
                    }
                    AttrSchemaKind::Categorical { levels } => {
                        let code = match v {
                            Value::String(s) => levels
                                .iter()
                                .position(|l| l == s)
                                .ok_or_else(|| {
                                    fail(format!(
                                        "attribute {:?}: unknown level {s:?}",
                                        attr.name
                                    ))
                                })? as u32,
                            other => {
                                let c = other.clone().into_u64().map_err(|e| {
                                    fail(format!("attribute {:?}: {e}", attr.name))
                                })?;
                                if c as usize >= levels.len() {
                                    return Err(fail(format!(
                                        "attribute {:?}: code {c} beyond {} levels",
                                        attr.name,
                                        levels.len()
                                    )));
                                }
                                c as u32
                            }
                        };
                        codes[ci].push(code);
                        ci += 1;
                    }
                }
            }
            let s = field(&self.sensitive)?.clone().into_u64().map_err(|e| {
                fail(format!("sensitive attribute {:?}: {e}", self.sensitive))
            })?;
            if s > 1 {
                return Err(fail(format!(
                    "sensitive attribute {:?} must be 0 or 1",
                    self.sensitive
                )));
            }
            sensitive.push(s as u8);
        }

        let mut builder = Dataset::builder("request");
        let (mut ni, mut ci) = (0usize, 0usize);
        for attr in &self.attrs {
            match &attr.kind {
                AttrSchemaKind::Numeric => {
                    builder = builder.numeric(&attr.name, std::mem::take(&mut numeric[ni]));
                    ni += 1;
                }
                AttrSchemaKind::Categorical { levels } => {
                    builder = builder.categorical(
                        &attr.name,
                        std::mem::take(&mut codes[ci]),
                        levels.clone(),
                    );
                    ci += 1;
                }
            }
        }
        builder
            .sensitive(&self.sensitive, sensitive)
            .labels(&self.label, vec![0u8; n])
            .build()
            .map_err(|e| e.to_string())
    }

    /// Serialize to a JSON value.
    pub fn to_value(&self) -> Value {
        let attrs = self
            .attrs
            .iter()
            .map(|a| match &a.kind {
                AttrSchemaKind::Numeric => object([
                    ("name", Value::String(a.name.clone())),
                    ("kind", Value::String("numeric".into())),
                ]),
                AttrSchemaKind::Categorical { levels } => object([
                    ("name", Value::String(a.name.clone())),
                    ("kind", Value::String("categorical".into())),
                    (
                        "levels",
                        Value::Array(
                            levels.iter().map(|l| Value::String(l.clone())).collect(),
                        ),
                    ),
                ]),
            })
            .collect();
        object([
            ("attrs", Value::Array(attrs)),
            ("sensitive", Value::String(self.sensitive.clone())),
            ("label", Value::String(self.label.clone())),
        ])
    }

    /// Parse back from a JSON value.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let attrs = field(v, "attrs")?
            .clone()
            .into_array()?
            .iter()
            .map(|a| {
                let name = field(a, "name")?.as_str().ok_or("attr name must be a string")?;
                let kind = field(a, "kind")?.as_str().ok_or("attr kind must be a string")?;
                let kind = match kind {
                    "numeric" => AttrSchemaKind::Numeric,
                    "categorical" => {
                        let levels = field(a, "levels")?
                            .clone()
                            .into_array()?
                            .into_iter()
                            .map(Value::into_string)
                            .collect::<Result<Vec<_>, _>>()?;
                        if levels.is_empty() {
                            return Err("categorical attribute with no levels".into());
                        }
                        AttrSchemaKind::Categorical { levels }
                    }
                    other => return Err(format!("unknown attr kind {other:?}")),
                };
                Ok(AttrSchema { name: name.to_string(), kind })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Self {
            attrs,
            sensitive: field(v, "sensitive")?
                .as_str()
                .ok_or("sensitive name must be a string")?
                .to_string(),
            label: field(v, "label")?
                .as_str()
                .ok_or("label name must be a string")?
                .to_string(),
        })
    }
}

/// A saved model: provenance + schema + fitted pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelArtifact {
    /// Registry name of the approach (e.g. `"KamCal"`, `"Hardt^EO"`).
    pub approach: String,
    /// Fairness-enforcing stage label (`baseline`/`pre`/`in`/`post`).
    pub stage: String,
    /// Dataset the pipeline was trained on (e.g. `"german"`).
    pub dataset: String,
    /// Training seed (cell seed in the benchmark's derivation scheme).
    pub seed: u64,
    /// Number of training rows.
    pub train_rows: u64,
    /// Training-fold metrics `(name, value)`, e.g. accuracy and the five
    /// fairness measures. Besides provenance, these are the baseline the
    /// serving stack's drift detection judges live metrics against.
    pub train_metrics: Vec<(String, f64)>,
    /// Schema of the training data, used to parse prediction rows.
    pub schema: DataSchema,
    /// The fitted pipeline.
    pub pipeline: PipelineSnapshot,
}

impl ModelArtifact {
    /// Rebuild the live pipeline.
    pub fn restore(&self) -> FittedPipeline {
        self.pipeline.restore()
    }

    /// Look up one training-fold metric by name — the provenance
    /// read-back used by live drift detection, which compares windowed
    /// online metrics against these training-time values.
    pub fn train_metric(&self, name: &str) -> Option<f64> {
        self.train_metrics.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Serialize the artifact to its on-disk JSON form.
    pub fn to_json(&self) -> String {
        let metrics = Value::Object(
            self.train_metrics
                .iter()
                .map(|(k, m)| (k.clone(), Value::from_f64(*m)))
                .collect(),
        );
        object([
            ("format", Value::String(ARTIFACT_FORMAT.into())),
            ("version", Value::Integer(ARTIFACT_VERSION)),
            ("approach", Value::String(self.approach.clone())),
            ("stage", Value::String(self.stage.clone())),
            ("dataset", Value::String(self.dataset.clone())),
            ("seed", Value::Integer(self.seed)),
            ("train_rows", Value::Integer(self.train_rows)),
            ("train_metrics", metrics),
            ("schema", self.schema.to_value()),
            ("pipeline", self.pipeline.to_value()),
        ])
        .to_json()
    }

    /// Parse an artifact from its JSON form, validating the envelope.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = parse(text)?;
        match field(&v, "format")?.as_str() {
            Some(ARTIFACT_FORMAT) => {}
            Some(other) => return Err(format!("not a model artifact (format {other:?})")),
            None => return Err("artifact format tag must be a string".into()),
        }
        let version = field(&v, "version")?.clone().into_u64()?;
        if version != ARTIFACT_VERSION {
            return Err(format!(
                "unsupported artifact version {version} (this build reads {ARTIFACT_VERSION})"
            ));
        }
        let train_metrics = field(&v, "train_metrics")?
            .clone()
            .into_object()?
            .into_iter()
            .map(|(k, m)| Ok((k, m.into_f64()?)))
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Self {
            approach: str_field(&v, "approach")?,
            stage: str_field(&v, "stage")?,
            dataset: str_field(&v, "dataset")?,
            seed: field(&v, "seed")?.clone().into_u64()?,
            train_rows: field(&v, "train_rows")?.clone().into_u64()?,
            train_metrics,
            schema: DataSchema::from_value(field(&v, "schema")?)?,
            pipeline: PipelineSnapshot::from_value(field(&v, "pipeline")?)?,
        })
    }

    /// Write the artifact to `path` (atomically: temp file + rename, so a
    /// concurrent loader never observes a half-written artifact).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("flm.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.to_json().as_bytes())?;
            f.write_all(b"\n")?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Read an artifact from `path`.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::from_json(&text).map_err(|e| format!("parse {}: {e}", path.display()))
    }
}

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    Ok(field(v, key)?
        .as_str()
        .ok_or_else(|| format!("field {key:?} must be a string"))?
        .to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline_approach;

    fn toy(n: usize) -> Dataset {
        let mut x = Vec::new();
        let mut job = Vec::new();
        let mut s = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let xi = (i % 10) as f64;
            let si = (i % 2) as u8;
            x.push(xi);
            job.push((i % 3) as u32);
            s.push(si);
            y.push(u8::from(xi + 3.0 * si as f64 > 6.0));
        }
        Dataset::builder("toy")
            .numeric("x", x)
            .categorical("job", job, vec!["a".into(), "b".into(), "c".into()])
            .sensitive("s", s)
            .labels("y", y)
            .build()
            .unwrap()
    }

    fn toy_artifact() -> (Dataset, FittedPipeline, ModelArtifact) {
        let d = toy(200);
        let fitted = baseline_approach().fit(&d, 11).unwrap();
        let artifact = ModelArtifact {
            approach: "LR".into(),
            stage: "baseline".into(),
            dataset: "toy".into(),
            seed: 11,
            train_rows: d.n_rows() as u64,
            train_metrics: vec![("acc".into(), 0.93), ("di".into(), 0.81)],
            schema: DataSchema::of(&d),
            pipeline: fitted.snapshot().unwrap(),
        };
        (d, fitted, artifact)
    }

    #[test]
    fn artifact_json_round_trips() {
        let (d, fitted, artifact) = toy_artifact();
        let text = artifact.to_json();
        let back = ModelArtifact::from_json(&text).unwrap();
        assert_eq!(back, artifact);
        assert_eq!(back.restore().predict(&d), fitted.predict(&d));
    }

    #[test]
    fn artifact_save_load_round_trips() {
        let (_, _, artifact) = toy_artifact();
        let dir = std::env::temp_dir().join("fairlens-artifact-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lr-toy.flm");
        artifact.save(&path).unwrap();
        let back = ModelArtifact::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, artifact);
    }

    #[test]
    fn envelope_is_validated() {
        let (_, _, artifact) = toy_artifact();
        let good = artifact.to_json();
        let bad_format = good.replacen("\"format\":\"flm\"", "\"format\":\"zip\"", 1);
        assert!(ModelArtifact::from_json(&bad_format).is_err());
        let bad_version = good.replacen("\"version\":1", "\"version\":99", 1);
        assert!(ModelArtifact::from_json(&bad_version).is_err());
        assert!(ModelArtifact::from_json("{\"hello\":1}").is_err());
        assert!(ModelArtifact::from_json("not json").is_err());
    }

    #[test]
    fn rows_parse_with_level_names_or_codes() {
        let (d, _, artifact) = toy_artifact();
        let rows = vec![
            parse("{\"x\":4.0,\"job\":\"b\",\"s\":1}").unwrap(),
            parse("{\"x\":9,\"job\":2,\"s\":0}").unwrap(),
        ];
        let req = artifact.schema.dataset_from_rows(&rows).unwrap();
        assert_eq!(req.n_rows(), 2);
        assert_eq!(req.sensitive(), &[1, 0]);
        let Column::Categorical { codes, .. } = req.column(1) else { panic!() };
        assert_eq!(codes, &[1, 2]);
        // prediction must go through the same encoder path as training data
        let pipeline = artifact.restore();
        let preds = pipeline.predict(&req);
        assert_eq!(preds.len(), 2);
        let _ = d;
    }

    #[test]
    fn malformed_rows_are_rejected_with_row_context() {
        let (_, _, artifact) = toy_artifact();
        let cases = [
            ("[]", "array row"),
            ("{\"x\":1.0,\"job\":\"a\"}", "missing sensitive"),
            ("{\"x\":1.0,\"job\":\"z\",\"s\":0}", "unknown level"),
            ("{\"x\":1.0,\"job\":7,\"s\":0}", "code out of range"),
            ("{\"x\":1.0,\"job\":\"a\",\"s\":3}", "non-binary sensitive"),
            ("{\"x\":null,\"job\":\"a\",\"s\":0}", "non-finite numeric"),
            ("{\"x\":1.0,\"job\":\"a\",\"s\":0,\"typo\":1}", "unknown key"),
        ];
        for (row, what) in cases {
            let rows = vec![parse(row).unwrap()];
            let err = artifact.schema.dataset_from_rows(&rows).unwrap_err();
            assert!(err.starts_with("row 0:"), "{what}: {err}");
        }
        assert!(artifact.schema.dataset_from_rows(&[]).is_err());
    }
}
