//! Zafar^DP / Zafar^EO — covariance-proxy constrained logistic regression
//! (Zafar et al.; paper A.2).
//!
//! The sensitive attribute never enters the feature set; it only shapes the
//! constraint. The fairness proxy is the empirical covariance between `S`
//! and the signed distance to the decision boundary,
//!
//! ```text
//! cov(θ) = (1/N) Σ_i (S_i − S̄) · d_θ(x_i)
//! ```
//!
//! which is linear in the parameters and hence convex. Three evaluated
//! variants:
//!
//! * [`ZafarVariant::DpFair`] — minimise logistic loss s.t. `|cov| ≤ c`
//!   (maximise accuracy under a demographic-parity constraint);
//! * [`ZafarVariant::DpAcc`] — minimise `cov²` s.t. `loss ≤ (1+γ)·L*`
//!   (maximise parity under a bounded accuracy compromise);
//! * [`ZafarVariant::EoFair`] — equalized odds via the covariance over
//!   *misclassified* tuples only; non-convex, solved by the
//!   convex–concave trick of freezing the misclassification indicator per
//!   outer round (the role DCCP plays in the original).
//!
//! The constrained solves use the workspace augmented-Lagrangian method.

use fairlens_frame::{Dataset, Encoder};
use fairlens_linalg::{vector, Matrix};
use fairlens_model::{LogisticLoss, LogisticRegression};
use fairlens_optim::{gd, minimize_augmented_lagrangian, AugLagOptions, Objective};
use rand::rngs::StdRng;

use crate::error::CoreError;
use crate::pipeline::{InProcessor, TrainedModel};

/// Which Zafar formulation to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZafarVariant {
    /// Accuracy under a demographic-parity covariance constraint.
    DpFair,
    /// Parity under an accuracy (loss) constraint.
    DpAcc,
    /// Equalized odds via misclassification covariance (convex–concave).
    EoFair,
}

/// The Zafar et al. constrained learner.
#[derive(Debug, Clone)]
pub struct Zafar {
    /// The formulation.
    pub variant: ZafarVariant,
    /// Covariance tolerance `c` for the fairness constraints.
    pub cov_tol: f64,
    /// Allowed relative loss increase `γ` for [`ZafarVariant::DpAcc`].
    pub gamma: f64,
    /// Outer convex–concave rounds for [`ZafarVariant::EoFair`].
    pub cc_rounds: usize,
    /// L2 regularisation of the logistic loss.
    pub l2: f64,
}

impl Zafar {
    /// Construct with paper-style defaults.
    pub fn new(variant: ZafarVariant) -> Self {
        Self { variant, cov_tol: 1e-3, gamma: 0.10, cc_rounds: 5, l2: 1e-3 }
    }
}

/// Signed covariance constraint `sign · cov(θ) − tol ≤ 0`. With per-tuple
/// multipliers `m` (all ones for DP; misclassification masks for EO).
struct CovConstraint<'a> {
    x: &'a Matrix,
    coef: Vec<f64>, // coef_i = m_i (S_i − S̄) / N · sign
    tol: f64,
}

impl CovConstraint<'_> {
    fn cov(&self, params: &[f64]) -> f64 {
        let d = self.x.cols();
        let (w, b) = params.split_at(d);
        let b = b[0];
        let mut acc = 0.0;
        for (i, &c) in self.coef.iter().enumerate() {
            if c != 0.0 {
                acc += c * (vector::dot(self.x.row(i), w) + b);
            }
        }
        acc
    }
}

impl Objective for CovConstraint<'_> {
    fn dim(&self) -> usize {
        self.x.cols() + 1
    }
    fn value(&self, params: &[f64]) -> f64 {
        self.cov(params) - self.tol
    }
    fn gradient(&self, _params: &[f64]) -> Vec<f64> {
        // Linear: gradient independent of θ.
        let d = self.x.cols();
        let mut g = vec![0.0; d + 1];
        for (i, &c) in self.coef.iter().enumerate() {
            if c != 0.0 {
                vector::axpy(c, self.x.row(i), &mut g[..d]);
                g[d] += c;
            }
        }
        g
    }
}

/// The squared covariance as a minimisation objective (for DpAcc).
struct CovSquared<'a>(CovConstraint<'a>);

impl Objective for CovSquared<'_> {
    fn dim(&self) -> usize {
        self.0.dim()
    }
    fn value(&self, params: &[f64]) -> f64 {
        let c = self.0.cov(params);
        c * c
    }
    fn gradient(&self, params: &[f64]) -> Vec<f64> {
        let c = self.0.cov(params);
        let mut g = self.0.gradient(params);
        vector::scale(2.0 * c, &mut g);
        g
    }
}

/// Loss-cap constraint `loss(θ) − cap ≤ 0`.
struct LossCap<'a> {
    loss: &'a LogisticLoss<'a>,
    cap: f64,
}

impl Objective for LossCap<'_> {
    fn dim(&self) -> usize {
        self.loss.dim()
    }
    fn value(&self, params: &[f64]) -> f64 {
        self.loss.value(params) - self.cap
    }
    fn gradient(&self, params: &[f64]) -> Vec<f64> {
        self.loss.gradient(params)
    }
}

/// Fitted Zafar model: encoder (without `S`) + parameters.
struct ZafarModel {
    encoder: Encoder,
    model: LogisticRegression,
}

impl TrainedModel for ZafarModel {
    fn predict(&self, data: &Dataset) -> Vec<u8> {
        self.model.predict(&self.encoder.transform(data).matrix)
    }

    fn predict_proba(&self, data: &Dataset) -> Vec<f64> {
        self.model.predict_proba(&self.encoder.transform(data).matrix)
    }

    fn snapshot(&self) -> Option<crate::snapshot::ModelSnapshot> {
        Some(crate::snapshot::ModelSnapshot::linear(&self.encoder, &self.model))
    }
}

impl Zafar {
    fn centered_sensitive(train: &Dataset) -> Vec<f64> {
        let s: Vec<f64> = train.sensitive().iter().map(|&v| v as f64).collect();
        let mean = vector::mean(&s);
        s.iter().map(|v| v - mean).collect()
    }

    fn dp_coefs(train: &Dataset, sign: f64) -> Vec<f64> {
        let n = train.n_rows() as f64;
        Self::centered_sensitive(train)
            .into_iter()
            .map(|c| sign * c / n)
            .collect()
    }
}

impl InProcessor for Zafar {
    fn train(&self, train: &Dataset, _rng: &mut StdRng) -> Result<Box<dyn TrainedModel>, CoreError> {
        let encoder = Encoder::fit(train, false);
        let x = encoder.transform(train).matrix;
        let y = train.labels();
        let loss = LogisticLoss::new(&x, y, self.l2);
        let dim = loss.dim();

        // Warm start from the unconstrained optimum.
        let warm = gd::minimize(
            &loss,
            &vec![0.0; dim],
            &gd::GdOptions { max_iter: 300, ..Default::default() },
        );

        let al_opts = AugLagOptions {
            feas_tol: self.cov_tol.max(1e-4),
            ..Default::default()
        };

        let params = match self.variant {
            ZafarVariant::DpFair => {
                let pos = CovConstraint { x: &x, coef: Self::dp_coefs(train, 1.0), tol: self.cov_tol };
                let neg = CovConstraint { x: &x, coef: Self::dp_coefs(train, -1.0), tol: self.cov_tol };
                minimize_augmented_lagrangian(
                    &loss,
                    &[&pos as &dyn Objective, &neg as &dyn Objective],
                    &warm.x,
                    &al_opts,
                )
                .x
            }
            ZafarVariant::DpAcc => {
                let cap = LossCap { loss: &loss, cap: (1.0 + self.gamma) * warm.value };
                let cov2 = CovSquared(CovConstraint {
                    x: &x,
                    coef: Self::dp_coefs(train, 1.0),
                    tol: 0.0,
                });
                minimize_augmented_lagrangian(
                    &cov2,
                    &[&cap as &dyn Objective],
                    &warm.x,
                    &al_opts,
                )
                .x
            }
            ZafarVariant::EoFair => {
                // Convex–concave: freeze the misclassification mask, solve
                // the convexified problem, refresh, repeat.
                let n = train.n_rows() as f64;
                let s_centered = Self::centered_sensitive(train);
                let mut params = warm.x.clone();
                for _ in 0..self.cc_rounds {
                    let (w, b) = params.split_at(x.cols());
                    let coef: Vec<f64> = (0..train.n_rows())
                        .map(|i| {
                            let z = vector::dot(x.row(i), w) + b[0];
                            let pred = u8::from(z >= 0.0);
                            if pred != y[i] {
                                // g_θ = −d_θ for misclassified tuples
                                -s_centered[i] / n
                            } else {
                                0.0
                            }
                        })
                        .collect();
                    let neg_coef: Vec<f64> = coef.iter().map(|c| -c).collect();
                    let pos = CovConstraint { x: &x, coef, tol: self.cov_tol };
                    let neg = CovConstraint { x: &x, coef: neg_coef, tol: self.cov_tol };
                    params = minimize_augmented_lagrangian(
                        &loss,
                        &[&pos as &dyn Objective, &neg as &dyn Objective],
                        &params,
                        &al_opts,
                    )
                    .x;
                }
                params
            }
        };

        if params.iter().any(|p| !p.is_finite()) {
            return Err(CoreError::Infeasible("Zafar solve produced non-finite parameters".into()));
        }
        let (w, b) = params.split_at(x.cols());
        Ok(Box::new(ZafarModel {
            encoder,
            model: LogisticRegression::from_params(w.to_vec(), b[0]),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairlens_metrics::{di_star, disparate_impact, tpr_balance};
    use rand::{Rng, SeedableRng};

    /// Biased data: x predicts y, but s leaks into y strongly.
    fn biased(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x1 = Vec::new();
        let mut x2 = Vec::new();
        let mut s = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let si = u8::from(rng.gen::<f64>() < 0.5);
            let a: f64 = rng.gen::<f64>() * 2.0 - 1.0;
            // x2 correlates with s (a redlining proxy)
            let b: f64 = 0.8 * (si as f64 * 2.0 - 1.0) + 0.4 * (rng.gen::<f64>() * 2.0 - 1.0);
            let p = vector::sigmoid(1.5 * a + 1.2 * b);
            x1.push(a);
            x2.push(b);
            s.push(si);
            y.push(u8::from(rng.gen::<f64>() < p));
        }
        Dataset::builder("bz")
            .numeric("x1", x1)
            .numeric("x2", x2)
            .sensitive("s", s)
            .labels("y", y)
            .build()
            .unwrap()
    }

    fn unconstrained_di(d: &Dataset) -> f64 {
        let enc = Encoder::fit(d, false);
        let x = enc.transform(d).matrix;
        let m = LogisticRegression::fit(&x, d.labels(), &Default::default()).unwrap();
        disparate_impact(&m.predict(&x), d.sensitive())
    }

    #[test]
    fn dp_fair_improves_parity() {
        let d = biased(3000, 1);
        let base_di = unconstrained_di(&d);
        assert!(base_di < 0.6, "setup: baseline DI {base_di}");
        let mut rng = StdRng::seed_from_u64(2);
        let m = Zafar::new(ZafarVariant::DpFair).train(&d, &mut rng).unwrap();
        let preds = m.predict(&d);
        let di = di_star(&preds, d.sensitive());
        assert!(di > 0.8, "Zafar DP-fair DI* = {di} (baseline {base_di})");
    }

    #[test]
    fn dp_acc_bounds_the_loss() {
        let d = biased(3000, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let m = Zafar::new(ZafarVariant::DpAcc).train(&d, &mut rng).unwrap();
        let preds = m.predict(&d);
        let acc = preds
            .iter()
            .zip(d.labels())
            .filter(|&(p, t)| p == t)
            .count() as f64
            / d.n_rows() as f64;
        // accuracy must stay within a sane band of the unconstrained model
        assert!(acc > 0.6, "accuracy {acc}");
        let di = di_star(&preds, d.sensitive());
        assert!(di > unconstrained_di(&d).min(1.0), "DI* should improve: {di}");
    }

    #[test]
    fn eo_fair_shrinks_tprb() {
        let d = biased(3000, 5);
        // baseline TPRB
        let enc = Encoder::fit(&d, false);
        let x = enc.transform(&d).matrix;
        let base = LogisticRegression::fit(&x, d.labels(), &Default::default()).unwrap();
        let base_tprb = tpr_balance(d.labels(), &base.predict(&x), d.sensitive()).abs();
        let mut rng = StdRng::seed_from_u64(6);
        let m = Zafar::new(ZafarVariant::EoFair).train(&d, &mut rng).unwrap();
        let tprb = tpr_balance(d.labels(), &m.predict(&d), d.sensitive()).abs();
        assert!(
            tprb < base_tprb + 0.02,
            "TPRB should not get worse: {base_tprb} → {tprb}"
        );
    }

    #[test]
    fn zafar_never_sees_sensitive_attribute() {
        // flipping S cannot change predictions → CD = 0 by construction
        let d = biased(500, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let m = Zafar::new(ZafarVariant::DpFair).train(&d, &mut rng).unwrap();
        assert_eq!(m.predict(&d), m.predict(&d.flip_sensitive()));
    }
}
