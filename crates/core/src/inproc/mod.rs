//! In-processing approaches (paper Section 3 / Appendix A.2): constrain or
//! reshape the learning procedure itself.

pub mod celis;
pub mod kearns;
pub mod thomas;
pub mod zafar;
pub mod zhale;

pub use celis::Celis;
pub use kearns::{Kearns, KearnsNotion};
pub use thomas::{Thomas, ThomasNotion};
pub use zafar::{Zafar, ZafarVariant};
pub use zhale::{ZhaLe, ZhaLeNotion};
