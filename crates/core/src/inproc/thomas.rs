//! Thomas^DP / Thomas^EO — the Seldonian framework (Thomas et al.,
//! *Preventing undesirable behavior of intelligent machines*; paper A.2).
//!
//! Training data is split into a candidate set `D₁` and a safety set `D₂`:
//!
//! 1. **candidate search** on `D₁`: fairness-penalised logistic models are
//!    trained over an escalating penalty ladder, producing candidates with
//!    decreasing predicted violation;
//! 2. **safety test** on `D₂`: a candidate is accepted only if its
//!    violation `ĝ` plus a Hoeffding confidence term
//!    `√(ln(1/δ) / (2 m))` is below the tolerance — guaranteeing, with
//!    probability `1 − δ`, that the deployed classifier's true violation is
//!    acceptable (δ = 0.05 per the paper);
//! 3. if no candidate passes, the behaviour is **NSF** ("no solution
//!    found"); since the benchmark must still produce predictions, the most
//!    conservative candidate is returned and flagged.

use fairlens_frame::{split, Dataset, Encoder};
use fairlens_linalg::{vector, Matrix};
use fairlens_model::{LogisticLoss, LogisticRegression};
use fairlens_optim::{gd, Objective};
use rand::rngs::StdRng;

use crate::error::CoreError;
use crate::pipeline::{InProcessor, TrainedModel};

/// The fairness notion a Thomas instance enforces. The paper evaluates the
/// first two and excludes the last two "as equalized odds encompasses both
/// these notions"; the framework supports all four.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThomasNotion {
    /// Demographic parity: `|Pr(Ŷ=1|S=0) − Pr(Ŷ=1|S=1)| ≤ tolerance`.
    DemographicParity,
    /// Equalized odds: `max(|TPRB|, |TNRB|) ≤ tolerance`.
    EqualizedOdds,
    /// Equal opportunity: `|TPRB| ≤ tolerance`.
    EqualOpportunity,
    /// Predictive equality: `|TNRB| ≤ tolerance`.
    PredictiveEquality,
}

/// The Seldonian trainer.
#[derive(Debug, Clone)]
pub struct Thomas {
    /// Enforced notion.
    pub notion: ThomasNotion,
    /// Violation tolerance in the safety test.
    pub tolerance: f64,
    /// Safety-test confidence `δ` (paper: 0.05).
    pub delta: f64,
    /// Penalty ladder for the candidate search.
    pub penalties: Vec<f64>,
}

impl Thomas {
    /// Construct with the paper-aligned defaults.
    pub fn new(notion: ThomasNotion) -> Self {
        Self {
            notion,
            tolerance: 0.08,
            delta: 0.05,
            penalties: vec![0.0, 1.0, 4.0, 16.0, 64.0, 256.0],
        }
    }
}

/// Fairness-penalised logistic objective: loss + μ · (soft violation)².
///
/// The violation is computed on *probabilities* (not hard labels) so the
/// penalty stays differentiable — the candidate-search trick Thomas et al.
/// use with their gradient-based search.
struct PenalisedLoss<'a> {
    loss: LogisticLoss<'a>,
    x: &'a Matrix,
    y: &'a [u8],
    s: &'a [u8],
    notion: ThomasNotion,
    mu: f64,
}

impl PenalisedLoss<'_> {
    /// Soft group rates: mean σ(z) over a row subset; returns (rate, d/dz
    /// coefficients are handled by the caller).
    fn soft_gaps(&self, params: &[f64]) -> (Vec<f64>, Vec<f64>) {
        // returns per-row p_i and the vector of gap values
        let d = self.x.cols();
        let (w, b) = params.split_at(d);
        let p: Vec<f64> = (0..self.x.rows())
            .map(|i| vector::sigmoid(vector::dot(self.x.row(i), w) + b[0]))
            .collect();
        let gaps = match self.notion {
            ThomasNotion::DemographicParity => {
                vec![group_mean(&p, self.s, 0, None, self.y) - group_mean(&p, self.s, 1, None, self.y)]
            }
            ThomasNotion::EqualizedOdds => vec![
                group_mean(&p, self.s, 0, Some(1), self.y) - group_mean(&p, self.s, 1, Some(1), self.y),
                group_mean(&p, self.s, 0, Some(0), self.y) - group_mean(&p, self.s, 1, Some(0), self.y),
            ],
            ThomasNotion::EqualOpportunity => vec![
                group_mean(&p, self.s, 0, Some(1), self.y) - group_mean(&p, self.s, 1, Some(1), self.y),
            ],
            ThomasNotion::PredictiveEquality => vec![
                group_mean(&p, self.s, 0, Some(0), self.y) - group_mean(&p, self.s, 1, Some(0), self.y),
            ],
        };
        (p, gaps)
    }
}

/// Mean of `p` over rows with `s == group` (and `y == y_filter` if given).
fn group_mean(p: &[f64], s: &[u8], group: u8, y_filter: Option<u8>, y: &[u8]) -> f64 {
    let mut sum = 0.0;
    let mut cnt = 0usize;
    for i in 0..p.len() {
        if s[i] != group {
            continue;
        }
        if let Some(yf) = y_filter {
            if y[i] != yf {
                continue;
            }
        }
        sum += p[i];
        cnt += 1;
    }
    if cnt == 0 {
        0.0
    } else {
        sum / cnt as f64
    }
}

impl Objective for PenalisedLoss<'_> {
    fn dim(&self) -> usize {
        self.loss.dim()
    }

    fn value(&self, params: &[f64]) -> f64 {
        let (_, gaps) = self.soft_gaps(params);
        self.loss.value(params) + self.mu * gaps.iter().map(|g| g * g).sum::<f64>()
    }

    fn gradient(&self, params: &[f64]) -> Vec<f64> {
        let d = self.x.cols();
        let mut g = self.loss.gradient(params);
        let (p, gaps) = self.soft_gaps(params);

        // counts per (group, y_filter) cell
        let count = |group: u8, yf: Option<u8>| -> f64 {
            (0..p.len())
                .filter(|&i| self.s[i] == group && yf.is_none_or(|v| self.y[i] == v))
                .count() as f64
        };
        let filters: Vec<Option<u8>> = match self.notion {
            ThomasNotion::DemographicParity => vec![None],
            ThomasNotion::EqualizedOdds => vec![Some(1), Some(0)],
            ThomasNotion::EqualOpportunity => vec![Some(1)],
            ThomasNotion::PredictiveEquality => vec![Some(0)],
        };
        for (gap, yf) in gaps.iter().zip(filters.iter()) {
            let c0 = count(0, *yf).max(1.0);
            let c1 = count(1, *yf).max(1.0);
            for (i, &pi) in p.iter().enumerate() {
                if let Some(v) = yf {
                    if self.y[i] != *v {
                        continue;
                    }
                }
                // d gap / d z_i = ±σ'(z_i)/|group|
                let dgdz = match self.s[i] {
                    0 => pi * (1.0 - pi) / c0,
                    _ => -pi * (1.0 - pi) / c1,
                };
                let coeff = self.mu * 2.0 * gap * dgdz;
                if coeff != 0.0 {
                    vector::axpy(coeff, self.x.row(i), &mut g[..d]);
                    g[d] += coeff;
                }
            }
        }
        g
    }
}

/// Hard-prediction violation of the notion on a dataset.
fn hard_violation(
    notion: ThomasNotion,
    preds: &[u8],
    y: &[u8],
    s: &[u8],
) -> f64 {
    match notion {
        ThomasNotion::DemographicParity => {
            let pf: Vec<f64> = preds.iter().map(|&v| v as f64).collect();
            (group_mean(&pf, s, 0, None, y) - group_mean(&pf, s, 1, None, y)).abs()
        }
        ThomasNotion::EqualizedOdds => {
            let tprb = fairlens_metrics::tpr_balance(y, preds, s).abs();
            let tnrb = fairlens_metrics::tnr_balance(y, preds, s).abs();
            tprb.max(tnrb)
        }
        ThomasNotion::EqualOpportunity => fairlens_metrics::tpr_balance(y, preds, s).abs(),
        ThomasNotion::PredictiveEquality => fairlens_metrics::tnr_balance(y, preds, s).abs(),
    }
}

/// The trained (accepted or NSF-fallback) model.
struct ThomasModel {
    encoder: Encoder,
    model: LogisticRegression,
    /// Whether the safety test passed (false = NSF fallback). Surfaced for
    /// diagnostics; the benchmark uses the predictions either way.
    #[allow(dead_code)]
    accepted: bool,
}

impl TrainedModel for ThomasModel {
    fn predict(&self, data: &Dataset) -> Vec<u8> {
        self.model.predict(&self.encoder.transform(data).matrix)
    }

    fn predict_proba(&self, data: &Dataset) -> Vec<f64> {
        self.model.predict_proba(&self.encoder.transform(data).matrix)
    }

    fn snapshot(&self) -> Option<crate::snapshot::ModelSnapshot> {
        Some(crate::snapshot::ModelSnapshot::linear(&self.encoder, &self.model))
    }
}

impl InProcessor for Thomas {
    fn train(&self, train: &Dataset, rng: &mut StdRng) -> Result<Box<dyn TrainedModel>, CoreError> {
        // Candidate / safety split (60/40).
        let (d1, d2) = split::train_test_split(train, 0.4, rng);
        let encoder = Encoder::fit(&d1, true);
        let x1 = encoder.transform(&d1).matrix;
        let x2 = encoder.transform(&d2).matrix;

        // Safety-test confidence inflation: per-group Hoeffding bound with
        // the smaller group's sample size (conservative).
        let m = d2.group_size(0).min(d2.group_size(1)).max(1) as f64;
        let bound = ((1.0 / self.delta).ln() / (2.0 * m)).sqrt();

        let mut fallback: Option<LogisticRegression> = None;
        let mut fallback_violation = f64::INFINITY;

        for &mu in &self.penalties {
            let pl = PenalisedLoss {
                loss: LogisticLoss::new(&x1, d1.labels(), 1e-3),
                x: &x1,
                y: d1.labels(),
                s: d1.sensitive(),
                notion: self.notion,
                mu,
            };
            let res = gd::minimize(
                &pl,
                &vec![0.0; pl.dim()],
                &gd::GdOptions { max_iter: 250, ..Default::default() },
            );
            let (w, b) = res.x.split_at(x1.cols());
            let model = LogisticRegression::from_params(w.to_vec(), b[0]);

            // Safety test on D2.
            let preds = model.predict(&x2);
            let g_hat = hard_violation(self.notion, &preds, d2.labels(), d2.sensitive());
            if g_hat + bound <= self.tolerance {
                return Ok(Box::new(ThomasModel { encoder, model, accepted: true }));
            }
            if g_hat < fallback_violation {
                fallback_violation = g_hat;
                fallback = Some(model);
            }
        }

        // NSF: no candidate passed. The paper's Thomas returns "no solution
        // found"; the benchmark still needs predictions, so deploy the most
        // conservative candidate, flagged as not-accepted.
        let model = fallback.ok_or_else(|| {
            CoreError::Infeasible("Thomas produced no candidates at all".into())
        })?;
        Ok(Box::new(ThomasModel { encoder, model, accepted: false }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn biased(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut s = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let si = u8::from(rng.gen::<f64>() < 0.5);
            let a: f64 = rng.gen::<f64>() * 2.0 - 1.0;
            let p = vector::sigmoid(2.0 * a + 1.4 * (si as f64 * 2.0 - 1.0));
            x.push(a);
            s.push(si);
            y.push(u8::from(rng.gen::<f64>() < p));
        }
        Dataset::builder("tb")
            .numeric("x", x)
            .sensitive("s", s)
            .labels("y", y)
            .build()
            .unwrap()
    }

    #[test]
    fn dp_variant_controls_parity_violation() {
        let d = biased(6000, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let m = Thomas::new(ThomasNotion::DemographicParity)
            .train(&d, &mut rng)
            .unwrap();
        let preds = m.predict(&d);
        let v = hard_violation(ThomasNotion::DemographicParity, &preds, d.labels(), d.sensitive());
        assert!(v < 0.15, "DP violation {v}");
    }

    #[test]
    fn eo_variant_controls_odds_violation() {
        let d = biased(6000, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let m = Thomas::new(ThomasNotion::EqualizedOdds).train(&d, &mut rng).unwrap();
        let preds = m.predict(&d);
        let v = hard_violation(ThomasNotion::EqualizedOdds, &preds, d.labels(), d.sensitive());
        assert!(v < 0.2, "EO violation {v}");
    }

    #[test]
    fn single_sided_notions_control_their_gap() {
        let d = biased(5000, 21);
        for notion in [ThomasNotion::EqualOpportunity, ThomasNotion::PredictiveEquality] {
            let mut rng = StdRng::seed_from_u64(22);
            let m = Thomas::new(notion).train(&d, &mut rng).unwrap();
            let preds = m.predict(&d);
            let v = hard_violation(notion, &preds, d.labels(), d.sensitive());
            assert!(v < 0.2, "{notion:?} violation {v}");
        }
    }

    #[test]
    fn penalty_gradient_matches_numeric() {
        let d = biased(200, 5);
        let enc = Encoder::fit(&d, true);
        let x = enc.transform(&d).matrix;
        let pl = PenalisedLoss {
            loss: LogisticLoss::new(&x, d.labels(), 0.01),
            x: &x,
            y: d.labels(),
            s: d.sensitive(),
            notion: ThomasNotion::EqualizedOdds,
            mu: 3.0,
        };
        let params: Vec<f64> = (0..pl.dim()).map(|i| 0.1 * (i as f64 - 1.0)).collect();
        let ag = pl.gradient(&params);
        let ng = fairlens_optim::numeric_gradient(|p| pl.value(p), &params, 1e-6);
        for (a, n) in ag.iter().zip(ng.iter()) {
            assert!((a - n).abs() < 1e-4, "analytic {a} vs numeric {n}");
        }
    }

    #[test]
    fn unbiased_data_accepted_with_zero_penalty() {
        // No group signal → the μ = 0 candidate should pass the safety test
        // and retain full accuracy.
        let mut rng = StdRng::seed_from_u64(6);
        let n = 4000;
        let mut x = Vec::new();
        let mut s = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a: f64 = rng.gen::<f64>() * 2.0 - 1.0;
            x.push(a);
            s.push(u8::from(rng.gen::<f64>() < 0.5));
            y.push(u8::from(rng.gen::<f64>() < vector::sigmoid(3.0 * a)));
        }
        let d = Dataset::builder("ub")
            .numeric("x", x)
            .sensitive("s", s)
            .labels("y", y)
            .build()
            .unwrap();
        let mut rng2 = StdRng::seed_from_u64(7);
        let m = Thomas::new(ThomasNotion::DemographicParity)
            .train(&d, &mut rng2)
            .unwrap();
        let preds = m.predict(&d);
        let acc =
            preds.iter().zip(d.labels()).filter(|&(p, t)| p == t).count() as f64 / n as f64;
        assert!(acc > 0.75, "accuracy {acc}");
    }
}
