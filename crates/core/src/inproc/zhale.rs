//! Zha-Le^EO — adversarial debiasing (Zhang, Lemoine & Mitchell; paper
//! A.2).
//!
//! A logistic classifier `f(X) → Ŷ` and a logistic adversary
//! `a(Ŷ, Y) → Ŝ` are trained together. For equalized odds the adversary
//! sees both the predicted probability and the true label (features
//! `[p, p·y, y]`), so any group information in the *error profile* is
//! exploitable. The classifier's update follows Zhang et al.'s rule:
//!
//! ```text
//! ∇_w L_f  −  proj_{∇_w L_a}(∇_w L_f)  −  α · ∇_w L_a
//! ```
//!
//! where `∇_w L_a` is the adversary loss's gradient *through* the
//! classifier parameters (chain rule through `p = σ(w·x)`), the projection
//! removes the component of the accuracy gradient that helps the adversary,
//! and the `α` term actively hurts it. Both players step with Adam.

use fairlens_frame::{Dataset, Encoder};
use fairlens_linalg::{vector, Matrix};
use fairlens_model::LogisticRegression;
use fairlens_optim::adam::{AdamOptions, AdamState};
use rand::rngs::StdRng;

use crate::error::CoreError;
use crate::pipeline::{InProcessor, TrainedModel};

/// Which notion the adversary enforces (Zhang et al. support all three;
/// the paper evaluates equalized odds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZhaLeNotion {
    /// Adversary sees `[p, p·y, y]` — any group signal in the error profile
    /// is exploitable.
    EqualizedOdds,
    /// Adversary sees `[p]` only — any group signal in the prediction
    /// itself is exploitable.
    DemographicParity,
}

/// The adversarial-debiasing trainer.
#[derive(Debug, Clone)]
pub struct ZhaLe {
    /// Enforced notion.
    pub notion: ZhaLeNotion,
    /// Adversary strength `α`.
    pub alpha: f64,
    /// Joint training epochs (full-batch steps).
    pub epochs: usize,
    /// Classifier/adversary learning rate.
    pub lr: f64,
}

impl Default for ZhaLe {
    fn default() -> Self {
        Self { notion: ZhaLeNotion::EqualizedOdds, alpha: 0.6, epochs: 600, lr: 0.03 }
    }
}

impl ZhaLe {
    /// The demographic-parity variant (adversary blind to `Y`). The scalar
    /// adversary needs a stronger `α` than the equalized-odds variant to
    /// move the classifier.
    pub fn demographic_parity() -> Self {
        Self { notion: ZhaLeNotion::DemographicParity, alpha: 1.5, ..Default::default() }
    }
}

struct ZhaLeModel {
    encoder: Encoder,
    model: LogisticRegression,
}

impl TrainedModel for ZhaLeModel {
    fn predict(&self, data: &Dataset) -> Vec<u8> {
        self.model.predict(&self.encoder.transform(data).matrix)
    }

    fn predict_proba(&self, data: &Dataset) -> Vec<f64> {
        self.model.predict_proba(&self.encoder.transform(data).matrix)
    }

    fn snapshot(&self) -> Option<crate::snapshot::ModelSnapshot> {
        Some(crate::snapshot::ModelSnapshot::linear(&self.encoder, &self.model))
    }
}

/// Adversary features: `[p, p·y, y]` for equalized odds, `[p, 0, 0]` for
/// demographic parity (the zeroed coordinates keep the parameter layout
/// uniform).
#[inline]
fn adv_features(notion: ZhaLeNotion, p: f64, y: f64) -> [f64; 3] {
    match notion {
        ZhaLeNotion::EqualizedOdds => [p, p * y, y],
        ZhaLeNotion::DemographicParity => [p, 0.0, 0.0],
    }
}

impl InProcessor for ZhaLe {
    fn train(&self, train: &Dataset, _rng: &mut StdRng) -> Result<Box<dyn TrainedModel>, CoreError> {
        // The classifier sees only X: withholding S removes the direct
        // discrimination channel, so the adversary only has the error
        // profile to attack (and the trained model is individually fair by
        // construction, i.e. CD = 0 — consistent with the paper's finding
        // that in-processing approaches score best on CD).
        let encoder = Encoder::fit(train, false);
        let x: Matrix = encoder.transform(train).matrix;
        let n = x.rows();
        let d = x.cols();
        let y: Vec<f64> = train.labels().iter().map(|&v| v as f64).collect();
        let s: Vec<f64> = train.sensitive().iter().map(|&v| v as f64).collect();

        // classifier params [w; b], adversary params [u0 u1 u2; c]
        let mut w = vec![0.0f64; d + 1];
        let mut u = vec![0.0f64; 4];
        let mut w_adam = AdamState::new(d + 1, AdamOptions { lr: self.lr, ..Default::default() });
        // The adversary learns faster than the classifier (Zhang et al.
        // train it to near-convergence between classifier updates).
        let mut u_adam = AdamState::new(4, AdamOptions { lr: 3.0 * self.lr, ..Default::default() });

        for epoch in 0..self.epochs {
            // α decays as 1/√t, the schedule Zhang et al. recommend for
            // convergence of the simultaneous-gradient dynamics.
            let alpha_t = self.alpha / (1.0 + epoch as f64 / 50.0).sqrt();
            // Forward pass.
            let mut p = vec![0.0f64; n];
            for (i, pi) in p.iter_mut().enumerate() {
                *pi = vector::sigmoid(vector::dot(x.row(i), &w[..d]) + w[d]);
            }

            // --- adversary step: minimise BCE(σ(a), s) ------------------
            let mut grad_u = vec![0.0f64; 4];
            let mut dl_da = vec![0.0f64; n];
            for i in 0..n {
                let f = adv_features(self.notion, p[i], y[i]);
                let a = u[0] * f[0] + u[1] * f[1] + u[2] * f[2] + u[3];
                let q = vector::sigmoid(a);
                let r = (q - s[i]) / n as f64;
                dl_da[i] = r;
                grad_u[0] += r * f[0];
                grad_u[1] += r * f[1];
                grad_u[2] += r * f[2];
                grad_u[3] += r;
            }
            u_adam.step(&mut u, &grad_u);

            // --- classifier step ---------------------------------------
            // ∇_w L_f (accuracy gradient)
            let mut g_f = vec![0.0f64; d + 1];
            // ∇_w L_a (adversary gradient through p)
            let mut g_a = vec![0.0f64; d + 1];
            for i in 0..n {
                let row = x.row(i);
                let rf = (p[i] - y[i]) / n as f64;
                vector::axpy(rf, row, &mut g_f[..d]);
                g_f[d] += rf;

                // dL_a/dz_i = dL_a/da · da/dp · dp/dz
                let da_dp = match self.notion {
                    ZhaLeNotion::EqualizedOdds => u[0] + u[1] * y[i],
                    ZhaLeNotion::DemographicParity => u[0],
                };
                let ra = dl_da[i] * da_dp * p[i] * (1.0 - p[i]);
                vector::axpy(ra, row, &mut g_a[..d]);
                g_a[d] += ra;
            }
            // projection: g_f − (g_f·ĝ_a) ĝ_a − α g_a
            let ga_norm = vector::norm2(&g_a);
            let mut step = g_f.clone();
            if ga_norm > 1e-12 {
                let unit: Vec<f64> = g_a.iter().map(|v| v / ga_norm).collect();
                let proj = vector::dot(&step, &unit);
                vector::axpy(-proj, &unit, &mut step);
            }
            vector::axpy(-alpha_t, &g_a, &mut step);
            w_adam.step(&mut w, &step);
        }

        if w.iter().any(|v| !v.is_finite()) {
            return Err(CoreError::Infeasible("adversarial training diverged".into()));
        }
        let (weights, b) = w.split_at(d);
        Ok(Box::new(ZhaLeModel {
            encoder,
            model: LogisticRegression::from_params(weights.to_vec(), b[0]),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairlens_metrics::{tnr_balance, tpr_balance};
    use fairlens_model::LogisticOptions;
    use rand::{Rng, SeedableRng};

    /// Data whose *error profile* differs across groups for a naive model.
    fn odds_biased(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x1 = Vec::new();
        let mut s = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let si = u8::from(rng.gen::<f64>() < 0.5);
            let a: f64 = rng.gen::<f64>() * 2.0 - 1.0;
            // group-dependent signal quality → group-dependent TPR
            let signal = if si == 1 { 2.2 * a + 0.8 } else { 0.9 * a - 0.5 };
            y.push(u8::from(rng.gen::<f64>() < vector::sigmoid(signal)));
            x1.push(a);
            s.push(si);
        }
        Dataset::builder("ob")
            .numeric("x1", x1)
            .sensitive("s", s)
            .labels("y", y)
            .build()
            .unwrap()
    }

    #[test]
    fn adversarial_training_reduces_odds_gap() {
        let d = odds_biased(4000, 1);
        // baseline gap
        let enc = Encoder::fit(&d, true);
        let x = enc.transform(&d).matrix;
        let base = LogisticRegression::fit(&x, d.labels(), &LogisticOptions::default()).unwrap();
        let bp = base.predict(&x);
        let base_gap = tpr_balance(d.labels(), &bp, d.sensitive()).abs()
            + tnr_balance(d.labels(), &bp, d.sensitive()).abs();

        let mut rng = StdRng::seed_from_u64(2);
        let m = ZhaLe::default().train(&d, &mut rng).unwrap();
        let mp = m.predict(&d);
        let gap = tpr_balance(d.labels(), &mp, d.sensitive()).abs()
            + tnr_balance(d.labels(), &mp, d.sensitive()).abs();
        assert!(
            gap < base_gap,
            "equalized-odds gap should shrink: {base_gap} → {gap}"
        );
    }

    #[test]
    fn accuracy_stays_reasonable() {
        let d = odds_biased(4000, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let m = ZhaLe::default().train(&d, &mut rng).unwrap();
        let preds = m.predict(&d);
        let acc = preds
            .iter()
            .zip(d.labels())
            .filter(|&(p, t)| p == t)
            .count() as f64
            / d.n_rows() as f64;
        assert!(acc > 0.6, "accuracy {acc}");
    }

    #[test]
    fn dp_variant_improves_parity() {
        // A clean signal feature plus a pure group proxy: the adversary can
        // force the proxy's weight down without destroying accuracy.
        let mut rng = StdRng::seed_from_u64(11);
        let n = 4000;
        let mut x1 = Vec::new();
        let mut x2 = Vec::new();
        let mut s = Vec::new();
        let mut y = Vec::new();
        use rand::Rng as _;
        for _ in 0..n {
            let si = u8::from(rng.gen::<f64>() < 0.5);
            let a: f64 = rng.gen::<f64>() * 2.0 - 1.0;
            let proxy = (si as f64 * 2.0 - 1.0) + 0.5 * (rng.gen::<f64>() * 2.0 - 1.0);
            y.push(u8::from(rng.gen::<f64>() < vector::sigmoid(1.5 * a + proxy)));
            x1.push(a);
            x2.push(proxy);
            s.push(si);
        }
        let d = Dataset::builder("dp")
            .numeric("x1", x1)
            .numeric("x2", x2)
            .sensitive("s", s)
            .labels("y", y)
            .build()
            .unwrap();
        let enc = Encoder::fit(&d, false);
        let x = enc.transform(&d).matrix;
        let base = LogisticRegression::fit(&x, d.labels(), &Default::default()).unwrap();
        let base_di = fairlens_metrics::di_star(&base.predict(&x), d.sensitive());

        let mut rng2 = StdRng::seed_from_u64(12);
        let m = ZhaLe::demographic_parity().train(&d, &mut rng2).unwrap();
        let di = fairlens_metrics::di_star(&m.predict(&d), d.sensitive());
        assert!(
            di > base_di + 0.2,
            "DP adversary should improve DI* substantially: {base_di} → {di}"
        );
    }

    #[test]
    fn training_is_deterministic() {
        let d = odds_biased(500, 5);
        let mut r1 = StdRng::seed_from_u64(6);
        let mut r2 = StdRng::seed_from_u64(6);
        let a = ZhaLe::default().train(&d, &mut r1).unwrap().predict(&d);
        let b = ZhaLe::default().train(&d, &mut r2).unwrap().predict(&d);
        assert_eq!(a, b);
    }
}
