//! Kearns^PE — subgroup-fairness auditing (Kearns et al., "preventing
//! fairness gerrymandering"; paper A.2).
//!
//! The paper evaluates the *predictive equality* (FPR parity) variant —
//! noting that the AIF360 build it used "does not include any
//! implementation for demographic parity". Both notions are implemented
//! here: each subgroup `g` must satisfy `α(g)·β(g) ≤ γ` where `α(g)` is the
//! subgroup mass and `β(g)` the FPR gap (predictive equality) or
//! positive-rate gap (demographic parity) between `g` and the population.
//!
//! Training is the fictitious-play reduction to a zero-sum game:
//!
//! 1. the **learner** best-responds with a cost-sensitive logistic
//!    regression under the current tuple weights;
//! 2. the **auditor** best-responds by searching the subgroup collection
//!    for the largest weighted FPR violation;
//! 3. the violating subgroup's negative tuples are up-weighted
//!    (multiplicative weights), pushing the next learner to lower its FPR.
//!
//! The final classifier averages the probability outputs of all rounds'
//! models (the mixture strategy of the game).

use fairlens_frame::{Column, Dataset, Encoder};
use fairlens_linalg::vector;
use fairlens_model::{LogisticOptions, LogisticRegression};
use rand::rngs::StdRng;

use crate::error::CoreError;
use crate::pipeline::{InProcessor, TrainedModel};

/// Which subgroup statistic the auditor equalises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KearnsNotion {
    /// Subgroup FPR ≈ population FPR (the paper's evaluated variant).
    PredictiveEquality,
    /// Subgroup positive-prediction rate ≈ population rate (the variant
    /// missing from the paper's AIF360 build).
    DemographicParity,
}

/// The Kearns et al. subgroup auditor/learner.
#[derive(Debug, Clone)]
pub struct Kearns {
    /// Audited notion.
    pub notion: KearnsNotion,
    /// Violation tolerance `γ` (source-code default 0.005, as the paper
    /// notes).
    pub gamma: f64,
    /// Fictitious-play rounds.
    pub rounds: usize,
    /// Multiplicative-weights learning rate.
    pub eta: f64,
}

impl Default for Kearns {
    fn default() -> Self {
        Self { notion: KearnsNotion::PredictiveEquality, gamma: 0.005, rounds: 8, eta: 0.15 }
    }
}

impl Kearns {
    /// The demographic-parity variant.
    pub fn demographic_parity() -> Self {
        Self { notion: KearnsNotion::DemographicParity, ..Default::default() }
    }
}

/// A subgroup: a predicate over rows, described for diagnostics.
struct Subgroup {
    /// Row membership mask.
    member: Vec<bool>,
}

/// Build the audited subgroup collection: the two sensitive groups, every
/// categorical level, and above/below-median splits of numeric attributes —
/// optionally intersected with the sensitive groups (the "gerrymandered"
/// subgroups the approach exists to protect).
fn build_subgroups(train: &Dataset) -> Vec<Subgroup> {
    let n = train.n_rows();
    let mut out = Vec::new();
    // marginal sensitive groups
    for g in 0..2u8 {
        out.push(Subgroup {
            member: train.sensitive().iter().map(|&s| s == g).collect(),
        });
    }
    // per-attribute splits, plain and intersected with S
    for col in train.columns() {
        let masks: Vec<Vec<bool>> = match col {
            Column::Categorical { codes, levels } => (0..levels.len() as u32)
                .map(|l| codes.iter().map(|&c| c == l).collect())
                .collect(),
            Column::Numeric(v) => {
                let mut sorted = v.clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let median = sorted[n / 2];
                vec![
                    v.iter().map(|&x| x <= median).collect(),
                    v.iter().map(|&x| x > median).collect(),
                ]
            }
        };
        for mask in masks {
            for g in 0..2u8 {
                let inter: Vec<bool> = mask
                    .iter()
                    .zip(train.sensitive().iter())
                    .map(|(&m, &s)| m && s == g)
                    .collect();
                out.push(Subgroup { member: inter });
            }
            out.push(Subgroup { member: mask });
        }
    }
    out
}

/// Weighted violation of a subgroup: `α(g) · (stat(g) − stat(D))`, where
/// the statistic is the FPR (predictive equality) or the positive rate
/// (demographic parity).
fn violation(
    notion: KearnsNotion,
    sub: &Subgroup,
    y: &[u8],
    preds: &[u8],
    overall: f64,
) -> f64 {
    let mut hits = 0usize;
    let mut base = 0usize;
    let mut size = 0usize;
    for i in 0..y.len() {
        if !sub.member[i] {
            continue;
        }
        size += 1;
        match notion {
            KearnsNotion::PredictiveEquality => {
                if y[i] == 0 {
                    base += 1;
                    hits += preds[i] as usize;
                }
            }
            KearnsNotion::DemographicParity => {
                base += 1;
                hits += preds[i] as usize;
            }
        }
    }
    if base == 0 || size == 0 {
        return 0.0;
    }
    let alpha = size as f64 / y.len() as f64;
    let stat = hits as f64 / base as f64;
    alpha * (stat - overall)
}

/// The population statistic matching [`violation`].
fn population_stat(notion: KearnsNotion, y: &[u8], preds: &[u8]) -> f64 {
    match notion {
        KearnsNotion::PredictiveEquality => {
            let (fp, neg) = y.iter().zip(preds.iter()).fold((0usize, 0usize), |(f, n), (&t, &p)| {
                if t == 0 {
                    (f + p as usize, n + 1)
                } else {
                    (f, n)
                }
            });
            if neg == 0 {
                0.0
            } else {
                fp as f64 / neg as f64
            }
        }
        KearnsNotion::DemographicParity => {
            preds.iter().map(|&p| p as usize).sum::<usize>() as f64 / preds.len().max(1) as f64
        }
    }
}

/// Mixture model: averages member probabilities.
struct MixtureModel {
    encoder: Encoder,
    members: Vec<LogisticRegression>,
}

impl MixtureModel {
    /// Mean member probability per row (the mixture's score).
    fn mean_proba(&self, data: &Dataset) -> Vec<f64> {
        let x = self.encoder.transform(data).matrix;
        let n = x.rows();
        let mut acc = vec![0.0f64; n];
        for m in &self.members {
            for (a, p) in acc.iter_mut().zip(m.predict_proba(&x)) {
                *a += p;
            }
        }
        let k = self.members.len() as f64;
        acc.into_iter().map(|a| a / k).collect()
    }
}

impl TrainedModel for MixtureModel {
    fn predict(&self, data: &Dataset) -> Vec<u8> {
        self.mean_proba(data).into_iter().map(|p| u8::from(p >= 0.5)).collect()
    }

    fn predict_proba(&self, data: &Dataset) -> Vec<f64> {
        self.mean_proba(data)
    }

    fn snapshot(&self) -> Option<crate::snapshot::ModelSnapshot> {
        Some(crate::snapshot::ModelSnapshot::mixture(&self.encoder, &self.members))
    }
}

impl InProcessor for Kearns {
    fn train(&self, train: &Dataset, _rng: &mut StdRng) -> Result<Box<dyn TrainedModel>, CoreError> {
        let encoder = Encoder::fit(train, true);
        let x = encoder.transform(train).matrix;
        let y = train.labels();
        let subgroups = build_subgroups(train);

        let mut weights = vec![1.0f64; train.n_rows()];
        let mut members = Vec::with_capacity(self.rounds);

        for _ in 0..self.rounds {
            let model = LogisticRegression::fit_weighted(
                &x,
                y,
                Some(&weights),
                &LogisticOptions::default(),
            )?;
            let preds = model.predict(&x);
            let overall = population_stat(self.notion, y, &preds);
            members.push(model);

            // Auditor best response.
            let (worst_idx, worst_v) = subgroups
                .iter()
                .enumerate()
                .map(|(i, g)| (i, violation(self.notion, g, y, &preds, overall)))
                .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
                .unwrap_or((0, 0.0));
            if worst_v.abs() <= self.gamma {
                break; // audit passes
            }
            // Multiplicative weights on the violating subgroup: too many
            // positives/false-positives → raise the cost of predicting 1
            // there (upweight negatives); too few → lower it.
            let factor = (self.eta * worst_v.signum()).exp();
            for i in 0..train.n_rows() {
                let eligible = match self.notion {
                    KearnsNotion::PredictiveEquality => y[i] == 0,
                    KearnsNotion::DemographicParity => y[i] == 0,
                };
                if subgroups[worst_idx].member[i] && eligible {
                    weights[i] *= factor;
                }
            }
            // renormalise to keep the loss scale stable
            let mean_w = vector::mean(&weights);
            for w in weights.iter_mut() {
                *w /= mean_w;
            }
        }

        Ok(Box::new(MixtureModel { encoder, members }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    /// A subgroup (young unprivileged) with a wildly different FPR under a
    /// naive model.
    fn gerrymandered(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut age = Vec::new();
        let mut s = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let si = u8::from(rng.gen::<f64>() < 0.5);
            let a: f64 = rng.gen::<f64>();
            // labels: noisy in the young-unprivileged corner
            let p = if si == 0 && a < 0.5 { 0.5 } else { vector::sigmoid(4.0 * (a - 0.5)) };
            age.push(a);
            s.push(si);
            y.push(u8::from(rng.gen::<f64>() < p));
        }
        Dataset::builder("gm")
            .numeric("age", age)
            .sensitive("s", s)
            .labels("y", y)
            .build()
            .unwrap()
    }

    fn worst_subgroup_violation(d: &Dataset, preds: &[u8]) -> f64 {
        let subs = build_subgroups(d);
        let (fp, neg) = d
            .labels()
            .iter()
            .zip(preds.iter())
            .fold((0usize, 0usize), |(f, n), (&t, &p)| {
                if t == 0 {
                    (f + p as usize, n + 1)
                } else {
                    (f, n)
                }
            });
        let overall = if neg == 0 { 0.0 } else { fp as f64 / neg as f64 };
        subs.iter()
            .map(|g| violation(KearnsNotion::PredictiveEquality, g, d.labels(), preds, overall).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn auditing_reduces_worst_subgroup_violation() {
        let d = gerrymandered(4000, 1);
        // naive model violation
        let enc = Encoder::fit(&d, true);
        let x = enc.transform(&d).matrix;
        let naive = LogisticRegression::fit(&x, d.labels(), &LogisticOptions::default()).unwrap();
        let naive_v = worst_subgroup_violation(&d, &naive.predict(&x));

        let mut rng = StdRng::seed_from_u64(2);
        let m = Kearns::default().train(&d, &mut rng).unwrap();
        let fair_v = worst_subgroup_violation(&d, &m.predict(&d));
        assert!(
            fair_v <= naive_v + 1e-9,
            "violation should not grow: {naive_v} → {fair_v}"
        );
    }

    #[test]
    fn subgroup_collection_is_rich() {
        let d = gerrymandered(200, 3);
        let subs = build_subgroups(&d);
        // 2 sensitive + (2 numeric splits × 3 variants) = 8
        assert_eq!(subs.len(), 8);
    }

    #[test]
    fn demographic_parity_variant_improves_subgroup_rates() {
        // Strong group base-rate gap driven by a proxy feature: the DP
        // auditor must pull the sensitive groups' positive rates together.
        let mut rng = StdRng::seed_from_u64(7);
        let n = 4000;
        let mut signal = Vec::new();
        let mut proxy = Vec::new();
        let mut s = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let si = u8::from(rng.gen::<f64>() < 0.5);
            let a: f64 = rng.gen::<f64>() * 2.0 - 1.0;
            let pr = (si as f64 * 2.0 - 1.0) + 0.5 * (rng.gen::<f64>() * 2.0 - 1.0);
            y.push(u8::from(rng.gen::<f64>() < vector::sigmoid(1.3 * a + 1.1 * pr)));
            signal.push(a);
            proxy.push(pr);
            s.push(si);
        }
        let d = Dataset::builder("dpb")
            .numeric("signal", signal)
            .numeric("proxy", proxy)
            .sensitive("s", s)
            .labels("y", y)
            .build()
            .unwrap();

        let sens_gap = |preds: &[u8]| {
            let rate = |g: u8| {
                let (hits, tot) = preds
                    .iter()
                    .zip(d.sensitive().iter())
                    .filter(|&(_, &sv)| sv == g)
                    .fold((0usize, 0usize), |(h, t), (&p, _)| (h + p as usize, t + 1));
                hits as f64 / tot.max(1) as f64
            };
            (rate(1) - rate(0)).abs()
        };

        let enc = Encoder::fit(&d, true);
        let x = enc.transform(&d).matrix;
        let naive = LogisticRegression::fit(&x, d.labels(), &LogisticOptions::default()).unwrap();
        let naive_gap = sens_gap(&naive.predict(&x));
        assert!(naive_gap > 0.25, "setup: naive DP gap {naive_gap}");

        let mut rng2 = StdRng::seed_from_u64(8);
        let m = Kearns::demographic_parity().train(&d, &mut rng2).unwrap();
        let gap = sens_gap(&m.predict(&d));
        assert!(gap < naive_gap, "DP audit should shrink the gap: {naive_gap} → {gap}");
    }

    #[test]
    fn converges_quickly_on_fair_data() {
        // No subgroup structure in the labels → audit passes immediately.
        let mut rng = StdRng::seed_from_u64(4);
        let n = 1000;
        let x: Vec<f64> = (0..n).map(|_| rng.gen()).collect();
        let y: Vec<u8> = x.iter().map(|&v| u8::from(v > 0.5)).collect();
        let s: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
        let d = Dataset::builder("fair")
            .numeric("x", x)
            .sensitive("s", s)
            .labels("y", y)
            .build()
            .unwrap();
        let mut rng2 = StdRng::seed_from_u64(5);
        let m = Kearns::default().train(&d, &mut rng2).unwrap();
        let preds = m.predict(&d);
        let acc = preds
            .iter()
            .zip(d.labels())
            .filter(|&(p, t)| p == t)
            .count() as f64
            / n as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }
}
