//! Celis^PP — the meta-algorithm with fairness constraints (Celis et al.;
//! paper A.2), instantiated for *predictive parity* (false-discovery-rate
//! parity), the variant the paper evaluates:
//!
//! ```text
//! Pr(Y = 0 | Ŷ = 1, S = 0)  ≈  Pr(Y = 0 | Ŷ = 1, S = 1)
//! ```
//!
//! expressed as the ratio constraint `min_s q_s(f) / max_s q_s(f) ≥ τ`
//! with `q_s` the group performance and τ = 0.8 (the source-code default
//! the paper adopts). Celis et al. solve the constrained ERM through its
//! Lagrangian dual; the dual variables act as group-dependent
//! mis-classification costs. This implementation searches that dual space
//! directly: a grid over per-group false-positive cost multipliers, each
//! inducing a cost-sensitive logistic regression, keeping the most accurate
//! model that satisfies the τ constraint.

use fairlens_frame::{Dataset, Encoder};
use fairlens_model::{LogisticOptions, LogisticRegression};
use rand::rngs::StdRng;

use crate::error::CoreError;
use crate::pipeline::{InProcessor, TrainedModel};

/// The Celis et al. meta-algorithm (predictive-parity instance).
#[derive(Debug, Clone)]
pub struct Celis {
    /// Fairness tolerance τ ∈ [0, 1] (1 = exact parity). Paper: 0.8.
    pub tau: f64,
    /// Grid of dual multipliers tried per group.
    pub multipliers: Vec<f64>,
}

impl Default for Celis {
    fn default() -> Self {
        Self {
            tau: 0.8,
            multipliers: vec![0.0, 0.4, 0.8, 1.5, 2.5, 4.0],
        }
    }
}

/// Group FDRs `(fdr₀, fdr₁)`; `None` for a group with no positive
/// predictions.
fn group_fdrs(y: &[u8], preds: &[u8], s: &[u8]) -> [Option<f64>; 2] {
    let mut fp = [0usize; 2];
    let mut pp = [0usize; 2];
    for i in 0..y.len() {
        if preds[i] == 1 {
            let g = s[i] as usize;
            pp[g] += 1;
            if y[i] == 0 {
                fp[g] += 1;
            }
        }
    }
    [0, 1].map(|g| (pp[g] > 0).then(|| fp[g] as f64 / pp[g] as f64))
}

/// The constraint ratio `min_s q_s / max_s q_s` with `q_s = 1 − FDR_s`
/// (precision — using the complement keeps the ratio in `[0, 1]` with 1 =
/// parity).
fn parity_ratio(y: &[u8], preds: &[u8], s: &[u8]) -> f64 {
    match group_fdrs(y, preds, s) {
        [Some(f0), Some(f1)] => {
            let q0 = 1.0 - f0;
            let q1 = 1.0 - f1;
            if q0.max(q1) <= 0.0 {
                1.0
            } else {
                q0.min(q1) / q0.max(q1)
            }
        }
        // A group with no positive predictions: treat as non-comparable —
        // maximally constrained.
        _ => 0.0,
    }
}

struct CelisModel {
    encoder: Encoder,
    model: LogisticRegression,
}

impl TrainedModel for CelisModel {
    fn predict(&self, data: &Dataset) -> Vec<u8> {
        self.model.predict(&self.encoder.transform(data).matrix)
    }

    fn predict_proba(&self, data: &Dataset) -> Vec<f64> {
        self.model.predict_proba(&self.encoder.transform(data).matrix)
    }

    fn snapshot(&self) -> Option<crate::snapshot::ModelSnapshot> {
        Some(crate::snapshot::ModelSnapshot::linear(&self.encoder, &self.model))
    }
}

impl InProcessor for Celis {
    fn train(&self, train: &Dataset, _rng: &mut StdRng) -> Result<Box<dyn TrainedModel>, CoreError> {
        let encoder = Encoder::fit(train, true);
        let x = encoder.transform(train).matrix;
        let y = train.labels();
        let s = train.sensitive();

        let mut best_feasible: Option<(f64, LogisticRegression)> = None; // (acc, model)
        let mut best_any: Option<(f64, LogisticRegression)> = None; // (ratio, model)

        for &l0 in &self.multipliers {
            for &l1 in &self.multipliers {
                // Dual-induced costs: negatives of group g weigh 1 + λ_g,
                // raising the cost of false positives in that group.
                let weights: Vec<f64> = y
                    .iter()
                    .zip(s.iter())
                    .map(|(&yi, &si)| {
                        if yi == 0 {
                            1.0 + if si == 0 { l0 } else { l1 }
                        } else {
                            1.0
                        }
                    })
                    .collect();
                let Ok(model) = LogisticRegression::fit_weighted(
                    &x,
                    y,
                    Some(&weights),
                    &LogisticOptions::default(),
                ) else {
                    continue;
                };
                let preds = model.predict(&x);
                let acc = preds.iter().zip(y.iter()).filter(|&(p, t)| p == t).count() as f64
                    / y.len() as f64;
                let ratio = parity_ratio(y, &preds, s);

                if ratio >= self.tau && best_feasible.as_ref().is_none_or(|(a, _)| acc > *a) {
                    best_feasible = Some((acc, model.clone()));
                }
                if best_any.as_ref().is_none_or(|(r, _)| ratio > *r) {
                    best_any = Some((ratio, model));
                }
            }
        }

        let model = best_feasible
            .map(|(_, m)| m)
            .or(best_any.map(|(_, m)| m))
            .ok_or_else(|| CoreError::Infeasible("no Celis candidate trained".into()))?;
        Ok(Box::new(CelisModel { encoder, model }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairlens_linalg::vector;
    use rand::{Rng, SeedableRng};

    /// Group-dependent noise → group-dependent FDR for a naive model.
    fn fdr_biased(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut s = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let si = u8::from(rng.gen::<f64>() < 0.5);
            let a: f64 = rng.gen::<f64>() * 2.0 - 1.0;
            // unprivileged labels are much noisier → more FPs there
            let p = if si == 0 {
                0.35 + 0.3 * vector::sigmoid(2.0 * a)
            } else {
                vector::sigmoid(3.0 * a)
            };
            x.push(a);
            s.push(si);
            y.push(u8::from(rng.gen::<f64>() < p));
        }
        Dataset::builder("fb")
            .numeric("x", x)
            .sensitive("s", s)
            .labels("y", y)
            .build()
            .unwrap()
    }

    #[test]
    fn constraint_ratio_improves_over_naive() {
        let d = fdr_biased(4000, 1);
        let enc = Encoder::fit(&d, true);
        let x = enc.transform(&d).matrix;
        let naive = LogisticRegression::fit(&x, d.labels(), &LogisticOptions::default()).unwrap();
        let naive_ratio = parity_ratio(d.labels(), &naive.predict(&x), d.sensitive());

        let mut rng = StdRng::seed_from_u64(2);
        let m = Celis::default().train(&d, &mut rng).unwrap();
        let ratio = parity_ratio(d.labels(), &m.predict(&d), d.sensitive());
        assert!(
            ratio >= naive_ratio - 1e-9,
            "parity ratio should improve: {naive_ratio} → {ratio}"
        );
        assert!(ratio >= 0.7, "final ratio {ratio}");
    }

    #[test]
    fn fair_data_keeps_full_accuracy() {
        // Clean separable data: λ = 0 should win, matching plain LR (the
        // paper's Appendix B note that fairness constraints sometimes cost
        // nothing).
        let n = 1000;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 / n as f64) * 2.0 - 1.0).collect();
        let y: Vec<u8> = x.iter().map(|&v| u8::from(v > 0.0)).collect();
        let s: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
        let d = Dataset::builder("clean")
            .numeric("x", x)
            .sensitive("s", s)
            .labels("y", y)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let m = Celis::default().train(&d, &mut rng).unwrap();
        let preds = m.predict(&d);
        let acc =
            preds.iter().zip(d.labels()).filter(|&(p, t)| p == t).count() as f64 / n as f64;
        assert!(acc > 0.98, "accuracy {acc}");
    }

    #[test]
    fn group_fdrs_computed_correctly() {
        let y = [1, 0, 1, 0, 1, 0];
        let p = [1, 1, 1, 0, 1, 1];
        let s = [0, 0, 0, 1, 1, 1];
        let [f0, f1] = group_fdrs(&y, &p, &s);
        // group 0: predictions 1,1,1 → FP=1 of 3
        assert!((f0.unwrap() - 1.0 / 3.0).abs() < 1e-12);
        // group 1: predictions 1,1 → FP=1 of 2
        assert!((f1.unwrap() - 0.5).abs() < 1e-12);
    }
}
