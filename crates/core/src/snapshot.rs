//! Persistable snapshots of fitted pipelines.
//!
//! Every trained pipeline in the workspace bottoms out in a small set of
//! concrete states: a fitted [`Encoder`] plus logistic parameters (the
//! baseline, every pre-processing pipeline, and the linear in-processing
//! models), a mixture of logistic members (Kearns), and the three fitted
//! post-processing rules (Hardt's mixing matrix, Pleiss's withholding
//! rule, Kam-Kar's confidence threshold). The snapshot types here capture
//! exactly that state, convert it to/from [`fairlens_json::Value`] trees
//! with bit-exact floats, and [`PipelineSnapshot::restore`] rebuilds a
//! [`FittedPipeline`] whose `predict` / `predict_proba` reproduce the
//! original pipeline byte for byte.
//!
//! The traits' `snapshot` hooks ([`crate::TrainedModel::snapshot`],
//! [`crate::PredictionAdjuster::snapshot`]) return `None` for states the
//! format cannot express; [`FittedPipeline::snapshot`] surfaces that as
//! [`CoreError::Unsupported`] so callers (the `export_models` exporter)
//! can report it per cell instead of panicking.

use fairlens_frame::{AttrEncoding, Dataset, Encoder};
use fairlens_json::{object, Value};
use fairlens_model::LogisticRegression;

use crate::error::CoreError;
use crate::pipeline::{FittedPipeline, LrClassifier, PredictionAdjuster, TrainedModel};
use crate::post::{HardtRule, KamKarRule, PleissRule};

/// Fitted logistic parameters: `P(Y=1|x) = σ(w·x + b)`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearParams {
    /// Feature weights `w` (one per encoded column).
    pub weights: Vec<f64>,
    /// Intercept `b`.
    pub intercept: f64,
}

impl LinearParams {
    /// Capture a fitted regression model.
    pub fn of(model: &LogisticRegression) -> Self {
        Self { weights: model.weights().to_vec(), intercept: model.intercept() }
    }

    /// Rebuild the regression model.
    pub fn to_model(&self) -> LogisticRegression {
        LogisticRegression::from_params(self.weights.clone(), self.intercept)
    }

    fn to_value(&self) -> Value {
        object([
            ("weights", Value::from_f64s(self.weights.iter().copied())),
            ("intercept", Value::from_f64(self.intercept)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, String> {
        let weights = field(v, "weights")?.clone().into_f64s()?;
        let intercept = field(v, "intercept")?.clone().into_f64()?;
        if weights.iter().any(|w| !w.is_finite()) || !intercept.is_finite() {
            return Err("non-finite linear parameters".into());
        }
        Ok(Self { weights, intercept })
    }
}

/// The parameter family of a snapshotted predictor.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelParams {
    /// A single logistic model.
    Linear(LinearParams),
    /// An averaged mixture of logistic members (Kearns's learner). The
    /// prediction averages member probabilities and thresholds at 0.5, in
    /// member order — the restore path replays the identical float
    /// reduction so results stay bit-exact.
    Mixture(Vec<LinearParams>),
}

/// A snapshotted predictor: fitted feature encoding + parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSnapshot {
    /// The fitted (training-data) feature encoder.
    pub encoder: Encoder,
    /// The fitted parameters.
    pub params: ModelParams,
}

impl ModelSnapshot {
    /// Snapshot a single-logistic predictor.
    pub fn linear(encoder: &Encoder, model: &LogisticRegression) -> Self {
        Self { encoder: encoder.clone(), params: ModelParams::Linear(LinearParams::of(model)) }
    }

    /// Snapshot a mixture-of-logistics predictor.
    pub fn mixture<'a>(
        encoder: &Encoder,
        members: impl IntoIterator<Item = &'a LogisticRegression>,
    ) -> Self {
        Self {
            encoder: encoder.clone(),
            params: ModelParams::Mixture(members.into_iter().map(LinearParams::of).collect()),
        }
    }

    /// Rebuild a live predictor from the snapshot.
    pub fn restore(&self) -> Box<dyn TrainedModel> {
        match &self.params {
            ModelParams::Linear(p) => Box::new(RestoredLinear {
                snapshot: self.clone(),
                model: p.to_model(),
            }),
            ModelParams::Mixture(ps) => Box::new(RestoredMixture {
                snapshot: self.clone(),
                members: ps.iter().map(LinearParams::to_model).collect(),
            }),
        }
    }

    /// Serialize to a JSON value.
    pub fn to_value(&self) -> Value {
        let params = match &self.params {
            ModelParams::Linear(p) => ("linear", p.to_value()),
            ModelParams::Mixture(ps) => (
                "mixture",
                Value::Array(ps.iter().map(LinearParams::to_value).collect()),
            ),
        };
        object([
            ("encoder", encoder_to_value(&self.encoder)),
            ("kind", Value::String(params.0.into())),
            ("params", params.1),
        ])
    }

    /// Parse back from a JSON value.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let encoder = encoder_from_value(field(v, "encoder")?)?;
        let kind = field(v, "kind")?.as_str().ok_or("model kind must be a string")?;
        let params = field(v, "params")?;
        let params = match kind {
            "linear" => ModelParams::Linear(LinearParams::from_value(params)?),
            "mixture" => ModelParams::Mixture(
                params
                    .clone()
                    .into_array()?
                    .iter()
                    .map(LinearParams::from_value)
                    .collect::<Result<_, _>>()?,
            ),
            other => return Err(format!("unknown model kind {other:?}")),
        };
        let width = encoder.width();
        let widths_ok = match &params {
            ModelParams::Linear(p) => p.weights.len() == width,
            ModelParams::Mixture(ps) => {
                !ps.is_empty() && ps.iter().all(|p| p.weights.len() == width)
            }
        };
        if !widths_ok {
            return Err(format!("parameter width does not match encoder width {width}"));
        }
        Ok(Self { encoder, params })
    }
}

/// A predictor restored from a [`ModelSnapshot`] (single logistic model).
struct RestoredLinear {
    snapshot: ModelSnapshot,
    model: LogisticRegression,
}

impl TrainedModel for RestoredLinear {
    fn predict(&self, data: &Dataset) -> Vec<u8> {
        self.model.predict(&self.snapshot.encoder.transform(data).matrix)
    }

    fn predict_proba(&self, data: &Dataset) -> Vec<f64> {
        self.model.predict_proba(&self.snapshot.encoder.transform(data).matrix)
    }

    fn predict_with_proba(&self, data: &Dataset) -> (Vec<u8>, Vec<f64>) {
        // One encode + one batched GEMV shared by both outputs.
        self.model.predict_with_proba(&self.snapshot.encoder.transform(data).matrix)
    }

    fn snapshot(&self) -> Option<ModelSnapshot> {
        Some(self.snapshot.clone())
    }
}

/// A predictor restored from a [`ModelSnapshot`] (mixture). The member
/// reduction mirrors Kearns's `MixtureModel` exactly: accumulate member
/// probabilities in order, divide once, threshold at 0.5.
struct RestoredMixture {
    snapshot: ModelSnapshot,
    members: Vec<LogisticRegression>,
}

impl RestoredMixture {
    fn mean_proba(&self, data: &Dataset) -> Vec<f64> {
        let x = self.snapshot.encoder.transform(data).matrix;
        let mut acc = vec![0.0f64; x.rows()];
        for m in &self.members {
            for (a, p) in acc.iter_mut().zip(m.predict_proba(&x)) {
                *a += p;
            }
        }
        let k = self.members.len() as f64;
        acc.into_iter().map(|a| a / k).collect()
    }
}

impl TrainedModel for RestoredMixture {
    fn predict(&self, data: &Dataset) -> Vec<u8> {
        self.mean_proba(data).into_iter().map(|p| u8::from(p >= 0.5)).collect()
    }

    fn predict_proba(&self, data: &Dataset) -> Vec<f64> {
        self.mean_proba(data)
    }

    fn predict_with_proba(&self, data: &Dataset) -> (Vec<u8>, Vec<f64>) {
        // One encode + member sweep; labels threshold the same means.
        let probs = self.mean_proba(data);
        let labels = probs.iter().map(|&p| u8::from(p >= 0.5)).collect();
        (labels, probs)
    }

    fn snapshot(&self) -> Option<ModelSnapshot> {
        Some(self.snapshot.clone())
    }
}

/// A snapshotted post-processing rule.
#[derive(Debug, Clone, PartialEq)]
pub enum AdjusterSnapshot {
    /// Hardt's derived predictor `p[s][ŷ] = Pr(Ỹ=1 | Ŷ=ŷ, S=s)`.
    Hardt {
        /// The four mixing probabilities.
        p: [[f64; 2]; 2],
    },
    /// Pleiss's calibration-preserving withholding rule.
    Pleiss {
        /// The group whose predictions are withheld.
        favoured: u8,
        /// Withholding probability.
        alpha: f64,
        /// Base rate used for withheld draws.
        mu: f64,
    },
    /// Kam-Kar's reject-option threshold.
    KamKar {
        /// Critical-region confidence threshold.
        theta: f64,
    },
}

impl AdjusterSnapshot {
    /// Rebuild the live adjustment rule.
    pub fn restore(&self) -> Box<dyn PredictionAdjuster> {
        match *self {
            AdjusterSnapshot::Hardt { p } => Box::new(HardtRule { p }),
            AdjusterSnapshot::Pleiss { favoured, alpha, mu } => {
                Box::new(PleissRule { favoured, alpha, mu })
            }
            AdjusterSnapshot::KamKar { theta } => Box::new(KamKarRule { theta }),
        }
    }

    /// Serialize to a JSON value.
    pub fn to_value(&self) -> Value {
        match *self {
            AdjusterSnapshot::Hardt { p } => object([
                ("kind", Value::String("hardt".into())),
                (
                    "p",
                    Value::Array(
                        p.iter().map(|row| Value::from_f64s(row.iter().copied())).collect(),
                    ),
                ),
            ]),
            AdjusterSnapshot::Pleiss { favoured, alpha, mu } => object([
                ("kind", Value::String("pleiss".into())),
                ("favoured", Value::Integer(favoured as u64)),
                ("alpha", Value::from_f64(alpha)),
                ("mu", Value::from_f64(mu)),
            ]),
            AdjusterSnapshot::KamKar { theta } => object([
                ("kind", Value::String("kamkar".into())),
                ("theta", Value::from_f64(theta)),
            ]),
        }
    }

    /// Parse back from a JSON value.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let kind = field(v, "kind")?.as_str().ok_or("adjuster kind must be a string")?;
        match kind {
            "hardt" => {
                let rows = field(v, "p")?.clone().into_array()?;
                if rows.len() != 2 {
                    return Err("hardt rule needs a 2×2 matrix".into());
                }
                let mut p = [[0.0f64; 2]; 2];
                for (s, row) in rows.into_iter().enumerate() {
                    let row = row.into_f64s()?;
                    if row.len() != 2 {
                        return Err("hardt rule needs a 2×2 matrix".into());
                    }
                    p[s] = [row[0], row[1]];
                }
                Ok(AdjusterSnapshot::Hardt { p })
            }
            "pleiss" => {
                let favoured = field(v, "favoured")?.clone().into_u64()?;
                if favoured > 1 {
                    return Err("pleiss favoured group must be 0 or 1".into());
                }
                Ok(AdjusterSnapshot::Pleiss {
                    favoured: favoured as u8,
                    alpha: field(v, "alpha")?.clone().into_f64()?,
                    mu: field(v, "mu")?.clone().into_f64()?,
                })
            }
            "kamkar" => Ok(AdjusterSnapshot::KamKar {
                theta: field(v, "theta")?.clone().into_f64()?,
            }),
            other => Err(format!("unknown adjuster kind {other:?}")),
        }
    }
}

/// A snapshotted end-to-end pipeline — the persistable mirror of
/// [`FittedPipeline`].
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineSnapshot {
    /// Baseline / pre / in: a plain predictor.
    Model(ModelSnapshot),
    /// Post: base classifier + adjustment rule + the prediction-time seed.
    Adjusted {
        /// The fairness-unaware base classifier.
        base: ModelSnapshot,
        /// The fitted adjustment rule.
        adjuster: AdjusterSnapshot,
        /// Seed for prediction-time randomness (kept so a restored
        /// pipeline replays the exact random draws of the original).
        seed: u64,
    },
}

impl PipelineSnapshot {
    /// Rebuild a live pipeline that predicts byte-identically to the
    /// pipeline this snapshot was taken from.
    pub fn restore(&self) -> FittedPipeline {
        match self {
            PipelineSnapshot::Model(m) => FittedPipeline::Model(m.restore()),
            PipelineSnapshot::Adjusted { base, adjuster, seed } => {
                let ModelParams::Linear(p) = &base.params else {
                    unreachable!("adjusted snapshots always carry a linear base");
                };
                FittedPipeline::Adjusted {
                    base: LrClassifier::from_parts(base.encoder.clone(), p.to_model()),
                    adjuster: adjuster.restore(),
                    seed: *seed,
                }
            }
        }
    }

    /// Serialize to a JSON value.
    pub fn to_value(&self) -> Value {
        match self {
            PipelineSnapshot::Model(m) => object([
                ("kind", Value::String("model".into())),
                ("model", m.to_value()),
            ]),
            PipelineSnapshot::Adjusted { base, adjuster, seed } => object([
                ("kind", Value::String("adjusted".into())),
                ("base", base.to_value()),
                ("adjuster", adjuster.to_value()),
                ("seed", Value::Integer(*seed)),
            ]),
        }
    }

    /// Parse back from a JSON value.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let kind = field(v, "kind")?.as_str().ok_or("pipeline kind must be a string")?;
        match kind {
            "model" => Ok(PipelineSnapshot::Model(ModelSnapshot::from_value(field(
                v, "model",
            )?)?)),
            "adjusted" => {
                let base = ModelSnapshot::from_value(field(v, "base")?)?;
                if !matches!(base.params, ModelParams::Linear(_)) {
                    return Err("adjusted pipeline base must be linear".into());
                }
                Ok(PipelineSnapshot::Adjusted {
                    base,
                    adjuster: AdjusterSnapshot::from_value(field(v, "adjuster")?)?,
                    seed: field(v, "seed")?.clone().into_u64()?,
                })
            }
            other => Err(format!("unknown pipeline kind {other:?}")),
        }
    }
}

impl FittedPipeline {
    /// Snapshot this pipeline for persistence.
    ///
    /// Fails with [`CoreError::Unsupported`] if a component's fitted state
    /// is not expressible in the artifact format (no in-tree approach
    /// produces such a state; the hook exists for external `TrainedModel`
    /// implementations).
    pub fn snapshot(&self) -> Result<PipelineSnapshot, CoreError> {
        match self {
            FittedPipeline::Model(m) => m.snapshot().map(PipelineSnapshot::Model).ok_or_else(
                || CoreError::Unsupported("model state cannot be snapshotted".into()),
            ),
            FittedPipeline::Adjusted { base, adjuster, seed } => {
                let base_snapshot = TrainedModel::snapshot(base).ok_or_else(|| {
                    CoreError::Unsupported("base classifier cannot be snapshotted".into())
                })?;
                let adjuster = adjuster.snapshot().ok_or_else(|| {
                    CoreError::Unsupported("adjustment rule cannot be snapshotted".into())
                })?;
                Ok(PipelineSnapshot::Adjusted { base: base_snapshot, adjuster, seed: *seed })
            }
        }
    }
}

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn encoder_to_value(encoder: &Encoder) -> Value {
    let attrs = encoder
        .attr_encodings()
        .iter()
        .map(|a| match a {
            AttrEncoding::Numeric { mean, std } => object([
                ("kind", Value::String("numeric".into())),
                ("mean", Value::from_f64(*mean)),
                ("std", Value::from_f64(*std)),
            ]),
            AttrEncoding::OneHot { levels } => object([
                ("kind", Value::String("one_hot".into())),
                ("levels", Value::Integer(*levels as u64)),
            ]),
        })
        .collect();
    object([
        ("include_sensitive", Value::Bool(encoder.includes_sensitive())),
        ("attrs", Value::Array(attrs)),
        (
            "names",
            Value::Array(
                encoder.feature_names().iter().map(|n| Value::String(n.clone())).collect(),
            ),
        ),
    ])
}

fn encoder_from_value(v: &Value) -> Result<Encoder, String> {
    let include_sensitive = field(v, "include_sensitive")?.clone().into_bool()?;
    let attrs = field(v, "attrs")?
        .clone()
        .into_array()?
        .iter()
        .map(|a| {
            let kind = field(a, "kind")?.as_str().ok_or("encoding kind must be a string")?;
            match kind {
                "numeric" => Ok(AttrEncoding::Numeric {
                    mean: field(a, "mean")?.clone().into_f64()?,
                    std: field(a, "std")?.clone().into_f64()?,
                }),
                "one_hot" => Ok(AttrEncoding::OneHot {
                    levels: field(a, "levels")?.clone().into_u64()? as usize,
                }),
                other => Err(format!("unknown encoding kind {other:?}")),
            }
        })
        .collect::<Result<Vec<_>, String>>()?;
    let names = field(v, "names")?
        .clone()
        .into_array()?
        .into_iter()
        .map(Value::into_string)
        .collect::<Result<Vec<_>, _>>()?;
    Encoder::from_parts(attrs, include_sensitive, names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline_approach;

    fn toy(n: usize) -> Dataset {
        let mut x = Vec::new();
        let mut job = Vec::new();
        let mut s = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let xi = (i % 10) as f64;
            let si = (i % 2) as u8;
            x.push(xi);
            job.push((i % 3) as u32);
            s.push(si);
            y.push(u8::from(xi + 3.0 * si as f64 > 6.0));
        }
        Dataset::builder("toy")
            .numeric("x", x)
            .categorical("job", job, vec!["a".into(), "b".into(), "c".into()])
            .sensitive("s", s)
            .labels("y", y)
            .build()
            .unwrap()
    }

    #[test]
    fn baseline_snapshot_restores_bit_exactly() {
        let d = toy(300);
        let fitted = baseline_approach().fit(&d, 7).unwrap();
        let snap = fitted.snapshot().unwrap();
        let text = snap.to_value().to_json();
        let back = PipelineSnapshot::from_value(&fairlens_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, snap);
        let restored = back.restore();
        assert_eq!(restored.predict(&d), fitted.predict(&d));
        for (a, b) in restored.predict_proba(&d).iter().zip(fitted.predict_proba(&d)) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn adjuster_snapshots_round_trip() {
        for snap in [
            AdjusterSnapshot::Hardt { p: [[0.25, 1.0], [0.0, 0.75]] },
            AdjusterSnapshot::Pleiss { favoured: 1, alpha: 0.3, mu: 0.61 },
            AdjusterSnapshot::KamKar { theta: 0.7 },
        ] {
            let text = snap.to_value().to_json();
            let back =
                AdjusterSnapshot::from_value(&fairlens_json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, snap);
            let _rule = back.restore();
        }
    }

    #[test]
    fn mixture_round_trips_and_matches_reduction() {
        let d = toy(120);
        let enc = Encoder::fit(&d, true);
        let members = vec![
            LogisticRegression::from_params(vec![0.2; enc.width()], -0.1),
            LogisticRegression::from_params(vec![-0.4; enc.width()], 0.3),
            LogisticRegression::from_params(vec![0.05; enc.width()], 0.0),
        ];
        let snap = ModelSnapshot::mixture(&enc, &members);
        let text = snap.to_value().to_json();
        let back = ModelSnapshot::from_value(&fairlens_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, snap);
        let restored = back.restore();
        // reference reduction: accumulate then divide, like Kearns
        let x = enc.transform(&d).matrix;
        let mut acc = vec![0.0f64; d.n_rows()];
        for m in &members {
            for (a, p) in acc.iter_mut().zip(m.predict_proba(&x)) {
                *a += p;
            }
        }
        let expect: Vec<u8> =
            acc.iter().map(|a| u8::from(a / members.len() as f64 >= 0.5)).collect();
        assert_eq!(restored.predict(&d), expect);
    }

    #[test]
    fn malformed_snapshots_are_rejected() {
        for bad in [
            "{\"kind\":\"model\"}",
            "{\"kind\":\"warp\",\"model\":{}}",
            "{\"kind\":\"adjusted\",\"base\":{},\"adjuster\":{},\"seed\":1}",
        ] {
            let v = fairlens_json::parse(bad).unwrap();
            assert!(PipelineSnapshot::from_value(&v).is_err(), "{bad}");
        }
        // width mismatch between encoder and parameters
        let d = toy(50);
        let enc = Encoder::fit(&d, true);
        let snap = ModelSnapshot::linear(
            &enc,
            &LogisticRegression::from_params(vec![0.0; enc.width()], 0.0),
        );
        let mut text = snap.to_value().to_json();
        text = text.replacen("\"weights\":[", "\"weights\":[9.0,", 1);
        let v = fairlens_json::parse(&text).unwrap();
        assert!(ModelSnapshot::from_value(&v).is_err());
    }
}
