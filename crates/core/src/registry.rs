//! Registry of the 18 evaluated variants (paper Fig. 8) plus the baseline.

use std::sync::Arc;

use crate::inproc::{Celis, Kearns, Thomas, ThomasNotion, Zafar, ZafarVariant, ZhaLe};
use crate::pipeline::{Approach, ApproachKind, Stage};
use crate::post::{Hardt, KamKar, Pleiss};
use crate::pre::{Calmon, Feld, KamCal, Salimi, SalimiEngine, ZhaWu};

/// The fairness-unaware baseline `LR`.
pub fn baseline_approach() -> Approach {
    crate::baseline::lr_baseline()
}

/// All 18 evaluated variants, in the paper's Fig. 8 order.
///
/// `salimi_inadmissible` lists the dataset's inadmissible attribute names
/// for the two Salimi variants (the paper uses race / gender /
/// marital-relationship attributes whenever applicable; the sensitive
/// attribute itself is always inadmissible).
pub fn all_approaches(salimi_inadmissible: &[&str]) -> Vec<Approach> {
    let inadmissible: Vec<String> = salimi_inadmissible.iter().map(|s| s.to_string()).collect();
    vec![
        // ---------------- pre-processing ----------------
        Approach {
            name: "KamCal^DP",
            stage: Stage::Pre,
            targets: &["DI"],
            kind: ApproachKind::Pre(Arc::new(KamCal)),
        },
        Approach {
            name: "Feld^DP(1.0)",
            stage: Stage::Pre,
            targets: &["DI"],
            kind: ApproachKind::Pre(Arc::new(Feld::new(1.0))),
        },
        Approach {
            name: "Feld^DP(0.6)",
            stage: Stage::Pre,
            targets: &["DI"],
            kind: ApproachKind::Pre(Arc::new(Feld::new(0.6))),
        },
        Approach {
            name: "Calmon^DP",
            stage: Stage::Pre,
            targets: &["DI"],
            kind: ApproachKind::Pre(Arc::new(Calmon::default())),
        },
        Approach {
            name: "ZhaWu^PSF",
            stage: Stage::Pre,
            targets: &["CRD"],
            kind: ApproachKind::Pre(Arc::new(ZhaWu::default())),
        },
        Approach {
            name: "Salimi^JF(MaxSAT)",
            stage: Stage::Pre,
            targets: &["CRD"],
            kind: ApproachKind::Pre(Arc::new(Salimi::new(
                SalimiEngine::MaxSat,
                inadmissible.clone(),
            ))),
        },
        Approach {
            name: "Salimi^JF(MatFac)",
            stage: Stage::Pre,
            targets: &["CRD"],
            kind: ApproachKind::Pre(Arc::new(Salimi::new(SalimiEngine::MatFac, inadmissible))),
        },
        // ---------------- in-processing -----------------
        Approach {
            name: "Zafar^DP_Fair",
            stage: Stage::In,
            targets: &["DI"],
            kind: ApproachKind::In(Arc::new(Zafar::new(ZafarVariant::DpFair))),
        },
        Approach {
            name: "Zafar^DP_Acc",
            stage: Stage::In,
            targets: &["DI"],
            kind: ApproachKind::In(Arc::new(Zafar::new(ZafarVariant::DpAcc))),
        },
        Approach {
            name: "Zafar^EO_Fair",
            stage: Stage::In,
            targets: &["TPRB", "TNRB"],
            kind: ApproachKind::In(Arc::new(Zafar::new(ZafarVariant::EoFair))),
        },
        Approach {
            name: "ZhaLe^EO",
            stage: Stage::In,
            targets: &["TPRB", "TNRB"],
            kind: ApproachKind::In(Arc::new(ZhaLe::default())),
        },
        Approach {
            name: "Kearns^PE",
            stage: Stage::In,
            targets: &["TNRB"],
            kind: ApproachKind::In(Arc::new(Kearns::default())),
        },
        Approach {
            name: "Celis^PP",
            stage: Stage::In,
            targets: &[],
            kind: ApproachKind::In(Arc::new(Celis::default())),
        },
        Approach {
            name: "Thomas^DP",
            stage: Stage::In,
            targets: &["DI"],
            kind: ApproachKind::In(Arc::new(Thomas::new(ThomasNotion::DemographicParity))),
        },
        Approach {
            name: "Thomas^EO",
            stage: Stage::In,
            targets: &["TPRB", "TNRB"],
            kind: ApproachKind::In(Arc::new(Thomas::new(ThomasNotion::EqualizedOdds))),
        },
        // ---------------- post-processing ---------------
        Approach {
            name: "KamKar^DP",
            stage: Stage::Post,
            targets: &["DI"],
            kind: ApproachKind::Post(Arc::new(KamKar::default())),
        },
        Approach {
            name: "Hardt^EO",
            stage: Stage::Post,
            targets: &["TPRB", "TNRB"],
            kind: ApproachKind::Post(Arc::new(Hardt)),
        },
        Approach {
            name: "Pleiss^EOP",
            stage: Stage::Post,
            targets: &["TPRB"],
            kind: ApproachKind::Post(Arc::new(Pleiss::default())),
        },
    ]
}

/// Look up one variant by its display name.
///
/// Searches the baseline (`"LR"`), the 18 evaluated variants and the
/// [`extended_approaches`]. The two Salimi variants are returned with an
/// *empty* inadmissible-attribute list — dataset-specific Salimi
/// configuration (`DatasetKind::salimi_inadmissible()` in `fairlens-synth`)
/// is applied by the experiment runner, which resolves names against
/// [`all_approaches`] per dataset.
pub fn approach_by_name(name: &str) -> Option<Approach> {
    if name == "LR" {
        return Some(baseline_approach());
    }
    all_approaches(&[])
        .into_iter()
        .chain(extended_approaches())
        .find(|a| a.name == name)
}

/// The evaluated variants enforcing fairness at `stage`, in Fig. 8 order.
///
/// Like [`approach_by_name`] this uses an empty Salimi inadmissible list;
/// the runner re-resolves per dataset. `Stage::Baseline` yields just `LR`.
pub fn approaches_for_stage(stage: Stage) -> impl Iterator<Item = Approach> {
    let pool: Vec<Approach> = if stage == Stage::Baseline {
        vec![baseline_approach()]
    } else {
        all_approaches(&[])
    };
    pool.into_iter().filter(move |a| a.stage == stage)
}

/// Extension variants beyond the paper's 18 — notions the paper mentions
/// the approaches support but could not evaluate (e.g. Kearns^DP was
/// missing from its AIF360 build; Thomas's single-sided notions were
/// excluded as subsumed by equalized odds).
pub fn extended_approaches() -> Vec<Approach> {
    vec![
        Approach {
            name: "Kearns^DP",
            stage: Stage::In,
            targets: &["DI"],
            kind: ApproachKind::In(Arc::new(Kearns::demographic_parity())),
        },
        Approach {
            name: "ZhaLe^DP",
            stage: Stage::In,
            targets: &["DI"],
            kind: ApproachKind::In(Arc::new(ZhaLe::demographic_parity())),
        },
        Approach {
            name: "Thomas^EOpp",
            stage: Stage::In,
            targets: &["TPRB"],
            kind: ApproachKind::In(Arc::new(Thomas::new(ThomasNotion::EqualOpportunity))),
        },
        Approach {
            name: "Thomas^PE",
            stage: Stage::In,
            targets: &["TNRB"],
            kind: ApproachKind::In(Arc::new(Thomas::new(ThomasNotion::PredictiveEquality))),
        },
        Approach {
            name: "Pleiss^PE",
            stage: Stage::Post,
            targets: &["TNRB"],
            kind: ApproachKind::Post(Arc::new(Pleiss::predictive_equality())),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_18_variants() {
        let all = all_approaches(&[]);
        assert_eq!(all.len(), 18);
        let pre = all.iter().filter(|a| a.stage == Stage::Pre).count();
        let inp = all.iter().filter(|a| a.stage == Stage::In).count();
        let post = all.iter().filter(|a| a.stage == Stage::Post).count();
        // paper: 5 pre approaches → 7 variants, 5 in → 8 variants,
        // 3 post → 3 variants
        assert_eq!(pre, 7);
        assert_eq!(inp, 8);
        assert_eq!(post, 3);
    }

    #[test]
    fn names_are_unique() {
        let all = all_approaches(&[]);
        let mut names: Vec<&str> = all.iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 18);
    }

    #[test]
    fn extended_registry_has_unique_new_names() {
        let base: Vec<&str> = all_approaches(&[]).iter().map(|a| a.name).collect();
        let ext = extended_approaches();
        assert_eq!(ext.len(), 5);
        for a in &ext {
            assert!(!base.contains(&a.name), "{} duplicates a base variant", a.name);
        }
    }

    #[test]
    fn baseline_is_baseline() {
        assert_eq!(baseline_approach().stage, Stage::Baseline);
        assert_eq!(baseline_approach().name, "LR");
    }

    #[test]
    fn lookup_by_name_finds_every_variant() {
        for a in all_approaches(&[]).iter().chain(extended_approaches().iter()) {
            let found = approach_by_name(a.name)
                .unwrap_or_else(|| panic!("{} missing from lookup", a.name));
            assert_eq!(found.name, a.name);
            assert_eq!(found.stage, a.stage);
        }
        assert_eq!(approach_by_name("LR").unwrap().stage, Stage::Baseline);
        assert!(approach_by_name("NoSuchApproach").is_none());
    }

    #[test]
    fn stage_iterator_partitions_the_registry() {
        let pre: Vec<_> = approaches_for_stage(Stage::Pre).collect();
        let inp: Vec<_> = approaches_for_stage(Stage::In).collect();
        let post: Vec<_> = approaches_for_stage(Stage::Post).collect();
        assert_eq!(pre.len(), 7);
        assert_eq!(inp.len(), 8);
        assert_eq!(post.len(), 3);
        assert!(pre.iter().all(|a| a.stage == Stage::Pre));
        let base: Vec<_> = approaches_for_stage(Stage::Baseline).collect();
        assert_eq!(base.len(), 1);
        assert_eq!(base[0].name, "LR");
    }

    #[test]
    fn approaches_are_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        // The parallel runner moves these across worker threads; the trait
        // objects inside carry `Send + Sync` supertrait bounds.
        assert_send_sync::<Approach>();
        assert_send_sync::<crate::pipeline::FittedPipeline>();
    }
}
