//! Cross-validated evaluation of fair pipelines.
//!
//! The paper validates each classifier with 3-fold cross-validation
//! (Section 4.1). This module provides that protocol for any [`Approach`]:
//! per-fold accuracy and fairness scores plus their aggregates, so model
//! selection (e.g. choosing Feld's λ, Zafar's tolerance) can be done on
//! validation folds instead of the test set.

use fairlens_frame::{split, Dataset};
use fairlens_metrics::{di_star, tnr_balance, tpr_balance};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::CoreError;
use crate::pipeline::Approach;

/// One fold's validation scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FoldScore {
    /// Validation accuracy.
    pub accuracy: f64,
    /// Normalised disparate impact `DI*`.
    pub di_star: f64,
    /// `1 − |TPRB|`.
    pub tprb_fair: f64,
    /// `1 − |TNRB|`.
    pub tnrb_fair: f64,
}

/// Aggregated cross-validation result.
#[derive(Debug, Clone, PartialEq)]
pub struct CvResult {
    /// Per-fold scores, in fold order.
    pub folds: Vec<FoldScore>,
}

impl CvResult {
    /// Mean over folds of a selected score.
    pub fn mean<F: Fn(&FoldScore) -> f64>(&self, pick: F) -> f64 {
        if self.folds.is_empty() {
            return 0.0;
        }
        self.folds.iter().map(&pick).sum::<f64>() / self.folds.len() as f64
    }

    /// Mean accuracy across folds.
    pub fn mean_accuracy(&self) -> f64 {
        self.mean(|f| f.accuracy)
    }

    /// Mean `DI*` across folds.
    pub fn mean_di_star(&self) -> f64 {
        self.mean(|f| f.di_star)
    }

    /// Sample standard deviation of accuracy across folds.
    pub fn accuracy_std(&self) -> f64 {
        let accs: Vec<f64> = self.folds.iter().map(|f| f.accuracy).collect();
        fairlens_linalg::vector::stddev(&accs)
    }
}

/// Run `k`-fold cross-validation of `approach` on `data` (the paper's
/// protocol uses `k = 3`). Each fold trains on `k−1` parts and scores on
/// the held-out part; folds that fail to train are skipped (their error is
/// returned only if *every* fold fails).
pub fn cross_validate(
    approach: &Approach,
    data: &Dataset,
    k: usize,
    seed: u64,
) -> Result<CvResult, CoreError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let folds = split::k_folds(data, k, &mut rng);
    let mut scores = Vec::with_capacity(k);
    let mut last_err = None;
    for (i, (train, val)) in folds.iter().enumerate() {
        match approach.fit(train, seed.wrapping_add(i as u64)) {
            Ok(fitted) => {
                let preds = fitted.predict(val);
                let correct = preds
                    .iter()
                    .zip(val.labels())
                    .filter(|&(p, t)| p == t)
                    .count();
                scores.push(FoldScore {
                    accuracy: correct as f64 / val.n_rows().max(1) as f64,
                    di_star: di_star(&preds, val.sensitive()),
                    tprb_fair: 1.0 - tpr_balance(val.labels(), &preds, val.sensitive()).abs(),
                    tnrb_fair: 1.0 - tnr_balance(val.labels(), &preds, val.sensitive()).abs(),
                });
            }
            Err(e) => last_err = Some(e),
        }
    }
    if scores.is_empty() {
        return Err(last_err.unwrap_or(CoreError::BadInput("no folds ran".into())));
    }
    Ok(CvResult { folds: scores })
}

/// Pick the best configuration from `candidates` by cross-validated score:
/// maximise `accuracy + fairness_weight · DI*`. Returns the winning index
/// and its CV result.
pub fn select_by_cv(
    candidates: &[Approach],
    data: &Dataset,
    k: usize,
    fairness_weight: f64,
    seed: u64,
) -> Result<(usize, CvResult), CoreError> {
    let mut best: Option<(usize, CvResult, f64)> = None;
    let mut last_err = None;
    for (i, approach) in candidates.iter().enumerate() {
        match cross_validate(approach, data, k, seed) {
            Ok(cv) => {
                let score = cv.mean_accuracy() + fairness_weight * cv.mean_di_star();
                if best.as_ref().is_none_or(|(_, _, b)| score > *b) {
                    best = Some((i, cv, score));
                }
            }
            Err(e) => last_err = Some(e),
        }
    }
    best.map(|(i, cv, _)| (i, cv))
        .ok_or_else(|| last_err.unwrap_or(CoreError::BadInput("no candidates ran".into())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::lr_baseline;
    use crate::pipeline::{ApproachKind, Stage};
    use crate::pre::Feld;
    use std::sync::Arc;

    fn toy(n: usize) -> Dataset {
        let mut x = Vec::new();
        let mut s = Vec::new();
        let mut y = Vec::new();
        let mut state = 3u64;
        let mut unif = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for _ in 0..n {
            let si = u8::from(unif() < 0.5);
            let xi = unif();
            y.push(u8::from(unif() < 0.2 + 0.6 * xi));
            x.push(xi);
            s.push(si);
        }
        Dataset::builder("cv")
            .numeric("x", x)
            .sensitive("s", s)
            .labels("y", y)
            .build()
            .unwrap()
    }

    #[test]
    fn three_fold_cv_runs_the_paper_protocol() {
        let d = toy(600);
        let cv = cross_validate(&lr_baseline(), &d, 3, 1).unwrap();
        assert_eq!(cv.folds.len(), 3);
        assert!(cv.mean_accuracy() > 0.6, "{}", cv.mean_accuracy());
        assert!(cv.accuracy_std() < 0.1);
        for f in &cv.folds {
            assert!((0.0..=1.0).contains(&f.accuracy));
            assert!((0.0..=1.0).contains(&f.di_star));
        }
    }

    #[test]
    fn cv_is_deterministic() {
        let d = toy(300);
        let a = cross_validate(&lr_baseline(), &d, 3, 9).unwrap();
        let b = cross_validate(&lr_baseline(), &d, 3, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn selection_prefers_fairer_candidate_under_heavy_weight() {
        let d = toy(600);
        let candidates = vec![
            lr_baseline(),
            Approach {
                name: "Feld^DP(1.0)",
                stage: Stage::Pre,
                targets: &["DI"],
                kind: ApproachKind::Pre(Arc::new(Feld::new(1.0))),
            },
        ];
        // with zero fairness weight the higher-accuracy candidate wins;
        // both must at least run
        let (idx0, _) = select_by_cv(&candidates, &d, 3, 0.0, 1).unwrap();
        let (idx_fair, cv) = select_by_cv(&candidates, &d, 3, 100.0, 1).unwrap();
        assert!(idx0 < candidates.len());
        assert!(idx_fair < candidates.len());
        assert!(!cv.folds.is_empty());
    }
}
