//! The unified fair-classification pipeline.
//!
//! Every evaluated variant plugs into one of three stage traits
//! ([`Preprocessor`], [`InProcessor`], [`Postprocessor`]); [`Approach::fit`]
//! assembles the full pipeline the paper times in its efficiency
//! experiments:
//!
//! * **pre**: repair the training data, then train the standard logistic
//!   regression on the repaired data (the paper pairs every pre-processing
//!   method with logistic regression);
//! * **in**: train the approach's own constrained model;
//! * **post**: train the standard logistic regression, then fit a
//!   prediction adjuster on its training-set probabilities.

use std::sync::Arc;

use fairlens_frame::{Dataset, Encoder};
use fairlens_model::{LogisticOptions, LogisticRegression};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::CoreError;

/// The stage at which an approach enforces fairness (paper Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Fairness-unaware logistic regression (`LR`).
    Baseline,
    /// Data repair before training.
    Pre,
    /// Constrained learning.
    In,
    /// Prediction adjustment after training.
    Post,
}

impl Stage {
    /// Display label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Baseline => "baseline",
            Stage::Pre => "pre",
            Stage::In => "in",
            Stage::Post => "post",
        }
    }
}

/// A data-repair approach: `Dataset → Dataset`.
pub trait Preprocessor: Send + Sync {
    /// Produce the repaired training dataset.
    fn repair(&self, train: &Dataset, rng: &mut StdRng) -> Result<Dataset, CoreError>;

    /// Whether the downstream classifier should see `S` as a feature.
    ///
    /// Defaults to `true` (the AIF360 convention). Feld overrides this to
    /// `false`: disparate-impact removal repairs `X` so the model can be
    /// trained *without* the sensitive attribute — leaving `S` in the
    /// feature set would let the classifier re-derive exactly the signal
    /// the repair removed.
    fn include_sensitive_in_model(&self) -> bool {
        true
    }
}

/// A model trained by an in-processing approach.
pub trait TrainedModel: Send + Sync {
    /// Hard 0/1 predictions on (possibly counterfactual) data.
    fn predict(&self, data: &Dataset) -> Vec<u8>;

    /// Per-row scores `P(Y = 1 | x) ∈ [0, 1]`.
    ///
    /// The default degrades gracefully to the hard labels as 0/1 scores;
    /// every in-tree model overrides this with its real probabilities.
    /// Implementations must stay consistent with [`Self::predict`]
    /// (`predict[i] == 1 ⇔ predict_proba[i] ≥ 0.5` under the model's own
    /// thresholding).
    fn predict_proba(&self, data: &Dataset) -> Vec<f64> {
        self.predict(data).into_iter().map(f64::from).collect()
    }

    /// Labels and scores together, for callers that need both (the serve
    /// flush path). Must be observationally identical to calling
    /// [`Self::predict`] and [`Self::predict_proba`] separately; models
    /// whose two paths share one decision pass override this to compute
    /// that pass once.
    fn predict_with_proba(&self, data: &Dataset) -> (Vec<u8>, Vec<f64>) {
        (self.predict(data), self.predict_proba(data))
    }

    /// Persistable snapshot of the fitted state, or `None` when the state
    /// is not expressible in the artifact format (see [`crate::snapshot`]).
    fn snapshot(&self) -> Option<crate::snapshot::ModelSnapshot> {
        None
    }
}

/// An in-processing approach: constrained training.
pub trait InProcessor: Send + Sync {
    /// Train on `train`, returning a predictor.
    fn train(&self, train: &Dataset, rng: &mut StdRng) -> Result<Box<dyn TrainedModel>, CoreError>;
}

/// A fitted post-processing rule mapping base-classifier probabilities (and
/// group membership) to adjusted hard predictions.
pub trait PredictionAdjuster: Send + Sync {
    /// Adjust predictions. `probs[i] = P(Y=1 | x_i)` from the base model.
    fn adjust(&self, probs: &[f64], sensitive: &[u8], rng: &mut StdRng) -> Vec<u8>;

    /// Deterministic adjusted scores: `E[Ỹ_i] = Pr(Ỹ_i = 1)` under the
    /// rule's own randomness. For deterministic rules this is exactly the
    /// 0/1 adjusted prediction; for randomised rules it is the expected
    /// adjusted label. Defaults to plain 0.5-thresholding of `probs`.
    fn scores(&self, probs: &[f64], sensitive: &[u8]) -> Vec<f64> {
        let _ = sensitive;
        probs.iter().map(|&p| f64::from(u8::from(p >= 0.5))).collect()
    }

    /// Persistable snapshot of the fitted rule, or `None` when the rule is
    /// not expressible in the artifact format (see [`crate::snapshot`]).
    fn snapshot(&self) -> Option<crate::snapshot::AdjusterSnapshot> {
        None
    }

    /// Whether [`Self::adjust`] consumes randomness. Stochastic rules make
    /// the pipeline's hard predictions depend on the *composition* of the
    /// batch they are called on (the RNG stream is shared across rows), so
    /// callers that coalesce rows from different requests — the serving
    /// batcher — must not merge batches for stochastic pipelines.
    fn is_stochastic(&self) -> bool {
        false
    }
}

/// A post-processing approach: fits an adjuster from the base classifier's
/// training-set probabilities, ground truth and groups.
pub trait Postprocessor: Send + Sync {
    /// Fit the adjuster.
    fn fit(
        &self,
        probs: &[f64],
        y: &[u8],
        sensitive: &[u8],
        rng: &mut StdRng,
    ) -> Result<Box<dyn PredictionAdjuster>, CoreError>;
}

/// The mechanism behind an [`Approach`].
#[derive(Clone)]
pub enum ApproachKind {
    /// Plain logistic regression, no fairness mechanism.
    Baseline,
    /// Data repair + logistic regression.
    Pre(Arc<dyn Preprocessor>),
    /// Constrained learner.
    In(Arc<dyn InProcessor>),
    /// Logistic regression + prediction adjustment.
    Post(Arc<dyn Postprocessor>),
}

/// One evaluated variant (a row of the paper's Fig. 8 right-hand column).
#[derive(Clone)]
pub struct Approach {
    /// Display name, e.g. `"KamCal^DP"`.
    pub name: &'static str,
    /// Fairness-enforcing stage.
    pub stage: Stage,
    /// Which of the five evaluated fairness metrics the variant explicitly
    /// optimises (the ↑ arrows in Fig. 10): subset of
    /// `{"DI", "TPRB", "TNRB"}` (none of the evaluated approaches target CD
    /// or CRD directly).
    pub targets: &'static [&'static str],
    /// The mechanism.
    pub kind: ApproachKind,
}

impl std::fmt::Debug for Approach {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Approach")
            .field("name", &self.name)
            .field("stage", &self.stage.label())
            .field("targets", &self.targets)
            .finish()
    }
}

/// The standard classifier of the benchmark: an [`Encoder`] +
/// [`LogisticRegression`] pair trained on one dataset and applicable to any
/// dataset with the same schema. The sensitive attribute is included as a
/// feature (the AIF360 convention), which is what gives the baseline and the
/// pre-/post-processing pipelines a non-trivial causal-discrimination
/// surface.
#[derive(Debug, Clone)]
pub struct LrClassifier {
    encoder: Encoder,
    model: LogisticRegression,
}

impl LrClassifier {
    /// Train on `train`. `include_sensitive` controls whether `S` enters the
    /// feature encoding.
    pub fn train(train: &Dataset, include_sensitive: bool) -> Result<Self, CoreError> {
        let (encoder, feats) = {
            let _span = fairlens_trace::span("encode");
            let encoder = Encoder::fit(train, include_sensitive);
            let feats = encoder.transform(train);
            (encoder, feats)
        };
        let model =
            LogisticRegression::fit(&feats.matrix, train.labels(), &LogisticOptions::default())?;
        Ok(Self { encoder, model })
    }

    /// Rebuild a trained classifier from persisted parts (the fitted
    /// encoder plus logistic parameters) — the restore path of the model
    /// artifact format.
    pub fn from_parts(encoder: Encoder, model: LogisticRegression) -> Self {
        Self { encoder, model }
    }

    /// The fitted feature encoder.
    pub fn encoder(&self) -> &Encoder {
        &self.encoder
    }

    /// `P(Y = 1 | x)` on a dataset.
    pub fn proba(&self, data: &Dataset) -> Vec<f64> {
        self.model.predict_proba(&self.encoder.transform(data).matrix)
    }

    /// Signed decision values.
    pub fn decision(&self, data: &Dataset) -> Vec<f64> {
        self.model.decision_function(&self.encoder.transform(data).matrix)
    }

    /// The inner regression model.
    pub fn model(&self) -> &LogisticRegression {
        &self.model
    }
}

impl TrainedModel for LrClassifier {
    fn predict(&self, data: &Dataset) -> Vec<u8> {
        self.model.predict(&self.encoder.transform(data).matrix)
    }

    fn predict_proba(&self, data: &Dataset) -> Vec<f64> {
        self.proba(data)
    }

    fn predict_with_proba(&self, data: &Dataset) -> (Vec<u8>, Vec<f64>) {
        // One encode + one batched GEMV; both outputs derive from the same
        // decision values, bit-identical to the two separate calls.
        self.model.predict_with_proba(&self.encoder.transform(data).matrix)
    }

    fn snapshot(&self) -> Option<crate::snapshot::ModelSnapshot> {
        Some(crate::snapshot::ModelSnapshot::linear(&self.encoder, &self.model))
    }
}

/// A fully trained pipeline ready to predict on fresh data.
pub enum FittedPipeline {
    /// Baseline / pre / in: a plain predictor.
    Model(Box<dyn TrainedModel>),
    /// Post: base classifier + prediction adjuster. The stored seed makes
    /// randomised adjusters (Pleiss) deterministic per `predict` call.
    Adjusted {
        /// The underlying fairness-unaware classifier.
        base: LrClassifier,
        /// The fitted adjustment rule.
        adjuster: Box<dyn PredictionAdjuster>,
        /// Seed for prediction-time randomness.
        seed: u64,
    },
}

impl FittedPipeline {
    /// Predict hard labels for `data` (which must share the training
    /// schema). Deterministic for a fixed pipeline and dataset.
    pub fn predict(&self, data: &Dataset) -> Vec<u8> {
        match self {
            FittedPipeline::Model(m) => m.predict(data),
            FittedPipeline::Adjusted { base, adjuster, seed } => {
                let probs = base.proba(data);
                let mut rng = StdRng::seed_from_u64(*seed ^ data.n_rows() as u64);
                adjuster.adjust(&probs, data.sensitive(), &mut rng)
            }
        }
    }

    /// Per-row scores `P(Y = 1 | x) ∈ [0, 1]`.
    ///
    /// For plain predictors this is the model's probability; for adjusted
    /// pipelines it is the rule's deterministic score (the expected
    /// adjusted label under the rule's own randomness) — so, unlike
    /// [`Self::predict`], it never consumes randomness.
    pub fn predict_proba(&self, data: &Dataset) -> Vec<f64> {
        match self {
            FittedPipeline::Model(m) => m.predict_proba(data),
            FittedPipeline::Adjusted { base, adjuster, .. } => {
                adjuster.scores(&base.proba(data), data.sensitive())
            }
        }
    }

    /// Labels and scores from one pass over `data`.
    ///
    /// Bit-identical to calling [`Self::predict`] and
    /// [`Self::predict_proba`] separately: plain models share one decision
    /// pass, and adjusted pipelines compute the (deterministic) base
    /// probabilities once and seed the adjustment RNG exactly as
    /// [`Self::predict`] does.
    pub fn predict_with_proba(&self, data: &Dataset) -> (Vec<u8>, Vec<f64>) {
        match self {
            FittedPipeline::Model(m) => m.predict_with_proba(data),
            FittedPipeline::Adjusted { base, adjuster, seed } => {
                let probs = base.proba(data);
                let mut rng = StdRng::seed_from_u64(*seed ^ data.n_rows() as u64);
                let labels = adjuster.adjust(&probs, data.sensitive(), &mut rng);
                let scores = adjuster.scores(&probs, data.sensitive());
                (labels, scores)
            }
        }
    }

    /// Whether [`Self::predict`] draws randomness that couples rows within
    /// a call (see [`PredictionAdjuster::is_stochastic`]). `false` means
    /// per-row predictions are independent of batch composition, so a
    /// serving layer may coalesce rows from different requests.
    pub fn is_stochastic(&self) -> bool {
        match self {
            FittedPipeline::Model(_) => false,
            FittedPipeline::Adjusted { adjuster, .. } => adjuster.is_stochastic(),
        }
    }
}

impl Approach {
    /// Train the full pipeline on `train` with deterministic randomness
    /// derived from `seed`. This is the unit the efficiency experiments
    /// time.
    pub fn fit(&self, train: &Dataset, seed: u64) -> Result<FittedPipeline, CoreError> {
        let mut rng = StdRng::seed_from_u64(seed);
        match &self.kind {
            ApproachKind::Baseline => {
                Ok(FittedPipeline::Model(Box::new(LrClassifier::train(train, true)?)))
            }
            ApproachKind::Pre(p) => {
                let repaired = p.repair(train, &mut rng)?;
                if repaired.n_rows() == 0 {
                    return Err(CoreError::BadInput("repair removed every tuple".into()));
                }
                let with_s = p.include_sensitive_in_model();
                Ok(FittedPipeline::Model(Box::new(LrClassifier::train(&repaired, with_s)?)))
            }
            ApproachKind::In(i) => Ok(FittedPipeline::Model(i.train(train, &mut rng)?)),
            ApproachKind::Post(p) => {
                let base = LrClassifier::train(train, true)?;
                let probs = base.proba(train);
                let adjuster = p.fit(&probs, train.labels(), train.sensitive(), &mut rng)?;
                Ok(FittedPipeline::Adjusted { base, adjuster, seed })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        // x correlates with y; s is informative too
        let mut x = Vec::new();
        let mut s = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let xi = (i % 10) as f64;
            let si = (i % 2) as u8;
            let yi = u8::from(xi + 3.0 * si as f64 > 6.0);
            x.push(xi);
            s.push(si);
            y.push(yi);
        }
        Dataset::builder("toy")
            .numeric("x", x)
            .sensitive("s", s)
            .labels("y", y)
            .build()
            .unwrap()
    }

    #[test]
    fn baseline_pipeline_learns() {
        let d = toy(400);
        let approach = Approach {
            name: "LR",
            stage: Stage::Baseline,
            targets: &[],
            kind: ApproachKind::Baseline,
        };
        let fitted = approach.fit(&d, 1).unwrap();
        let preds = fitted.predict(&d);
        let acc = preds
            .iter()
            .zip(d.labels())
            .filter(|&(p, t)| p == t)
            .count() as f64
            / d.n_rows() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn baseline_uses_sensitive_attribute() {
        // y depends on s; flipping s must change some predictions → CD > 0
        let d = toy(400);
        let approach = Approach {
            name: "LR",
            stage: Stage::Baseline,
            targets: &[],
            kind: ApproachKind::Baseline,
        };
        let fitted = approach.fit(&d, 1).unwrap();
        let a = fitted.predict(&d);
        let b = fitted.predict(&d.flip_sensitive());
        assert_ne!(a, b, "sensitive attribute should matter to the baseline");
    }

    #[test]
    fn identity_preprocessor_matches_baseline() {
        struct Identity;
        impl Preprocessor for Identity {
            fn repair(&self, train: &Dataset, _rng: &mut StdRng) -> Result<Dataset, CoreError> {
                Ok(train.clone())
            }
        }
        let d = toy(300);
        let pre = Approach {
            name: "identity",
            stage: Stage::Pre,
            targets: &[],
            kind: ApproachKind::Pre(Arc::new(Identity)),
        };
        let base = Approach {
            name: "LR",
            stage: Stage::Baseline,
            targets: &[],
            kind: ApproachKind::Baseline,
        };
        let p1 = pre.fit(&d, 3).unwrap().predict(&d);
        let p2 = base.fit(&d, 3).unwrap().predict(&d);
        assert_eq!(p1, p2);
    }

    #[test]
    fn threshold_adjuster_applies() {
        struct AlwaysPositive;
        impl PredictionAdjuster for AlwaysPositive {
            fn adjust(&self, probs: &[f64], _s: &[u8], _rng: &mut StdRng) -> Vec<u8> {
                vec![1; probs.len()]
            }
        }
        struct FitAlwaysPositive;
        impl Postprocessor for FitAlwaysPositive {
            fn fit(
                &self,
                _probs: &[f64],
                _y: &[u8],
                _s: &[u8],
                _rng: &mut StdRng,
            ) -> Result<Box<dyn PredictionAdjuster>, CoreError> {
                Ok(Box::new(AlwaysPositive))
            }
        }
        let d = toy(100);
        let post = Approach {
            name: "always-pos",
            stage: Stage::Post,
            targets: &[],
            kind: ApproachKind::Post(Arc::new(FitAlwaysPositive)),
        };
        let preds = post.fit(&d, 1).unwrap().predict(&d);
        assert!(preds.iter().all(|&p| p == 1));
    }

    #[test]
    fn fit_is_deterministic_per_seed() {
        let d = toy(200);
        let approach = Approach {
            name: "LR",
            stage: Stage::Baseline,
            targets: &[],
            kind: ApproachKind::Baseline,
        };
        let a = approach.fit(&d, 9).unwrap().predict(&d);
        let b = approach.fit(&d, 9).unwrap().predict(&d);
        assert_eq!(a, b);
    }
}
