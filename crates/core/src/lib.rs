//! # fairlens-core
//!
//! The paper's primary subject matter: 13 fair classification approaches
//! (18 evaluated variants) spanning the three fairness-enforcing stages,
//! plus the fairness-unaware logistic-regression baseline and the unified
//! pipeline that trains and evaluates them all identically.
//!
//! ## Stages (paper Section 3)
//!
//! * **Pre-processing** ([`pre`]) — repair the training data before
//!   learning: Kam-Cal (reweighing), Feld (disparate-impact removal, λ = 1.0
//!   and 0.6), Calmon (optimised distribution transform), Zha-Wu
//!   (causal label repair), Salimi (justifiable-fairness repair via MaxSAT
//!   or matrix factorisation).
//! * **In-processing** ([`inproc`]) — constrain the learner: Zafar
//!   (covariance-proxy constraints; DP-fair, DP-acc and EO variants),
//!   Zha-Le (adversarial debiasing), Kearns (subgroup auditing), Celis
//!   (meta-algorithm, predictive-parity instance), Thomas (Seldonian
//!   candidate + safety test; DP and EO variants).
//! * **Post-processing** ([`post`]) — adjust the predictions: Kam-Kar
//!   (reject-option), Hardt (equalized-odds LP), Pleiss
//!   (calibration-preserving equal opportunity).
//!
//! ## Unified pipeline
//!
//! Every variant is an [`Approach`] in the [`registry`]; `Approach::fit`
//! produces a [`FittedPipeline`] whose `predict` consumes a raw
//! [`fairlens_frame::Dataset`] — including its sensitive attribute, so the
//! interventional causal-discrimination metric can flip `S` and re-predict
//! through exactly the same code path the benchmark uses.

pub mod artifact;
pub mod baseline;
pub mod error;
pub mod inproc;
pub mod pipeline;
pub mod post;
pub mod pre;
pub mod registry;
pub mod snapshot;
pub mod validate;

pub use artifact::{AttrSchema, AttrSchemaKind, DataSchema, ModelArtifact};
pub use error::CoreError;
pub use snapshot::{
    AdjusterSnapshot, LinearParams, ModelParams, ModelSnapshot, PipelineSnapshot,
};
pub use pipeline::{
    Approach, ApproachKind, FittedPipeline, InProcessor, Postprocessor, PredictionAdjuster,
    Preprocessor, Stage, TrainedModel,
};
pub use registry::{
    all_approaches, approach_by_name, approaches_for_stage, baseline_approach,
    extended_approaches,
};
pub use validate::{cross_validate, select_by_cv, CvResult, FoldScore};
