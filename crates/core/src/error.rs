//! Error type shared by all approaches.

use fairlens_model::FitError;
use fairlens_solver::MaxSatError;

/// Failure modes of training a fair classification pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The underlying classifier failed to fit.
    Fit(FitError),
    /// The repaired / constrained problem was infeasible (e.g. Hardt's LP
    /// on degenerate group statistics, Thomas with unreachable thresholds).
    Infeasible(String),
    /// The approach cannot run on this dataset shape (e.g. Calmon beyond
    /// its attribute budget — mirroring the paper's >22-attribute failure
    /// on Credit).
    Unsupported(String),
    /// A dataset invariant needed by the approach does not hold.
    BadInput(String),
    /// A transient numeric failure (non-finite loss, singular
    /// decomposition) that a retry with a derived seed may avoid.
    Numeric(String),
}

impl CoreError {
    /// Whether a retry with a different seed has a realistic chance of
    /// succeeding. Structural failures (infeasible, unsupported, bad
    /// input) are deterministic in the data and never retried.
    pub fn is_transient(&self) -> bool {
        matches!(self, CoreError::Numeric(_) | CoreError::Fit(FitError::Diverged))
    }
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Fit(e) => write!(f, "classifier fit failed: {e}"),
            CoreError::Infeasible(m) => write!(f, "infeasible: {m}"),
            CoreError::Unsupported(m) => write!(f, "unsupported: {m}"),
            CoreError::BadInput(m) => write!(f, "bad input: {m}"),
            CoreError::Numeric(m) => write!(f, "numeric failure: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<FitError> for CoreError {
    fn from(e: FitError) -> Self {
        CoreError::Fit(e)
    }
}

impl From<MaxSatError> for CoreError {
    fn from(e: MaxSatError) -> Self {
        CoreError::BadInput(format!("malformed MaxSAT encoding: {e}"))
    }
}
