//! Error type shared by all approaches.

use fairlens_model::FitError;

/// Failure modes of training a fair classification pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The underlying classifier failed to fit.
    Fit(FitError),
    /// The repaired / constrained problem was infeasible (e.g. Hardt's LP
    /// on degenerate group statistics, Thomas with unreachable thresholds).
    Infeasible(String),
    /// The approach cannot run on this dataset shape (e.g. Calmon beyond
    /// its attribute budget — mirroring the paper's >22-attribute failure
    /// on Credit).
    Unsupported(String),
    /// A dataset invariant needed by the approach does not hold.
    BadInput(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Fit(e) => write!(f, "classifier fit failed: {e}"),
            CoreError::Infeasible(m) => write!(f, "infeasible: {m}"),
            CoreError::Unsupported(m) => write!(f, "unsupported: {m}"),
            CoreError::BadInput(m) => write!(f, "bad input: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<FitError> for CoreError {
    fn from(e: FitError) -> Self {
        CoreError::Fit(e)
    }
}
