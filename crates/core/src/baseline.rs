//! The fairness-unaware baseline `LR` (paper Section 4.1).
//!
//! An unconstrained logistic regression over the one-hot/standardised
//! features *including* the sensitive attribute — the reference point every
//! fair approach is compared against (overlaid bars in Fig. 10, subtracted
//! runtime in Fig. 11).

use crate::pipeline::{Approach, ApproachKind, Stage};

/// The `LR` baseline approach descriptor.
pub fn lr_baseline() -> Approach {
    Approach {
        name: "LR",
        stage: Stage::Baseline,
        targets: &[],
        kind: ApproachKind::Baseline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairlens_frame::Dataset;

    #[test]
    fn baseline_reflects_data_bias() {
        // Strong group bias in the data → LR reproduces it (the paper's
        // "garbage-in, garbage-out" premise).
        let n = 2000;
        let mut x = Vec::new();
        let mut s = Vec::new();
        let mut y = Vec::new();
        let mut state = 99u64;
        let mut unif = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for _ in 0..n {
            let si = u8::from(unif() < 0.5);
            let xi = unif() * 2.0 - 1.0;
            // y heavily favours the privileged group
            let yi = u8::from(unif() < if si == 1 { 0.7 } else { 0.2 } + 0.1 * xi);
            x.push(xi);
            s.push(si);
            y.push(yi);
        }
        let d = Dataset::builder("biased")
            .numeric("x", x)
            .sensitive("s", s)
            .labels("y", y)
            .build()
            .unwrap();
        let fitted = lr_baseline().fit(&d, 1).unwrap();
        let preds = fitted.predict(&d);
        let di = fairlens_metrics::disparate_impact(&preds, d.sensitive());
        assert!(di < 0.6, "LR should replicate the bias, DI = {di}");
    }
}
